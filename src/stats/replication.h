#ifndef GTPL_STATS_REPLICATION_H_
#define GTPL_STATS_REPLICATION_H_

#include <cstdint>
#include <vector>

namespace gtpl::stats {

/// Summary of one metric across independent replications, following the
/// paper's method: R runs with distinct seeds, 95% Student-t confidence
/// interval on the mean, relative precision = half-width / mean.
struct ReplicationSummary {
  int64_t runs = 0;
  double mean = 0.0;
  double stddev = 0.0;          // across-run sample stddev
  double ci_half_width = 0.0;   // 95% CI half width (0 when runs < 2)
  double relative_precision = 0.0;  // ci_half_width / |mean| (0 if mean == 0)
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (df >= 1; large df converge to 1.96).
double StudentT95(int64_t df);

/// Aggregates per-run point estimates into a cross-run summary.
ReplicationSummary Summarize(const std::vector<double>& per_run_values);

}  // namespace gtpl::stats

#endif  // GTPL_STATS_REPLICATION_H_
