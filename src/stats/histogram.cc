#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace gtpl::stats {

Histogram::Histogram(double max_value, int32_t num_buckets)
    : max_value_(max_value),
      bucket_width_(max_value / num_buckets),
      buckets_(static_cast<size_t>(num_buckets), 0) {
  GTPL_CHECK_GT(max_value, 0.0);
  GTPL_CHECK_GT(num_buckets, 0);
}

void Histogram::Add(double value) {
  ++count_;
  if (value < 0) value = 0;
  if (value >= max_value_) {
    ++overflow_;
    return;
  }
  auto index = static_cast<size_t>(value / bucket_width_);
  if (index >= buckets_.size()) index = buckets_.size() - 1;
  ++buckets_[index];
}

void Histogram::Merge(const Histogram& other) {
  GTPL_CHECK_EQ(max_value_, other.max_value_);
  GTPL_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  overflow_ += other.overflow_;
  count_ += other.count_;
}

double Histogram::Percentile(double q) const {
  GTPL_CHECK_GE(q, 0.0);
  GTPL_CHECK_LE(q, 1.0);
  if (count_ == 0) return 0.0;
  // Fractional target rank; the bucket covering it interpolates linearly.
  // Keeping the rank a double (instead of truncating to an integer) is what
  // makes the one-sample / tiny-count cases behave: one sample at any q > 0
  // lands mid-bucket rather than at the bucket's lower edge.
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket > 0.0 && cumulative + in_bucket >= target) {
      const double within =
          std::max(0.0, (target - cumulative)) / in_bucket;
      return (static_cast<double>(i) + within) * bucket_width_;
    }
    cumulative += in_bucket;
  }
  return max_value_;  // rank falls in the overflow region
}

Percentiles Histogram::Summary() const {
  Percentiles out;
  out.p50 = Percentile(0.50);
  out.p95 = Percentile(0.95);
  out.p99 = Percentile(0.99);
  if (overflow_ > 0) {
    out.pmax = max_value_;
  } else {
    for (size_t i = buckets_.size(); i-- > 0;) {
      if (buckets_[i] > 0) {
        out.pmax = static_cast<double>(i + 1) * bucket_width_;
        break;
      }
    }
  }
  return out;
}

std::string Histogram::ToAscii(int32_t width) const {
  int64_t peak = overflow_;
  for (int64_t b : buckets_) peak = std::max(peak, b);
  if (peak == 0) return "(empty)\n";
  std::string out;
  char line[160];
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int bar = static_cast<int>(buckets_[i] * width / peak);
    std::snprintf(line, sizeof(line), "[%8.0f, %8.0f) %8lld |",
                  static_cast<double>(i) * bucket_width_,
                  static_cast<double>(i + 1) * bucket_width_,
                  static_cast<long long>(buckets_[i]));
    out += line;
    out.append(static_cast<size_t>(std::max(bar, 1)), '#');
    out += '\n';
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "[%8.0f,      inf) %8lld |", max_value_,
                  static_cast<long long>(overflow_));
    out += line;
    out.append(
        static_cast<size_t>(std::max<int>(
            static_cast<int>(overflow_ * width / peak), 1)),
        '#');
    out += '\n';
  }
  return out;
}

}  // namespace gtpl::stats
