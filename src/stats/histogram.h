#ifndef GTPL_STATS_HISTOGRAM_H_
#define GTPL_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gtpl::stats {

/// Summary quantiles of a Histogram (see Histogram::Summary).
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double pmax = 0.0;  // upper edge of the last occupied bucket
};

/// Fixed-bucket histogram over [0, max) with overflow bucket; used for
/// response-time and queueing-delay distributions.
class Histogram {
 public:
  /// An inert single-bucket histogram over [0, 1); lets result structs hold
  /// histograms by value before the engine sizes them for the run.
  Histogram() : Histogram(1.0, 1) {}

  /// `num_buckets` equal-width buckets spanning [0, max_value); values >=
  /// max_value land in the overflow bucket.
  Histogram(double max_value, int32_t num_buckets);

  void Add(double value);

  /// Merges another histogram bucket-wise (parallel-combine form). Both
  /// histograms must have the same shape (max_value and bucket count);
  /// merging is then exactly equivalent to having Added the other
  /// histogram's samples here.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  int64_t bucket_count(int32_t i) const { return buckets_[i]; }
  int64_t overflow() const { return overflow_; }
  int32_t num_buckets() const { return static_cast<int32_t>(buckets_.size()); }
  double max_value() const { return max_value_; }

  /// Value at quantile `q` in [0,1], linearly interpolated within its
  /// bucket: the q*count-th sample (fractional ranks interpolate) under the
  /// assumption samples spread evenly inside each bucket. An empty
  /// histogram reports 0; a quantile landing in the overflow bucket reports
  /// max_value. A single sample reports the middle of its bucket at every
  /// 0 < q <= 1 (unlike the old Quantile, whose truncated integer rank
  /// collapsed small counts to the bucket's lower edge).
  double Percentile(double q) const;

  /// p50/p95/p99 via Percentile, plus pmax: the upper edge of the last
  /// occupied bucket (max_value when the overflow bucket is occupied) — an
  /// upper bound on the largest sample.
  Percentiles Summary() const;

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  std::string ToAscii(int32_t width = 50) const;

 private:
  double max_value_;
  double bucket_width_;
  std::vector<int64_t> buckets_;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
};

}  // namespace gtpl::stats

#endif  // GTPL_STATS_HISTOGRAM_H_
