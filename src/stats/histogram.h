#ifndef GTPL_STATS_HISTOGRAM_H_
#define GTPL_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gtpl::stats {

/// Fixed-bucket histogram over [0, max) with overflow bucket; used for
/// response-time distributions in examples and diagnostics.
class Histogram {
 public:
  /// `num_buckets` equal-width buckets spanning [0, max_value); values >=
  /// max_value land in the overflow bucket.
  Histogram(double max_value, int32_t num_buckets);

  void Add(double value);

  int64_t count() const { return count_; }
  int64_t bucket_count(int32_t i) const { return buckets_[i]; }
  int64_t overflow() const { return overflow_; }
  int32_t num_buckets() const { return static_cast<int32_t>(buckets_.size()); }

  /// Smallest value v such that at least q (in [0,1]) of samples are <= v,
  /// linearly interpolated within the bucket. Returns max_value for the
  /// overflow region.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (one row per non-empty bucket).
  std::string ToAscii(int32_t width = 50) const;

 private:
  double max_value_;
  double bucket_width_;
  std::vector<int64_t> buckets_;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
};

}  // namespace gtpl::stats

#endif  // GTPL_STATS_HISTOGRAM_H_
