#include "stats/replication.h"

#include <cmath>

#include "common/check.h"
#include "stats/welford.h"

namespace gtpl::stats {

double StudentT95(int64_t df) {
  GTPL_CHECK_GE(df, 1);
  // Two-sided 95% critical values; df > 30 approximated by the normal value.
  static constexpr double kTable[31] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df <= 30) return kTable[df];
  return 1.96;
}

ReplicationSummary Summarize(const std::vector<double>& per_run_values) {
  ReplicationSummary out;
  Welford acc;
  for (double v : per_run_values) acc.Add(v);
  out.runs = acc.count();
  out.mean = acc.mean();
  out.stddev = acc.stddev();
  if (out.runs >= 2) {
    out.ci_half_width = StudentT95(out.runs - 1) * out.stddev /
                        std::sqrt(static_cast<double>(out.runs));
    if (out.mean != 0.0) {
      out.relative_precision = out.ci_half_width / std::abs(out.mean);
    }
  }
  return out;
}

}  // namespace gtpl::stats
