#ifndef GTPL_STATS_WELFORD_H_
#define GTPL_STATS_WELFORD_H_

#include <cstdint>

namespace gtpl::stats {

/// Numerically stable running mean/variance (Welford's algorithm).
class Welford {
 public:
  Welford() = default;

  void Add(double x);

  /// Merges another accumulator (parallel-combine form).
  void Merge(const Welford& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gtpl::stats

#endif  // GTPL_STATS_WELFORD_H_
