#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace gtpl::workload {

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile& profile,
                                     uint64_t seed)
    : profile_(profile),
      rng_(seed),
      items_rng_(rng::StreamSeed(seed, rng::SeedStream::kWorkloadItems)),
      mix_rng_(rng::StreamSeed(seed, rng::SeedStream::kWorkloadMix)),
      zipf_(profile.num_items, profile.zipf_theta) {
  GTPL_CHECK_GT(profile.num_items, 0);
  GTPL_CHECK_GE(profile.min_items_per_txn, 1);
  GTPL_CHECK_LE(profile.min_items_per_txn, profile.max_items_per_txn);
  GTPL_CHECK_LE(profile.max_items_per_txn, profile.num_items);
  GTPL_CHECK_GE(profile.read_prob, 0.0);
  GTPL_CHECK_LE(profile.read_prob, 1.0);
  GTPL_CHECK_LE(profile.min_think, profile.max_think);
  GTPL_CHECK_LE(profile.min_idle, profile.max_idle);
  GTPL_CHECK_GE(profile.min_think, 0);
  GTPL_CHECK_GE(profile.min_idle, 0);
  GTPL_CHECK_GE(profile.repeat_prob, 0.0);
  GTPL_CHECK_LE(profile.repeat_prob, 1.0);
}

TxnSpec WorkloadGenerator::NextTxn() {
  TxnSpec spec;
  std::vector<int32_t> items;
  // Item-selection draws come from items_rng(): the dedicated kWorkloadItems
  // stream when an access-pattern knob is active, else the base stream (so
  // the paper-default configuration replays bit for bit). The guard keeps
  // repeat_prob == 0.0 free of extra stream draws either way.
  if (profile_.repeat_prob > 0.0 && !last_items_.empty() &&
      items_rng().Bernoulli(profile_.repeat_prob)) {
    items = last_items_;  // re-access the previous working set
  } else {
    const auto count = static_cast<int32_t>(items_rng().UniformInt(
        profile_.min_items_per_txn, profile_.max_items_per_txn));
    if (profile_.zipf_theta == 0.0) {
      items = rng::SampleDistinct(items_rng(), profile_.num_items, count);
    } else {
      // Distinct Zipf draws: resample duplicates. The pool is small and the
      // per-transaction count <= 5, so rejection terminates fast.
      std::unordered_set<int32_t> seen;
      while (static_cast<int32_t>(items.size()) < count) {
        const int32_t item = zipf_.Sample(items_rng());
        if (seen.insert(item).second) items.push_back(item);
      }
    }
  }
  if (profile_.sorted_access) std::sort(items.begin(), items.end());
  last_items_ = items;
  spec.ops.reserve(items.size());
  for (int32_t item : items) {
    const LockMode mode = mix_rng().Bernoulli(profile_.read_prob)
                              ? LockMode::kShared
                              : LockMode::kExclusive;
    spec.ops.push_back(Operation{item, mode});
  }
  return spec;
}

SimTime WorkloadGenerator::SampleThink() {
  return rng_.UniformInt(profile_.min_think, profile_.max_think);
}

SimTime WorkloadGenerator::SampleIdle() {
  return rng_.UniformInt(profile_.min_idle, profile_.max_idle);
}

}  // namespace gtpl::workload
