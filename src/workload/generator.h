#ifndef GTPL_WORKLOAD_GENERATOR_H_
#define GTPL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "rng/distributions.h"
#include "rng/rng.h"
#include "workload/txn_spec.h"

namespace gtpl::workload {

/// Statistical profile of the client workload (paper Table 1 defaults).
struct WorkloadProfile {
  /// Size of the hot-item pool at the server (paper: 25, deliberately small
  /// to emulate hot data access).
  int32_t num_items = 25;
  /// Items accessed per transaction, U[min,max] distinct (paper: 1..5).
  int32_t min_items_per_txn = 1;
  int32_t max_items_per_txn = 5;
  /// Probability an access is a read; writes have probability 1 - read_prob.
  double read_prob = 0.5;
  /// Per-operation computation (think) time, U[min,max] (paper: 1..3).
  SimTime min_think = 1;
  SimTime max_think = 3;
  /// Idle time between transactions at a client, U[min,max] (paper: 2..10).
  SimTime min_idle = 2;
  SimTime max_idle = 10;
  /// Zipf skew over the hot pool; 0 = uniform as in the paper (extension).
  double zipf_theta = 0.0;
  /// Access items in ascending id order (canonical deadlock-free ordering;
  /// extension used by tests and ablations). The paper's order is random.
  bool sorted_access = false;
  /// Probability the next transaction re-accesses the previous transaction's
  /// item set (modes are re-drawn) instead of sampling fresh items — the
  /// repeat-access knob behind the lease/caching ablations (DESIGN.md §14).
  /// 0 draws nothing extra from the stream, so legacy runs are bit-identical.
  double repeat_prob = 0.0;
};

/// Draws transaction specs and timing samples for one client, from a
/// dedicated deterministic stream.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadProfile& profile, uint64_t seed);

  /// Next transaction access plan. Ids are assigned by the caller (engine)
  /// so that they are globally unique across clients.
  TxnSpec NextTxn();

  SimTime SampleThink();
  SimTime SampleIdle();

  const WorkloadProfile& profile() const { return profile_; }

 private:
  /// True when an access-pattern knob (zipf_theta or repeat_prob) is active:
  /// item-selection draws then come from items_rng_ and read/write-mode
  /// draws from mix_rng_ (dedicated rng::SeedStream streams), leaving the
  /// base stream to think/idle times alone — so toggling one access-pattern
  /// knob never perturbs the timing draws (or the other knob's stream). At
  /// the paper defaults every draw stays on the single base stream, keeping
  /// legacy runs bit-identical.
  bool split_streams() const {
    return profile_.zipf_theta != 0.0 || profile_.repeat_prob > 0.0;
  }
  rng::Rng& items_rng() { return split_streams() ? items_rng_ : rng_; }
  rng::Rng& mix_rng() { return split_streams() ? mix_rng_ : rng_; }

  WorkloadProfile profile_;
  rng::Rng rng_;
  rng::Rng items_rng_;
  rng::Rng mix_rng_;
  rng::Zipf zipf_;
  std::vector<int32_t> last_items_;  // previous txn's items (repeat_prob)
};

}  // namespace gtpl::workload

#endif  // GTPL_WORKLOAD_GENERATOR_H_
