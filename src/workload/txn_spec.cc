#include "workload/txn_spec.h"

#include <cstdio>

namespace gtpl::workload {

bool TxnSpec::IsReadOnly() const {
  for (const Operation& op : ops) {
    if (op.mode == LockMode::kExclusive) return false;
  }
  return true;
}

int32_t TxnSpec::NumWrites() const {
  int32_t writes = 0;
  for (const Operation& op : ops) {
    if (op.mode == LockMode::kExclusive) ++writes;
  }
  return writes;
}

std::string TxnSpec::DebugString() const {
  std::string out = "T" + std::to_string(id) + ":";
  char buf[32];
  for (const Operation& op : ops) {
    std::snprintf(buf, sizeof(buf), " %s(%d)",
                  op.mode == LockMode::kShared ? "r" : "w", op.item);
    out += buf;
  }
  return out;
}

}  // namespace gtpl::workload
