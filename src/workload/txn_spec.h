#ifndef GTPL_WORKLOAD_TXN_SPEC_H_
#define GTPL_WORKLOAD_TXN_SPEC_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace gtpl::workload {

/// One data access of a transaction.
struct Operation {
  ItemId item = kInvalidItem;
  LockMode mode = LockMode::kShared;
};

/// The access plan of one transaction: distinct items, executed
/// sequentially in order (the paper's sequential execution pattern — the
/// request for operation i+1 is issued only after operation i's data has
/// arrived and its think time elapsed).
struct TxnSpec {
  TxnId id = kInvalidTxn;
  std::vector<Operation> ops;

  bool IsReadOnly() const;
  int32_t NumWrites() const;
  std::string DebugString() const;
};

}  // namespace gtpl::workload

#endif  // GTPL_WORKLOAD_TXN_SPEC_H_
