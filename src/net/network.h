#ifndef GTPL_NET_NETWORK_H_
#define GTPL_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/latency_model.h"
#include "sim/simulator.h"

namespace gtpl::net {

/// Statistics a Network keeps about the traffic it carried. Payload is
/// counted in abstract units (see kControlPayload etc. below): the paper
/// argues message *size* is not the constraint at gigabit rates, and the
/// payload counters let benches show g-2PL's larger-but-fewer messages.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t server_to_client = 0;
  uint64_t client_to_server = 0;
  uint64_t client_to_client = 0;
  uint64_t payload_units = 0;
};

/// Abstract payload sizes: a control message (request, release, ack,
/// abort), one data-item copy, and one forward-list slot rider.
inline constexpr uint64_t kControlPayload = 1;
inline constexpr uint64_t kDataPayload = 8;
inline constexpr uint64_t kFlSlotPayload = 1;

/// Optional per-message trace record, consumed by the quickstart example to
/// print protocol timelines.
struct TraceRecord {
  SimTime send_time;
  SimTime deliver_time;
  SiteId from;
  SiteId to;
  std::string label;
};

/// Message transport over the simulator: Send() schedules the delivery
/// callback `latency(from, to)` ticks in the future. Protocol payloads live
/// in the closure, so the transport is protocol-agnostic; message size is
/// deliberately not modeled (the paper: "the size of the message is less of
/// a concern than the number of rounds of message passing").
class Network {
 public:
  Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers `on_deliver` at the destination after the model's latency.
  /// `label` is used only when tracing is enabled; `payload` is the abstract
  /// message size recorded in the stats (default: a control message).
  void Send(SiteId from, SiteId to, std::string label,
            std::function<void()> on_deliver,
            uint64_t payload = kControlPayload);

  /// Starts recording TraceRecords (for examples / debugging).
  void EnableTracing() { tracing_ = true; }
  const std::vector<TraceRecord>& trace() const { return trace_; }

  const NetworkStats& stats() const { return stats_; }
  sim::Simulator* simulator() const { return simulator_; }
  LatencyModel* latency_model() const { return latency_.get(); }

 private:
  sim::Simulator* simulator_;
  std::unique_ptr<LatencyModel> latency_;
  NetworkStats stats_;
  bool tracing_ = false;
  std::vector<TraceRecord> trace_;
};

}  // namespace gtpl::net

#endif  // GTPL_NET_NETWORK_H_
