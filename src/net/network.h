#ifndef GTPL_NET_NETWORK_H_
#define GTPL_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/latency_model.h"
#include "net/link_model.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "stats/welford.h"

namespace gtpl::net {

/// Timing of the delivery being executed *right now*: valid (active) only
/// for the dynamic extent of a delivery callback, so protocol handlers can
/// attribute the arriving message's latency (propagation vs. transmission +
/// NIC queueing) without the transport knowing anything about protocols.
/// Propagation = rx_queue_entry - tx_start; everything else of
/// (deliver_time - send_time) is transmission + queueing (zero under the
/// pure-propagation model).
struct DeliveryInfo {
  bool active = false;
  SimTime send_time = 0;
  SimTime tx_start = 0;        // uplink service start (sender queue exit)
  SimTime rx_queue_entry = 0;  // first bit at the receiver downlink
  SimTime deliver_time = 0;
  SiteId from = 0;
  SiteId to = 0;
  uint64_t payload = 0;

  SimTime Propagation() const { return rx_queue_entry - tx_start; }
  SimTime Queueing() const {
    return (deliver_time - send_time) - Propagation();
  }
};

/// Statistics a Network keeps about the traffic it carried. Payload is
/// counted in abstract units (see kControlPayload etc. below): the paper
/// argues message *size* is not the constraint at gigabit rates, and the
/// payload counters let benches show g-2PL's larger-but-fewer messages.
/// The queue-delay accumulators stay empty under the pure-propagation
/// model; they fill when a finite-bandwidth LinkModel is attached.
struct NetworkStats {
  uint64_t messages = 0;
  uint64_t server_to_client = 0;
  uint64_t client_to_server = 0;
  uint64_t client_to_client = 0;
  /// Server-site to server-site messages (2PC / shard coordination traffic;
  /// 0 unless the site layout has several servers).
  uint64_t server_to_server = 0;
  uint64_t payload_units = 0;
  /// Total transmission (serialization) ticks charged across all messages.
  uint64_t transmission_ticks = 0;
  /// Per-message FIFO queueing delay at the sender uplink / the receiver
  /// downlink (LinkModel with nic_queue; zero-count otherwise).
  stats::Welford sender_queue_delay;
  stats::Welford receiver_queue_delay;
};

/// Abstract payload sizes: a control message (request, release, ack,
/// abort), one data-item copy, and one forward-list slot rider.
inline constexpr uint64_t kControlPayload = 1;
inline constexpr uint64_t kDataPayload = 8;
inline constexpr uint64_t kFlSlotPayload = 1;

/// Optional per-message trace record, consumed by the quickstart example to
/// print protocol timelines. Under the link model the record also exposes
/// the queueing breakdown: the message waits in the sender's uplink queue
/// during [send_time, tx_start], its first bit reaches the receiver's
/// downlink queue at rx_queue_entry, and it is fully delivered at
/// deliver_time. Under pure propagation tx_start == send_time and
/// rx_queue_entry == deliver_time.
struct TraceRecord {
  SimTime send_time = 0;
  SimTime deliver_time = 0;
  SiteId from = 0;
  SiteId to = 0;
  std::string label;
  uint64_t payload = 0;
  SimTime tx_start = 0;        // uplink service start (sender queue exit)
  SimTime rx_queue_entry = 0;  // first bit at the receiver downlink
};

/// Message transport over the simulator: Send() schedules the delivery
/// callback at the destination. Protocol payloads live in the closure, so
/// the transport is protocol-agnostic.
///
/// By default delivery is charged pure propagation delay — the paper's
/// model ("the size of the message is less of a concern than the number of
/// rounds of message passing"). Attaching a finite-bandwidth LinkConfig
/// layers transmission delay and per-endpoint NIC queueing on top (see
/// LinkModel); with bandwidth infinite the link path is bypassed entirely
/// and the transport is bit-identical to the pure-propagation model.
class Network {
 public:
  Network(sim::Simulator* simulator, std::unique_ptr<LatencyModel> latency,
          const LinkConfig& link = LinkConfig{});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers `on_deliver` at the destination after the model's latency.
  /// `label` is used only when tracing is enabled; `payload` is the abstract
  /// message size recorded in the stats (default: a control message) and
  /// charged transmission delay under a finite-bandwidth link model.
  void Send(SiteId from, SiteId to, std::string label,
            std::function<void()> on_deliver,
            uint64_t payload = kControlPayload);

  /// Declares the site layout for direction accounting: sites kServerSite
  /// and every site > `num_clients` are data servers (the sharded engines'
  /// layout — shard k >= 1 lives at site num_clients + k). Without a
  /// layout only kServerSite counts as a server.
  void SetSiteLayout(int32_t num_clients) { num_clients_ = num_clients; }
  bool IsServerSite(SiteId site) const {
    return site == kServerSite || (num_clients_ >= 0 && site > num_clients_);
  }

  /// Starts recording TraceRecords (for examples / debugging).
  void EnableTracing() { tracing_ = true; }
  const std::vector<TraceRecord>& trace() const { return trace_; }

  /// Attaches a structured tracer: every Send emits kMsgSend, every
  /// delivery kMsgDeliver (with the queueing breakdown in d0..d3). The
  /// tracer observes only — it never schedules or draws randomness.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Timing of the delivery currently being executed (active only inside a
  /// delivery callback).
  const DeliveryInfo& current_delivery() const { return current_delivery_; }

  const NetworkStats& stats() const { return stats_; }

  /// Distribution of per-message total queueing delay (sender + receiver);
  /// empty under the pure-propagation model.
  const stats::Histogram& queue_delay_histogram() const {
    return queue_delay_hist_;
  }

  /// Busy fraction of the busiest NIC over `[0, horizon]`; 0 without a
  /// finite-bandwidth link model. Can exceed 1 when overloaded (queued
  /// service extends past the horizon).
  double MaxLinkUtilization(SimTime horizon) const;

  sim::Simulator* simulator() const { return simulator_; }
  LatencyModel* latency_model() const { return latency_.get(); }
  /// nullptr when the link model is disabled (infinite bandwidth).
  LinkModel* link_model() const { return link_.get(); }

 private:
  sim::Simulator* simulator_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<LinkModel> link_;
  NetworkStats stats_;
  stats::Histogram queue_delay_hist_;
  int32_t num_clients_ = -1;  // -1: no layout declared
  bool tracing_ = false;
  std::vector<TraceRecord> trace_;
  obs::Tracer* tracer_ = nullptr;
  DeliveryInfo current_delivery_;

  /// Runs `deliver` with current_delivery_ set to `info` (and the
  /// kMsgDeliver trace event emitted first).
  void RunDelivery(const DeliveryInfo& info, const std::string& label,
                   const std::function<void()>& deliver);
};

}  // namespace gtpl::net

#endif  // GTPL_NET_NETWORK_H_
