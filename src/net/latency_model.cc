#include "net/latency_model.h"

#include "common/check.h"

namespace gtpl::net {

UniformLatency::UniformLatency(SimTime latency) : latency_(latency) {
  GTPL_CHECK_GE(latency, 0);
}

SimTime UniformLatency::Latency(SiteId from, SiteId to) {
  (void)from;
  (void)to;
  return latency_;
}

SimTime UniformLatency::BaseLatency(SiteId from, SiteId to) const {
  (void)from;
  (void)to;
  return latency_;
}

MatrixLatency::MatrixLatency(std::vector<std::vector<SimTime>> matrix,
                             SimTime jitter, uint64_t seed)
    : matrix_(std::move(matrix)), jitter_(jitter), rng_(seed) {
  GTPL_CHECK_GE(jitter, 0);
  for (const auto& row : matrix_) {
    GTPL_CHECK_EQ(row.size(), matrix_.size());
    for (SimTime v : row) GTPL_CHECK_GE(v, 0);
  }
}

SimTime MatrixLatency::Latency(SiteId from, SiteId to) {
  GTPL_CHECK_GE(from, 0);
  GTPL_CHECK_GE(to, 0);
  GTPL_CHECK_LT(static_cast<size_t>(from), matrix_.size());
  GTPL_CHECK_LT(static_cast<size_t>(to), matrix_.size());
  SimTime base = matrix_[static_cast<size_t>(from)][static_cast<size_t>(to)];
  if (jitter_ > 0) base += rng_.UniformInt(0, jitter_);
  return base;
}

SimTime MatrixLatency::BaseLatency(SiteId from, SiteId to) const {
  GTPL_CHECK_GE(from, 0);
  GTPL_CHECK_GE(to, 0);
  GTPL_CHECK_LT(static_cast<size_t>(from), matrix_.size());
  GTPL_CHECK_LT(static_cast<size_t>(to), matrix_.size());
  return matrix_[static_cast<size_t>(from)][static_cast<size_t>(to)];
}

const std::vector<NetworkEnvironment>& PaperEnvironments() {
  static const auto* kEnvironments = new std::vector<NetworkEnvironment>{
      {"Single Segment Local Area Network", "ss-LAN", 1},
      {"Multi-Segment Local Area Network", "ms-LAN", 50},
      {"Campus Area Network", "CAN", 100},
      {"Metropolitan Area Network", "MAN", 250},
      {"Small Wide Area Network", "s-WAN", 500},
      {"Large Wide Area Network", "l-WAN", 750},
  };
  return *kEnvironments;
}

}  // namespace gtpl::net
