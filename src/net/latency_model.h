#ifndef GTPL_NET_LATENCY_MODEL_H_
#define GTPL_NET_LATENCY_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "rng/rng.h"

namespace gtpl::net {

/// Maps a (source, destination) site pair to a one-way network latency.
///
/// The paper's model: transmission delay is negligible at gigabit rates, so
/// the latency is the propagation + switching delay, assumed identical
/// between any two sites and in both directions. That is UniformLatency;
/// per-link matrices and jitter are extensions for sensitivity studies.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message sent now from `from` to `to`.
  virtual SimTime Latency(SiteId from, SiteId to) = 0;

  /// The static (jitter-free) component of Latency(from, to). Protocol
  /// placement decisions — e.g. the kCoord commit path's per-transaction
  /// coordinator choice — consult this so they stay deterministic and never
  /// draw from the jitter stream.
  virtual SimTime BaseLatency(SiteId from, SiteId to) const = 0;
};

/// The paper's model: one constant for every site pair.
class UniformLatency : public LatencyModel {
 public:
  explicit UniformLatency(SimTime latency);

  SimTime Latency(SiteId from, SiteId to) override;
  SimTime BaseLatency(SiteId from, SiteId to) const override;

  SimTime latency() const { return latency_; }

 private:
  SimTime latency_;
};

/// Extension: per-pair base latency plus uniformly distributed jitter.
class MatrixLatency : public LatencyModel {
 public:
  /// `matrix[from][to]` = base latency; must be square and non-negative.
  /// `jitter` adds U[0, jitter] per message (0 disables).
  MatrixLatency(std::vector<std::vector<SimTime>> matrix, SimTime jitter,
                uint64_t seed);

  SimTime Latency(SiteId from, SiteId to) override;
  SimTime BaseLatency(SiteId from, SiteId to) const override;

 private:
  std::vector<std::vector<SimTime>> matrix_;
  SimTime jitter_;
  rng::Rng rng_;
};

/// Named network environments from the paper's Table 2.
struct NetworkEnvironment {
  const char* name;
  const char* abbreviation;
  SimTime latency;
};

/// The six environments of Table 2 (ss-LAN=1 ... l-WAN=750 time units).
const std::vector<NetworkEnvironment>& PaperEnvironments();

}  // namespace gtpl::net

#endif  // GTPL_NET_LATENCY_MODEL_H_
