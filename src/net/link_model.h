#ifndef GTPL_NET_LINK_MODEL_H_
#define GTPL_NET_LINK_MODEL_H_

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace gtpl::net {

/// Configuration of the link-level transport extension. The defaults
/// reproduce the paper's model exactly: infinite bandwidth, no queues, no
/// cross traffic — a message is charged pure propagation delay.
struct LinkConfig {
  /// Link capacity in abstract payload units (net::k*Payload) per simulated
  /// time unit. 0 = infinite (the paper's "gigabit rates" premise); any
  /// positive value charges transmission delay = payload / bandwidth.
  double bandwidth = 0.0;

  /// Model per-endpoint NIC queues: every site has one uplink and one
  /// downlink, each a FIFO single server with deterministic service time
  /// payload / bandwidth. Off = transmission delay only, no serialization.
  bool nic_queue = false;

  /// Deterministic background cross-traffic load in [0, 1): every NIC also
  /// serves periodic background frames that consume this fraction of its
  /// capacity. Requires nic_queue and finite bandwidth.
  double cross_traffic_load = 0.0;

  /// Seed of the dedicated RNG stream that draws per-NIC cross-traffic
  /// phase offsets (SplitMix64-derived; never touches workload streams).
  uint64_t seed = 0;
};

/// Payload of one background cross-traffic frame (a data-copy-sized burst).
inline constexpr uint64_t kCrossTrafficFramePayload = 8;

/// Link-level timing of one message, layered on top of a LatencyModel's
/// propagation delay. The wire model is a two-stage tandem queue with
/// cut-through switching:
///
///   sender uplink (FIFO, service S = payload / bandwidth)
///     -> propagation (the LatencyModel's delay)
///       -> receiver downlink (FIFO, service S)
///
/// The first bit leaves the sender when its uplink turn starts; it reaches
/// the receiver's downlink one propagation later; the message is delivered
/// when the downlink finishes clocking it in. Unloaded latency is therefore
/// exactly transmission + propagation; concurrent sends add queueing delay
/// at either endpoint. With bandwidth infinite the model is disabled and
/// Network::Send takes the original pure-propagation path unchanged.
///
/// The sender side is resolved when the message is sent; the receiver side
/// is resolved when the first bit arrives (so downlink FIFO order is true
/// arrival order, not send order). Both are deterministic.
class LinkModel {
 public:
  explicit LinkModel(const LinkConfig& config);

  LinkModel(const LinkModel&) = delete;
  LinkModel& operator=(const LinkModel&) = delete;

  /// True iff the model charges anything at all (finite bandwidth).
  bool enabled() const { return config_.bandwidth > 0.0; }

  /// Transmission (serialization) delay of `payload` units, rounded to the
  /// nearest tick; 0 when the payload is small relative to the bandwidth.
  SimTime TransmissionDelay(uint64_t payload) const;

  /// Admits a message of `payload` units to `from`'s uplink at time `now`.
  /// Returns the uplink departure time (last bit on the wire); the first
  /// bit reaches the receiver downlink at start-of-service + propagation,
  /// i.e. at (departure - TransmissionDelay) + propagation.
  SimTime AdmitUplink(SiteId from, uint64_t payload, SimTime now);

  /// Admits a message whose first bit arrived at `to`'s downlink at time
  /// `now` (call from the arrival event). Returns the delivery time (last
  /// bit clocked in).
  SimTime AdmitDownlink(SiteId to, uint64_t payload, SimTime now);

  /// Busiest NIC's busy ticks (uplink or downlink, foreground + background
  /// cross traffic) — the bottleneck link's occupancy.
  SimTime MaxNicBusyTicks() const;

  /// Busy fraction of the busiest NIC over `[0, horizon]`; can exceed 1
  /// when the queue model is overloaded (service extends past the horizon).
  double MaxUtilization(SimTime horizon) const;

  /// Largest per-NIC backlog at `now`: how far the most congested NIC's
  /// earliest free slot lies in the future (0 when every NIC is idle). A
  /// metrics-registry gauge — the instantaneous queueing pressure.
  SimTime MaxNicBacklog(SimTime now) const;

  const LinkConfig& config() const { return config_; }

 private:
  /// One FIFO NIC (an uplink or a downlink of one site).
  struct Nic {
    SimTime free_at = 0;    // earliest time a new service can start
    SimTime busy_ticks = 0; // total service time charged (fg + bg)
    SimTime bg_next = 0;    // arrival of the next background frame
  };

  /// Serializes `service` ticks of NIC time starting no earlier than `now`,
  /// after any background frames that arrived first; returns service start.
  SimTime Admit(Nic& nic, SimTime service, SimTime now);

  /// Serves every background frame that arrived at or before `now`.
  void DrainBackground(Nic& nic, SimTime now);

  Nic& NicOf(std::unordered_map<SiteId, Nic>& side, SiteId site,
             uint64_t phase_salt);

  LinkConfig config_;
  SimTime bg_service_ = 0;  // per-frame service time of cross traffic
  SimTime bg_period_ = 0;   // frame inter-arrival; 0 = no cross traffic
  std::unordered_map<SiteId, Nic> uplinks_;
  std::unordered_map<SiteId, Nic> downlinks_;
};

}  // namespace gtpl::net

#endif  // GTPL_NET_LINK_MODEL_H_
