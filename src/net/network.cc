#include "net/network.h"

#include <utility>

#include "common/check.h"

namespace gtpl::net {

Network::Network(sim::Simulator* simulator,
                 std::unique_ptr<LatencyModel> latency)
    : simulator_(simulator), latency_(std::move(latency)) {
  GTPL_CHECK(simulator_ != nullptr);
  GTPL_CHECK(latency_ != nullptr);
}

void Network::Send(SiteId from, SiteId to, std::string label,
                   std::function<void()> on_deliver, uint64_t payload) {
  const SimTime delay = latency_->Latency(from, to);
  ++stats_.messages;
  stats_.payload_units += payload;
  if (from == kServerSite) {
    ++stats_.server_to_client;
  } else if (to == kServerSite) {
    ++stats_.client_to_server;
  } else {
    ++stats_.client_to_client;
  }
  if (tracing_) {
    trace_.push_back(TraceRecord{simulator_->Now(), simulator_->Now() + delay,
                                 from, to, std::move(label)});
  }
  simulator_->Schedule(delay, std::move(on_deliver));
}

}  // namespace gtpl::net
