#include "net/network.h"

#include <utility>

#include "common/check.h"

namespace gtpl::net {

Network::Network(sim::Simulator* simulator,
                 std::unique_ptr<LatencyModel> latency,
                 const LinkConfig& link)
    : simulator_(simulator),
      latency_(std::move(latency)),
      queue_delay_hist_(/*max_value=*/16384.0, /*num_buckets=*/1024) {
  GTPL_CHECK(simulator_ != nullptr);
  GTPL_CHECK(latency_ != nullptr);
  // A LinkModel only exists when it charges something; the infinite-
  // bandwidth configuration keeps the original pure-propagation Send path
  // byte for byte (the degenerate-case guarantee the equivalence suite
  // pins).
  if (link.bandwidth > 0.0) link_ = std::make_unique<LinkModel>(link);
}

double Network::MaxLinkUtilization(SimTime horizon) const {
  return link_ == nullptr ? 0.0 : link_->MaxUtilization(horizon);
}

void Network::RunDelivery(const DeliveryInfo& info, const std::string& label,
                          const std::function<void()>& deliver) {
  if (tracer_ != nullptr && tracer_->enabled()) {
    const SimTime service =
        link_ == nullptr ? 0 : link_->TransmissionDelay(info.payload);
    obs::TraceEvent event;
    event.kind = obs::EventKind::kMsgDeliver;
    event.site = info.to;
    event.peer = info.from;
    event.payload = static_cast<int64_t>(info.payload);
    event.label = label;
    event.d0 = info.tx_start - info.send_time;               // sender queue
    event.d1 = info.Propagation();                           // propagation
    event.d2 = info.deliver_time - info.rx_queue_entry - service;
    event.d3 = service;                                      // transmission
    tracer_->Emit(std::move(event));
  }
  current_delivery_ = info;
  deliver();
  current_delivery_.active = false;
}

void Network::Send(SiteId from, SiteId to, std::string label,
                   std::function<void()> on_deliver, uint64_t payload) {
  const SimTime propagation = latency_->Latency(from, to);
  ++stats_.messages;
  stats_.payload_units += payload;
  const bool from_server = IsServerSite(from);
  const bool to_server = IsServerSite(to);
  if (from_server && to_server) {
    ++stats_.server_to_server;
  } else if (from_server) {
    ++stats_.server_to_client;
  } else if (to_server) {
    ++stats_.client_to_server;
  } else {
    ++stats_.client_to_client;
  }

  const SimTime now = simulator_->Now();
  if (link_ == nullptr) {
    if (tracing_) {
      TraceRecord record;
      record.send_time = now;
      record.deliver_time = now + propagation;
      record.from = from;
      record.to = to;
      record.label = label;
      record.payload = payload;
      record.tx_start = now;
      record.rx_queue_entry = now + propagation;
      trace_.push_back(std::move(record));
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kMsgSend;
      event.site = from;
      event.peer = to;
      event.payload = static_cast<int64_t>(payload);
      event.label = label;
      tracer_->Emit(std::move(event));
    }
    DeliveryInfo info;
    info.active = true;
    info.send_time = now;
    info.tx_start = now;
    info.rx_queue_entry = now + propagation;
    info.deliver_time = now + propagation;
    info.from = from;
    info.to = to;
    info.payload = payload;
    simulator_->Schedule(propagation,
                         [this, info, label = std::move(label),
                          deliver = std::move(on_deliver)] {
                           RunDelivery(info, label, deliver);
                         });
    return;
  }

  // Link model: FIFO through the sender's uplink now, then propagation,
  // then FIFO through the receiver's downlink when the first bit arrives
  // (a second event, so downlink order is true arrival order).
  const SimTime service = link_->TransmissionDelay(payload);
  const SimTime departure = link_->AdmitUplink(from, payload, now);
  const SimTime tx_start = departure - service;
  const SimTime sender_delay = tx_start - now;
  stats_.sender_queue_delay.Add(static_cast<double>(sender_delay));
  stats_.transmission_ticks += static_cast<uint64_t>(service);
  const SimTime first_bit_arrival = tx_start + propagation;

  size_t trace_index = trace_.size();
  if (tracing_) {
    TraceRecord record;
    record.send_time = now;
    record.deliver_time = first_bit_arrival + service;  // patched on arrival
    record.from = from;
    record.to = to;
    record.label = label;
    record.payload = payload;
    record.tx_start = tx_start;
    record.rx_queue_entry = first_bit_arrival;
    trace_.push_back(std::move(record));
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kMsgSend;
    event.site = from;
    event.peer = to;
    event.payload = static_cast<int64_t>(payload);
    event.label = label;
    event.d0 = sender_delay;
    event.d1 = service;
    tracer_->Emit(std::move(event));
  }

  simulator_->ScheduleAt(
      first_bit_arrival,
      [this, from, to, payload, service, sender_delay, trace_index,
       send_time = now, tx_start, label = std::move(label),
       deliver = std::move(on_deliver), traced = tracing_]() mutable {
        const SimTime arrival = simulator_->Now();
        const SimTime deliver_time = link_->AdmitDownlink(to, payload, arrival);
        const SimTime receiver_delay = deliver_time - service - arrival;
        stats_.receiver_queue_delay.Add(static_cast<double>(receiver_delay));
        queue_delay_hist_.Add(
            static_cast<double>(sender_delay + receiver_delay));
        if (traced && trace_index < trace_.size()) {
          trace_[trace_index].deliver_time = deliver_time;
        }
        DeliveryInfo info;
        info.active = true;
        info.send_time = send_time;
        info.tx_start = tx_start;
        info.rx_queue_entry = arrival;
        info.deliver_time = deliver_time;
        info.from = from;
        info.to = to;
        info.payload = payload;
        simulator_->ScheduleAt(deliver_time,
                               [this, info, label = std::move(label),
                                deliver = std::move(deliver)] {
                                 RunDelivery(info, label, deliver);
                               });
      });
}

}  // namespace gtpl::net
