#include "net/link_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "rng/rng.h"

namespace gtpl::net {

LinkModel::LinkModel(const LinkConfig& config) : config_(config) {
  GTPL_CHECK_GE(config.bandwidth, 0.0);
  GTPL_CHECK_GE(config.cross_traffic_load, 0.0);
  GTPL_CHECK_LT(config.cross_traffic_load, 1.0);
  if (enabled() && config_.nic_queue && config_.cross_traffic_load > 0.0) {
    bg_service_ = TransmissionDelay(kCrossTrafficFramePayload);
    if (bg_service_ > 0) {
      // Frame inter-arrival so that frames consume `load` of the capacity;
      // load < 1 guarantees service < period (background alone never
      // saturates a NIC, so the drain loop always converges).
      bg_period_ = static_cast<SimTime>(std::llround(
          static_cast<double>(bg_service_) / config_.cross_traffic_load));
      bg_period_ = std::max(bg_period_, bg_service_ + 1);
    }
  }
}

SimTime LinkModel::TransmissionDelay(uint64_t payload) const {
  if (!enabled() || payload == 0) return 0;
  return static_cast<SimTime>(
      std::llround(static_cast<double>(payload) / config_.bandwidth));
}

LinkModel::Nic& LinkModel::NicOf(std::unordered_map<SiteId, Nic>& side,
                                 SiteId site, uint64_t phase_salt) {
  auto [it, inserted] = side.try_emplace(site);
  if (inserted && bg_period_ > 0) {
    // Deterministic per-NIC phase offset so the periodic background streams
    // of different NICs are not lock-stepped. Dedicated SplitMix64-derived
    // stream: depends only on (seed, site, direction), never on how many
    // random numbers anything else drew.
    const uint64_t hash = rng::SplitMix64(
        config_.seed +
        0x632BE59BD9B4E019ULL *
            (static_cast<uint64_t>(site) * 2 + phase_salt + 1));
    it->second.bg_next =
        static_cast<SimTime>(hash % static_cast<uint64_t>(bg_period_));
  }
  return it->second;
}

void LinkModel::DrainBackground(Nic& nic, SimTime now) {
  if (bg_period_ <= 0) return;
  while (nic.bg_next <= now) {
    SimTime batch;
    if (nic.free_at <= nic.bg_next) {
      // NIC idle when the pending frames arrive; service < period, so each
      // frame completes before the next shows up.
      batch = (now - nic.bg_next) / bg_period_ + 1;
      nic.free_at = nic.bg_next + (batch - 1) * bg_period_ + bg_service_;
    } else {
      // NIC busy past the next frame's arrival: frames arriving before it
      // frees (and before `now`) queue back to back.
      const SimTime bound = std::min(now, nic.free_at);
      batch = (bound - nic.bg_next) / bg_period_ + 1;
      nic.free_at += batch * bg_service_;
    }
    nic.bg_next += batch * bg_period_;
    nic.busy_ticks += batch * bg_service_;
  }
}

SimTime LinkModel::Admit(Nic& nic, SimTime service, SimTime now) {
  DrainBackground(nic, now);
  const SimTime start = std::max(now, nic.free_at);
  nic.free_at = start + service;
  nic.busy_ticks += service;
  return start;
}

SimTime LinkModel::AdmitUplink(SiteId from, uint64_t payload, SimTime now) {
  GTPL_CHECK(enabled());
  const SimTime service = TransmissionDelay(payload);
  if (!config_.nic_queue) return now + service;
  return Admit(NicOf(uplinks_, from, /*phase_salt=*/0), service, now) +
         service;
}

SimTime LinkModel::AdmitDownlink(SiteId to, uint64_t payload, SimTime now) {
  GTPL_CHECK(enabled());
  const SimTime service = TransmissionDelay(payload);
  if (!config_.nic_queue) return now + service;
  return Admit(NicOf(downlinks_, to, /*phase_salt=*/1), service, now) +
         service;
}

SimTime LinkModel::MaxNicBusyTicks() const {
  SimTime max_busy = 0;
  for (const auto& [site, nic] : uplinks_) {
    max_busy = std::max(max_busy, nic.busy_ticks);
  }
  for (const auto& [site, nic] : downlinks_) {
    max_busy = std::max(max_busy, nic.busy_ticks);
  }
  return max_busy;
}

SimTime LinkModel::MaxNicBacklog(SimTime now) const {
  SimTime max_backlog = 0;
  for (const auto& [site, nic] : uplinks_) {
    max_backlog = std::max(max_backlog, nic.free_at - now);
  }
  for (const auto& [site, nic] : downlinks_) {
    max_backlog = std::max(max_backlog, nic.free_at - now);
  }
  return max_backlog;
}

double LinkModel::MaxUtilization(SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(MaxNicBusyTicks()) /
         static_cast<double>(horizon);
}

}  // namespace gtpl::net
