#include "cc/occ.h"

#include <utility>

#include "common/check.h"

namespace gtpl::cc {

using proto::ProtocolEvent;
using proto::ProtocolEventKind;
using proto::RunResult;
using proto::SimConfig;

OccEngine::OccEngine(const SimConfig& config)
    : ShardedEngineBase(config),
      reserved_(static_cast<size_t>(config.num_servers)),
      prepared_(static_cast<size_t>(config.num_servers)) {}

// ---------------------------------------------------------------------------
// Read phase: one lock-free request/data round per operation
// ---------------------------------------------------------------------------

void OccEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  const int32_t shard = ShardOf(op.item);
  network().Send(site, ServerSiteOf(shard), "read-request",
                 [this, shard, txn, site, op] {
                   OnRead(shard, txn, site, op.item, op.mode);
                 });
}

void OccEngine::OnRead(int32_t shard, TxnId txn, SiteId client_site,
                       ItemId item, LockMode mode) {
  (void)client_site;
  NoteRequestAtServer(txn, item, mode, shard);
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;
  const Version version = store().VersionOf(item);
  network().Send(
      ServerSiteOf(shard), run->site(), "data",
      [this, txn, item, version] {
        TxnRun* target = FindRun(txn);
        if (target == nullptr || target->finished || target->doomed) {
          return;
        }
        GTPL_CHECK_EQ(target->op().item, item);
        OpGranted(*target, version);
      },
      net::kControlPayload + net::kDataPayload);
}

// ---------------------------------------------------------------------------
// Commit: backward validation at the owning server(s)
// ---------------------------------------------------------------------------

void OccEngine::StartCommit(TxnRun& run) {
  GTPL_CHECK(!run.finished);
  GTPL_CHECK(!run.doomed);
  const TxnId txn = run.id;
  std::vector<int32_t> participants = ParticipantsOf(run);
  if (participants.size() <= 1) {
    GTPL_CHECK_EQ(participants.size(), 1u);
    SendValidate(participants[0], run, /*multi=*/false);
    return;
  }
  // Phase one, as in ShardedEngineBase::StartCommit: the coordinator
  // (client) forces its prepare record, then the validates fan out.
  ClientState& client = ClientAt(run.client_index);
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, txn,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  VoteCtx ctx;
  ctx.votes_pending = static_cast<int32_t>(participants.size());
  ctx.prepares_pending = static_cast<int32_t>(participants.size());
  ctx.participants = participants;
  votes_[txn] = std::move(ctx);
  auto send_validates = [this, txn, participants = std::move(participants)] {
    TxnRun* current = FindRun(txn);
    if (current == nullptr || current->finished || current->doomed) {
      votes_.erase(txn);
      return;
    }
    votes_.at(txn).sent_time = simulator().Now();
    for (int32_t shard : participants) {
      SendValidate(shard, *current, /*multi=*/true);
    }
  };
  if (force_delay > 0) {
    simulator().Schedule(force_delay, std::move(send_validates));
  } else {
    send_validates();
  }
}

void OccEngine::SendValidate(int32_t shard, TxnRun& run, bool multi) {
  std::vector<proto::OpRecord> slice;
  uint64_t writes = 0;
  for (const proto::OpRecord& record : run.records) {
    if (ShardOf(record.item) != shard) continue;
    slice.push_back(record);
    writes += record.mode == LockMode::kExclusive ? 1 : 0;
  }
  // The validate ships the shard's read versions (control) plus the write
  // values, so the later decision message can stay control-only.
  const uint64_t payload = net::kControlPayload + net::kDataPayload * writes;
  network().Send(
      run.site(), ServerSiteOf(shard), "validate",
      [this, shard, txn = run.id, site = run.site(),
       slice = std::move(slice), multi] {
        OnValidate(shard, txn, site, std::move(slice), multi);
      },
      payload);
}

void OccEngine::OnValidate(int32_t shard, TxnId txn, SiteId client_site,
                           std::vector<proto::OpRecord> records, bool multi) {
  if (multi) {
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kPrepareArrived;
      event.txn = txn;
      event.server = shard;
      RecordEvent(std::move(event));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kPrepare;
      event.txn = txn;
      event.shard = shard;
      event.site = ServerSiteOf(shard);
      tracer().Emit(std::move(event));
    }
    auto vote_it = votes_.find(txn);
    if (vote_it != votes_.end() &&
        --vote_it->second.prepares_pending == 0) {
      // Last validate of the fan-out landed: close the prepare sub-span.
      TxnRun* owner = FindRun(txn);
      if (owner != nullptr && !owner->finished) {
        owner->span.commit_prepare =
            simulator().Now() - vote_it->second.sent_time;
      }
    }
  }
  TxnRun* run = FindRun(txn);
  const bool alive = run != nullptr && !run->finished && !run->doomed;
  const bool ok = alive && ValidateOnShard(shard, records);
  if (!multi) {
    if (!ok) {
      if (alive) {
        ++validation_failures_;
        ServerAbortDecision(txn, run->site(), ServerSiteOf(shard));
      }
      return;
    }
    // Validate + install are atomic at the server: the validation instant
    // is the serialization point, then the commit-ok closes the round.
    InstallOnShard(txn, records);
    network().Send(ServerSiteOf(shard), client_site, "commit-ok",
                   [this, txn] {
                     TxnRun* target = FindRun(txn);
                     if (target == nullptr || target->finished ||
                         target->doomed) {
                       return;
                     }
                     EngineBase::StartCommit(*target);
                   });
    return;
  }
  if (ok) {
    Reserve(shard, txn, records);
    prepared_[static_cast<size_t>(shard)][txn] = std::move(records);
    // The participant forces its own prepare record before voting yes.
    const int64_t lsn = server_wal().Append(db::LogRecordKind::kPrepare, txn,
                                            kInvalidItem, 0);
    server_wal().Force(lsn);
  } else if (alive) {
    ++validation_failures_;
    ServerAbortDecision(txn, run->site(), ServerSiteOf(shard));
  }
  // client_site was captured at send time: the vote must be deliverable
  // even when the run is already gone (it is dropped at tally time).
  network().Send(ServerSiteOf(shard), client_site, "vote",
                 [this, txn, shard, ok] { OnOccVote(txn, shard, ok); });
}

void OccEngine::OnOccVote(TxnId txn, int32_t shard, bool yes) {
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kVoteArrived;
    event.txn = txn;
    event.server = shard;
    event.flag = yes;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kVote;
    event.txn = txn;
    event.shard = shard;
    event.flag = yes;
    tracer().Emit(std::move(event));
  }
  auto it = votes_.find(txn);
  if (it == votes_.end()) return;
  VoteCtx& ctx = it->second;
  ctx.all_yes = ctx.all_yes && yes;
  if (--ctx.votes_pending > 0) return;
  const bool all_yes = ctx.all_yes;
  const SimTime sent_time = ctx.sent_time;
  const std::vector<int32_t> participants = std::move(ctx.participants);
  votes_.erase(it);
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished || run->doomed) return;
  if (!all_yes) {
    // A no vote came with the voting shard's abort decision, which doomed
    // the run instantly — unreachable in practice; kept as a safety net.
    return;
  }
  run->span.commit_vote =
      simulator().Now() - sent_time - run->span.commit_prepare;
  run->commit_flights = 2;
  if (measuring()) {
    ++cross_server_commits_;
    commit_participants_.Add(static_cast<double>(participants.size()));
    if (config().commit_path != proto::CommitPath::kClassic) {
      ++commit_path_fallbacks_;
    }
  }
  const SiteId from = run->site();
  for (int32_t participant : participants) {
    network().Send(
        from, ServerSiteOf(participant), "commit-decision",
        [this, participant, txn] { OnOccDecision(participant, txn); });
  }
  EngineBase::StartCommit(*run);
}

void OccEngine::OnOccDecision(int32_t shard, TxnId txn) {
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kCommitDecisionArrived;
    event.txn = txn;
    event.server = shard;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kDecide;
    event.txn = txn;
    event.shard = shard;
    event.site = ServerSiteOf(shard);
    tracer().Emit(std::move(event));
  }
  server_wal().Append(db::LogRecordKind::kCommit, txn, kInvalidItem, 0);
  auto& shard_prepared = prepared_[static_cast<size_t>(shard)];
  auto it = shard_prepared.find(txn);
  GTPL_CHECK(it != shard_prepared.end()) << "decision for unprepared txn";
  const std::vector<proto::OpRecord> records = std::move(it->second);
  shard_prepared.erase(it);
  InstallOnShard(txn, records);
  ClearReservations(shard, records);
}

// ---------------------------------------------------------------------------
// Validation helpers
// ---------------------------------------------------------------------------

bool OccEngine::ValidateOnShard(
    int32_t shard, const std::vector<proto::OpRecord>& records) {
  const auto& slots = reserved_[static_cast<size_t>(shard)];
  for (const proto::OpRecord& record : records) {
    // Backward validation: the read version must still be the committed one.
    if (store().VersionOf(record.item) != record.version_read) {
      return false;
    }
    // And no concurrently prepared transaction may hold a conflicting
    // reservation (its install is already promised).
    auto it = slots.find(record.item);
    if (it == slots.end()) continue;
    const Slot& slot = it->second;
    if (slot.writer != kInvalidTxn) return false;
    if (slot.readers > 0 && record.mode == LockMode::kExclusive) return false;
  }
  return true;
}

void OccEngine::Reserve(int32_t shard, TxnId txn,
                        const std::vector<proto::OpRecord>& records) {
  auto& slots = reserved_[static_cast<size_t>(shard)];
  for (const proto::OpRecord& record : records) {
    Slot& slot = slots[record.item];
    if (record.mode == LockMode::kExclusive) {
      GTPL_CHECK_EQ(slot.writer, kInvalidTxn);
      slot.writer = txn;
    } else {
      ++slot.readers;
    }
  }
}

void OccEngine::ClearReservations(
    int32_t shard, const std::vector<proto::OpRecord>& records) {
  auto& slots = reserved_[static_cast<size_t>(shard)];
  for (const proto::OpRecord& record : records) {
    auto it = slots.find(record.item);
    GTPL_CHECK(it != slots.end());
    Slot& slot = it->second;
    if (record.mode == LockMode::kExclusive) {
      slot.writer = kInvalidTxn;
    } else {
      --slot.readers;
    }
    if (slot.readers == 0 && slot.writer == kInvalidTxn) slots.erase(it);
  }
}

void OccEngine::InstallOnShard(TxnId txn,
                               const std::vector<proto::OpRecord>& records) {
  for (const proto::OpRecord& record : records) {
    if (record.mode != LockMode::kExclusive) continue;
    store().Install(record.item, record.version_written);
    const int64_t lsn = server_wal().Append(
        db::LogRecordKind::kInstall, txn, record.item, record.version_written);
    server_wal().Force(lsn);
  }
  MaybeGcClientLogs();
}

// ---------------------------------------------------------------------------
// Client-side hooks
// ---------------------------------------------------------------------------

void OccEngine::DoCommit(TxnRun& run) { (void)run; }

void OccEngine::OnClientAborted(TxnRun& run) {
  votes_.erase(run.id);
  std::vector<int32_t> participants = ParticipantsOf(run);
  if (participants.size() <= 1) return;  // nothing was reserved
  // Shards that voted yes before the failing shard doomed the transaction
  // still hold reservations; release them. Idempotent: a shard that never
  // prepared this transaction ignores the message.
  for (int32_t shard : participants) {
    network().Send(run.site(), ServerSiteOf(shard), "occ-abort",
                   [this, shard, txn = run.id] {
                     auto& shard_prepared =
                         prepared_[static_cast<size_t>(shard)];
                     auto it = shard_prepared.find(txn);
                     if (it == shard_prepared.end()) return;
                     ClearReservations(shard, it->second);
                     shard_prepared.erase(it);
                   });
  }
}

bool OccEngine::ShardVote(int32_t shard, TxnId txn, bool speculative) {
  (void)shard;
  (void)txn;
  (void)speculative;
  GTPL_CHECK(false) << "OCC overrides StartCommit; base 2PC is unreachable";
  return false;
}

void OccEngine::OnCommitDecision(int32_t shard, TxnId txn) {
  (void)shard;
  (void)txn;
  GTPL_CHECK(false) << "OCC overrides StartCommit; base 2PC is unreachable";
}

void OccEngine::FillProtocolMetrics(RunResult* result) {
  ShardedEngineBase::FillProtocolMetrics(result);
}

}  // namespace gtpl::cc
