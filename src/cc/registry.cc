#include "cc/registry.h"

#include <utility>

#include "cc/lock_engine.h"
#include "cc/occ.h"
#include "cc/policy.h"
#include "common/check.h"
#include "protocols/caching.h"
#include "protocols/g2pl.h"
#include "protocols/parsim.h"
#include "protocols/s2pl.h"
#include "protocols/sharded.h"

namespace gtpl::cc {
namespace {

using proto::EngineBase;
using proto::Protocol;
using proto::SimConfig;

std::unique_ptr<EngineBase> MakeS2pl(const SimConfig& config) {
  if (config.lease.mode != lease::LeaseMode::kNone) {
    // Sticky leases live in the generic lock engine; with the detect
    // policy it is the s-2PL engine bit for bit (the policy-equivalence
    // suite pins this), so --lease only ever adds the lease layer.
    return std::make_unique<LockCcEngine>(config, MakeDetectPolicy());
  }
  return std::make_unique<proto::S2plEngine>(config);
}

std::unique_ptr<EngineBase> MakeG2pl(const SimConfig& config) {
  if (config.num_servers > 1) {
    return std::make_unique<proto::ShardedG2plEngine>(config);
  }
  return std::make_unique<proto::G2plEngine>(config);
}

std::unique_ptr<EngineBase> MakeCaching(const SimConfig& config) {
  return proto::MakeCachingEngine(config);
}

std::unique_ptr<EngineBase> MakeNoWait(const SimConfig& config) {
  return std::make_unique<LockCcEngine>(config, MakeNoWaitPolicy());
}

std::unique_ptr<EngineBase> MakeWaitDie(const SimConfig& config) {
  return std::make_unique<LockCcEngine>(config, MakeWaitDiePolicy());
}

std::unique_ptr<EngineBase> MakeWoundWait(const SimConfig& config) {
  return std::make_unique<LockCcEngine>(config, MakeWoundWaitPolicy());
}

std::unique_ptr<EngineBase> MakeOcc(const SimConfig& config) {
  return std::make_unique<OccEngine>(config);
}

std::unique_ptr<EngineBase> MakeOrdered(const SimConfig& config) {
  LockEngineTraits traits;
  traits.release_at_prepare = true;
  return std::make_unique<LockCcEngine>(config, MakeOrderedPolicy(), traits);
}

}  // namespace

const std::vector<EngineInfo>& Engines() {
  static const std::vector<EngineInfo>* engines = new std::vector<EngineInfo>{
      {"s2pl", "strict 2PL, waits-for deadlock detection (paper baseline)",
       Protocol::kS2pl, /*sharded=*/true, MakeS2pl},
      {"g2pl", "group 2PL with forward lists (paper contribution)",
       Protocol::kG2pl, /*sharded=*/true, MakeG2pl},
      {"c2pl", "caching 2PL: locks+data cached across txns",
       Protocol::kC2pl, /*sharded=*/true, MakeCaching},
      {"cbl", "callback locking", Protocol::kCbl, /*sharded=*/true,
       MakeCaching},
      {"o2pl", "optimistic 2PL (deferred write intentions)",
       Protocol::kO2pl, /*sharded=*/true, MakeCaching},
      {"nowait", "no-wait 2PL: blocked requests abort the requester",
       Protocol::kNoWait, /*sharded=*/true, MakeNoWait},
      {"waitdie", "wait-die 2PL: wait for younger only, die on older",
       Protocol::kWaitDie, /*sharded=*/true, MakeWaitDie},
      {"woundwait", "wound-wait 2PL: wound younger blockers, wait on older",
       Protocol::kWoundWait, /*sharded=*/true, MakeWoundWait},
      {"occ", "optimistic CC, backward validation at commit",
       Protocol::kOcc, /*sharded=*/true, MakeOcc},
      {"ordered", "ordered 2PL: in-order acquisition, release at prepare",
       Protocol::kOrdered, /*sharded=*/true, MakeOrdered},
  };
  return *engines;
}

const EngineInfo* FindEngine(const std::string& name) {
  for (const EngineInfo& info : Engines()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const EngineInfo& EngineFor(proto::Protocol protocol) {
  for (const EngineInfo& info : Engines()) {
    if (info.protocol == protocol) return info;
  }
  GTPL_CHECK(false) << "protocol without a registered engine";
  return Engines().front();
}

std::string EngineNames() {
  std::string names;
  for (const EngineInfo& info : Engines()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

Status ParseEngineName(const std::string& name, proto::Protocol* protocol) {
  const EngineInfo* info = FindEngine(name);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown engine '" + name +
                                   "' (registered: " + EngineNames() + ")");
  }
  *protocol = info->protocol;
  return Status::Ok();
}

}  // namespace gtpl::cc

namespace gtpl::proto {

RunResult RunSimulation(const SimConfig& config) {
  GTPL_CHECK(config.Validate().ok()) << config.Validate().ToString();
  if (config.sim_threads > 1) {
    // The conservative per-shard parallel engine (--sim-threads=N,
    // DESIGN.md §15); sim_threads == 1 keeps the legacy serial engines
    // below bit-identical.
    return RunParallelSimulation(config);
  }
  return cc::EngineFor(config.protocol).make(config)->Run();
}

std::unique_ptr<EngineBase> MakeShardedEngine(const SimConfig& config) {
  GTPL_CHECK_EQ(config.sim_threads, 1)
      << "serial engine factory called with sim_threads > 1";
  if (config.protocol == Protocol::kG2pl) {
    return std::make_unique<ShardedG2plEngine>(config);
  }
  const cc::EngineInfo& info = cc::EngineFor(config.protocol);
  GTPL_CHECK(info.sharded) << info.name << " does not support sharding";
  return info.make(config);
}

}  // namespace gtpl::proto
