#include "cc/lock_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace gtpl::cc {

using proto::RunResult;
using proto::SimConfig;

LockCcEngine::LockCcEngine(const SimConfig& config,
                           std::unique_ptr<ConflictPolicy> policy,
                           LockEngineTraits traits)
    : ShardedEngineBase(config),
      policy_(std::move(policy)),
      traits_(traits),
      sticky_(config.lease.mode == lease::LeaseMode::kSticky) {
  lock_tables_.reserve(static_cast<size_t>(config.num_servers));
  for (int32_t shard = 0; shard < config.num_servers; ++shard) {
    lock_tables_.push_back(
        std::make_unique<db::LockTable>(config.workload.num_items));
  }
  if (sticky_) {
    lease_caches_.reserve(static_cast<size_t>(config.num_clients));
    for (int32_t i = 0; i < config.num_clients; ++i) {
      lease_caches_.emplace_back(config.lease.ttl, config.lease.max_held);
    }
  }
}

void LockCcEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  if (sticky_) {
    // Lease hit: a sufficient unexpired lease serves the acquisition with
    // zero network flights; the cached version is coherent because any
    // conflicting remote access would have revoked the lease first.
    lease::LeaseCache& cache =
        lease_caches_[static_cast<size_t>(run.client_index)];
    Version version = 0;
    if (cache.Hit(op.item, op.mode, simulator().Now(), &version)) {
      ++lease_hits_;
      cache.Pin(op.item, txn);
      OpGranted(run, version);
      return;
    }
  }
  const int32_t shard = ShardOf(op.item);
  network().Send(site, ServerSiteOf(shard), "lock-request",
                 [this, shard, txn, site, op] {
                   ServerOnRequest(shard, txn, site, op.item, op.mode);
                 });
}

void LockCcEngine::ServerOnRequest(int32_t shard, TxnId txn,
                                   SiteId client_site, ItemId item,
                                   LockMode mode) {
  NoteRequestAtServer(txn, item, mode, shard);
  if (server_aborted_.count(txn) > 0) return;  // stale request of a victim
  if (sticky_) {
    LeaseServerOnRequest(shard, txn, client_site, item, mode);
    return;
  }
  db::LockTable& table = *lock_tables_[static_cast<size_t>(shard)];
  const db::LockResult outcome = table.Request(txn, item, mode);
  if (outcome == db::LockResult::kGranted) {
    SendGrant(shard, txn, item, mode);
    return;
  }
  // Blocked: the policy resolves the conflict on the *global* coordination
  // plane (shared across shards, like the old waits-for graph), so
  // cross-shard conflicts are handled exactly like local ones. The blocker
  // set includes conflicting holders and conflicting earlier waiters.
  current_shard_ = shard;
  policy_->OnBlocked(txn, item, table.Blockers(txn, item), *this);
}

void LockCcEngine::SendGrant(int32_t shard, TxnId txn, ItemId item,
                             LockMode mode) {
  (void)mode;
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;  // finished in the meantime (nothing to ship)
  const Version version = store().VersionOf(item);
  network().Send(
      ServerSiteOf(shard), run->site(), "grant+data",
      [this, txn, item, version] {
        TxnRun* target = FindRun(txn);
        if (target == nullptr || target->finished || target->doomed) {
          return;
        }
        GTPL_CHECK_EQ(target->op().item, item);
        OpGranted(*target, version);
      },
      net::kControlPayload + net::kDataPayload);
}

void LockCcEngine::AbortTxn(TxnId victim) {
  GTPL_CHECK(server_aborted_.insert(victim).second);
  ++policy_aborts_;
  policy_->OnTxnFinished(victim);
  // The victim's locks are dropped on every shard at decision time (the
  // instantaneous coordination plane; see the determinism contract).
  if (sticky_) {
    // The victim leaves every lease queue; its *pins* are released by the
    // client on abort-notice arrival (FlushLeasePins), since the leases
    // themselves are site-owned and survive the transaction.
    for (ItemId item : lease_table_.RemoveTxn(victim)) {
      PromoteLeases(ShardOf(item), item);
    }
  } else {
    for (int32_t shard = 0; shard < num_servers(); ++shard) {
      lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
          victim, [this, shard](TxnId txn, ItemId item, LockMode mode) {
            policy_->OnWaiterGranted(txn);
            SendGrant(shard, txn, item, mode);
          });
    }
  }
  TxnRun* run = FindRun(victim);
  GTPL_CHECK(run != nullptr) << "policy victim is not an active txn";
  ServerAbortDecision(victim, run->site(), ServerSiteOf(current_shard_));
}

ItemId LockCcEngine::MaxHeldItem(TxnId txn) const {
  ItemId held = kInvalidItem;
  if (sticky_) {
    // The txn "holds" exactly the leases it has pinned at its own site.
    for (const lease::LeaseCache& cache : lease_caches_) {
      for (ItemId item : cache.PinnedItems(txn)) {
        held = std::max(held, item);
      }
    }
    return held;
  }
  for (const auto& table : lock_tables_) {
    for (ItemId item : table->HeldItems(txn)) {
      held = std::max(held, item);
    }
  }
  return held;
}

bool LockCcEngine::Woundable(TxnId txn) {
  if (server_aborted_.count(txn) > 0) return false;  // already doomed
  TxnRun* run = FindRun(txn);
  return run != nullptr && !run->finished && !run->doomed && !run->committing;
}

void LockCcEngine::DoCommit(TxnRun& run) {
  if (sticky_) {
    DoCommitSticky(run);
    return;
  }
  // One release message per participant shard, carrying that shard's
  // updates (these releases are the effective phase two of a cross-server
  // commit; single-shard transactions send exactly the one message the
  // single-server engine sends). Shards that already released at prepare
  // time (release_at_prepare) are skipped — they have nothing left to do.
  std::vector<std::vector<Update>> updates_by(
      static_cast<size_t>(num_servers()));
  std::vector<bool> touched(static_cast<size_t>(num_servers()), false);
  for (const proto::OpRecord& record : run.records) {
    const size_t shard = static_cast<size_t>(ShardOf(record.item));
    touched[shard] = true;
    if (record.mode == LockMode::kExclusive) {
      updates_by[shard].push_back(Update{record.item, record.version_written});
    }
  }
  const TxnId txn = run.id;
  auto early = early_released_.find(txn);
  if (early != early_released_.end()) {
    for (int32_t shard : early->second) {
      touched[static_cast<size_t>(shard)] = false;
    }
    early_released_.erase(early);
  }
  int32_t participants = 0;
  for (const bool t : touched) participants += t ? 1 : 0;
  if (participants == 0) {
    // Every shard released at prepare; the txn already left the server
    // plane, and its installs are all permanent — client log can truncate.
    policy_->OnTxnFinished(txn);
    MaybeGcClientLogs();
    return;
  }
  pending_releases_[txn] = participants;
  for (int32_t shard = 0; shard < num_servers(); ++shard) {
    if (!touched[static_cast<size_t>(shard)]) continue;
    std::vector<Update>& updates = updates_by[static_cast<size_t>(shard)];
    const uint64_t payload =
        net::kControlPayload + net::kDataPayload * updates.size();
    network().Send(
        run.site(), ServerSiteOf(shard), "release",
        [this, shard, txn, updates = std::move(updates)] {
          ServerOnRelease(shard, txn, updates);
        },
        payload);
  }
}

void LockCcEngine::ServerOnRelease(int32_t shard, TxnId txn,
                                   std::vector<Update> updates) {
  GTPL_CHECK_EQ(server_aborted_.count(txn), 0u)
      << "a doomed transaction committed";
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ServerSiteOf(shard);
    event.shard = shard;
    event.payload = static_cast<int64_t>(updates.size());
    tracer().Emit(std::move(event));
  }
  for (const Update& update : updates) {
    store().Install(update.item, update.version);
    const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall, txn,
                                            update.item, update.version);
    server_wal().Force(lsn);
  }
  MaybeGcClientLogs();
  // The transaction leaves the policy's books only once its last shard
  // released (it still holds locks elsewhere until then).
  auto pending = pending_releases_.find(txn);
  GTPL_CHECK(pending != pending_releases_.end());
  if (--pending->second == 0) {
    pending_releases_.erase(pending);
    policy_->OnTxnFinished(txn);
  }
  if (sticky_) {
    // No lock table to promote; instead the fresh installs may satisfy
    // version fences of lease releases parked behind them.
    for (const Update& update : updates) {
      ServerInstalledItem(shard, update.item);
    }
    return;
  }
  lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        policy_->OnWaiterGranted(granted);
        SendGrant(shard, granted, item, mode);
      });
}

void LockCcEngine::ReleaseShardEarly(int32_t shard, TxnId txn) {
  TxnRun* run = FindRun(txn);
  GTPL_CHECK(run != nullptr) << "prepare for a txn without a run";
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ServerSiteOf(shard);
    event.shard = shard;
    event.label = "early-release";
    tracer().Emit(std::move(event));
  }
  for (const proto::OpRecord& record : run->records) {
    if (ShardOf(record.item) != shard) continue;
    if (record.mode != LockMode::kExclusive) continue;
    store().Install(record.item, record.version_written);
    const int64_t lsn = server_wal().Append(
        db::LogRecordKind::kInstall, txn, record.item, record.version_written);
    server_wal().Force(lsn);
    if (sticky_) ServerInstalledItem(shard, record.item);
  }
  early_released_[txn].push_back(shard);
  if (sticky_) return;  // the leases outlive the txn; nothing to promote
  lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        policy_->OnWaiterGranted(granted);
        SendGrant(shard, granted, item, mode);
      });
}

void LockCcEngine::OnClientAborted(TxnRun& run) {
  // Server state was already cleaned on every shard at decision time; the
  // client still has to drop its pins so deferred revokes can drain.
  if (sticky_) FlushLeasePins(run);
}

bool LockCcEngine::ShardVote(int32_t shard, TxnId txn, bool speculative) {
  if (server_aborted_.count(txn) > 0) return false;  // safety net
  // A non-speculative yes vote is a commit promise (abort decisions only
  // target blocked requesters, and this txn is at its commit point): the
  // ordered-release variant cashes it in immediately. A speculative vote
  // (kEarly) only means "not aborted so far" — no release on its strength.
  if (traits_.release_at_prepare && !speculative) {
    ReleaseShardEarly(shard, txn);
  }
  return true;
}

void LockCcEngine::OnCommitDecision(int32_t shard, TxnId txn) {
  // Client-coordinated commits: the per-shard release messages (DoCommit)
  // carry the actual releases and updates; the decision only logs the
  // outcome. A remote coordinator's decision (kCoord), though, reaches the
  // shard ahead of the client's ack-delayed DoCommit — cash it in now for
  // the lock-hold reduction, unless the shard already released at prepare
  // time or the client's commit beat this message.
  if (!RemoteCoordinated(txn)) return;
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished) return;
  auto early = early_released_.find(txn);
  if (early != early_released_.end() &&
      std::find(early->second.begin(), early->second.end(), shard) !=
          early->second.end()) {
    return;
  }
  ReleaseShardEarly(shard, txn);
}

void LockCcEngine::FillProtocolMetrics(RunResult* result) {
  ShardedEngineBase::FillProtocolMetrics(result);
  result->lease_hits = lease_hits_;
  result->lease_revokes = lease_revokes_;
  result->lease_releases = lease_releases_;
}

void LockCcEngine::RegisterMetrics(obs::MetricsRegistry* metrics) {
  ShardedEngineBase::RegisterMetrics(metrics);
  // Per-shard lock-table occupancy; under sticky leases the lock tables sit
  // idle and the lease table/caches carry the contention state instead.
  for (int32_t s = 0; s < static_cast<int32_t>(lock_tables_.size()); ++s) {
    db::LockTable* table = lock_tables_[static_cast<size_t>(s)].get();
    metrics->Register("locks_held", s, [table] { return table->TotalHeld(); });
    metrics->Register("lock_waiters", s,
                      [table] { return table->TotalWaiters(); });
  }
  if (sticky_) {
    metrics->Register("leases_held", -1,
                      [this] { return lease_table_.TotalLeases(); });
    metrics->Register("lease_waiters", -1,
                      [this] { return lease_table_.TotalWaiters(); });
    metrics->Register("lease_cached", -1, [this] {
      int64_t cached = 0;
      for (const lease::LeaseCache& cache : lease_caches_) {
        cached += cache.Size();
      }
      return cached;
    });
  }
}

// --- sticky-lease machinery (DESIGN.md §14) ------------------------------

void LockCcEngine::DoCommitSticky(TxnRun& run) {
  lease::LeaseCache& cache =
      lease_caches_[static_cast<size_t>(run.client_index)];
  // The lease carries no data back: every committed write still ships to
  // its shard in the normal release/install message, so the server copy
  // stays authoritative for the next grant. The client cache's version is
  // bumped here so later local transactions read this site's own writes.
  // Read-only shards need no message at all — the read lease simply stays.
  std::vector<std::vector<Update>> updates_by(
      static_cast<size_t>(num_servers()));
  for (const proto::OpRecord& record : run.records) {
    if (record.mode != LockMode::kExclusive) continue;
    cache.UpdateVersion(record.item, record.version_written);
    updates_by[static_cast<size_t>(ShardOf(record.item))].push_back(
        Update{record.item, record.version_written});
  }
  const TxnId txn = run.id;
  auto early = early_released_.find(txn);
  if (early != early_released_.end()) {
    for (int32_t shard : early->second) {
      updates_by[static_cast<size_t>(shard)].clear();  // installed at prepare
    }
    early_released_.erase(early);
  }
  int32_t participants = 0;
  for (const auto& updates : updates_by) participants += updates.empty() ? 0 : 1;
  if (participants == 0) {
    policy_->OnTxnFinished(txn);
    MaybeGcClientLogs();
  } else {
    pending_releases_[txn] = participants;
    for (int32_t shard = 0; shard < num_servers(); ++shard) {
      std::vector<Update>& updates = updates_by[static_cast<size_t>(shard)];
      if (updates.empty()) continue;
      const uint64_t payload =
          net::kControlPayload + net::kDataPayload * updates.size();
      network().Send(
          run.site(), ServerSiteOf(shard), "release",
          [this, shard, txn, updates = std::move(updates)] {
            ServerOnRelease(shard, txn, updates);
          },
          payload);
    }
  }
  // Deferred revoke releases leave only now, *after* the installs: same-tick
  // FIFO delivery plus the server-side version fence guarantee the next
  // holder is granted the committed version, never a stale one.
  FlushLeasePins(run);
}

void LockCcEngine::LeaseServerOnRequest(int32_t shard, TxnId txn,
                                        SiteId client_site, ItemId item,
                                        LockMode mode) {
  lease::AdmitOutcome outcome =
      lease_table_.Admit(txn, client_site, item, mode, simulator().Now());
  if (outcome.granted) {
    EmitLeaseEvent(obs::EventKind::kLeaseGrant,
                   proto::ProtocolEventKind::kLeaseGranted, shard, txn,
                   client_site, item, mode == LockMode::kExclusive);
    SendLeaseGrant(shard, txn, item, mode, /*revoke_wait=*/0);
    return;
  }
  // Blocked behind holders and/or earlier waiters: fire the callback
  // revocations first (a marked revoke must always be sent, even if the
  // policy aborts the requester right after — the holders' replies are what
  // clears the revoke-outstanding marks), then let the policy resolve the
  // conflict exactly as it would for a lock-table block.
  SendLeaseRevokes(shard, item, outcome.revoke_sites, outcome.collector);
  if (server_aborted_.count(txn) > 0) return;  // wounded by its own revoke
  current_shard_ = shard;
  policy_->OnBlocked(txn, item, LeaseBlockers(txn, client_site, item, mode),
                     *this);
}

void LockCcEngine::SendLeaseGrant(int32_t shard, TxnId txn, ItemId item,
                                  LockMode mode, SimTime revoke_wait) {
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;  // finished in the meantime (nothing to ship)
  run->pending_revoke_wait = revoke_wait;
  const Version version = store().VersionOf(item);
  network().Send(
      ServerSiteOf(shard), run->site(), "grant+data",
      [this, txn, item, mode, version] {
        TxnRun* target = FindRun(txn);
        if (target == nullptr || target->finished || target->doomed) {
          return;
        }
        GTPL_CHECK_EQ(target->op().item, item);
        lease::LeaseCache& cache =
            lease_caches_[static_cast<size_t>(target->client_index)];
        for (ItemId evicted : cache.Install(item, mode, version,
                                            simulator().Now())) {
          const Version fence = cache.VersionOf(evicted);
          cache.Drop(evicted);
          SendLeaseRelease(target->site(), evicted, fence);
        }
        cache.Pin(item, txn);
        OpGranted(*target, version);
      },
      net::kControlPayload + net::kDataPayload);
}

void LockCcEngine::SendLeaseRevokes(int32_t shard, ItemId item,
                                    const std::vector<SiteId>& targets,
                                    TxnId collector) {
  for (SiteId target : targets) {
    ++lease_revokes_;
    EmitLeaseEvent(obs::EventKind::kLeaseRevoke,
                   proto::ProtocolEventKind::kLeaseRevoked, shard, collector,
                   target, item, /*exclusive=*/false);
    network().Send(ServerSiteOf(shard), target, "lease-revoke",
                   [this, shard, target, item, collector] {
                     ClientOnLeaseRevoke(shard, target, item, collector);
                   });
  }
}

void LockCcEngine::ClientOnLeaseRevoke(int32_t shard, SiteId site,
                                       ItemId item, TxnId collector) {
  lease::LeaseCache& cache = lease_caches_[static_cast<size_t>(site - 1)];
  if (!cache.Has(item)) {
    // Already evicted voluntarily; the release and this revoke crossed in
    // flight. Reply anyway so the server clears its revoke-outstanding
    // mark (Release at the server is idempotent).
    SendLeaseRelease(site, item, /*fence=*/0);
    return;
  }
  if (cache.MarkRevoked(item)) {
    // Unpinned: release immediately, fenced by the newest version this
    // site committed to the item.
    const Version fence = cache.VersionOf(item);
    cache.Drop(item);
    SendLeaseRelease(site, item, fence);
    return;
  }
  // Pinned: the release is deferred until the pinning transaction drains
  // (FlushLeasePins). The pin is a wait edge that did not exist when the
  // waiters blocked (the grant that set it may have still been in flight),
  // so re-post *every* current waiter with fresh blockers — not just the
  // collector stamped into the revoke, which may have aborted and been
  // replaced at the head of the queue since the revoke was sent.
  (void)collector;
  RefreshLeaseWaits(shard, item);
}

void LockCcEngine::SendLeaseRelease(SiteId site, ItemId item, Version fence) {
  const int32_t shard = ShardOf(item);
  network().Send(site, ServerSiteOf(shard), "lease-release",
                 [this, shard, site, item, fence] {
                   ServerOnLeaseRelease(shard, site, item, fence);
                 });
}

void LockCcEngine::ServerOnLeaseRelease(int32_t shard, SiteId site,
                                        ItemId item, Version fence) {
  // Version fence (the §14 ordering argument): a write-lease holder's
  // release must not take effect before its last committed install reached
  // this server — link jitter can reorder the two messages, and granting
  // the next holder off the pre-install store copy would hand out a stale
  // version. Park the release until the install lands.
  if (store().VersionOf(item) < fence) {
    fenced_releases_[item].push_back(FencedRelease{site, fence});
    return;
  }
  ApplyLeaseRelease(shard, site, item);
}

void LockCcEngine::ApplyLeaseRelease(int32_t shard, SiteId site, ItemId item) {
  if (!lease_table_.Release(site, item)) return;  // crossed with an earlier one
  ++lease_releases_;
  EmitLeaseEvent(obs::EventKind::kLeaseRelease,
                 proto::ProtocolEventKind::kLeaseReleased, shard, kInvalidTxn,
                 site, item, /*exclusive=*/false);
  PromoteLeases(shard, item);
}

void LockCcEngine::PromoteLeases(int32_t shard, ItemId item) {
  lease::PromoteOutcome out = lease_table_.Promote(item, simulator().Now());
  for (const lease::LeaseWaiter& waiter : out.granted) {
    policy_->OnWaiterGranted(waiter.txn);
    EmitLeaseEvent(obs::EventKind::kLeaseGrant,
                   proto::ProtocolEventKind::kLeaseGranted, shard, waiter.txn,
                   waiter.site, item,
                   waiter.mode == LockMode::kExclusive);
    SendLeaseGrant(shard, waiter.txn, item, waiter.mode,
                   simulator().Now() - waiter.enqueued);
  }
  SendLeaseRevokes(shard, item, out.revoke_sites, out.collector);
  RefreshLeaseWaits(shard, item);
}

void LockCcEngine::ServerInstalledItem(int32_t shard, ItemId item) {
  auto it = fenced_releases_.find(item);
  if (it == fenced_releases_.end()) return;
  std::vector<FencedRelease> parked = std::move(it->second);
  fenced_releases_.erase(it);
  std::vector<FencedRelease> still_parked;
  for (const FencedRelease& release : parked) {
    if (store().VersionOf(item) < release.fence) {
      still_parked.push_back(release);
    } else {
      ApplyLeaseRelease(shard, release.site, item);
    }
  }
  if (!still_parked.empty()) {
    fenced_releases_[item] = std::move(still_parked);
  }
}

std::vector<TxnId> LockCcEngine::LeaseBlockers(TxnId txn, SiteId site,
                                               ItemId item,
                                               LockMode mode) const {
  // Earlier waiters on the item's queue, plus whoever is *pinning* the
  // lease at each site that must leave before any grant can happen: the
  // mode-conflicting holders, and every site with a revoke outstanding —
  // the coherence rule blocks all grants until those release, so even a
  // mode-compatible waiter waits on their pinners. An idle holder blocks
  // no transaction — its lease releases as soon as the revoke lands.
  std::vector<TxnId> blockers = lease_table_.QueuedAhead(txn, item);
  std::vector<SiteId> gating =
      lease_table_.ConflictingHolders(site, item, mode);
  for (SiteId revoked : lease_table_.RevokedSites(item)) {
    if (revoked != site) gating.push_back(revoked);
  }
  std::sort(gating.begin(), gating.end());
  gating.erase(std::unique(gating.begin(), gating.end()), gating.end());
  for (SiteId holder : gating) {
    const TxnId pin =
        lease_caches_[static_cast<size_t>(holder - 1)].PinOwner(item);
    if (pin != kInvalidTxn && pin != txn && server_aborted_.count(pin) == 0) {
      blockers.push_back(pin);
    }
  }
  return blockers;
}

void LockCcEngine::RefreshLeaseWaits(int32_t shard, ItemId item) {
  // Wait edges are posted to the policy when a request blocks, but the
  // blocker sets go stale as the item's lease state evolves: a queue head
  // aborts, a waiter is granted and its site becomes the holder the rest
  // now wait on. Re-post every still-queued waiter with fresh blockers so
  // cycle detection (and wound/die ordering) always sees the live graph;
  // duplicated edges are harmless.
  for (const lease::LeaseWaiter& waiter : lease_table_.Waiters(item)) {
    // A policy abort during this loop may doom a later waiter (its queue
    // entry is removed inside AbortTxn); skip anything no longer live.
    if (server_aborted_.count(waiter.txn) > 0) continue;
    if (FindRun(waiter.txn) == nullptr) continue;
    current_shard_ = shard;
    policy_->OnBlocked(waiter.txn, item,
                       LeaseBlockers(waiter.txn, waiter.site, item,
                                     waiter.mode),
                       *this);
  }
}

void LockCcEngine::FlushLeasePins(TxnRun& run) {
  lease::LeaseCache& cache =
      lease_caches_[static_cast<size_t>(run.client_index)];
  for (ItemId item : cache.UnpinAll(run.id)) {
    const Version fence = cache.VersionOf(item);
    cache.Drop(item);
    SendLeaseRelease(run.site(), item, fence);
  }
}

void LockCcEngine::EmitLeaseEvent(obs::EventKind kind,
                                  proto::ProtocolEventKind pkind,
                                  int32_t shard, TxnId txn, SiteId site,
                                  ItemId item, bool exclusive) {
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = kind;
    event.txn = txn;
    event.site = site;
    event.item = item;
    event.shard = shard;
    event.mode = exclusive ? 1 : 0;
    event.flag = exclusive;
    tracer().Emit(std::move(event));
  }
  proto::ProtocolEvent pe;
  pe.kind = pkind;
  pe.txn = txn;
  pe.item = item;
  pe.server = shard;
  pe.site = site;
  pe.flag = exclusive;
  RecordEvent(pe);
}

}  // namespace gtpl::cc
