#include "cc/lock_engine.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace gtpl::cc {

using proto::RunResult;
using proto::SimConfig;

LockCcEngine::LockCcEngine(const SimConfig& config,
                           std::unique_ptr<ConflictPolicy> policy,
                           LockEngineTraits traits)
    : ShardedEngineBase(config),
      policy_(std::move(policy)),
      traits_(traits) {
  lock_tables_.reserve(static_cast<size_t>(config.num_servers));
  for (int32_t shard = 0; shard < config.num_servers; ++shard) {
    lock_tables_.push_back(
        std::make_unique<db::LockTable>(config.workload.num_items));
  }
}

void LockCcEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  const int32_t shard = ShardOf(op.item);
  network().Send(site, ServerSiteOf(shard), "lock-request",
                 [this, shard, txn, site, op] {
                   ServerOnRequest(shard, txn, site, op.item, op.mode);
                 });
}

void LockCcEngine::ServerOnRequest(int32_t shard, TxnId txn,
                                   SiteId client_site, ItemId item,
                                   LockMode mode) {
  (void)client_site;
  NoteRequestAtServer(txn, item, mode, shard);
  if (server_aborted_.count(txn) > 0) return;  // stale request of a victim
  db::LockTable& table = *lock_tables_[static_cast<size_t>(shard)];
  const db::LockResult outcome = table.Request(txn, item, mode);
  if (outcome == db::LockResult::kGranted) {
    SendGrant(shard, txn, item, mode);
    return;
  }
  // Blocked: the policy resolves the conflict on the *global* coordination
  // plane (shared across shards, like the old waits-for graph), so
  // cross-shard conflicts are handled exactly like local ones. The blocker
  // set includes conflicting holders and conflicting earlier waiters.
  current_shard_ = shard;
  policy_->OnBlocked(txn, item, table.Blockers(txn, item), *this);
}

void LockCcEngine::SendGrant(int32_t shard, TxnId txn, ItemId item,
                             LockMode mode) {
  (void)mode;
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;  // finished in the meantime (nothing to ship)
  const Version version = store().VersionOf(item);
  network().Send(
      ServerSiteOf(shard), run->site(), "grant+data",
      [this, txn, item, version] {
        TxnRun* target = FindRun(txn);
        if (target == nullptr || target->finished || target->doomed) {
          return;
        }
        GTPL_CHECK_EQ(target->op().item, item);
        OpGranted(*target, version);
      },
      net::kControlPayload + net::kDataPayload);
}

void LockCcEngine::AbortTxn(TxnId victim) {
  GTPL_CHECK(server_aborted_.insert(victim).second);
  ++policy_aborts_;
  policy_->OnTxnFinished(victim);
  // The victim's locks are dropped on every shard at decision time (the
  // instantaneous coordination plane; see the determinism contract).
  for (int32_t shard = 0; shard < num_servers(); ++shard) {
    lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
        victim, [this, shard](TxnId txn, ItemId item, LockMode mode) {
          policy_->OnWaiterGranted(txn);
          SendGrant(shard, txn, item, mode);
        });
  }
  TxnRun* run = FindRun(victim);
  GTPL_CHECK(run != nullptr) << "policy victim is not an active txn";
  ServerAbortDecision(victim, run->site(), ServerSiteOf(current_shard_));
}

ItemId LockCcEngine::MaxHeldItem(TxnId txn) const {
  ItemId held = kInvalidItem;
  for (const auto& table : lock_tables_) {
    for (ItemId item : table->HeldItems(txn)) {
      held = std::max(held, item);
    }
  }
  return held;
}

void LockCcEngine::DoCommit(TxnRun& run) {
  // One release message per participant shard, carrying that shard's
  // updates (these releases are the effective phase two of a cross-server
  // commit; single-shard transactions send exactly the one message the
  // single-server engine sends). Shards that already released at prepare
  // time (release_at_prepare) are skipped — they have nothing left to do.
  std::vector<std::vector<Update>> updates_by(
      static_cast<size_t>(num_servers()));
  std::vector<bool> touched(static_cast<size_t>(num_servers()), false);
  for (const proto::OpRecord& record : run.records) {
    const size_t shard = static_cast<size_t>(ShardOf(record.item));
    touched[shard] = true;
    if (record.mode == LockMode::kExclusive) {
      updates_by[shard].push_back(Update{record.item, record.version_written});
    }
  }
  const TxnId txn = run.id;
  auto early = early_released_.find(txn);
  if (early != early_released_.end()) {
    for (int32_t shard : early->second) {
      touched[static_cast<size_t>(shard)] = false;
    }
    early_released_.erase(early);
  }
  int32_t participants = 0;
  for (const bool t : touched) participants += t ? 1 : 0;
  if (participants == 0) {
    // Every shard released at prepare; the txn already left the server
    // plane, and its installs are all permanent — client log can truncate.
    policy_->OnTxnFinished(txn);
    MaybeGcClientLogs();
    return;
  }
  pending_releases_[txn] = participants;
  for (int32_t shard = 0; shard < num_servers(); ++shard) {
    if (!touched[static_cast<size_t>(shard)]) continue;
    std::vector<Update>& updates = updates_by[static_cast<size_t>(shard)];
    const uint64_t payload =
        net::kControlPayload + net::kDataPayload * updates.size();
    network().Send(
        run.site(), ServerSiteOf(shard), "release",
        [this, shard, txn, updates = std::move(updates)] {
          ServerOnRelease(shard, txn, updates);
        },
        payload);
  }
}

void LockCcEngine::ServerOnRelease(int32_t shard, TxnId txn,
                                   std::vector<Update> updates) {
  GTPL_CHECK_EQ(server_aborted_.count(txn), 0u)
      << "a doomed transaction committed";
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ServerSiteOf(shard);
    event.shard = shard;
    event.payload = static_cast<int64_t>(updates.size());
    tracer().Emit(std::move(event));
  }
  for (const Update& update : updates) {
    store().Install(update.item, update.version);
    const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall, txn,
                                            update.item, update.version);
    server_wal().Force(lsn);
  }
  MaybeGcClientLogs();
  // The transaction leaves the policy's books only once its last shard
  // released (it still holds locks elsewhere until then).
  auto pending = pending_releases_.find(txn);
  GTPL_CHECK(pending != pending_releases_.end());
  if (--pending->second == 0) {
    pending_releases_.erase(pending);
    policy_->OnTxnFinished(txn);
  }
  lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        policy_->OnWaiterGranted(granted);
        SendGrant(shard, granted, item, mode);
      });
}

void LockCcEngine::ReleaseShardEarly(int32_t shard, TxnId txn) {
  TxnRun* run = FindRun(txn);
  GTPL_CHECK(run != nullptr) << "prepare for a txn without a run";
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ServerSiteOf(shard);
    event.shard = shard;
    event.label = "early-release";
    tracer().Emit(std::move(event));
  }
  for (const proto::OpRecord& record : run->records) {
    if (ShardOf(record.item) != shard) continue;
    if (record.mode != LockMode::kExclusive) continue;
    store().Install(record.item, record.version_written);
    const int64_t lsn = server_wal().Append(
        db::LogRecordKind::kInstall, txn, record.item, record.version_written);
    server_wal().Force(lsn);
  }
  early_released_[txn].push_back(shard);
  lock_tables_[static_cast<size_t>(shard)]->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        policy_->OnWaiterGranted(granted);
        SendGrant(shard, granted, item, mode);
      });
}

void LockCcEngine::OnClientAborted(TxnRun& run) {
  // Server state was already cleaned on every shard at decision time.
  (void)run;
}

bool LockCcEngine::ShardVote(int32_t shard, TxnId txn, bool speculative) {
  if (server_aborted_.count(txn) > 0) return false;  // safety net
  // A non-speculative yes vote is a commit promise (abort decisions only
  // target blocked requesters, and this txn is at its commit point): the
  // ordered-release variant cashes it in immediately. A speculative vote
  // (kEarly) only means "not aborted so far" — no release on its strength.
  if (traits_.release_at_prepare && !speculative) {
    ReleaseShardEarly(shard, txn);
  }
  return true;
}

void LockCcEngine::OnCommitDecision(int32_t shard, TxnId txn) {
  // Client-coordinated commits: the per-shard release messages (DoCommit)
  // carry the actual releases and updates; the decision only logs the
  // outcome. A remote coordinator's decision (kCoord), though, reaches the
  // shard ahead of the client's ack-delayed DoCommit — cash it in now for
  // the lock-hold reduction, unless the shard already released at prepare
  // time or the client's commit beat this message.
  if (!RemoteCoordinated(txn)) return;
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished) return;
  auto early = early_released_.find(txn);
  if (early != early_released_.end() &&
      std::find(early->second.begin(), early->second.end(), shard) !=
          early->second.end()) {
    return;
  }
  ReleaseShardEarly(shard, txn);
}

void LockCcEngine::FillProtocolMetrics(RunResult* result) {
  ShardedEngineBase::FillProtocolMetrics(result);
}

}  // namespace gtpl::cc
