#ifndef GTPL_CC_REGISTRY_H_
#define GTPL_CC_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "protocols/engine.h"

namespace gtpl::cc {

/// One registered concurrency-control engine. The registry is the single
/// place mapping protocol enum values to string names (--cc=<name> /
/// --protocol=<name>) and engine factories; RunSimulation and the CLI
/// layers all resolve through it.
struct EngineInfo {
  const char* name;     // registry key, e.g. "waitdie"
  const char* summary;  // one-liner for --help and error listings
  proto::Protocol protocol;
  bool sharded;         // supports num_servers > 1 (2PC via the engine base)
  std::unique_ptr<proto::EngineBase> (*make)(const proto::SimConfig& config);
};

/// All registered engines, in presentation order.
const std::vector<EngineInfo>& Engines();

/// Engine registered under `name`, or nullptr.
const EngineInfo* FindEngine(const std::string& name);

/// Engine registered for `protocol` (every Protocol value has exactly one).
const EngineInfo& EngineFor(proto::Protocol protocol);

/// Comma-separated registered names, for error messages and usage text.
std::string EngineNames();

/// Resolves `name` to its protocol, or InvalidArgument listing the
/// registered engines (the CLI strict-parsing convention).
Status ParseEngineName(const std::string& name, proto::Protocol* protocol);

}  // namespace gtpl::cc

#endif  // GTPL_CC_REGISTRY_H_
