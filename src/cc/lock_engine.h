#ifndef GTPL_CC_LOCK_ENGINE_H_
#define GTPL_CC_LOCK_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/policy.h"
#include "db/lock_table.h"
#include "lease/lease_cache.h"
#include "lease/lease_table.h"
#include "protocols/sharded.h"

namespace gtpl::cc {

/// Compile-time-ish knobs distinguishing lock-engine variants beyond the
/// conflict policy.
struct LockEngineTraits {
  /// Participant shards install their updates and release their locks when
  /// the prepare arrives (yes vote) instead of waiting for the commit
  /// release message — the ordered-release fast path (Brook-2PL spirit).
  /// Sound because a yes vote is a commit promise in this model: abort
  /// decisions only ever target transactions with an outstanding blocked
  /// request, and a transaction at its commit point has none (DESIGN.md
  /// §12). Saves one WAN round of lock-hold time per cross-server commit.
  bool release_at_prepare = false;
};

/// Generic lock-based engine: FIFO strict-2PL lock tables (one per shard),
/// client-coordinated 2PC via ShardedEngineBase, and a pluggable
/// ConflictPolicy deciding what happens when a request blocks. The message
/// sequences are ported verbatim from the pre-refactor sharded s-2PL engine
/// — with MakeDetectPolicy this class *is* that engine, bit for bit (the
/// equivalence suite and the legacy golden tables pin this) — so every
/// policy inherits sharding, the link model, span accounting, and the
/// invariant layer for free.
///
/// With SimConfig::lease.mode == kSticky (DESIGN.md §14) the per-txn lock
/// tables are replaced by a site-granular LeaseTable: a grant becomes a
/// lease that outlives the transaction, repeat acquisitions at the holder
/// site are served from the client's LeaseCache with zero flights
/// (lease_hits), and conflicting requests enqueue behind callback
/// revocation. Transaction-level mutual exclusion within a site is the
/// MPL-1 pin; across sites it is the lease itself, so strict 2PL per
/// transaction is preserved. --lease=none leaves every message of the
/// legacy engine untouched (the lease equivalence battery pins this).
class LockCcEngine : public proto::ShardedEngineBase, public PolicyHost {
 public:
  LockCcEngine(const proto::SimConfig& config,
               std::unique_ptr<ConflictPolicy> policy,
               LockEngineTraits traits = {});

  int64_t policy_aborts() const { return policy_aborts_; }

  // PolicyHost:
  void AbortTxn(TxnId victim) override;
  ItemId MaxHeldItem(TxnId txn) const override;
  bool Woundable(TxnId txn) override;
  const proto::SimConfig& engine_config() const override { return config(); }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(proto::RunResult* result) override;
  void RegisterMetrics(obs::MetricsRegistry* metrics) override;
  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override;
  void OnCommitDecision(int32_t shard, TxnId txn) override;

 private:
  struct Update {
    ItemId item;
    Version version;
  };

  /// A lease release waiting for the holder's last committed install to
  /// reach the server (the version fence; see DESIGN.md §14 ordering
  /// argument) before it takes effect.
  struct FencedRelease {
    SiteId site;
    Version fence;
  };

  void ServerOnRequest(int32_t shard, TxnId txn, SiteId client_site,
                       ItemId item, LockMode mode);
  void ServerOnRelease(int32_t shard, TxnId txn, std::vector<Update> updates);
  void SendGrant(int32_t shard, TxnId txn, ItemId item, LockMode mode);
  /// Install + release on `shard` ahead of the client's release message:
  /// at prepare time (release_at_prepare) or at decision arrival (kCoord).
  void ReleaseShardEarly(int32_t shard, TxnId txn);

  // --- sticky-lease machinery (inert under --lease=none) ---------------
  /// Commit under leases: ship writes to their shards (the lease carries no
  /// data; the server copy stays authoritative), then flush deferred
  /// revoke releases.
  void DoCommitSticky(TxnRun& run);
  /// Server admission for a request that missed the client's lease cache.
  void LeaseServerOnRequest(int32_t shard, TxnId txn, SiteId client_site,
                            ItemId item, LockMode mode);
  /// Ships "grant+data" and installs the lease into the client's cache on
  /// arrival. `revoke_wait` is how long the request sat queued behind
  /// revocations (0 for immediate grants); it rides TxnRun and lands in
  /// the lease_revoke_wait sub-span.
  void SendLeaseGrant(int32_t shard, TxnId txn, ItemId item, LockMode mode,
                      SimTime revoke_wait);
  /// Sends revoke callbacks to `targets` on behalf of queue-head txn
  /// `collector`.
  void SendLeaseRevokes(int32_t shard, ItemId item,
                        const std::vector<SiteId>& targets, TxnId collector);
  /// Revoke callback reached holder `site`: release now if unpinned,
  /// else defer to transaction end and post the collector->pinner edge.
  void ClientOnLeaseRevoke(int32_t shard, SiteId site, ItemId item,
                           TxnId collector);
  /// Client-side voluntary or revoke-driven release; `fence` is the
  /// latest version this site committed to the item (0 if unknown).
  void SendLeaseRelease(SiteId site, ItemId item, Version fence);
  void ServerOnLeaseRelease(int32_t shard, SiteId site, ItemId item,
                            Version fence);
  /// Applies a release whose fence is satisfied and promotes the queue.
  void ApplyLeaseRelease(int32_t shard, SiteId site, ItemId item);
  /// Grants the item's queue prefix and sends follow-up revokes.
  void PromoteLeases(int32_t shard, ItemId item);
  /// An install for `item` landed on `shard`: flush fenced releases that
  /// were waiting for it.
  void ServerInstalledItem(int32_t shard, ItemId item);
  /// Blockers of a lease-blocked request: queued-ahead transactions plus
  /// the transactions pinning the item at conflicting holder sites and at
  /// every site with a revoke outstanding (the coherence rule blocks all
  /// grants until those release).
  std::vector<TxnId> LeaseBlockers(TxnId txn, SiteId site, ItemId item,
                                   LockMode mode) const;
  /// Re-posts fresh blocker sets for `item`'s still-queued waiters after
  /// its lease state changed (grant, release, or an aborted waiter left
  /// the queue) — block-time wait edges go stale otherwise and deadlock
  /// cycles through the new state are never seen.
  void RefreshLeaseWaits(int32_t shard, ItemId item);
  /// Unpins the finished txn's leases and flushes deferred releases.
  void FlushLeasePins(TxnRun& run);
  void EmitLeaseEvent(obs::EventKind kind, proto::ProtocolEventKind pkind,
                      int32_t shard, TxnId txn, SiteId site, ItemId item,
                      bool exclusive);

  std::vector<std::unique_ptr<db::LockTable>> lock_tables_;
  std::unique_ptr<ConflictPolicy> policy_;
  LockEngineTraits traits_;
  std::unordered_set<TxnId> server_aborted_;  // ignore their late messages
  // Release messages still in flight per committing txn; the policy learns
  // the txn finished when the count reaches zero.
  std::unordered_map<TxnId, int32_t> pending_releases_;
  // Shards that already installed + released at prepare time, per txn.
  std::unordered_map<TxnId, std::vector<int32_t>> early_released_;
  // Shard whose blocked request the policy is currently resolving; abort
  // decisions are attributed to its server site.
  int32_t current_shard_ = 0;
  int64_t policy_aborts_ = 0;

  // Sticky-lease state (empty/unused under --lease=none).
  bool sticky_ = false;
  lease::LeaseTable lease_table_;
  std::vector<lease::LeaseCache> lease_caches_;  // one per client
  std::unordered_map<ItemId, std::vector<FencedRelease>> fenced_releases_;
  int64_t lease_hits_ = 0;
  int64_t lease_revokes_ = 0;
  int64_t lease_releases_ = 0;
};

}  // namespace gtpl::cc

#endif  // GTPL_CC_LOCK_ENGINE_H_
