#ifndef GTPL_CC_LOCK_ENGINE_H_
#define GTPL_CC_LOCK_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/policy.h"
#include "db/lock_table.h"
#include "protocols/sharded.h"

namespace gtpl::cc {

/// Compile-time-ish knobs distinguishing lock-engine variants beyond the
/// conflict policy.
struct LockEngineTraits {
  /// Participant shards install their updates and release their locks when
  /// the prepare arrives (yes vote) instead of waiting for the commit
  /// release message — the ordered-release fast path (Brook-2PL spirit).
  /// Sound because a yes vote is a commit promise in this model: abort
  /// decisions only ever target transactions with an outstanding blocked
  /// request, and a transaction at its commit point has none (DESIGN.md
  /// §12). Saves one WAN round of lock-hold time per cross-server commit.
  bool release_at_prepare = false;
};

/// Generic lock-based engine: FIFO strict-2PL lock tables (one per shard),
/// client-coordinated 2PC via ShardedEngineBase, and a pluggable
/// ConflictPolicy deciding what happens when a request blocks. The message
/// sequences are ported verbatim from the pre-refactor sharded s-2PL engine
/// — with MakeDetectPolicy this class *is* that engine, bit for bit (the
/// equivalence suite and the legacy golden tables pin this) — so every
/// policy inherits sharding, the link model, span accounting, and the
/// invariant layer for free.
class LockCcEngine : public proto::ShardedEngineBase, public PolicyHost {
 public:
  LockCcEngine(const proto::SimConfig& config,
               std::unique_ptr<ConflictPolicy> policy,
               LockEngineTraits traits = {});

  int64_t policy_aborts() const { return policy_aborts_; }

  // PolicyHost:
  void AbortTxn(TxnId victim) override;
  ItemId MaxHeldItem(TxnId txn) const override;
  const proto::SimConfig& engine_config() const override { return config(); }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(proto::RunResult* result) override;
  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override;
  void OnCommitDecision(int32_t shard, TxnId txn) override;

 private:
  struct Update {
    ItemId item;
    Version version;
  };

  void ServerOnRequest(int32_t shard, TxnId txn, SiteId client_site,
                       ItemId item, LockMode mode);
  void ServerOnRelease(int32_t shard, TxnId txn, std::vector<Update> updates);
  void SendGrant(int32_t shard, TxnId txn, ItemId item, LockMode mode);
  /// Install + release on `shard` ahead of the client's release message:
  /// at prepare time (release_at_prepare) or at decision arrival (kCoord).
  void ReleaseShardEarly(int32_t shard, TxnId txn);

  std::vector<std::unique_ptr<db::LockTable>> lock_tables_;
  std::unique_ptr<ConflictPolicy> policy_;
  LockEngineTraits traits_;
  std::unordered_set<TxnId> server_aborted_;  // ignore their late messages
  // Release messages still in flight per committing txn; the policy learns
  // the txn finished when the count reaches zero.
  std::unordered_map<TxnId, int32_t> pending_releases_;
  // Shards that already installed + released at prepare time, per txn.
  std::unordered_map<TxnId, std::vector<int32_t>> early_released_;
  // Shard whose blocked request the policy is currently resolving; abort
  // decisions are attributed to its server site.
  int32_t current_shard_ = 0;
  int64_t policy_aborts_ = 0;
};

}  // namespace gtpl::cc

#endif  // GTPL_CC_LOCK_ENGINE_H_
