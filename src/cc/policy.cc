#include "cc/policy.h"

#include <algorithm>

#include "common/check.h"
#include "db/waits_for_graph.h"

namespace gtpl::cc {
namespace {

// Cycle detection at block time, exactly as the pre-refactor s-2PL engines
// did it: record the wait edges, then abort victims until no cycle through
// the requester remains. The engine routes OnWaiterGranted/OnTxnFinished
// to ClearWaits/RemoveTxn at the same call sites the old engines used, so
// the graph contents — and therefore victim choice and every downstream
// event time — are bit-identical.
class DetectPolicy : public ConflictPolicy {
 public:
  void OnBlocked(TxnId txn, ItemId item, const std::vector<TxnId>& blockers,
                 PolicyHost& host) override {
    (void)item;
    wfg_.AddWaits(txn, blockers);
    while (true) {
      const std::vector<TxnId> cycle = wfg_.CycleThrough(txn);
      if (cycle.empty()) break;
      TxnId victim = txn;
      if (host.engine_config().s2pl.victim ==
          proto::S2plOptions::Victim::kYoungest) {
        victim = *std::max_element(cycle.begin(), cycle.end());
      }
      host.AbortTxn(victim);
      if (victim == txn) break;
    }
  }

  void OnWaiterGranted(TxnId txn) override { wfg_.ClearWaits(txn); }

  void OnTxnFinished(TxnId txn) override { wfg_.RemoveTxn(txn); }

 private:
  db::WaitsForGraph wfg_;
};

class NoWaitPolicy : public ConflictPolicy {
 public:
  void OnBlocked(TxnId txn, ItemId item, const std::vector<TxnId>& blockers,
                 PolicyHost& host) override {
    (void)item;
    (void)blockers;
    host.AbortTxn(txn);
  }
};

class WaitDiePolicy : public ConflictPolicy {
 public:
  void OnBlocked(TxnId txn, ItemId item, const std::vector<TxnId>& blockers,
                 PolicyHost& host) override {
    (void)item;
    // Txn ids are assigned monotonically, so smaller id == older. The
    // blocker set includes conflicting earlier waiters, so a granted wait
    // edge always points old -> young even through the FIFO queue.
    for (TxnId blocker : blockers) {
      if (blocker < txn) {
        host.AbortTxn(txn);
        return;
      }
    }
  }
};

class WoundWaitPolicy : public ConflictPolicy {
 public:
  void OnBlocked(TxnId txn, ItemId item, const std::vector<TxnId>& blockers,
                 PolicyHost& host) override {
    (void)item;
    // Smaller id == older. The older requester wounds every younger
    // blocker still woundable (the blocker set may repeat a txn across
    // holder/waiter roles, and a wound may already have landed — Woundable
    // goes false the moment a victim is doomed, so each txn is wounded at
    // most once); younger or unwoundable blockers are simply waited on.
    // Every realized wait edge points young -> old: deadlock-free.
    for (TxnId blocker : blockers) {
      if (blocker > txn && host.Woundable(blocker)) {
        host.AbortTxn(blocker);
      }
    }
  }
};

class OrderedPolicy : public ConflictPolicy {
 public:
  void OnBlocked(TxnId txn, ItemId item, const std::vector<TxnId>& blockers,
                 PolicyHost& host) override {
    (void)blockers;
    const ItemId held = host.MaxHeldItem(txn);
    if (held != kInvalidItem && held > item) {
      host.AbortTxn(txn);
    }
  }
};

}  // namespace

std::unique_ptr<ConflictPolicy> MakeDetectPolicy() {
  return std::make_unique<DetectPolicy>();
}

std::unique_ptr<ConflictPolicy> MakeNoWaitPolicy() {
  return std::make_unique<NoWaitPolicy>();
}

std::unique_ptr<ConflictPolicy> MakeWaitDiePolicy() {
  return std::make_unique<WaitDiePolicy>();
}

std::unique_ptr<ConflictPolicy> MakeWoundWaitPolicy() {
  return std::make_unique<WoundWaitPolicy>();
}

std::unique_ptr<ConflictPolicy> MakeOrderedPolicy() {
  return std::make_unique<OrderedPolicy>();
}

}  // namespace gtpl::cc
