#ifndef GTPL_CC_OCC_H_
#define GTPL_CC_OCC_H_

#include <unordered_map>
#include <vector>

#include "protocols/sharded.h"

namespace gtpl::cc {

/// Optimistic concurrency control with backward validation at commit.
///
/// The read phase takes no locks: each operation is one request/data round
/// that ships the item's current committed version (so response time per op
/// is the same WAN round s-2PL pays when uncontended — OCC removes lock
/// *waiting*, not propagation). At commit the client sends its read/write
/// set to the owning server(s); a server validates backward against the
/// committed store — every recorded version_read must still be current —
/// and a single-shard transaction installs its writes atomically with the
/// validation, so the validation instant is the serialization point.
///
/// Cross-server commits reuse the 2PC message pattern (prepare == validate
/// carrying the shard's slice of the read/write set, vote, decision), but
/// with validation instead of a lock-state check: a yes vote *reserves* the
/// validated items — later validations touching them in a conflicting mode
/// vote no — and parks the shard's write slice server-side, so the decision
/// message is control-only. Reservations are cleared by the decision
/// (commit) or by the client's abort cleanup message.
///
/// The commit thus costs one extra WAN round (single shard) or two (2PC)
/// on top of the pessimistic engines' commit path, the classic OCC
/// trade: no waiting during the read phase, paid for with validation
/// latency and restarts under contention.
class OccEngine : public proto::ShardedEngineBase {
 public:
  explicit OccEngine(const proto::SimConfig& config);

  int64_t validation_failures() const { return validation_failures_; }

 protected:
  void SendRequest(TxnRun& run) override;
  /// Installs happened at validation (single shard) or decision time (2PC);
  /// nothing travels at local-commit time.
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(proto::RunResult* result) override;
  /// Certification commit: overrides the base 2PC entirely. Votes are
  /// decided by validation (data-dependent), so the geo-aware commit paths
  /// do not apply: cross-server commits always run the classic two-flight
  /// pattern and count commit_path_fallbacks when another path was asked.
  void StartCommit(TxnRun& run) override;
  /// kEarly's speculative prepares would route into the unreachable
  /// ShardVote below; OCC opts out (part of the classic fallback).
  void PreRequestHook(TxnRun& run) override { (void)run; }
  bool ShardVote(int32_t shard, TxnId txn, bool speculative)
      override;                                             // unreachable
  void OnCommitDecision(int32_t shard, TxnId txn) override; // unreachable

 private:
  /// Validation locks held between a yes vote and the decision/abort.
  struct Slot {
    int32_t readers = 0;
    TxnId writer = kInvalidTxn;
  };
  struct VoteCtx {
    int32_t votes_pending = 0;
    bool all_yes = true;
    std::vector<int32_t> participants;
    /// Fan-out instant and validates still in flight — mirrors the base
    /// CommitCtx so OCC reports the same per-round commit sub-spans.
    SimTime sent_time = 0;
    int32_t prepares_pending = 0;
  };

  void OnRead(int32_t shard, TxnId txn, SiteId client_site, ItemId item,
              LockMode mode);
  void SendValidate(int32_t shard, TxnRun& run, bool multi);
  void OnValidate(int32_t shard, TxnId txn, SiteId client_site,
                  std::vector<proto::OpRecord> records, bool multi);
  void OnOccVote(TxnId txn, int32_t shard, bool yes);
  void OnOccDecision(int32_t shard, TxnId txn);

  bool ValidateOnShard(int32_t shard,
                       const std::vector<proto::OpRecord>& records);
  void Reserve(int32_t shard, TxnId txn,
               const std::vector<proto::OpRecord>& records);
  void ClearReservations(int32_t shard,
                         const std::vector<proto::OpRecord>& records);
  void InstallOnShard(TxnId txn, const std::vector<proto::OpRecord>& records);

  std::vector<std::unordered_map<ItemId, Slot>> reserved_;   // per shard
  std::vector<std::unordered_map<TxnId, std::vector<proto::OpRecord>>>
      prepared_;                                             // per shard
  std::unordered_map<TxnId, VoteCtx> votes_;
  int64_t validation_failures_ = 0;
};

}  // namespace gtpl::cc

#endif  // GTPL_CC_OCC_H_
