#ifndef GTPL_CC_POLICY_H_
#define GTPL_CC_POLICY_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "protocols/config.h"

namespace gtpl::cc {

/// Server-plane services a ConflictPolicy may invoke while handling a
/// blocked request. Implemented by the generic lock engine
/// (cc::LockCcEngine); the policy never talks to lock tables or the
/// network directly.
class PolicyHost {
 public:
  virtual ~PolicyHost() = default;

  /// Aborts `victim` at the server plane: drops its locks and queued
  /// requests on every shard, promotes unblocked waiters, and dooms it at
  /// the client (ServerAbortDecision). `victim` must be an active
  /// transaction; a transaction that reached its commit point is never a
  /// legal victim (it has no outstanding request, so it cannot sit on a
  /// waits-for cycle — see DESIGN.md §12).
  virtual void AbortTxn(TxnId victim) = 0;

  /// Largest item id `victim` currently holds a lock on across every
  /// shard, or kInvalidItem if it holds none (ordered policies).
  virtual ItemId MaxHeldItem(TxnId txn) const = 0;

  /// Whether `txn` is a legal abort victim right now: active, not already
  /// doomed, and not past its commit point (a committing transaction's
  /// releases are in flight — wounding it would break the commit promise;
  /// wound-wait lets such a blocker finish and waits instead).
  virtual bool Woundable(TxnId txn) = 0;

  /// The run configuration (victim-selection knobs etc.).
  virtual const proto::SimConfig& engine_config() const = 0;
};

/// Strategy slot deciding what happens when a lock request blocks — the
/// deadlock-handling half of a 2PL variant. The generic lock engine calls
/// the hooks at exactly the points the original s-2PL engine consulted its
/// waits-for graph, so the detection policy reproduces it bit for bit:
///
///   OnBlocked        after LockTable::Request returned kWaiting
///   OnWaiterGranted  for each queued request promoted by a release
///   OnTxnFinished    when the transaction's last shard released its locks
///                    (commit) or the abort decision dropped them
///
/// Policies are engine-local and single-threaded like the simulator; they
/// must not draw randomness (determinism contract, DESIGN.md §12).
class ConflictPolicy {
 public:
  virtual ~ConflictPolicy() = default;

  /// `txn`'s request for `item` just blocked behind `blockers` (conflicting
  /// holders plus conflicting earlier waiters). May wait (do nothing) or
  /// resolve via host.AbortTxn — possibly aborting `txn` itself.
  virtual void OnBlocked(TxnId txn, ItemId item,
                         const std::vector<TxnId>& blockers,
                         PolicyHost& host) = 0;

  /// A queued request of `txn` was promoted to granted.
  virtual void OnWaiterGranted(TxnId txn) { (void)txn; }

  /// `txn` left the server plane: its last shard released (commit) or it
  /// was aborted.
  virtual void OnTxnFinished(TxnId txn) { (void)txn; }
};

/// Waits-for-graph cycle detection at block time, victim per
/// SimConfig::s2pl.victim — the paper's s-2PL resolution, bit-identical to
/// the pre-refactor engines.
std::unique_ptr<ConflictPolicy> MakeDetectPolicy();

/// No-wait 2PL: any blocked request aborts the requester immediately.
/// Trivially deadlock-free; trades lock waiting for restarts.
std::unique_ptr<ConflictPolicy> MakeNoWaitPolicy();

/// Wait-die 2PL: a requester may wait only for strictly younger
/// transactions (larger ids); if any blocker is older, the requester dies.
/// Every wait edge points old -> young, so no cycle can form. Restarts get
/// fresh (younger) ids, so a repeatedly dying transaction does not age into
/// priority — the classic wound-wait starvation guarantee does not carry
/// over (DESIGN.md §12).
std::unique_ptr<ConflictPolicy> MakeWaitDiePolicy();

/// Wound-wait 2PL: an older requester (smaller id) wounds every younger
/// blocker — aborts it on the spot — and a younger requester waits for its
/// older blockers. Wait edges only ever point young -> old, so no cycle can
/// form. Dual of wait-die: restarts keep a transaction's conflicts aborting
/// in its favor once it is the oldest, but blockers already past their
/// commit point are unwoundable and are waited on instead (DESIGN.md §12).
std::unique_ptr<ConflictPolicy> MakeWoundWaitPolicy();

/// Ordered 2PL (Brook-2PL spirit): a requester may block only on an item
/// larger than every item it already holds; blocking out of item order
/// aborts the requester. Around any would-be cycle the awaited item id
/// strictly increases through holder links and never decreases through
/// FIFO queue links, so deadlock is impossible — no graph is maintained at
/// all. Pairs with the engine's release-at-prepare fast path.
std::unique_ptr<ConflictPolicy> MakeOrderedPolicy();

}  // namespace gtpl::cc

#endif  // GTPL_CC_POLICY_H_
