#ifndef GTPL_SIM_SIMULATOR_H_
#define GTPL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace gtpl::sim {

/// Discrete-event simulator with an integer clock.
///
/// The paper advances its clock with the unit-time approach; an event
/// calendar over integer ticks is semantically identical (every state change
/// happens at an integer time) but skips idle ticks. Determinism: same
/// schedule calls => same execution; same-tick events fire in scheduling
/// order.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `action` to run `delay` ticks from now. delay >= 0; a zero
  /// delay runs after all currently pending same-tick events.
  void Schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Runs events until the queue drains, `until` is passed (if >= 0), or
  /// Stop() is called. Events stamped exactly `until` still run. Returns the
  /// number of events executed by this call.
  uint64_t Run(SimTime until = -1);

  /// Executes exactly one event under the same contract as Run(): returns
  /// false without running anything if the queue is empty, the earliest
  /// event lies past `until` (when >= 0), or a previously stepped event
  /// called Stop() (Run() resets the stop flag; Step() never does, so a
  /// stop sticks across Step() calls until the next Run()). Enforces the
  /// same time-monotonicity check as Run().
  bool Step(SimTime until = -1);

  /// Makes the current Run() call return after the in-flight event finishes.
  void Stop() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  bool stopped_ = false;
};

}  // namespace gtpl::sim

#endif  // GTPL_SIM_SIMULATOR_H_
