#ifndef GTPL_SIM_EVENT_QUEUE_H_
#define GTPL_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#ifndef NDEBUG
#include <unordered_set>
#endif

#include "common/types.h"

namespace gtpl::sim {

/// A scheduled callback. Events compare by (time, sequence number), so two
/// events scheduled for the same tick fire in scheduling order — this is what
/// makes runs bit-for-bit deterministic.
struct Event {
  SimTime time = 0;
  uint64_t seq = 0;
  std::function<void()> action;
};

/// Binary min-heap of events ordered by (time, seq).
///
/// A hand-rolled heap rather than std::priority_queue so that (a) Pop can
/// move the std::function out instead of copying, and (b) the container can
/// be cleared and reserved explicitly between runs.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Inserts an event. `seq` must be unique per queue lifetime: it is the
  /// same-tick tiebreak, and a duplicate makes event order depend on heap
  /// internals instead of scheduling order. Debug builds check this; a
  /// duplicate seq aborts.
  void Push(SimTime time, uint64_t seq, std::function<void()> action);

  /// Removes and returns the earliest event. Precondition: !empty().
  Event Pop();

  /// Time of the earliest event. Precondition: !empty().
  SimTime PeekTime() const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void Clear() { heap_.clear(); }
  void Reserve(size_t n) { heap_.reserve(n); }

 private:
  static bool Before(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Event> heap_;
#ifndef NDEBUG
  std::unordered_set<uint64_t> seen_seqs_;  // per-lifetime uniqueness check
#endif
};

}  // namespace gtpl::sim

#endif  // GTPL_SIM_EVENT_QUEUE_H_
