#include "sim/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"

namespace gtpl::sim {

// ---------------------------------------------------------------------------
// ShardSim

ShardSim::ShardSim(ParallelSim* parent, int32_t index, int32_t num_lps)
    : parent_(parent), index_(index) {
  outbox_.resize(static_cast<size_t>(num_lps));
}

void ShardSim::Schedule(SimTime delay, std::function<void()> action) {
  GTPL_CHECK_GE(delay, 0);
  queue_.Push(now_ + delay, next_seq_++, std::move(action));
}

void ShardSim::ScheduleAt(SimTime when, std::function<void()> action) {
  GTPL_CHECK_GE(when, now_);
  queue_.Push(when, next_seq_++, std::move(action));
}

void ShardSim::SendTo(int32_t dst, SimTime delay,
                      std::function<void()> action) {
  if (dst == index_) {
    Schedule(delay, std::move(action));
    return;
  }
  GTPL_CHECK_GE(dst, 0);
  GTPL_CHECK_LT(static_cast<size_t>(dst), outbox_.size());
  // The conservative-safety bound: a cross-LP message emitted by an event
  // below the window horizon must land at or beyond that horizon.
  GTPL_CHECK_GE(delay, parent_->lookahead())
      << "cross-LP send below the lookahead bound";
  outbox_[static_cast<size_t>(dst)].push_back(
      OutboundMsg{now_ + delay, next_send_seq_++, std::move(action)});
}

void ShardSim::Stop() {
  parent_->stop_requested_.store(true, std::memory_order_relaxed);
}

bool ShardSim::RunWindow(SimTime horizon) {
  bool ran = false;
  while (!queue_.empty() && queue_.PeekTime() < horizon) {
    Event event = queue_.Pop();
    GTPL_CHECK_GE(event.time, now_);
    now_ = event.time;
    event.action();
    ++events_executed_;
    ran = true;
  }
  return ran;
}

// ---------------------------------------------------------------------------
// ParallelSim

/// Persistent worker team with a window barrier: RunWindow(fn) executes
/// fn(worker_id) on every worker (the caller doubles as worker 0) and
/// returns when all are done. A generation counter under one mutex hands
/// out windows; the mutex/condvar pair also provides the happens-before
/// edges that make each window's LP writes visible to the next window's
/// (possibly different) workers and to the main thread.
struct ParallelSim::Pool {
  explicit Pool(int threads) {
    for (int w = 1; w < threads; ++w) {
      workers.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    start_cv.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void RunWindow(const std::function<void(int)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      task = &fn;
      pending = static_cast<int>(workers.size());
      ++generation;
    }
    start_cv.notify_all();
    fn(0);  // the caller is worker 0
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [this] { return pending == 0; });
    task = nullptr;
  }

  void WorkerLoop(int worker_id) {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      start_cv.wait(lock,
                    [&] { return shutdown || generation != seen; });
      if (shutdown) return;
      seen = generation;
      const std::function<void(int)>* fn = task;
      lock.unlock();
      (*fn)(worker_id);
      lock.lock();
      if (--pending == 0) done_cv.notify_one();
    }
  }

  std::mutex mutex;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  const std::function<void(int)>* task = nullptr;
  uint64_t generation = 0;
  int pending = 0;
  bool shutdown = false;
};

ParallelSim::ParallelSim(int32_t num_lps, SimTime lookahead, int num_threads)
    : lookahead_(lookahead), num_threads_(std::max(num_threads, 1)) {
  GTPL_CHECK_GE(num_lps, 1);
  GTPL_CHECK_GE(lookahead, 1) << "conservative windows need lookahead >= 1";
  lps_.reserve(static_cast<size_t>(num_lps));
  for (int32_t i = 0; i < num_lps; ++i) {
    lps_.push_back(
        std::unique_ptr<ShardSim>(new ShardSim(this, i, num_lps)));
  }
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::SetBarrierHook(std::function<void(SimTime)> hook) {
  barrier_hook_ = std::move(hook);
}

uint64_t ParallelSim::FlushChannels() {
  uint64_t flushed = 0;
  // Per-destination merge: gather every source's parked channel, order by
  // (deliver_time, src_lp, src_seq) — a total order independent of how the
  // previous window's LPs were scheduled onto threads — and append to the
  // destination queue in that order (fresh local seqs keep the queue's
  // same-tick tiebreak consistent with arrival order).
  struct Inbound {
    SimTime time;
    int32_t src;
    uint64_t src_seq;
    std::function<void()>* action;
  };
  std::vector<Inbound> inbound;
  for (size_t dst = 0; dst < lps_.size(); ++dst) {
    inbound.clear();
    for (size_t src = 0; src < lps_.size(); ++src) {
      for (ShardSim::OutboundMsg& msg : lps_[src]->outbox_[dst]) {
        inbound.push_back(Inbound{msg.deliver_time, static_cast<int32_t>(src),
                                  msg.src_seq, &msg.action});
      }
    }
    std::sort(inbound.begin(), inbound.end(),
              [](const Inbound& a, const Inbound& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.src_seq < b.src_seq;
              });
    ShardSim& receiver = *lps_[dst];
    for (Inbound& msg : inbound) {
      GTPL_CHECK_GE(msg.time, receiver.now_);
      receiver.queue_.Push(msg.time, receiver.next_seq_++,
                           std::move(*msg.action));
      ++flushed;
    }
    for (size_t src = 0; src < lps_.size(); ++src) {
      lps_[src]->outbox_[dst].clear();
    }
  }
  return flushed;
}

ParallelRunStats ParallelSim::Run(SimTime until) {
  running_stats_ = ParallelRunStats{};
  ParallelRunStats& stats = running_stats_;
  stop_requested_.store(false, std::memory_order_relaxed);
  const int threads = std::min<int>(num_threads_, num_lps());
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<Pool>(threads);
  }
  std::vector<uint8_t> ran(lps_.size(), 0);
  while (true) {
    stats.messages += FlushChannels();
    if (stop_requested_.load(std::memory_order_relaxed)) {
      stats.stopped = true;
      break;
    }
    // The window floor: the earliest pending event across all LPs.
    bool any_event = false;
    SimTime floor = 0;
    for (const std::unique_ptr<ShardSim>& lp : lps_) {
      if (lp->queue_.empty()) continue;
      const SimTime t = lp->queue_.PeekTime();
      if (!any_event || t < floor) floor = t;
      any_event = true;
    }
    if (!any_event || (until >= 0 && floor > until)) {
      if (until >= 0) {
        // Clocks still advance to the requested horizon even if nothing
        // fires (mirrors Simulator::Run).
        for (const std::unique_ptr<ShardSim>& lp : lps_) {
          lp->now_ = std::max(lp->now_, until);
        }
      }
      break;
    }
    SimTime horizon = floor + lookahead_;
    if (until >= 0) horizon = std::min(horizon, until + 1);
    auto window = [this, horizon, threads, &ran](int worker) {
      for (int32_t i = worker; i < num_lps(); i += threads) {
        ran[static_cast<size_t>(i)] =
            lps_[static_cast<size_t>(i)]->RunWindow(horizon) ? 1 : 0;
      }
    };
    if (threads > 1) {
      pool_->RunWindow(window);
    } else {
      window(0);
    }
    ++stats.windows;
    for (uint8_t r : ran) {
      if (r == 0) ++stats.stalls;
    }
    if (barrier_hook_) barrier_hook_(horizon);
  }
  return stats;
}

}  // namespace gtpl::sim
