#ifndef GTPL_SIM_PARALLEL_H_
#define GTPL_SIM_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace gtpl::sim {

class ParallelSim;

/// One logical process (LP) of a conservative parallel discrete-event
/// simulation: its own event queue, its own clock, its own sequence
/// counters. An LP's events only touch LP-local state plus the SendTo
/// channel API, so LPs of one window execute concurrently without locks.
///
/// Determinism contract: a ShardSim's execution depends only on its own
/// schedule calls and on the (deliver_time, src_lp, src_seq)-ordered
/// message stream the ParallelSim feeds it at window barriers — never on
/// thread scheduling. Runs are therefore bit-identical at any worker
/// count (parsim_kernel_test pins this).
class ShardSim {
 public:
  ShardSim(const ShardSim&) = delete;
  ShardSim& operator=(const ShardSim&) = delete;

  /// This LP's index in the ParallelSim.
  int32_t index() const { return index_; }

  /// This LP's current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules an LP-local event `delay` ticks from now (delay >= 0; zero
  /// delays run after all currently pending same-tick events, exactly like
  /// Simulator::Schedule).
  void Schedule(SimTime delay, std::function<void()> action);

  /// Schedules an LP-local event at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> action);

  /// Sends a cross-LP message: `action` runs on LP `dst` at Now() + delay.
  /// For dst != index(), delay must be >= the ParallelSim's lookahead —
  /// that bound is what makes window-parallel execution safe (the message
  /// provably lands beyond every horizon the current window can execute
  /// under). Sending to the own LP is allowed with any delay >= 0 and is
  /// equivalent to Schedule.
  void SendTo(int32_t dst, SimTime delay, std::function<void()> action);

  /// Requests a global stop: every LP finishes its current window, then
  /// ParallelSim::Run returns at the barrier.
  void Stop();

  /// Events this LP executed since construction.
  uint64_t events_executed() const { return events_executed_; }

 private:
  friend class ParallelSim;

  ShardSim(ParallelSim* parent, int32_t index, int32_t num_lps);

  /// Executes every pending event with time < horizon (events this window
  /// schedules locally below the horizon run too). Returns true if at
  /// least one event ran.
  bool RunWindow(SimTime horizon);

  /// A message to another LP, parked until the next window barrier.
  struct OutboundMsg {
    SimTime deliver_time = 0;
    uint64_t src_seq = 0;  // this LP's send order, the channel tiebreak
    std::function<void()> action;
  };

  ParallelSim* parent_;
  int32_t index_;
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;       // local event order
  uint64_t next_send_seq_ = 0;  // cross-LP send order
  uint64_t events_executed_ = 0;
  std::vector<std::vector<OutboundMsg>> outbox_;  // one channel per dst LP
};

/// Counters ParallelSim::Run reports (all deterministic).
struct ParallelRunStats {
  /// Synchronization windows executed (each ends in one barrier).
  uint64_t windows = 0;
  /// Barrier stalls: over all windows, the number of (LP, window) pairs
  /// where the LP had no event below the horizon and only waited at the
  /// barrier — the idle tax of conservative synchronization.
  uint64_t stalls = 0;
  /// Cross-LP messages exchanged through the channels.
  uint64_t messages = 0;
  /// True when Run returned because an LP called Stop().
  bool stopped = false;
};

/// Conservative parallel discrete-event kernel: K ShardSim logical
/// processes advance in lockstep windows. Each window executes every event
/// strictly below a shared horizon
///
///   horizon = min_next_event_time + lookahead
///
/// where `lookahead` is the minimum cross-LP message delay (for the WAN
/// engines: the one-way propagation latency). Any message an event below
/// the horizon emits is delivered at >= its own time + lookahead >=
/// horizon, so no in-window send can affect this window — LPs are data-
/// independent inside a window and run on a thread pool. At the barrier,
/// parked messages flush into their destination queues ordered by
/// (deliver_time, src_lp, src_seq): a deterministic total order, making
/// the whole run bit-identical at any thread count.
class ParallelSim {
 public:
  /// `num_threads` <= 1 executes windows inline on the calling thread
  /// (same results; the window loop is identical).
  ParallelSim(int32_t num_lps, SimTime lookahead, int num_threads);
  ~ParallelSim();

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  int32_t num_lps() const { return static_cast<int32_t>(lps_.size()); }
  SimTime lookahead() const { return lookahead_; }
  int num_threads() const { return num_threads_; }

  ShardSim& lp(int32_t index) { return *lps_[static_cast<size_t>(index)]; }

  /// Optional hook run serially at every window barrier (after the window's
  /// events executed and its messages flushed, before the next window
  /// starts). The engine layer uses it to evaluate global conditions —
  /// warmup crossings, the stop target — on deterministic snapshots. The
  /// argument is the completed window's horizon H: every event with time
  /// < H has executed on every LP, and no future event can be stamped
  /// below H — so H is the safe bound for draining per-LP trace streams
  /// and for emitting metric samples at interval crossings below H.
  void SetBarrierHook(std::function<void(SimTime)> hook);

  /// Runs windows until every queue and channel drains, `until` is passed
  /// (if >= 0; events stamped exactly `until` still run, and every LP's
  /// clock advances to at least `until`), or an LP calls Stop().
  ParallelRunStats Run(SimTime until = -1);

  /// The current run's counters so far — valid inside the barrier hook
  /// (updated before the hook fires), where the engine layer samples the
  /// kernel's window/stall telemetry as time-series gauges.
  const ParallelRunStats& running_stats() const { return running_stats_; }

 private:
  friend class ShardSim;

  /// Moves every parked cross-LP message into its destination queue in
  /// (deliver_time, src_lp, src_seq) order. Returns messages flushed.
  uint64_t FlushChannels();

  SimTime lookahead_;
  int num_threads_;
  std::vector<std::unique_ptr<ShardSim>> lps_;
  std::function<void(SimTime)> barrier_hook_;
  ParallelRunStats running_stats_;
  /// Atomic because Stop() may be called from LP events running on worker
  /// threads; a stop is a monotone flag, so the unordered writes cannot
  /// perturb determinism (it is only read at barriers).
  std::atomic<bool> stop_requested_{false};
  struct Pool;  // lazily created worker pool (only when num_threads_ > 1)
  std::unique_ptr<Pool> pool_;
};

}  // namespace gtpl::sim

#endif  // GTPL_SIM_PARALLEL_H_
