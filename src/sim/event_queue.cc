#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace gtpl::sim {

void EventQueue::Push(SimTime time, uint64_t seq, std::function<void()> action) {
#ifndef NDEBUG
  GTPL_CHECK(seen_seqs_.insert(seq).second)
      << "duplicate event seq " << seq
      << " breaks the (time, seq) determinism tiebreak";
#endif
  heap_.push_back(Event{time, seq, std::move(action)});
  SiftUp(heap_.size() - 1);
}

Event EventQueue::Pop() {
  GTPL_CHECK(!heap_.empty());
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return top;
}

SimTime EventQueue::PeekTime() const {
  GTPL_CHECK(!heap_.empty());
  return heap_.front().time;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t left = 2 * i + 1;
    size_t right = left + 1;
    size_t smallest = i;
    if (left < n && Before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && Before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace gtpl::sim
