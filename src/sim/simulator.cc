#include "sim/simulator.h"

#include <utility>

#include "common/check.h"

namespace gtpl::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> action) {
  GTPL_CHECK_GE(delay, 0);
  queue_.Push(now_ + delay, next_seq_++, std::move(action));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> action) {
  GTPL_CHECK_GE(when, now_);
  queue_.Push(when, next_seq_++, std::move(action));
}

uint64_t Simulator::Run(SimTime until) {
  uint64_t executed = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (until >= 0 && queue_.PeekTime() > until) break;
    Event event = queue_.Pop();
    GTPL_CHECK_GE(event.time, now_);
    now_ = event.time;
    event.action();
    ++executed;
    ++events_executed_;
  }
  if (until >= 0 && now_ < until && queue_.empty() && !stopped_) {
    // Clock still advances to the requested horizon even if nothing fires.
    now_ = until;
  }
  return executed;
}

bool Simulator::Step(SimTime until) {
  if (queue_.empty() || stopped_) return false;
  if (until >= 0 && queue_.PeekTime() > until) return false;
  Event event = queue_.Pop();
  GTPL_CHECK_GE(event.time, now_);
  now_ = event.time;
  event.action();
  ++events_executed_;
  return true;
}

}  // namespace gtpl::sim
