#ifndef GTPL_COMMON_STATUS_H_
#define GTPL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace gtpl {

/// Result of a fallible public operation (configuration validation, CLI
/// parsing, ...). Internal invariant violations use GTPL_CHECK instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument = 1,
    kFailedPrecondition = 2,
    kNotFound = 3,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for diagnostics.
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

}  // namespace gtpl

#endif  // GTPL_COMMON_STATUS_H_
