#include "common/status.h"

namespace gtpl {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gtpl
