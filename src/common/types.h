#ifndef GTPL_COMMON_TYPES_H_
#define GTPL_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace gtpl {

/// Simulated time in abstract "time units" (the paper's unit-time clock).
/// The conversion to wall time is a free scale factor; the paper suggests
/// 1 unit = 0.5 ms, making latencies of 100-1000 units span 50-500 ms WANs.
using SimTime = int64_t;

/// Identifies a transaction instance. Ids are never reused within a run;
/// an aborted transaction's replacement gets a fresh id.
using TxnId = int64_t;

/// Identifies a data item in the server's hot set (0 .. num_items-1).
using ItemId = int32_t;

/// Version counter of a data item. The server's installed copy and every
/// in-flight copy carry the version so that tests can check serializability.
using Version = int64_t;

/// Identifies a site. Site 0 is the data server, 1..num_clients are clients.
using SiteId = int32_t;

inline constexpr SiteId kServerSite = 0;
inline constexpr TxnId kInvalidTxn = -1;
inline constexpr ItemId kInvalidItem = -1;

/// Lock / access mode for one operation. The paper uses shared reads and
/// exclusive writes (strict 2PL).
enum class LockMode : uint8_t {
  kShared = 0,
  kExclusive = 1,
};

/// True iff two lock modes may be held concurrently on the same item.
inline bool Compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

inline const char* ToString(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

}  // namespace gtpl

#endif  // GTPL_COMMON_TYPES_H_
