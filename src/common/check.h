#ifndef GTPL_COMMON_CHECK_H_
#define GTPL_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace gtpl {
namespace internal {

/// Prints the failure message and aborts. Out-of-line so that the fast path
/// of a passing check stays tiny.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream collector used by the CHECK macros' << tail.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, out_.str()); }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace gtpl

/// Invariant checks. The project does not use exceptions (Google style); a
/// violated invariant is a bug and terminates the process with a diagnostic.
#define GTPL_CHECK(cond)                                          \
  while (!(cond))                                                 \
  ::gtpl::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define GTPL_CHECK_EQ(a, b) GTPL_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define GTPL_CHECK_NE(a, b) GTPL_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define GTPL_CHECK_LT(a, b) GTPL_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define GTPL_CHECK_LE(a, b) GTPL_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define GTPL_CHECK_GT(a, b) GTPL_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define GTPL_CHECK_GE(a, b) GTPL_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

#endif  // GTPL_COMMON_CHECK_H_
