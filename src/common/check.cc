#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace gtpl {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "GTPL_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace gtpl
