#ifndef GTPL_EXEC_PARALLEL_H_
#define GTPL_EXEC_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <future>
#include <vector>

#include "exec/thread_pool.h"

namespace gtpl::exec {

/// Runs `fn(i)` for every i in [begin, end) on the pool and blocks until all
/// iterations finished. Iterations are grouped into chunks of `chunk`
/// consecutive indices (0 = pick automatically, roughly 4 chunks per
/// worker). If iterations throw, the exception of the lowest-indexed
/// throwing chunk is rethrown after every chunk has run to completion.
///
/// Must be called from outside the pool (a pool task calling ParallelFor on
/// its own pool would wait on workers that may all be busy).
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t chunk = 0);

/// Applies `fn` to every element of `items` on the pool and returns the
/// results in input order. Result type must be default-constructible.
template <typename T, typename F>
auto ParallelMap(ThreadPool& pool, const std::vector<T>& items, F fn)
    -> std::vector<decltype(fn(items.front()))> {
  using R = decltype(fn(items.front()));
  std::vector<R> results(items.size());
  ParallelFor(pool, 0, static_cast<int64_t>(items.size()),
              [&items, &results, &fn](int64_t i) {
                results[static_cast<size_t>(i)] =
                    fn(items[static_cast<size_t>(i)]);
              },
              /*chunk=*/1);
  return results;
}

}  // namespace gtpl::exec

#endif  // GTPL_EXEC_PARALLEL_H_
