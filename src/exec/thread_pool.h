#ifndef GTPL_EXEC_THREAD_POOL_H_
#define GTPL_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gtpl::exec {

/// Fixed-size worker pool with a FIFO task queue.
///
/// Guarantees:
///  * Run-to-completion shutdown — the destructor executes every task that
///    was ever enqueued (including tasks that running tasks enqueue during
///    the drain) before joining the workers.
///  * Exceptions thrown by a task submitted via Submit() are captured in the
///    returned future and rethrown by future::get().
///  * A task may enqueue further tasks from inside the pool without risk of
///    deadlock: workers only retire once the queue is empty, and a task that
///    enqueues runs on a worker that re-checks the queue afterwards.
///
/// Do not call Submit()/Post() from a thread outside the pool once the
/// destructor may have started; tasks already running may enqueue freely.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue to completion, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks fully executed so far (diagnostic; racy while tasks run).
  int64_t tasks_executed() const;

  /// Enqueues a fire-and-forget task.
  void Post(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result (or its exception).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t executed_ = 0;
  bool shutting_down_ = false;
};

/// Resolves a job-count request: `jobs >= 1` is taken as-is; `jobs <= 0`
/// falls back to the GTPL_JOBS environment variable and then to
/// std::thread::hardware_concurrency() (at least 1).
int ResolveJobs(int jobs);

}  // namespace gtpl::exec

#endif  // GTPL_EXEC_THREAD_POOL_H_
