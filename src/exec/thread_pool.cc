#include "exec/thread_pool.h"

#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace gtpl::exec {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers only exit with an empty queue; late enqueues from running tasks
  // were drained before the last join returned.
  GTPL_CHECK(queue_.empty());
}

int64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

void ThreadPool::Post(std::function<void()> task) {
  GTPL_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++executed_;
    }
  }
}

int ResolveJobs(int jobs) {
  if (jobs >= 1) return jobs;
  if (const char* env = std::getenv("GTPL_JOBS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace gtpl::exec
