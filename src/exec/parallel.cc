#include "exec/parallel.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::exec {

void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int64_t chunk) {
  GTPL_CHECK_LE(begin, end);
  const int64_t n = end - begin;
  if (n == 0) return;
  if (chunk <= 0) {
    chunk = std::max<int64_t>(1, n / (4 * pool.num_threads()));
  }
  std::vector<std::future<void>> chunks;
  chunks.reserve(static_cast<size_t>((n + chunk - 1) / chunk));
  for (int64_t lo = begin; lo < end; lo += chunk) {
    const int64_t hi = std::min(end, lo + chunk);
    chunks.push_back(pool.Submit([&fn, lo, hi] {
      for (int64_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait for everything first so the range always runs to completion, then
  // rethrow the lowest-indexed failure (deterministic regardless of timing).
  std::exception_ptr first_error;
  for (std::future<void>& done : chunks) {
    try {
      done.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gtpl::exec
