#ifndef GTPL_EXEC_SWEEP_H_
#define GTPL_EXEC_SWEEP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace gtpl::exec {

/// Fans a (config-point × replication) grid of independent cells out across
/// a worker pool and returns the raw per-cell results grouped by point, in
/// (point, rep) order. Because every cell writes only its own slot and the
/// caller aggregates the gathered rows serially, the output is bit-identical
/// at any job count — parallelism changes wall-clock time, never results.
///
/// `run(point, rep)` must be pure (no shared mutable state); `T` must be
/// default-constructible. `jobs == 1` runs inline without spawning threads.
template <typename T>
class SweepRunner {
 public:
  /// `jobs` as accepted by ResolveJobs() (<= 0 = GTPL_JOBS / hardware).
  explicit SweepRunner(int jobs) : jobs_(ResolveJobs(jobs)) {}

  int jobs() const { return jobs_; }

  /// Wall-clock seconds of the last Run() call.
  double elapsed_seconds() const { return elapsed_seconds_; }

  std::vector<std::vector<T>> Run(
      size_t num_points, int32_t reps,
      const std::function<T(size_t, int32_t)>& run) {
    const auto started = std::chrono::steady_clock::now();
    std::vector<std::vector<T>> grid(num_points);
    for (std::vector<T>& row : grid) row.resize(static_cast<size_t>(reps));
    const int64_t cells = static_cast<int64_t>(num_points) * reps;
    auto run_cell = [&grid, &run, reps](int64_t cell) {
      const size_t point = static_cast<size_t>(cell / reps);
      const int32_t rep = static_cast<int32_t>(cell % reps);
      grid[point][static_cast<size_t>(rep)] = run(point, rep);
    };
    if (jobs_ == 1) {
      for (int64_t cell = 0; cell < cells; ++cell) run_cell(cell);
    } else {
      ThreadPool pool(jobs_);
      // One cell per task: cells are whole simulations, far heavier than the
      // enqueue overhead, and fine-grained tasks keep the tail balanced.
      ParallelFor(pool, 0, cells, run_cell, /*chunk=*/1);
    }
    elapsed_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return grid;
  }

 private:
  int jobs_;
  double elapsed_seconds_ = 0.0;
};

}  // namespace gtpl::exec

#endif  // GTPL_EXEC_SWEEP_H_
