#include "rng/rng.h"

#include "common/check.h"

namespace gtpl::rng {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) { return SplitMix64(&x); }

uint64_t StreamSeed(uint64_t base_seed, SeedStream stream) {
  return SplitMix64(base_seed +
                    0x8BB84B93962EEFC9ULL *
                        (static_cast<uint64_t>(stream) + 1));
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // SplitMix64 never yields four zero words for any seed, but keep the
  // invariant explicit: xoshiro's all-zero state is absorbing.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GTPL_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  // Rejection sampling over the largest multiple of `range`.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % range;
  uint64_t draw;
  do {
    draw = Next64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng Rng::Split() { return Rng(Next64()); }

}  // namespace gtpl::rng
