#include "rng/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace gtpl::rng {

UniformInt::UniformInt(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {
  GTPL_CHECK_LE(lo, hi);
}

std::vector<int32_t> SampleDistinct(Rng& rng, int32_t n, int32_t k) {
  GTPL_CHECK_GE(n, k);
  GTPL_CHECK_GE(k, 0);
  std::vector<int32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int32_t i = 0; i < k; ++i) {
    const int64_t j = rng.UniformInt(i, n - 1);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Zipf::Zipf(int32_t n, double theta) : n_(n), theta_(theta) {
  GTPL_CHECK_GT(n, 0);
  GTPL_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (int32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int32_t Zipf::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int32_t>(it - cdf_.begin());
}

}  // namespace gtpl::rng
