#ifndef GTPL_RNG_RNG_H_
#define GTPL_RNG_RNG_H_

#include <cstdint>

namespace gtpl::rng {

/// Deterministic xoshiro256** generator seeded via SplitMix64.
///
/// Self-contained (no <random>) so that results are identical across standard
/// library implementations — replications are defined purely by their seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Reseeds; the all-zero state is unreachable by construction.
  void Seed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform integer in [lo, hi], inclusive; lo <= hi. Unbiased (rejection).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Splits off an independent generator (for per-entity streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace gtpl::rng

#endif  // GTPL_RNG_RNG_H_
