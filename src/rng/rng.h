#ifndef GTPL_RNG_RNG_H_
#define GTPL_RNG_RNG_H_

#include <cstdint>

namespace gtpl::rng {

/// One step of the SplitMix64 stream at state `x`: increments by the golden
/// ratio and applies the output finalizer. A cheap, high-quality 64->64
/// mixer; the harness builds collision-free per-(point, replication) seed
/// streams out of it.
uint64_t SplitMix64(uint64_t x);

/// Engine components that draw randomness independently of the workload.
/// Each gets a dedicated SplitMix64-derived stream off the run's base seed,
/// so enabling one model (e.g. bandwidth queueing) never perturbs another's
/// draws (e.g. think times) — the ROADMAP "per-component RNG streams" item.
enum class SeedStream : uint64_t {
  kNetJitter = 1,      // MatrixLatency per-message jitter
  kNetQueue = 2,       // LinkModel cross-traffic phase offsets
  // Workload-generator sub-streams (active when an access-pattern knob —
  // zipf_theta or repeat_prob — is nonzero; at the paper defaults the
  // generator keeps its single legacy stream so existing runs replay bit
  // for bit). Splitting item selection and read/write mix off the base
  // stream means toggling an access-pattern knob no longer perturbs think
  // and idle times, which stay on the generator's base stream.
  kWorkloadItems = 3,  // item-count, item-selection, repeat draws
  kWorkloadMix = 4,    // per-operation read/write mode draws
};

/// Seed of `stream`'s dedicated generator under `base_seed`. Keyed with an
/// odd multiplier (like harness::PointSeed / ReplicaSeed) so nearby base
/// seeds and different streams never alias.
uint64_t StreamSeed(uint64_t base_seed, SeedStream stream);

/// Deterministic xoshiro256** generator seeded via SplitMix64.
///
/// Self-contained (no <random>) so that results are identical across standard
/// library implementations — replications are defined purely by their seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Reseeds; the all-zero state is unreachable by construction.
  void Seed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next64();

  /// Uniform integer in [lo, hi], inclusive; lo <= hi. Unbiased (rejection).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Splits off an independent generator (for per-entity streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace gtpl::rng

#endif  // GTPL_RNG_RNG_H_
