#ifndef GTPL_RNG_DISTRIBUTIONS_H_
#define GTPL_RNG_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "rng/rng.h"

namespace gtpl::rng {

/// Uniform integer distribution over an inclusive range [lo, hi], matching
/// the paper's U[min,max] think/idle/access-count parameters.
class UniformInt {
 public:
  UniformInt(int64_t lo, int64_t hi);

  int64_t Sample(Rng& rng) const { return rng.UniformInt(lo_, hi_); }
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }
  double Mean() const { return 0.5 * static_cast<double>(lo_ + hi_); }

 private:
  int64_t lo_;
  int64_t hi_;
};

/// Samples `k` distinct values from [0, n) via partial Fisher-Yates.
/// Used to pick a transaction's access set from the hot-item pool.
std::vector<int32_t> SampleDistinct(Rng& rng, int32_t n, int32_t k);

/// Zipf(n, theta) over ranks 1..n mapped to values 0..n-1 (extension beyond
/// the paper's uniform access; theta = 0 degenerates to uniform).
/// Inverse-CDF over a precomputed table: O(log n) per sample.
class Zipf {
 public:
  Zipf(int32_t n, double theta);

  int32_t Sample(Rng& rng) const;
  int32_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int32_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i)
};

}  // namespace gtpl::rng

#endif  // GTPL_RNG_DISTRIBUTIONS_H_
