#include "db/lock_table.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::db {

LockTable::LockTable(int32_t num_items)
    : items_(static_cast<size_t>(num_items)) {
  GTPL_CHECK_GT(num_items, 0);
}

bool LockTable::ConflictsWithGranted(const ItemLocks& locks, LockMode mode) {
  for (const LockRequest& holder : locks.granted) {
    if (!Compatible(holder.mode, mode)) return true;
  }
  return false;
}

LockResult LockTable::Request(TxnId txn, ItemId item, LockMode mode) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), items_.size());
  ItemLocks& locks = items_[static_cast<size_t>(item)];
  for (const LockRequest& holder : locks.granted) {
    GTPL_CHECK_NE(holder.txn, txn) << "txn re-requested a held item";
  }
  for (const LockRequest& waiter : locks.waiting) {
    GTPL_CHECK_NE(waiter.txn, txn) << "txn re-requested a queued item";
  }
  // FIFO fairness: grant only if compatible with holders and nothing waits.
  if (locks.waiting.empty() && !ConflictsWithGranted(locks, mode)) {
    locks.granted.push_back(LockRequest{txn, mode});
    held_[txn].push_back(item);
    return LockResult::kGranted;
  }
  locks.waiting.push_back(LockRequest{txn, mode});
  queued_[txn].push_back(item);
  return LockResult::kWaiting;
}

void LockTable::ReleaseAll(TxnId txn, const GrantCallback& on_grant) {
  std::vector<ItemId> touched;
  if (auto it = queued_.find(txn); it != queued_.end()) {
    for (ItemId item : it->second) {
      auto& waiting = items_[static_cast<size_t>(item)].waiting;
      auto pos = std::find_if(
          waiting.begin(), waiting.end(),
          [txn](const LockRequest& r) { return r.txn == txn; });
      GTPL_CHECK(pos != waiting.end());
      waiting.erase(pos);
      touched.push_back(item);
    }
    queued_.erase(it);
  }
  if (auto it = held_.find(txn); it != held_.end()) {
    std::vector<ItemId> released = std::move(it->second);
    held_.erase(it);
    for (ItemId item : released) {
      auto& granted = items_[static_cast<size_t>(item)].granted;
      auto pos =
          std::find_if(granted.begin(), granted.end(),
                       [txn](const LockRequest& r) { return r.txn == txn; });
      GTPL_CHECK(pos != granted.end());
      granted.erase(pos);
      touched.push_back(item);
    }
  }
  // Removing a queued request can unblock waiters behind it even when no
  // lock was held on that item, so promote on every touched item.
  for (ItemId item : touched) PromoteWaiters(item, on_grant);
}

void LockTable::PromoteWaiters(ItemId item, const GrantCallback& on_grant) {
  ItemLocks& locks = items_[static_cast<size_t>(item)];
  while (!locks.waiting.empty()) {
    const LockRequest& head = locks.waiting.front();
    if (ConflictsWithGranted(locks, head.mode)) break;
    LockRequest granted = head;
    locks.waiting.pop_front();
    locks.granted.push_back(granted);
    held_[granted.txn].push_back(item);
    auto& queue_list = queued_[granted.txn];
    queue_list.erase(std::find(queue_list.begin(), queue_list.end(), item));
    if (queue_list.empty()) queued_.erase(granted.txn);
    on_grant(granted.txn, item, granted.mode);
  }
}

std::vector<TxnId> LockTable::Blockers(TxnId txn, ItemId item) const {
  const ItemLocks& locks = items_[static_cast<size_t>(item)];
  // Find the txn's queued position and mode.
  auto self = std::find_if(
      locks.waiting.begin(), locks.waiting.end(),
      [txn](const LockRequest& r) { return r.txn == txn; });
  GTPL_CHECK(self != locks.waiting.end()) << "Blockers() for non-waiter";
  std::vector<TxnId> blockers;
  for (const LockRequest& holder : locks.granted) {
    if (!Compatible(holder.mode, self->mode)) blockers.push_back(holder.txn);
  }
  for (auto it = locks.waiting.begin(); it != self; ++it) {
    if (!Compatible(it->mode, self->mode)) blockers.push_back(it->txn);
  }
  return blockers;
}

bool LockTable::Holds(TxnId txn, ItemId item) const {
  auto it = held_.find(txn);
  if (it == held_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), item) !=
         it->second.end();
}

int32_t LockTable::NumHolders(ItemId item) const {
  return static_cast<int32_t>(items_[static_cast<size_t>(item)].granted.size());
}

int32_t LockTable::NumWaiters(ItemId item) const {
  return static_cast<int32_t>(items_[static_cast<size_t>(item)].waiting.size());
}

std::vector<ItemId> LockTable::HeldItems(TxnId txn) const {
  auto it = held_.find(txn);
  if (it == held_.end()) return {};
  return it->second;
}

int64_t LockTable::TotalHeld() const {
  int64_t total = 0;
  for (const ItemLocks& locks : items_) {
    total += static_cast<int64_t>(locks.granted.size());
  }
  return total;
}

int64_t LockTable::TotalWaiters() const {
  int64_t total = 0;
  for (const ItemLocks& locks : items_) {
    total += static_cast<int64_t>(locks.waiting.size());
  }
  return total;
}

}  // namespace gtpl::db
