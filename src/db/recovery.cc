#include "db/recovery.h"

#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace gtpl::db {

RecoveryResult Recover(const WriteAheadLog& log, DataStore* store) {
  GTPL_CHECK(store != nullptr);
  RecoveryResult result;
  // Pass 1: outcomes. A transaction is a winner iff a commit record exists
  // in the retained suffix; kInstall records are server-side and count as
  // their own (already-permanent) class.
  std::unordered_set<TxnId> winners;
  std::unordered_set<TxnId> losers;
  for (const LogRecord& record : log.records()) {
    if (record.lsn > log.durable_lsn()) break;  // never redo volatile tail
    switch (record.kind) {
      case LogRecordKind::kCommit:
        winners.insert(record.txn);
        ++result.committed_txns;
        break;
      case LogRecordKind::kAbort:
        losers.insert(record.txn);
        ++result.aborted_txns;
        break;
      default:
        break;
    }
  }
  // Pass 2: redo in log order.
  for (const LogRecord& record : log.records()) {
    if (record.lsn > log.durable_lsn()) break;
    const bool is_update = record.kind == LogRecordKind::kUpdate ||
                           record.kind == LogRecordKind::kInstall;
    if (!is_update) continue;
    const bool winner = record.kind == LogRecordKind::kInstall ||
                        winners.count(record.txn) > 0;
    if (!winner) {
      ++result.skipped_updates;
      continue;
    }
    if (store->VersionOf(record.item) < record.version) {
      store->Install(record.item, record.version);
      ++result.redone_updates;
    } else {
      ++result.skipped_updates;  // already permanent: idempotent redo
    }
  }
  return result;
}

}  // namespace gtpl::db
