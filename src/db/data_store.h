#ifndef GTPL_DB_DATA_STORE_H_
#define GTPL_DB_DATA_STORE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace gtpl::db {

/// The server's installed database: one versioned copy per hot data item.
///
/// The simulation does not model item contents, only versions; versions let
/// the tests reconstruct reads-from relationships and prove serializability,
/// and let protocols assert they never install a stale copy.
class DataStore {
 public:
  explicit DataStore(int32_t num_items);

  int32_t num_items() const { return static_cast<int32_t>(versions_.size()); }

  /// Version of the installed copy.
  Version VersionOf(ItemId item) const;

  /// Installs `version` as the new committed copy. Must be >= the current
  /// version (equal when a circulation made no update).
  void Install(ItemId item, Version version);

  /// Convenience: bumps the version by one (an in-place server-side write).
  Version Bump(ItemId item);

  /// Total installs performed (including no-op reads returning unchanged).
  int64_t installs() const { return installs_; }

 private:
  std::vector<Version> versions_;
  int64_t installs_ = 0;
};

}  // namespace gtpl::db

#endif  // GTPL_DB_DATA_STORE_H_
