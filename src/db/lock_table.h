#ifndef GTPL_DB_LOCK_TABLE_H_
#define GTPL_DB_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace gtpl::db {

/// Outcome of a lock request.
enum class LockResult {
  kGranted,   // lock acquired immediately
  kWaiting,   // request enqueued behind conflicting holders/waiters
};

/// One granted or queued lock.
struct LockRequest {
  TxnId txn = kInvalidTxn;
  LockMode mode = LockMode::kShared;
};

/// Strict-2PL lock table with per-item FIFO wait queues, as run by the
/// paper's data server for s-2PL.
///
/// Grant policy: a request is granted iff it is compatible with every
/// current holder AND no conflicting request waits ahead of it (FIFO
/// fairness, preventing writer starvation). When locks are released, the
/// maximal compatible prefix of the queue is granted in order.
///
/// The table has no deadlock policy of its own; the caller pairs it with
/// WaitsForGraph and aborts victims.
class LockTable {
 public:
  /// Called when a queued request is granted (never for immediate grants).
  using GrantCallback = std::function<void(TxnId txn, ItemId item, LockMode)>;

  explicit LockTable(int32_t num_items);

  /// Requests `mode` on `item` for `txn`. A transaction must not request an
  /// item it already holds or waits for (the workload generator guarantees
  /// distinct items per transaction).
  LockResult Request(TxnId txn, ItemId item, LockMode mode);

  /// Releases every lock and queued request of `txn`, granting any newly
  /// unblocked waiters via `on_grant`.
  void ReleaseAll(TxnId txn, const GrantCallback& on_grant);

  /// Transactions whose grant `txn` is currently waiting behind on `item`:
  /// conflicting holders plus conflicting earlier waiters. Used to build the
  /// waits-for graph.
  std::vector<TxnId> Blockers(TxnId txn, ItemId item) const;

  /// True iff `txn` currently holds `item` in any mode.
  bool Holds(TxnId txn, ItemId item) const;

  /// Number of granted locks on `item`.
  int32_t NumHolders(ItemId item) const;

  /// Number of queued (waiting) requests on `item`.
  int32_t NumWaiters(ItemId item) const;

  /// Items currently held by `txn`.
  std::vector<ItemId> HeldItems(TxnId txn) const;

  /// Total granted locks across all items (a metrics-registry gauge).
  int64_t TotalHeld() const;

  /// Total queued (waiting) requests across all items (a metrics gauge).
  int64_t TotalWaiters() const;

 private:
  struct ItemLocks {
    std::vector<LockRequest> granted;
    std::deque<LockRequest> waiting;
  };

  /// True if `request` conflicts with any entry of `granted`.
  static bool ConflictsWithGranted(const ItemLocks& locks, LockMode mode);

  /// Grants the maximal compatible queue prefix after a release.
  void PromoteWaiters(ItemId item, const GrantCallback& on_grant);

  std::vector<ItemLocks> items_;
  // txn -> items it holds (for O(1) release); waiting items tracked too.
  std::unordered_map<TxnId, std::vector<ItemId>> held_;
  std::unordered_map<TxnId, std::vector<ItemId>> queued_;
};

}  // namespace gtpl::db

#endif  // GTPL_DB_LOCK_TABLE_H_
