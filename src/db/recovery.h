#ifndef GTPL_DB_RECOVERY_H_
#define GTPL_DB_RECOVERY_H_

#include <unordered_set>

#include "common/types.h"
#include "db/data_store.h"
#include "db/wal.h"

namespace gtpl::db {

/// Result of replaying a write-ahead log into a data store.
struct RecoveryResult {
  int64_t redone_updates = 0;    // committed updates applied
  int64_t skipped_updates = 0;   // losers' updates (no commit record)
  int64_t committed_txns = 0;
  int64_t aborted_txns = 0;
};

/// Redo-only restart over the retained (durable, non-truncated) log suffix:
/// the standard WAL discipline the paper assumes for both protocols
/// ("each site uses WAL and garbage collects its log once the data are made
/// permanent at the server"). Updates of transactions with a commit record
/// are re-installed into `store` unless the store already holds a version
/// at least as new (idempotent); updates of loser transactions (abort
/// record or no outcome at all) are skipped — clients keep before-images
/// implicitly by never installing uncommitted state into the store.
RecoveryResult Recover(const WriteAheadLog& log, DataStore* store);

}  // namespace gtpl::db

#endif  // GTPL_DB_RECOVERY_H_
