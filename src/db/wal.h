#ifndef GTPL_DB_WAL_H_
#define GTPL_DB_WAL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace gtpl::db {

/// Kind of a write-ahead-log record.
enum class LogRecordKind : uint8_t {
  kUpdate = 0,   // a client's local update (before-image discipline implied)
  kCommit = 1,
  kAbort = 2,
  kInstall = 3,  // server made a version permanent
  kPrepare = 4,  // cross-server 2PC: coordinator/participant prepared
};

/// One WAL record. Contents are not modeled; versions identify updates.
struct LogRecord {
  int64_t lsn = 0;
  LogRecordKind kind = LogRecordKind::kUpdate;
  TxnId txn = kInvalidTxn;
  ItemId item = kInvalidItem;
  Version version = 0;
};

/// Write-ahead log for one site.
///
/// The paper assumes "the standard protocol adopted by the s-2PL protocol
/// where each site uses WAL and garbage collects its log once the data are
/// made permanent at the server". This class provides that substrate:
/// append, force (durability point), and truncation once the server
/// acknowledges permanence. Forcing may carry a simulated delay, applied by
/// the caller via force_delay(); it defaults to 0 so recovery bookkeeping
/// does not perturb the reproduced performance numbers.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(SimTime force_delay = 0);

  /// Appends a record; returns its LSN. Records are durable once a Force()
  /// with lsn >= record.lsn completes.
  int64_t Append(LogRecordKind kind, TxnId txn, ItemId item, Version version);

  /// Marks everything up to `lsn` durable; returns the simulated delay the
  /// caller must charge (0 when already durable).
  SimTime Force(int64_t lsn);

  /// Garbage-collects records with lsn <= `lsn` (data permanent at server).
  void TruncateThrough(int64_t lsn);

  int64_t next_lsn() const { return next_lsn_; }
  int64_t durable_lsn() const { return durable_lsn_; }
  int64_t truncated_lsn() const { return truncated_lsn_; }
  SimTime force_delay() const { return force_delay_; }

  /// Records still retained (not yet truncated).
  const std::deque<LogRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Total appends / forces performed (for metrics & tests).
  int64_t appends() const { return next_lsn_ - 1; }
  int64_t forces() const { return forces_; }

 private:
  SimTime force_delay_;
  std::deque<LogRecord> records_;
  int64_t next_lsn_ = 1;
  int64_t durable_lsn_ = 0;
  int64_t truncated_lsn_ = 0;
  int64_t forces_ = 0;
};

}  // namespace gtpl::db

#endif  // GTPL_DB_WAL_H_
