#include "db/wal.h"

#include "common/check.h"

namespace gtpl::db {

WriteAheadLog::WriteAheadLog(SimTime force_delay)
    : force_delay_(force_delay) {
  GTPL_CHECK_GE(force_delay, 0);
}

int64_t WriteAheadLog::Append(LogRecordKind kind, TxnId txn, ItemId item,
                              Version version) {
  const int64_t lsn = next_lsn_++;
  records_.push_back(LogRecord{lsn, kind, txn, item, version});
  return lsn;
}

SimTime WriteAheadLog::Force(int64_t lsn) {
  GTPL_CHECK_LT(lsn, next_lsn_);
  if (lsn <= durable_lsn_) return 0;
  durable_lsn_ = lsn;
  ++forces_;
  return force_delay_;
}

void WriteAheadLog::TruncateThrough(int64_t lsn) {
  GTPL_CHECK_LE(lsn, durable_lsn_)
      << "cannot garbage-collect records that were never made durable";
  while (!records_.empty() && records_.front().lsn <= lsn) {
    records_.pop_front();
  }
  if (lsn > truncated_lsn_) truncated_lsn_ = lsn;
}

}  // namespace gtpl::db
