#ifndef GTPL_DB_WAITS_FOR_GRAPH_H_
#define GTPL_DB_WAITS_FOR_GRAPH_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace gtpl::db {

/// Waits-for graph for s-2PL deadlock detection.
///
/// Edge a -> b means "a waits for b". Following the paper (and commercial
/// practice), detection is initiated whenever a lock cannot be granted; the
/// caller then asks whether the new waiter closed a cycle and aborts it.
class WaitsForGraph {
 public:
  WaitsForGraph() = default;

  /// Declares that `waiter` now waits for every transaction in `holders`.
  void AddWaits(TxnId waiter, const std::vector<TxnId>& holders);

  /// Removes every edge in or out of `txn` (commit or abort).
  void RemoveTxn(TxnId txn);

  /// Removes only `txn`'s outgoing edges: its lock request was granted, so
  /// it waits for nobody, but others may still wait for it.
  void ClearWaits(TxnId txn);

  /// True iff a cycle through `start` is reachable (DFS from `start`).
  bool HasCycleFrom(TxnId start) const;

  /// All transactions on some cycle through `start`, in discovery order;
  /// empty when there is no such cycle. Used to pick abort victims.
  std::vector<TxnId> CycleThrough(TxnId start) const;

  /// Number of outgoing wait edges of `txn`.
  int32_t OutDegree(TxnId txn) const;

  size_t num_nodes() const { return out_.size(); }

 private:
  std::unordered_map<TxnId, std::unordered_set<TxnId>> out_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> in_;
};

}  // namespace gtpl::db

#endif  // GTPL_DB_WAITS_FOR_GRAPH_H_
