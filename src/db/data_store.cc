#include "db/data_store.h"

#include "common/check.h"

namespace gtpl::db {

DataStore::DataStore(int32_t num_items)
    : versions_(static_cast<size_t>(num_items), 0) {
  GTPL_CHECK_GT(num_items, 0);
}

Version DataStore::VersionOf(ItemId item) const {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), versions_.size());
  return versions_[static_cast<size_t>(item)];
}

void DataStore::Install(ItemId item, Version version) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), versions_.size());
  GTPL_CHECK_GE(version, versions_[static_cast<size_t>(item)])
      << "attempted to install a stale copy of item " << item;
  versions_[static_cast<size_t>(item)] = version;
  ++installs_;
}

Version DataStore::Bump(ItemId item) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), versions_.size());
  ++installs_;
  return ++versions_[static_cast<size_t>(item)];
}

}  // namespace gtpl::db
