#include "db/waits_for_graph.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::db {

void WaitsForGraph::AddWaits(TxnId waiter,
                             const std::vector<TxnId>& holders) {
  for (TxnId holder : holders) {
    if (holder == waiter) continue;
    out_[waiter].insert(holder);
    in_[holder].insert(waiter);
  }
}

void WaitsForGraph::RemoveTxn(TxnId txn) {
  if (auto it = out_.find(txn); it != out_.end()) {
    for (TxnId to : it->second) {
      if (auto jt = in_.find(to); jt != in_.end()) {
        jt->second.erase(txn);
        if (jt->second.empty()) in_.erase(jt);
      }
    }
    out_.erase(it);
  }
  if (auto it = in_.find(txn); it != in_.end()) {
    for (TxnId from : it->second) {
      if (auto jt = out_.find(from); jt != out_.end()) {
        jt->second.erase(txn);
        if (jt->second.empty()) out_.erase(jt);
      }
    }
    in_.erase(it);
  }
}

void WaitsForGraph::ClearWaits(TxnId txn) {
  auto it = out_.find(txn);
  if (it == out_.end()) return;
  for (TxnId to : it->second) {
    if (auto jt = in_.find(to); jt != in_.end()) {
      jt->second.erase(txn);
      if (jt->second.empty()) in_.erase(jt);
    }
  }
  out_.erase(it);
}

bool WaitsForGraph::HasCycleFrom(TxnId start) const {
  // DFS over nodes reachable from `start`; a cycle through `start` exists
  // iff `start` is reachable from one of its successors.
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  if (auto it = out_.find(start); it != out_.end()) {
    for (TxnId next : it->second) stack.push_back(next);
  }
  while (!stack.empty()) {
    TxnId node = stack.back();
    stack.pop_back();
    if (node == start) return true;
    if (!visited.insert(node).second) continue;
    if (auto it = out_.find(node); it != out_.end()) {
      for (TxnId next : it->second) stack.push_back(next);
    }
  }
  return false;
}

std::vector<TxnId> WaitsForGraph::CycleThrough(TxnId start) const {
  // DFS with parent tracking to reconstruct one cycle through `start`.
  std::unordered_map<TxnId, TxnId> parent;
  std::vector<TxnId> stack;
  if (auto it = out_.find(start); it != out_.end()) {
    for (TxnId next : it->second) {
      if (parent.emplace(next, start).second) stack.push_back(next);
    }
  }
  while (!stack.empty()) {
    TxnId node = stack.back();
    stack.pop_back();
    if (node == start) continue;
    if (auto it = out_.find(node); it != out_.end()) {
      for (TxnId next : it->second) {
        if (next == start) {
          // Reconstruct start -> ... -> node -> start.
          std::vector<TxnId> cycle;
          for (TxnId cur = node; cur != start; cur = parent.at(cur)) {
            cycle.push_back(cur);
          }
          cycle.push_back(start);
          std::reverse(cycle.begin(), cycle.end());
          return cycle;
        }
        if (parent.emplace(next, node).second) stack.push_back(next);
      }
    }
  }
  return {};
}

int32_t WaitsForGraph::OutDegree(TxnId txn) const {
  auto it = out_.find(txn);
  return it == out_.end() ? 0 : static_cast<int32_t>(it->second.size());
}

}  // namespace gtpl::db
