#include "obs/export.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace gtpl::obs {
namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void AppendEventJsonl(const TraceEvent& e, std::string* out) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"seq\":%llu,\"t\":%lld,\"kind\":\"%s\",\"txn\":%lld,\"site\":%d,"
      "\"peer\":%d,\"item\":%d,\"shard\":%d,\"mode\":%d,\"flag\":%d,"
      "\"payload\":%lld,\"d0\":%lld,\"d1\":%lld,\"d2\":%lld,\"d3\":%lld,"
      "\"d4\":%lld,\"label\":\"",
      static_cast<unsigned long long>(e.seq),
      static_cast<long long>(e.time), ToString(e.kind),
      static_cast<long long>(e.txn), e.site, e.peer, e.item, e.shard, e.mode,
      e.flag ? 1 : 0, static_cast<long long>(e.payload),
      static_cast<long long>(e.d0), static_cast<long long>(e.d1),
      static_cast<long long>(e.d2), static_cast<long long>(e.d3),
      static_cast<long long>(e.d4));
  *out += buf;
  AppendEscaped(e.label, out);
  *out += '"';
  if (!e.entries.empty()) {
    *out += ",\"fl\":[";
    for (size_t i = 0; i < e.entries.size(); ++i) {
      if (i > 0) *out += ',';
      const FlEntrySnapshot& entry = e.entries[i];
      *out += entry.is_read_group ? "{\"rg\":1,\"txns\":["
                                  : "{\"rg\":0,\"txns\":[";
      for (size_t j = 0; j < entry.txns.size(); ++j) {
        if (j > 0) *out += ',';
        *out += std::to_string(entry.txns[j]);
      }
      *out += "]}";
    }
    *out += ']';
  }
  *out += "}\n";
}

namespace {

/// Strict sequential parser for the exact shape AppendEventJsonl writes.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : text_(line) {}

  bool Literal(const char* expect) {
    const size_t len = std::strlen(expect);
    if (text_.compare(pos_, len, expect) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Int(int64_t* out) {
    size_t end = pos_;
    if (end < text_.size() && text_[end] == '-') ++end;
    while (end < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[end]))) {
      ++end;
    }
    if (end == pos_) return false;
    *out = std::stoll(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  bool QuotedString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      *out += c;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }
  bool Done() const { return pos_ == text_.size(); }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

bool ParseLine(const std::string& line, TraceEvent* e, std::string* error) {
  LineParser p(line);
  int64_t v = 0;
  std::string kind_name;
  const bool header =
      p.Literal("{\"seq\":") && p.Int(&v) && ((e->seq = static_cast<uint64_t>(v)), true) &&
      p.Literal(",\"t\":") && p.Int(&v) && ((e->time = v), true) &&
      p.Literal(",\"kind\":") && p.QuotedString(&kind_name) &&
      p.Literal(",\"txn\":") && p.Int(&v) && ((e->txn = v), true) &&
      p.Literal(",\"site\":") && p.Int(&v) && ((e->site = static_cast<SiteId>(v)), true) &&
      p.Literal(",\"peer\":") && p.Int(&v) && ((e->peer = static_cast<SiteId>(v)), true) &&
      p.Literal(",\"item\":") && p.Int(&v) && ((e->item = static_cast<ItemId>(v)), true) &&
      p.Literal(",\"shard\":") && p.Int(&v) && ((e->shard = static_cast<int32_t>(v)), true) &&
      p.Literal(",\"mode\":") && p.Int(&v) && ((e->mode = static_cast<int32_t>(v)), true) &&
      p.Literal(",\"flag\":") && p.Int(&v) && ((e->flag = v != 0), true) &&
      p.Literal(",\"payload\":") && p.Int(&v) && ((e->payload = v), true) &&
      p.Literal(",\"d0\":") && p.Int(&e->d0) &&
      p.Literal(",\"d1\":") && p.Int(&e->d1) &&
      p.Literal(",\"d2\":") && p.Int(&e->d2) &&
      p.Literal(",\"d3\":") && p.Int(&e->d3) &&
      p.Literal(",\"d4\":") && p.Int(&e->d4) &&
      p.Literal(",\"label\":") && p.QuotedString(&e->label);
  if (!header || !ParseEventKind(kind_name, &e->kind)) {
    if (error != nullptr) *error = "malformed event line: " + line;
    return false;
  }
  if (p.Peek(',')) {
    if (!p.Literal(",\"fl\":[")) {
      if (error != nullptr) *error = "malformed fl array: " + line;
      return false;
    }
    while (!p.Peek(']')) {
      FlEntrySnapshot entry;
      if (!p.Literal("{\"rg\":") || !p.Int(&v)) return false;
      entry.is_read_group = v != 0;
      if (!p.Literal(",\"txns\":[")) return false;
      while (!p.Peek(']')) {
        int64_t txn = 0;
        if (!p.Int(&txn)) return false;
        entry.txns.push_back(txn);
        if (p.Peek(',')) p.Literal(",");
      }
      if (!p.Literal("]}")) return false;
      e->entries.push_back(std::move(entry));
      if (p.Peek(',')) p.Literal(",");
    }
    if (!p.Literal("]")) return false;
  }
  if (!p.Literal("}") || !p.Done()) {
    if (error != nullptr) *error = "trailing garbage: " + line;
    return false;
  }
  return true;
}

}  // namespace

void WriteJsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  std::string buffer;
  buffer.reserve(events.size() * 160);
  for (const TraceEvent& e : events) AppendEventJsonl(e, &buffer);
  out << buffer;
}

std::string ToJsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  WriteJsonl(events, out);
  return out.str();
}

bool ReadJsonl(std::istream& in, std::vector<TraceEvent>* events,
               std::string* error) {
  std::string line;
  int64_t line_no = 0;
  bool have_prev = false;
  SimTime prev_time = 0;
  uint64_t prev_seq = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceEvent e;
    if (!ParseLine(line, &e, error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + *error;
      }
      return false;
    }
    // Every writer stamps a dense, time-monotone (time, seq) order, so the
    // pairs must be strictly increasing lexicographically; anything else is
    // a corrupted, truncated-and-rejoined, or hand-spliced file.
    if (have_prev &&
        (e.time < prev_time || (e.time == prev_time && e.seq <= prev_seq))) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) +
                 ": out-of-order or duplicate event: (t=" +
                 std::to_string(e.time) + ",seq=" + std::to_string(e.seq) +
                 ") after (t=" + std::to_string(prev_time) + ",seq=" +
                 std::to_string(prev_seq) + ")";
      }
      return false;
    }
    have_prev = true;
    prev_time = e.time;
    prev_seq = e.seq;
    events->push_back(std::move(e));
  }
  return true;
}

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out) {
  // Transactions render as complete slices on their client's track; the
  // protocol machinery renders as instant events. Times are simulated units
  // reported as microseconds (Chrome's trace unit) — relative durations are
  // what matters.
  out << "[";
  bool first = true;
  int64_t dropped_transport = 0;
  SimTime last_time = 0;
  std::unordered_map<TxnId, SimTime> begin_time;
  auto comma = [&out, &first] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const TraceEvent& e : events) {
    last_time = e.time;
    switch (e.kind) {
      case EventKind::kTxnBegin:
        begin_time[e.txn] = e.time;
        break;
      case EventKind::kTxnCommit:
      case EventKind::kTxnAbort: {
        auto it = begin_time.find(e.txn);
        if (it == begin_time.end()) break;
        comma();
        const bool commit = e.kind == EventKind::kTxnCommit;
        out << "{\"name\":\"txn " << e.txn
            << (commit ? " commit" : " abort") << "\",\"ph\":\"X\",\"ts\":"
            << it->second << ",\"dur\":" << (e.time - it->second)
            << ",\"pid\":0,\"tid\":" << e.site;
        if (commit) {
          out << ",\"args\":{\"lock_wait\":" << e.d0
              << ",\"propagation\":" << e.d1 << ",\"queueing\":" << e.d2
              << ",\"execution\":" << e.d3 << ",\"commit\":" << e.d4 << "}";
        }
        out << "}";
        begin_time.erase(it);
        break;
      }
      case EventKind::kMsgSend:
      case EventKind::kMsgDeliver:
        // Too dense for the viewer; JSONL keeps the full detail. Counted
        // (not silently cut): a metadata event announces the omission.
        ++dropped_transport;
        break;
      default: {
        comma();
        out << "{\"name\":\"" << ToString(e.kind) << "\",\"ph\":\"i\",\"ts\":"
            << e.time << ",\"pid\":0,\"tid\":" << (e.site >= 0 ? e.site : 0)
            << ",\"s\":\"t\"}";
      }
    }
  }
  if (dropped_transport > 0) {
    comma();
    out << "{\"name\":\"transport events omitted\",\"ph\":\"i\",\"ts\":"
        << last_time << ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":"
        << "{\"dropped_msg_events\":" << dropped_transport << "}}";
    std::fprintf(stderr,
                 "WriteChromeTrace: omitted %lld msg_send/msg_deliver events "
                 "(too dense for the viewer; the JSONL export keeps them)\n",
                 static_cast<long long>(dropped_transport));
  }
  out << "]\n";
}

}  // namespace gtpl::obs
