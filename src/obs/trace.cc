#include "obs/trace.h"

namespace gtpl::obs {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnBegin: return "txn_begin";
    case EventKind::kTxnCommit: return "txn_commit";
    case EventKind::kTxnAbort: return "txn_abort";
    case EventKind::kLockRequest: return "lock_request";
    case EventKind::kLockGrant: return "lock_grant";
    case EventKind::kLockRelease: return "lock_release";
    case EventKind::kWindowDispatch: return "window_dispatch";
    case EventKind::kWindowExpand: return "window_expand";
    case EventKind::kFlHandoff: return "fl_handoff";
    case EventKind::kReaderRelease: return "reader_release";
    case EventKind::kWriterRelease: return "writer_release";
    case EventKind::kGraphCheck: return "graph_check";
    case EventKind::kPrepare: return "prepare";
    case EventKind::kVote: return "vote";
    case EventKind::kDecide: return "decide";
    case EventKind::kMsgSend: return "msg_send";
    case EventKind::kMsgDeliver: return "msg_deliver";
    case EventKind::kLeaseGrant: return "lease_grant";
    case EventKind::kLeaseRevoke: return "lease_revoke";
    case EventKind::kLeaseRelease: return "lease_release";
  }
  return "unknown";
}

bool ParseEventKind(const std::string& name, EventKind* out) {
  static constexpr EventKind kAll[] = {
      EventKind::kTxnBegin,       EventKind::kTxnCommit,
      EventKind::kTxnAbort,       EventKind::kLockRequest,
      EventKind::kLockGrant,      EventKind::kLockRelease,
      EventKind::kWindowDispatch, EventKind::kWindowExpand,
      EventKind::kFlHandoff,      EventKind::kReaderRelease,
      EventKind::kWriterRelease,  EventKind::kGraphCheck,
      EventKind::kPrepare,        EventKind::kVote,
      EventKind::kDecide,         EventKind::kMsgSend,
      EventKind::kMsgDeliver,     EventKind::kLeaseGrant,
      EventKind::kLeaseRevoke,    EventKind::kLeaseRelease,
  };
  for (EventKind kind : kAll) {
    if (name == ToString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace gtpl::obs
