#include "obs/sink.h"

#include <utility>

#include "obs/export.h"

namespace gtpl::obs {

StreamSink::StreamSink(const std::string& path, int64_t flush_bytes)
    : out_(path, std::ios::binary | std::ios::trunc),
      watermark_(flush_bytes < 1 ? 1 : flush_bytes) {
  ok_ = out_.good();
  buffer_.reserve(static_cast<size_t>(watermark_) + 256);
}

StreamSink::~StreamSink() { Flush(); }

void StreamSink::Append(const TraceEvent& event) {
  // Serialize the line first so the flush-before-append decision sees its
  // exact size; flushing early keeps the buffer under the watermark.
  std::string line;
  AppendEventJsonl(event, &line);
  if (!buffer_.empty() &&
      static_cast<int64_t>(buffer_.size() + line.size()) > watermark_) {
    Flush();
  }
  buffer_ += line;
  if (static_cast<int64_t>(buffer_.size()) > peak_buffer_) {
    peak_buffer_ = static_cast<int64_t>(buffer_.size());
  }
  if (static_cast<int64_t>(buffer_.size()) >= watermark_) Flush();
}

void StreamSink::Flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  ok_ = ok_ && out_.good();
  bytes_written_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
}

void TraceMerger::Flush(SimTime bound) {
  std::vector<std::vector<TraceEvent>> chunks;
  chunks.reserve(lps_.size());
  for (Tracer* lp : lps_) chunks.push_back(lp->TakeBelow(bound));
  MergeChunks(std::move(chunks));
}

void TraceMerger::FlushAll() {
  std::vector<std::vector<TraceEvent>> chunks;
  chunks.reserve(lps_.size());
  for (Tracer* lp : lps_) chunks.push_back(lp->Take());
  MergeChunks(std::move(chunks));
}

void TraceMerger::MergeChunks(std::vector<std::vector<TraceEvent>> chunks) {
  // K-way merge by (time, lp, per-LP seq). Each chunk is already sorted by
  // (time, seq) — per-LP streams are time-monotone with dense seq — so a
  // linear front scan suffices; k is the shard count, which is small. Ties
  // on time resolve to the lowest LP because only a strictly smaller time
  // steals the front slot from an earlier LP.
  std::vector<size_t> pos(chunks.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (pos[i] >= chunks[i].size()) continue;
      if (best < 0 || chunks[i][pos[i]].time < chunks[best][pos[best]].time) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    TraceEvent e = std::move(chunks[best][pos[best]]);
    ++pos[best];
    e.seq = next_global_seq_++;
    if (sink_ != nullptr) {
      sink_->Append(e);
    } else {
      merged_.push_back(std::move(e));
    }
  }
}

}  // namespace gtpl::obs
