#ifndef GTPL_OBS_METRICS_H_
#define GTPL_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace gtpl::obs {

/// One time-series sample: the value of one registered series at one
/// sampling instant. `series` indexes MetricsRegistry::names(); `shard` is
/// -1 for engine-global (or kernel) series and the shard index for
/// per-shard series.
struct MetricRow {
  SimTime time = 0;
  int32_t shard = -1;
  int32_t series = 0;
  int64_t value = 0;

  friend bool operator==(const MetricRow& a, const MetricRow& b) {
    return a.time == b.time && a.shard == b.shard && a.series == b.series &&
           a.value == b.value;
  }
};

/// A named sample read back from a metrics file (the series index is
/// resolved to its name so readers don't need the registry).
struct MetricSample {
  SimTime time = 0;
  int32_t shard = -1;
  std::string name;
  int64_t value = 0;
};

/// Registry of named gauges/counters sampled at a fixed simulated-time
/// interval (DESIGN.md §16). Registration order defines the series order
/// within each sampling instant, so two runs that register the same probes
/// produce byte-identical output files. Probes are read-only closures over
/// engine state: sampling never draws random numbers and never mutates the
/// engine, so enabling metrics cannot perturb results.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a probe. `name` is the series name (e.g. "locks_held");
  /// `shard` is -1 for global series. Returns the series index.
  int32_t Register(std::string name, int32_t shard,
                   std::function<int64_t()> probe);

  /// Appends one row per registered series, in registration order, stamped
  /// with `time`.
  void SampleAll(SimTime time);

  /// Appends one row directly (the parallel engine samples per-LP state at
  /// barriers without registered probes).
  void AppendRow(SimTime time, int32_t shard, int32_t series, int64_t value) {
    rows_.push_back(MetricRow{time, shard, series, value});
  }

  size_t num_series() const { return probes_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<MetricRow>& rows() const { return rows_; }
  std::vector<MetricRow> TakeRows() {
    std::vector<MetricRow> out = std::move(rows_);
    rows_.clear();
    return out;
  }
  std::vector<std::string> TakeNames() {
    std::vector<std::string> out = std::move(names_);
    names_.clear();
    return out;
  }

 private:
  struct Probe {
    int32_t shard;
    std::function<int64_t()> fn;
  };
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<MetricRow> rows_;
};

/// Metrics file formats behind simulate's --metrics-format flag.
enum class MetricsFormat {
  kCsv = 0,    // header `time,shard,metric,value`, one row per line
  kJsonl = 1,  // one {"t":..,"shard":..,"metric":"..","v":..} object per line
};

/// Writes rows as CSV with the fixed header `time,shard,metric,value`.
/// Output is byte-deterministic: integer-only values, series names from the
/// registry, rows in sample order.
void WriteMetricsCsv(const std::vector<std::string>& names,
                     const std::vector<MetricRow>& rows, std::ostream& out);

/// Serializes to a string (WriteMetricsCsv into a buffer).
std::string MetricsToCsv(const std::vector<std::string>& names,
                         const std::vector<MetricRow>& rows);

/// Writes rows as JSONL, one object per line, fixed key order.
void WriteMetricsJsonl(const std::vector<std::string>& names,
                       const std::vector<MetricRow>& rows, std::ostream& out);

/// Parses a CSV metrics file written by WriteMetricsCsv. Returns false on
/// the first malformed line; `error` gets a diagnostic when non-null.
bool ReadMetricsCsv(std::istream& in, std::vector<MetricSample>* samples,
                    std::string* error = nullptr);

}  // namespace gtpl::obs

#endif  // GTPL_OBS_METRICS_H_
