#ifndef GTPL_OBS_EXPORT_H_
#define GTPL_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gtpl::obs {

/// Trace file formats behind simulate's --trace-format flag.
enum class TraceFormat {
  kJsonl = 0,   // one JSON object per line; canonical, machine-readable
  kChrome = 1,  // Chrome trace-event JSON (load in chrome://tracing / Perfetto)
};

/// Appends the canonical one-line JSONL serialization of `event`
/// (including the trailing newline) to `out`. This is THE serializer: the
/// buffered writer (WriteJsonl) and the streaming sink (obs/sink.h) both
/// call it, so streamed and buffered traces of the same run are
/// byte-identical by construction.
void AppendEventJsonl(const TraceEvent& event, std::string* out);

/// Writes `events` as JSONL: one object per line with a fixed key order and
/// integer-only values (plus the escaped label string), so equal event
/// streams serialize to byte-identical files — the determinism tests diff
/// the raw bytes.
void WriteJsonl(const std::vector<TraceEvent>& events, std::ostream& out);

/// Serializes to a string (WriteJsonl into a buffer).
std::string ToJsonl(const std::vector<TraceEvent>& events);

/// Parses a JSONL trace produced by WriteJsonl. Returns false (and stops)
/// on the first malformed line; `error` gets a diagnostic when non-null.
/// Strict about stream order as well as shape: events must be strictly
/// increasing in (time, seq) — a duplicate or out-of-order pair is
/// rejected with a line-numbered diagnostic (every writer in this repo
/// stamps dense sequence numbers in time order, so a violation means a
/// corrupted or hand-spliced file).
bool ReadJsonl(std::istream& in, std::vector<TraceEvent>* events,
               std::string* error = nullptr);

/// Writes `events` in the Chrome trace-event format: one complete ("X")
/// slice per committed/aborted transaction (pid = shardless, tid = client
/// site) plus instant events for the protocol machinery, timestamps in
/// simulated time units.
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);

}  // namespace gtpl::obs

#endif  // GTPL_OBS_EXPORT_H_
