#ifndef GTPL_OBS_EXPORT_H_
#define GTPL_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gtpl::obs {

/// Trace file formats behind simulate's --trace-format flag.
enum class TraceFormat {
  kJsonl = 0,   // one JSON object per line; canonical, machine-readable
  kChrome = 1,  // Chrome trace-event JSON (load in chrome://tracing / Perfetto)
};

/// Writes `events` as JSONL: one object per line with a fixed key order and
/// integer-only values (plus the escaped label string), so equal event
/// streams serialize to byte-identical files — the determinism tests diff
/// the raw bytes.
void WriteJsonl(const std::vector<TraceEvent>& events, std::ostream& out);

/// Serializes to a string (WriteJsonl into a buffer).
std::string ToJsonl(const std::vector<TraceEvent>& events);

/// Parses a JSONL trace produced by WriteJsonl. Returns false (and stops)
/// on the first malformed line; `error` gets a diagnostic when non-null.
bool ReadJsonl(std::istream& in, std::vector<TraceEvent>* events,
               std::string* error = nullptr);

/// Writes `events` in the Chrome trace-event format: one complete ("X")
/// slice per committed/aborted transaction (pid = shardless, tid = client
/// site) plus instant events for the protocol machinery, timestamps in
/// simulated time units.
void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& out);

}  // namespace gtpl::obs

#endif  // GTPL_OBS_EXPORT_H_
