#ifndef GTPL_OBS_SINK_H_
#define GTPL_OBS_SINK_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace gtpl::obs {

/// Bounded-memory chunked JSONL writer (DESIGN.md §16). Each appended event
/// is serialized with the same AppendEventJsonl call the buffered path uses,
/// so a streamed file is byte-identical to the post-hoc WriteJsonl of the
/// same event sequence — by construction, not by test alone (the test pins
/// it anyway).
///
/// Memory bound: the chunk buffer is flushed BEFORE an append would push it
/// past the watermark, so peak buffer occupancy never exceeds
/// max(watermark, longest single line). peak_buffer_bytes() reports the
/// observed peak for the acceptance check.
class StreamSink : public TraceSink {
 public:
  /// Opens `path` for writing (truncating). `flush_bytes` is the chunk
  /// watermark; values < 1 are clamped to 1 (flush every event).
  StreamSink(const std::string& path, int64_t flush_bytes);
  ~StreamSink() override;

  StreamSink(const StreamSink&) = delete;
  StreamSink& operator=(const StreamSink&) = delete;

  void Append(const TraceEvent& event) override;
  void Flush() override;

  bool ok() const { return ok_; }
  int64_t bytes_written() const { return bytes_written_; }
  int64_t peak_buffer_bytes() const { return peak_buffer_; }

 private:
  std::ofstream out_;
  bool ok_ = false;
  int64_t watermark_;
  int64_t bytes_written_ = 0;
  int64_t peak_buffer_ = 0;
  std::string buffer_;
};

/// Deterministic k-way merge of per-LP trace streams (DESIGN.md §16).
///
/// The parallel engine gives every LP its own Tracer (stamped with the LP's
/// local clock and a dense per-LP seq). At each window barrier the kernel
/// guarantees that every event with time < horizon has executed on every LP
/// and that no future event can be stamped below the horizon, so the merger
/// can irrevocably drain each tracer's prefix below the horizon and order
/// the union by (time, lp, per-LP seq) — exactly the kernel's deterministic
/// channel order. Merged events are re-stamped with a dense global seq, so
/// the output is indistinguishable in shape from a serial trace (and
/// byte-identical at any thread count, since barrier state is
/// thread-count-invariant).
class TraceMerger {
 public:
  /// `lps` must outlive the merger; one tracer per LP, in LP order.
  explicit TraceMerger(std::vector<Tracer*> lps) : lps_(std::move(lps)) {}

  /// Routes merged events to `sink` instead of the in-memory buffer.
  void SetSink(TraceSink* sink) { sink_ = sink; }

  /// Drains every LP's events with time < `bound`, merges them into the
  /// global order, and appends them to the sink or the buffer. Safe to call
  /// only from the barrier (single-threaded, all LPs quiescent).
  void Flush(SimTime bound);

  /// Final drain: merges everything still buffered in the LP tracers.
  void FlushAll();

  /// Moves the merged in-memory events out (empty when a sink is set).
  std::vector<TraceEvent> Take() {
    std::vector<TraceEvent> out = std::move(merged_);
    merged_.clear();
    return out;
  }

  uint64_t merged_count() const { return next_global_seq_; }

 private:
  void MergeChunks(std::vector<std::vector<TraceEvent>> chunks);

  std::vector<Tracer*> lps_;
  TraceSink* sink_ = nullptr;
  uint64_t next_global_seq_ = 0;
  std::vector<TraceEvent> merged_;
};

}  // namespace gtpl::obs

#endif  // GTPL_OBS_SINK_H_
