#ifndef GTPL_OBS_TRACE_H_
#define GTPL_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace gtpl::obs {

/// Kind of a structured trace event (DESIGN.md §11). The taxonomy covers the
/// full protocol surface: transaction lifecycle, lock traffic, g-2PL window
/// mechanics, two-phase commit rounds, and raw message transport.
enum class EventKind : uint8_t {
  kTxnBegin = 0,    // client started a transaction
  kTxnCommit = 1,   // transaction committed; d0..d4 carry its span phases
  kTxnAbort = 2,    // server abort decision; d0 = age at decision
  kLockRequest = 3, // lock/data request reached a server
  kLockGrant = 4,   // grant/data reached the client; d0 = op lock wait
  kLockRelease = 5, // server released a committed txn's locks / installed
  kWindowDispatch = 6,  // g-2PL window dispatched; entries = forward list
  kWindowExpand = 7,    // g-2PL read-group expansion; entries = new list
  kFlHandoff = 8,       // client forwarded an item along its forward list
  kReaderRelease = 9,   // a reader's release reached the following writer
  kWriterRelease = 10,  // a committed writer released its update
  kGraphCheck = 11,     // precedence-graph acyclicity audit; flag = acyclic
  kPrepare = 12,        // 2PC prepare reached participant `shard`
  kVote = 13,           // 2PC vote reached the coordinator; flag = yes
  kDecide = 14,         // 2PC commit decision reached participant `shard`
  kMsgSend = 15,        // message entered the transport at `site`
  kMsgDeliver = 16,     // message delivered at `site`; d0..d3 = queueing
  kLeaseGrant = 17,     // server granted a site lease; site = holder
  kLeaseRevoke = 18,    // server sent a revoke callback; site = target
  kLeaseRelease = 19,   // server processed a lease release; site = holder
};

/// Stable lowercase name of `kind` (the JSONL wire name).
const char* ToString(EventKind kind);

/// Inverse of ToString; returns false if `name` is not a known kind.
bool ParseEventKind(const std::string& name, EventKind* out);

/// One forward-list entry snapshot attached to window events.
struct FlEntrySnapshot {
  bool is_read_group = false;
  std::vector<TxnId> txns;

  friend bool operator==(const FlEntrySnapshot& a, const FlEntrySnapshot& b) {
    return a.is_read_group == b.is_read_group && a.txns == b.txns;
  }
};

/// One structured trace event. Events are totally ordered by (time, seq):
/// `seq` is the emission index, which is deterministic because the simulator
/// executes same-tick events in schedule order — two runs with the same seed
/// produce byte-identical streams, at any worker-thread count (traces are
/// buffered per replication and written post-hoc). No wall-clock anywhere.
///
/// The integer detail fields d0..d4 are kind-specific:
///   kTxnCommit:  d0 lock-wait, d1 propagation, d2 transmission+queueing,
///                d3 execution (think), d4 commit phase — the span.
///   kTxnAbort:   d0 age at the abort decision.
///   kLockGrant:  d0 this operation's lock wait, d1 its total wait.
///   kMsgSend:    d0 sender uplink queueing, d1 transmission delay.
///   kMsgDeliver: d0 sender queueing, d1 propagation, d2 receiver queueing,
///                d3 transmission delay.
struct TraceEvent {
  uint64_t seq = 0;  // stamped by Tracer::Emit; stable same-tick tiebreak
  SimTime time = 0;  // simulated time; stamped by Tracer::Emit
  EventKind kind = EventKind::kTxnBegin;
  TxnId txn = kInvalidTxn;
  SiteId site = -1;   // where the event happened (-1: not site-bound)
  SiteId peer = -1;   // the other endpoint, for message/abort events
  ItemId item = kInvalidItem;
  int32_t shard = 0;  // shard index (0 in single-server runs)
  int32_t mode = -1;  // -1 none, 0 shared, 1 exclusive
  bool flag = false;  // kGraphCheck: acyclic; kVote: yes
  int64_t payload = 0;
  int64_t d0 = 0;
  int64_t d1 = 0;
  int64_t d2 = 0;
  int64_t d3 = 0;
  int64_t d4 = 0;
  std::string label;
  std::vector<FlEntrySnapshot> entries;  // window events only

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.seq == b.seq && a.time == b.time && a.kind == b.kind &&
           a.txn == b.txn && a.site == b.site && a.peer == b.peer &&
           a.item == b.item && a.shard == b.shard && a.mode == b.mode &&
           a.flag == b.flag && a.payload == b.payload && a.d0 == b.d0 &&
           a.d1 == b.d1 && a.d2 == b.d2 && a.d3 == b.d3 && a.d4 == b.d4 &&
           a.label == b.label && a.entries == b.entries;
  }
};

/// Destination for events as they are emitted. The streaming implementation
/// (obs/sink.h) bounds memory by flushing serialized chunks to a file; the
/// default (no sink attached) is the Tracer's in-memory buffer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Accepts one fully-stamped event (seq and time already set).
  virtual void Append(const TraceEvent& event) = 0;

  /// Pushes any buffered bytes to the backing store.
  virtual void Flush() = 0;
};

/// Trace source. Zero overhead when disabled: Emit is a single branch and
/// every call site guards the (possibly costly) event construction behind
/// enabled(). Emission never draws random numbers and never schedules
/// events, so enabling tracing cannot perturb a run — metrics are
/// bit-identical with tracing on or off.
///
/// Events either accumulate in an in-memory buffer (the default; Take()
/// drains it) or stream to an attached TraceSink (SetSink; the buffer then
/// stays empty and memory is bounded by the sink's flush watermark).
class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Binds the simulated clock used to stamp events.
  void Attach(const sim::Simulator* simulator) { simulator_ = simulator; }

  /// Binds an arbitrary clock callback instead of a Simulator — the
  /// parallel engine's per-LP tracers read their ShardSim's local clock.
  void AttachClock(std::function<SimTime()> clock) {
    clock_ = std::move(clock);
  }

  /// Routes every emitted event to `sink` instead of the in-memory buffer.
  /// Pass nullptr to restore buffering.
  void SetSink(TraceSink* sink) { sink_ = sink; }

  void Enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  /// Appends `event`, stamping time and the next sequence number. No-op
  /// when disabled.
  void Emit(TraceEvent event) {
    if (!enabled_) return;
    event.seq = next_seq_++;
    event.time = simulator_ != nullptr
                     ? simulator_->Now()
                     : (clock_ ? clock_() : 0);
    if (sink_ != nullptr) {
      sink_->Append(event);
      return;
    }
    events_.push_back(std::move(event));
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Moves the buffered events out (the tracer is empty afterwards).
  std::vector<TraceEvent> Take() {
    std::vector<TraceEvent> out = std::move(events_);
    events_.clear();
    return out;
  }

  /// Moves out the prefix of buffered events with time < `bound`, keeping
  /// the rest. Buffered events are time-monotone (the clock never goes
  /// backwards), so the prefix is exactly the events below the bound. Used
  /// by the parallel-trace merger, whose barrier guarantees no future event
  /// on this LP can be stamped < bound.
  std::vector<TraceEvent> TakeBelow(SimTime bound) {
    size_t n = 0;
    while (n < events_.size() && events_[n].time < bound) ++n;
    std::vector<TraceEvent> out;
    out.reserve(n);
    out.insert(out.end(), std::make_move_iterator(events_.begin()),
               std::make_move_iterator(events_.begin() + n));
    events_.erase(events_.begin(), events_.begin() + n);
    return out;
  }

 private:
  const sim::Simulator* simulator_ = nullptr;
  std::function<SimTime()> clock_;
  TraceSink* sink_ = nullptr;
  bool enabled_ = false;
  uint64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace gtpl::obs

#endif  // GTPL_OBS_TRACE_H_
