#include "obs/metrics.h"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

namespace gtpl::obs {

int32_t MetricsRegistry::Register(std::string name, int32_t shard,
                                  std::function<int64_t()> probe) {
  const int32_t index = static_cast<int32_t>(names_.size());
  names_.push_back(std::move(name));
  probes_.push_back(Probe{shard, std::move(probe)});
  return index;
}

void MetricsRegistry::SampleAll(SimTime time) {
  for (size_t i = 0; i < probes_.size(); ++i) {
    rows_.push_back(MetricRow{time, probes_[i].shard,
                              static_cast<int32_t>(i), probes_[i].fn()});
  }
}

void WriteMetricsCsv(const std::vector<std::string>& names,
                     const std::vector<MetricRow>& rows, std::ostream& out) {
  std::string buffer = "time,shard,metric,value\n";
  char line[160];
  for (const MetricRow& row : rows) {
    std::snprintf(line, sizeof(line), "%lld,%d,%s,%lld\n",
                  static_cast<long long>(row.time), row.shard,
                  names[static_cast<size_t>(row.series)].c_str(),
                  static_cast<long long>(row.value));
    buffer += line;
  }
  out << buffer;
}

std::string MetricsToCsv(const std::vector<std::string>& names,
                         const std::vector<MetricRow>& rows) {
  std::ostringstream out;
  WriteMetricsCsv(names, rows, out);
  return out.str();
}

void WriteMetricsJsonl(const std::vector<std::string>& names,
                       const std::vector<MetricRow>& rows, std::ostream& out) {
  std::string buffer;
  char line[192];
  for (const MetricRow& row : rows) {
    std::snprintf(line, sizeof(line),
                  "{\"t\":%lld,\"shard\":%d,\"metric\":\"%s\",\"v\":%lld}\n",
                  static_cast<long long>(row.time), row.shard,
                  names[static_cast<size_t>(row.series)].c_str(),
                  static_cast<long long>(row.value));
    buffer += line;
  }
  out << buffer;
}

namespace {

bool ParseI64(const std::string& field, int64_t* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

bool ReadMetricsCsv(std::istream& in, std::vector<MetricSample>* samples,
                    std::string* error) {
  std::string line;
  int64_t line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " + line;
    }
    return false;
  };
  if (!std::getline(in, line)) return true;  // empty file: zero samples
  ++line_no;
  if (line != "time,shard,metric,value") return fail("bad header");
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t c1 = line.find(',');
    const size_t c2 = c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
    const size_t c3 = c2 == std::string::npos ? c2 : line.find(',', c2 + 1);
    if (c3 == std::string::npos) return fail("expected 4 fields");
    MetricSample s;
    int64_t shard = 0;
    if (!ParseI64(line.substr(0, c1), &s.time) ||
        !ParseI64(line.substr(c1 + 1, c2 - c1 - 1), &shard) ||
        !ParseI64(line.substr(c3 + 1), &s.value)) {
      return fail("non-integer field");
    }
    s.shard = static_cast<int32_t>(shard);
    s.name = line.substr(c2 + 1, c3 - c2 - 1);
    if (s.name.empty()) return fail("empty metric name");
    samples->push_back(std::move(s));
  }
  return true;
}

}  // namespace gtpl::obs
