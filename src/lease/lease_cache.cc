#include "lease/lease_cache.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::lease {

LeaseCache::LeaseCache(SimTime ttl, int32_t max_held)
    : ttl_(ttl), max_held_(max_held) {}

bool LeaseCache::Hit(ItemId item, LockMode mode, SimTime now,
                     Version* version) {
  auto it = entries_.find(item);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  if (entry.revoke_pending || Expired(entry, now)) return false;
  if (mode == LockMode::kExclusive && entry.mode != LockMode::kExclusive) {
    return false;  // upgrade needs a server round
  }
  entry.lru = ++lru_clock_;
  *version = entry.version;
  return true;
}

std::vector<ItemId> LeaseCache::Install(ItemId item, LockMode mode,
                                        Version version, SimTime now) {
  Entry& entry = entries_[item];
  // An upgrade grant keeps exclusive mode; a shared refresh never
  // downgrades a cached write lease.
  if (entry.mode != LockMode::kExclusive) entry.mode = mode;
  entry.version = version;
  entry.granted_at = now;
  entry.lru = ++lru_clock_;
  GTPL_CHECK(!entry.revoke_pending);  // server never grants mid-revoke
  std::vector<ItemId> evicted;
  if (max_held_ <= 0) return evicted;
  auto evictable = [this, item](const std::pair<const ItemId, Entry>& kv) {
    return kv.first != item && kv.second.pin == kInvalidTxn &&
           !kv.second.revoke_pending;
  };
  while (static_cast<int32_t>(entries_.size()) > max_held_) {
    auto victim = entries_.end();
    for (auto jt = entries_.begin(); jt != entries_.end(); ++jt) {
      if (!evictable(*jt)) continue;
      if (victim == entries_.end() || jt->second.lru < victim->second.lru) {
        victim = jt;
      }
    }
    if (victim == entries_.end()) break;  // everything pinned or revoking
    evicted.push_back(victim->first);
    entries_.erase(victim);
  }
  return evicted;
}

void LeaseCache::UpdateVersion(ItemId item, Version version) {
  auto it = entries_.find(item);
  if (it != entries_.end()) it->second.version = version;
}

bool LeaseCache::MarkRevoked(ItemId item) {
  auto it = entries_.find(item);
  if (it == entries_.end()) return false;
  it->second.revoke_pending = true;
  return it->second.pin == kInvalidTxn;
}

void LeaseCache::Drop(ItemId item) { entries_.erase(item); }

void LeaseCache::Pin(ItemId item, TxnId txn) {
  auto it = entries_.find(item);
  GTPL_CHECK(it != entries_.end());
  GTPL_CHECK(it->second.pin == kInvalidTxn || it->second.pin == txn);
  it->second.pin = txn;
}

std::vector<ItemId> LeaseCache::UnpinAll(TxnId txn) {
  std::vector<ItemId> due;
  for (auto& [item, entry] : entries_) {
    if (entry.pin != txn) continue;
    entry.pin = kInvalidTxn;
    if (entry.revoke_pending) due.push_back(item);
  }
  return due;
}

TxnId LeaseCache::PinOwner(ItemId item) const {
  auto it = entries_.find(item);
  return it == entries_.end() ? kInvalidTxn : it->second.pin;
}

std::vector<ItemId> LeaseCache::PinnedItems(TxnId txn) const {
  std::vector<ItemId> out;
  for (const auto& [item, entry] : entries_) {
    if (entry.pin == txn) out.push_back(item);
  }
  return out;
}

bool LeaseCache::Has(ItemId item) const {
  return entries_.find(item) != entries_.end();
}

bool LeaseCache::RevokePending(ItemId item) const {
  auto it = entries_.find(item);
  return it != entries_.end() && it->second.revoke_pending;
}

Version LeaseCache::VersionOf(ItemId item) const {
  auto it = entries_.find(item);
  return it == entries_.end() ? 0 : it->second.version;
}

}  // namespace gtpl::lease
