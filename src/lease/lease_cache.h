#ifndef GTPL_LEASE_LEASE_CACHE_H_
#define GTPL_LEASE_LEASE_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace gtpl::lease {

/// Client-side lease cache (DESIGN.md §14), the YFS lock_client_cache
/// analogue. Holds the leases granted to this site together with the
/// latest coherent version of each item, serves repeat lock acquisitions
/// locally (lease_hits), and tracks per-transaction pins so a revoke
/// callback arriving mid-transaction is deferred until the pinning
/// transaction drains.
///
/// Expiry is lazy: with a finite TTL an entry past its lifetime stops
/// serving hits (the next access re-fetches at the server, which still
/// lists this site as holder and refreshes the lease). Entries are only
/// removed by revocation or LRU eviction, so server and client holder
/// state never diverge silently.
class LeaseCache {
 public:
  LeaseCache(SimTime ttl, int32_t max_held);

  /// Serves `mode` on `item` from the cache at `now` if the lease is
  /// sufficient, unexpired, and not being revoked. On a hit, stores the
  /// cached version in `version` and refreshes the LRU stamp.
  bool Hit(ItemId item, LockMode mode, SimTime now, Version* version);

  /// Installs or refreshes a lease from a server grant. Returns the items
  /// evicted by the max_held LRU policy (unpinned, not revoke-pending);
  /// the caller sends a voluntary release for each.
  std::vector<ItemId> Install(ItemId item, LockMode mode, Version version,
                              SimTime now);

  /// Bumps the cached version after this site commits a write to `item`.
  void UpdateVersion(ItemId item, Version version);

  /// Marks `item` revoke-pending. Returns true if the item can be
  /// released right away (cached and not pinned); false if the release
  /// must wait for the pinning transaction (deferred) or the item is not
  /// cached at all (the caller replies with an idempotent release).
  bool MarkRevoked(ItemId item);

  /// Removes `item` (release sent, or revoke for an uncached item).
  void Drop(ItemId item);

  /// Pins `item` for `txn` (a granted operation); unpinned at txn end.
  void Pin(ItemId item, TxnId txn);

  /// Unpins every item pinned by `txn` and returns the revoke-pending ones
  /// whose deferred release is now due (the caller Drops and releases).
  std::vector<ItemId> UnpinAll(TxnId txn);

  /// Transaction currently pinning `item`, or kInvalidTxn.
  TxnId PinOwner(ItemId item) const;

  /// Items currently pinned by `txn`, ascending.
  std::vector<ItemId> PinnedItems(TxnId txn) const;

  bool Has(ItemId item) const;
  bool RevokePending(ItemId item) const;
  /// Cached version of `item`, or 0 when absent — the release fence: the
  /// newest version this site committed (or was granted) for the item.
  Version VersionOf(ItemId item) const;
  int64_t Size() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    LockMode mode = LockMode::kShared;
    Version version = 0;
    SimTime granted_at = 0;
    uint64_t lru = 0;
    TxnId pin = kInvalidTxn;
    bool revoke_pending = false;
  };

  bool Expired(const Entry& entry, SimTime now) const {
    return ttl_ > 0 && now - entry.granted_at > ttl_;
  }

  // std::map keeps eviction scans deterministic.
  std::map<ItemId, Entry> entries_;
  uint64_t lru_clock_ = 0;
  SimTime ttl_ = 0;
  int32_t max_held_ = 0;
};

}  // namespace gtpl::lease

#endif  // GTPL_LEASE_LEASE_CACHE_H_
