#include "lease/lease.h"

#include "common/check.h"

namespace gtpl::lease {

const char* ToString(LeaseMode mode) {
  switch (mode) {
    case LeaseMode::kNone:
      return "none";
    case LeaseMode::kSticky:
      return "sticky";
  }
  return "?";
}

const std::vector<LeaseModeInfo>& LeaseModes() {
  static const std::vector<LeaseModeInfo>* kModes =
      new std::vector<LeaseModeInfo>{
          {"none", "leases disabled: every lock acquisition pays the WAN round",
           LeaseMode::kNone},
          {"sticky",
           "sticky site leases with callback revocation: repeat acquisitions "
           "hit the client cache for zero flights",
           LeaseMode::kSticky},
      };
  return *kModes;
}

const LeaseModeInfo* FindLeaseMode(const std::string& name) {
  for (const LeaseModeInfo& info : LeaseModes()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const LeaseModeInfo& LeaseModeFor(LeaseMode mode) {
  for (const LeaseModeInfo& info : LeaseModes()) {
    if (info.mode == mode) return info;
  }
  GTPL_CHECK(false);  // every LeaseMode value is registered
  return LeaseModes().front();
}

std::string LeaseModeNames() {
  std::string out;
  for (const LeaseModeInfo& info : LeaseModes()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

Status ParseLeaseModeName(const std::string& name, LeaseMode* mode) {
  const LeaseModeInfo* info = FindLeaseMode(name);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown lease mode '" + name +
                                   "' (registered: " + LeaseModeNames() + ")");
  }
  *mode = info->mode;
  return Status::Ok();
}

}  // namespace gtpl::lease
