#ifndef GTPL_LEASE_LEASE_TABLE_H_
#define GTPL_LEASE_LEASE_TABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/types.h"

namespace gtpl::lease {

/// One queued lease request: the transaction that needs the item, the site
/// it runs at, the mode it needs, and when it entered the queue (the start
/// of its lease_revoke_wait sub-span).
struct LeaseWaiter {
  TxnId txn = kInvalidTxn;
  SiteId site = kServerSite;
  LockMode mode = LockMode::kShared;
  SimTime enqueued = 0;
};

/// Outcome of admitting one lease request.
struct AdmitOutcome {
  bool granted = false;
  /// Holder sites that must be sent a revoke callback (newly marked
  /// revoke-outstanding; the engine owns the message send).
  std::vector<SiteId> revoke_sites;
  /// Transaction at the head of the wait queue, on whose behalf the
  /// revokes were issued (the "collector" carried in the revoke message so
  /// the client can post a waits-for edge against its pinned transaction).
  TxnId collector = kInvalidTxn;
};

/// Outcome of promoting an item's wait queue after a release.
struct PromoteOutcome {
  std::vector<LeaseWaiter> granted;
  std::vector<SiteId> revoke_sites;  // for the new head, if still blocked
  TxnId collector = kInvalidTxn;     // head txn the revokes are for
};

/// Server-side sticky-lease state machine (DESIGN.md §14), the YFS
/// lock_server_cache analogue. Leases are *site*-granular and outlive
/// transactions: a read lease may be shared by many sites, a write lease is
/// exclusive to one. Requests that cannot be granted enqueue FIFO; the
/// table reports which holder sites need a revoke callback, and no grant is
/// issued while any revoke on the item is outstanding (the lease-coherence
/// invariant checked by the protocol-event layer).
///
/// The table is pure state: the owning engine sends revoke/grant messages,
/// stamps revoke-wait spans, and runs the conflict policy on blockers.
class LeaseTable {
 public:
  /// Admits a request for `mode` on `item` by `txn` at `site`. If the site
  /// already holds a sufficient lease (a race with client-side expiry or an
  /// in-flight release), the grant refreshes it. At most one request per
  /// site may be outstanding (MPL 1).
  AdmitOutcome Admit(TxnId txn, SiteId site, ItemId item, LockMode mode,
                     SimTime now);

  /// Processes a lease release from `site` (revoke reply or voluntary
  /// eviction). Idempotent: returns false if the site neither held the
  /// item nor had a revoke outstanding (a release/revoke crossing in
  /// flight). The caller should Promote(item) after a true return.
  bool Release(SiteId site, ItemId item);

  /// Grants the maximal compatible FIFO prefix of `item`'s queue (only
  /// when no revoke is outstanding) and, if the queue is still non-empty,
  /// issues revokes for the new head's conflicts.
  PromoteOutcome Promote(ItemId item, SimTime now);

  /// Removes `txn` from every wait queue (abort path). Returns the items
  /// it waited on, each of which the caller should Promote.
  std::vector<ItemId> RemoveTxn(TxnId txn);

  /// True iff `site` holds a lease on `item` sufficient for `mode`.
  bool Holds(SiteId site, ItemId item, LockMode mode) const;

  /// Holder sites whose lease conflicts with `mode` requested by `site`
  /// (excluding `site` itself), in deterministic (sorted) order.
  std::vector<SiteId> ConflictingHolders(SiteId site, ItemId item,
                                         LockMode mode) const;

  /// Transactions queued ahead of `txn` on `item`.
  std::vector<TxnId> QueuedAhead(TxnId txn, ItemId item) const;

  /// True iff a revoke to `site` on `item` is outstanding.
  bool RevokeOutstanding(SiteId site, ItemId item) const;

  /// Sites with an outstanding revoke on `item`, sorted. Every waiter on
  /// the item waits for all of them (no grant while a revoke is out), so
  /// their pinning transactions belong in every waiter's blocker set even
  /// when the waiter's mode is compatible with the holders.
  std::vector<SiteId> RevokedSites(ItemId item) const;

  /// Snapshot of `item`'s wait queue, front first (for re-posting fresh
  /// blocker sets to the conflict policy after the lease state changes).
  std::vector<LeaseWaiter> Waiters(ItemId item) const;

  /// Total queued waiters across all items (for tests).
  int64_t TotalWaiters() const;

  /// Total held site leases across all items (write lease + read leases;
  /// a metrics-registry gauge).
  int64_t TotalLeases() const;

 private:
  struct ItemLease {
    SiteId writer = -1;           // site holding the write lease, or -1
    std::vector<SiteId> readers;  // sites holding read leases, sorted
    std::vector<SiteId> revokes;  // sites with an outstanding revoke, sorted
    std::deque<LeaseWaiter> queue;

    bool Idle() const {
      return writer < 0 && readers.empty() && revokes.empty() && queue.empty();
    }
  };

  /// True iff `mode` at `site` is compatible with the current holders of
  /// `entry` (holders at `site` itself never conflict; an upgrade succeeds
  /// only once other holders are gone).
  static bool CompatibleWithHolders(const ItemLease& entry, SiteId site,
                                    LockMode mode);

  /// Installs `site` as a holder in `mode` (upgrading a read lease in
  /// place if needed).
  static void AddHolder(ItemLease& entry, SiteId site, LockMode mode);

  /// Marks every holder conflicting with the queue head revoke-outstanding
  /// and appends the newly marked sites to `out`.
  static void IssueRevokesForHead(ItemLease& entry, std::vector<SiteId>* out);

  // std::map keeps iteration deterministic for debugging helpers.
  std::map<ItemId, ItemLease> items_;
};

}  // namespace gtpl::lease

#endif  // GTPL_LEASE_LEASE_TABLE_H_
