#ifndef GTPL_LEASE_LEASE_H_
#define GTPL_LEASE_LEASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gtpl::lease {

/// Lease-based client lock caching (DESIGN.md §14). Selected per run by
/// SimConfig::lease / the `--lease=NAME` flag. kNone is the default and is
/// bit-identical to the pre-lease engines (the standing goldens and the
/// lease equivalence battery pin this).
enum class LeaseMode {
  /// Leases disabled: every lock acquisition pays the usual WAN round and
  /// the per-transaction lock table runs unchanged.
  kNone = 0,
  /// Sticky ownership, YFS lock_server_cache style: a grant is a per-item
  /// *site* lease that outlives the transaction. Repeat acquisitions at
  /// the holder site are satisfied from the client's LeaseCache with zero
  /// network flights (counted as lease_hits); conflicting requests at the
  /// server enqueue and trigger callback revocation (server -> holder
  /// revoke, holder drains the pinned local transaction, then releases).
  kSticky = 1,
};

const char* ToString(LeaseMode mode);

/// Per-run lease knobs, carried inside SimConfig.
struct LeaseOptions {
  LeaseMode mode = LeaseMode::kNone;
  /// Client-side lease lifetime in sim time units; 0 means leases never
  /// expire. Expiry is lazy: an expired entry stops serving local hits and
  /// the next access re-fetches (and refreshes) the lease at the server.
  SimTime ttl = 0;
  /// Maximum unpinned leases a client retains; 0 means unlimited. Excess
  /// entries are evicted least-recently-used with a voluntary release.
  int32_t max_held = 0;
};

/// One registered lease mode, mirroring cc::EngineInfo / CommitPathInfo:
/// the registry is the single place mapping LeaseMode values to string
/// names (--lease=<name>) and one-line summaries.
struct LeaseModeInfo {
  const char* name;     // registry key, e.g. "sticky"
  const char* summary;  // one-liner for --help and error listings
  LeaseMode mode;
};

/// All registered lease modes, in presentation order.
const std::vector<LeaseModeInfo>& LeaseModes();

/// Lease mode registered under `name`, or nullptr.
const LeaseModeInfo* FindLeaseMode(const std::string& name);

/// Registry entry of `mode` (every LeaseMode value has exactly one).
const LeaseModeInfo& LeaseModeFor(LeaseMode mode);

/// Comma-separated registered names, for error messages and usage text.
std::string LeaseModeNames();

/// Resolves `name` to its LeaseMode, or InvalidArgument listing the
/// registered names (the CLI strict-parsing convention, like
/// cc::ParseEngineName).
Status ParseLeaseModeName(const std::string& name, LeaseMode* mode);

}  // namespace gtpl::lease

#endif  // GTPL_LEASE_LEASE_H_
