#include "lease/lease_table.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::lease {
namespace {

bool SortedContains(const std::vector<SiteId>& v, SiteId site) {
  return std::binary_search(v.begin(), v.end(), site);
}

void SortedInsert(std::vector<SiteId>& v, SiteId site) {
  auto it = std::lower_bound(v.begin(), v.end(), site);
  if (it == v.end() || *it != site) v.insert(it, site);
}

void SortedErase(std::vector<SiteId>& v, SiteId site) {
  auto it = std::lower_bound(v.begin(), v.end(), site);
  if (it != v.end() && *it == site) v.erase(it);
}

}  // namespace

bool LeaseTable::CompatibleWithHolders(const ItemLease& entry, SiteId site,
                                       LockMode mode) {
  if (entry.writer >= 0 && entry.writer != site) return false;
  if (mode == LockMode::kExclusive) {
    for (SiteId r : entry.readers) {
      if (r != site) return false;
    }
  }
  return true;
}

void LeaseTable::AddHolder(ItemLease& entry, SiteId site, LockMode mode) {
  if (mode == LockMode::kExclusive) {
    SortedErase(entry.readers, site);
    GTPL_CHECK(entry.writer < 0 || entry.writer == site);
    entry.writer = site;
  } else {
    if (entry.writer == site) return;  // write lease already covers reads
    SortedInsert(entry.readers, site);
  }
}

void LeaseTable::IssueRevokesForHead(ItemLease& entry,
                                     std::vector<SiteId>* out) {
  GTPL_CHECK(!entry.queue.empty());
  const LeaseWaiter& head = entry.queue.front();
  std::vector<SiteId> targets;
  if (entry.writer >= 0 && entry.writer != head.site) {
    targets.push_back(entry.writer);
  }
  if (head.mode == LockMode::kExclusive) {
    for (SiteId r : entry.readers) {
      if (r != head.site) targets.push_back(r);
    }
  }
  std::sort(targets.begin(), targets.end());
  for (SiteId site : targets) {
    if (!SortedContains(entry.revokes, site)) {
      SortedInsert(entry.revokes, site);
      out->push_back(site);
    }
  }
}

AdmitOutcome LeaseTable::Admit(TxnId txn, SiteId site, ItemId item,
                               LockMode mode, SimTime now) {
  AdmitOutcome out;
  ItemLease& entry = items_[item];
  const bool revoke_pending = SortedContains(entry.revokes, site);
  if (entry.queue.empty() && entry.revokes.empty() &&
      CompatibleWithHolders(entry, site, mode)) {
    AddHolder(entry, site, mode);
    out.granted = true;
    return out;
  }
  // A holder site whose own lease is being revoked must queue like anyone
  // else; a holder with a *sufficient* untouched lease (client expired it
  // locally, or the request raced a release) gets a refresh only via the
  // grant path above, so here it waits its turn too.
  (void)revoke_pending;
  for (const LeaseWaiter& w : entry.queue) {
    GTPL_CHECK(w.txn != txn);   // one outstanding op per transaction
    GTPL_CHECK(w.site != site);  // MPL 1: one transaction per site
  }
  entry.queue.push_back(LeaseWaiter{txn, site, mode, now});
  IssueRevokesForHead(entry, &out.revoke_sites);
  out.collector = entry.queue.front().txn;
  return out;
}

bool LeaseTable::Release(SiteId site, ItemId item) {
  auto it = items_.find(item);
  if (it == items_.end()) return false;
  ItemLease& entry = it->second;
  bool changed = false;
  if (entry.writer == site) {
    entry.writer = -1;
    changed = true;
  }
  if (SortedContains(entry.readers, site)) {
    SortedErase(entry.readers, site);
    changed = true;
  }
  if (SortedContains(entry.revokes, site)) {
    SortedErase(entry.revokes, site);
    changed = true;
  }
  if (entry.Idle()) items_.erase(it);
  return changed;
}

PromoteOutcome LeaseTable::Promote(ItemId item, SimTime now) {
  (void)now;
  PromoteOutcome out;
  auto it = items_.find(item);
  if (it == items_.end()) return out;
  ItemLease& entry = it->second;
  // The lease-coherence invariant: nothing is granted while any revoke on
  // the item is outstanding.
  while (entry.revokes.empty() && !entry.queue.empty()) {
    const LeaseWaiter head = entry.queue.front();
    if (!CompatibleWithHolders(entry, head.site, head.mode)) break;
    entry.queue.pop_front();
    AddHolder(entry, head.site, head.mode);
    out.granted.push_back(head);
  }
  if (!entry.queue.empty()) {
    IssueRevokesForHead(entry, &out.revoke_sites);
    out.collector = entry.queue.front().txn;
  }
  if (entry.Idle()) items_.erase(it);
  return out;
}

std::vector<ItemId> LeaseTable::RemoveTxn(TxnId txn) {
  std::vector<ItemId> affected;
  for (auto it = items_.begin(); it != items_.end();) {
    ItemLease& entry = it->second;
    const size_t before = entry.queue.size();
    entry.queue.erase(
        std::remove_if(entry.queue.begin(), entry.queue.end(),
                       [txn](const LeaseWaiter& w) { return w.txn == txn; }),
        entry.queue.end());
    if (entry.queue.size() != before) affected.push_back(it->first);
    if (entry.Idle()) {
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  return affected;
}

bool LeaseTable::Holds(SiteId site, ItemId item, LockMode mode) const {
  auto it = items_.find(item);
  if (it == items_.end()) return false;
  const ItemLease& entry = it->second;
  if (entry.writer == site) return true;
  return mode == LockMode::kShared && SortedContains(entry.readers, site);
}

std::vector<SiteId> LeaseTable::ConflictingHolders(SiteId site, ItemId item,
                                                   LockMode mode) const {
  std::vector<SiteId> out;
  auto it = items_.find(item);
  if (it == items_.end()) return out;
  const ItemLease& entry = it->second;
  if (entry.writer >= 0 && entry.writer != site) out.push_back(entry.writer);
  if (mode == LockMode::kExclusive) {
    for (SiteId r : entry.readers) {
      if (r != site) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TxnId> LeaseTable::QueuedAhead(TxnId txn, ItemId item) const {
  std::vector<TxnId> out;
  auto it = items_.find(item);
  if (it == items_.end()) return out;
  for (const LeaseWaiter& w : it->second.queue) {
    if (w.txn == txn) break;
    out.push_back(w.txn);
  }
  return out;
}

bool LeaseTable::RevokeOutstanding(SiteId site, ItemId item) const {
  auto it = items_.find(item);
  return it != items_.end() && SortedContains(it->second.revokes, site);
}

std::vector<SiteId> LeaseTable::RevokedSites(ItemId item) const {
  auto it = items_.find(item);
  if (it == items_.end()) return {};
  return it->second.revokes;
}

std::vector<LeaseWaiter> LeaseTable::Waiters(ItemId item) const {
  auto it = items_.find(item);
  if (it == items_.end()) return {};
  return {it->second.queue.begin(), it->second.queue.end()};
}

int64_t LeaseTable::TotalWaiters() const {
  int64_t total = 0;
  for (const auto& [item, entry] : items_) {
    total += static_cast<int64_t>(entry.queue.size());
  }
  return total;
}

int64_t LeaseTable::TotalLeases() const {
  int64_t total = 0;
  for (const auto& [item, entry] : items_) {
    total += static_cast<int64_t>(entry.readers.size()) +
             (entry.writer >= 0 ? 1 : 0);
  }
  return total;
}

}  // namespace gtpl::lease
