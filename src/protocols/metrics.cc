#include "protocols/metrics.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace gtpl::proto {

double RunResult::AbortPercent() const {
  const int64_t total = commits + aborts;
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(aborts) / static_cast<double>(total);
}

double RunResult::Throughput() const {
  if (end_time <= 0) return 0.0;
  return 1000.0 * static_cast<double>(commits) /
         static_cast<double>(end_time);
}

namespace {

/// Iterative three-color DFS cycle check over an adjacency map.
bool HasCycle(
    const std::unordered_map<TxnId, std::unordered_set<TxnId>>& adj) {
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<TxnId, Color> color;
  for (const auto& [node, targets] : adj) {
    color.try_emplace(node, Color::kWhite);
    for (TxnId t : targets) color.try_emplace(t, Color::kWhite);
  }
  struct Frame {
    TxnId node;
    std::unordered_set<TxnId>::const_iterator next;
    bool has_children;
  };
  static const std::unordered_set<TxnId> kEmpty;
  for (const auto& [start, color_of_start] : color) {
    if (color_of_start != Color::kWhite) continue;
    std::vector<Frame> stack;
    auto push = [&](TxnId node) {
      color[node] = Color::kGray;
      auto it = adj.find(node);
      const auto& targets = it == adj.end() ? kEmpty : it->second;
      stack.push_back(Frame{node, targets.begin(), it != adj.end()});
    };
    push(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto it = adj.find(frame.node);
      const auto& targets = it == adj.end() ? kEmpty : it->second;
      if (frame.next == targets.end()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = *frame.next;
      ++frame.next;
      const Color c = color[next];
      if (c == Color::kGray) return true;
      if (c == Color::kWhite) push(next);
    }
  }
  return false;
}

}  // namespace

bool HistoryIsSerializable(const std::vector<CommittedTxn>& history,
                           std::string* explanation) {
  // Per item: version -> writing txn, and version -> readers.
  struct ItemHistory {
    std::map<Version, TxnId> writers;           // sorted by version
    std::map<Version, std::vector<TxnId>> readers_of;  // keyed by version read
  };
  std::unordered_map<ItemId, ItemHistory> per_item;
  for (const CommittedTxn& txn : history) {
    for (const OpRecord& op : txn.ops) {
      ItemHistory& h = per_item[op.item];
      if (op.mode == LockMode::kExclusive) {
        auto [it, inserted] = h.writers.emplace(op.version_written, txn.id);
        if (!inserted) {
          if (explanation != nullptr) {
            *explanation = "two committed writers produced version " +
                           std::to_string(op.version_written) + " of item " +
                           std::to_string(op.item);
          }
          return false;
        }
        // A writer also observes the version it overwrites.
        h.readers_of[op.version_read];  // ensure key exists (no self edge)
      } else {
        h.readers_of[op.version_read].push_back(txn.id);
      }
    }
  }

  std::unordered_map<TxnId, std::unordered_set<TxnId>> adj;
  auto add_edge = [&adj](TxnId a, TxnId b) {
    if (a != b) adj[a].insert(b);
  };
  for (const auto& [item, h] : per_item) {
    // Version order between consecutive committed writers, and the
    // read/write dependencies around each version.
    for (auto it = h.writers.begin(); it != h.writers.end(); ++it) {
      auto next = std::next(it);
      if (next != h.writers.end()) add_edge(it->second, next->second);
    }
    for (const auto& [version, readers] : h.readers_of) {
      // writer(version) -> readers (reads-from).
      if (auto w = h.writers.find(version); w != h.writers.end()) {
        for (TxnId r : readers) add_edge(w->second, r);
      }
      // readers -> writer of the next version (read happens before
      // overwrite).
      auto overwriter = h.writers.upper_bound(version);
      if (overwriter != h.writers.end()) {
        for (TxnId r : readers) add_edge(r, overwriter->second);
      }
    }
    // Writers read the version they overwrite; add writer-observed edges.
  }
  // Writers' own reads: writer of v+1 read version v, so writer(v) ->
  // writer(v+1) is already covered by version order when versions are
  // consecutive; non-consecutive gaps can only come from aborted in-between
  // writers, which never install. Handle the observed-read explicitly:
  for (const CommittedTxn& txn : history) {
    for (const OpRecord& op : txn.ops) {
      if (op.mode != LockMode::kExclusive) continue;
      const ItemHistory& h = per_item[op.item];
      if (auto w = h.writers.find(op.version_read); w != h.writers.end()) {
        add_edge(w->second, txn.id);
      }
    }
  }

  if (HasCycle(adj)) {
    if (explanation != nullptr) {
      *explanation = "serialization graph contains a cycle";
    }
    return false;
  }
  return true;
}

}  // namespace gtpl::proto
