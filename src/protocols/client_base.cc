// Client-side transaction lifecycle shared by every protocol engine.

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "protocols/engine.h"
#include "rng/rng.h"

namespace gtpl::proto {

EngineBase::EngineBase(const SimConfig& config) : config_(config) {
  GTPL_CHECK(config.Validate().ok()) << config.Validate().ToString();
  std::unique_ptr<net::LatencyModel> latency_model;
  if (config.latency_jitter == 0 && config.latency_spread == 0.0 &&
      config.server_latency < 0) {
    latency_model = std::make_unique<net::UniformLatency>(config.latency);
  } else {
    // Heterogeneous sites: per-endpoint distance offsets plus optional
    // per-message jitter (extension beyond the paper's uniform model).
    // Site layout: 0 = server, 1..num_clients = clients, then one extra
    // site per additional shard server (co-located with server 0, offset 0).
    const size_t client_sites = static_cast<size_t>(config.num_clients) + 1;
    const size_t sites =
        client_sites + static_cast<size_t>(config.num_servers - 1);
    std::vector<SimTime> offset(sites, 0);
    for (size_t site = 1; site < client_sites; ++site) {
      const double position =
          config.num_clients == 1
              ? 0.0
              : static_cast<double>(site - 1) / (config.num_clients - 1) - 0.5;
      offset[site] = static_cast<SimTime>(
          static_cast<double>(config.latency) * config.latency_spread *
          position / 2.0);
    }
    std::vector<std::vector<SimTime>> matrix(sites,
                                             std::vector<SimTime>(sites, 0));
    const auto is_server_site = [&](size_t site) {
      return site == 0 || site >= client_sites;
    };
    for (size_t a = 0; a < sites; ++a) {
      for (size_t b = 0; b < sites; ++b) {
        if (a == b) continue;
        if (config.server_latency >= 0 && is_server_site(a) &&
            is_server_site(b)) {
          // Fast inter-datacenter mesh between shard servers (the kCoord
          // commit path's motivating regime).
          matrix[a][b] = config.server_latency;
          continue;
        }
        matrix[a][b] =
            std::max<SimTime>(0, config.latency + offset[a] + offset[b]);
      }
    }
    // Jitter draws come from a dedicated SplitMix64-derived stream, so the
    // latency model never competes with workload/think-time generators for
    // random numbers (per-component streams, ROADMAP item).
    latency_model = std::make_unique<net::MatrixLatency>(
        std::move(matrix), config.latency_jitter,
        rng::StreamSeed(config.seed, rng::SeedStream::kNetJitter));
  }
  net::LinkConfig link;
  link.bandwidth = config.link_bandwidth;
  link.nic_queue = config.nic_queue;
  link.cross_traffic_load = config.cross_traffic_load;
  link.seed = rng::StreamSeed(config.seed, rng::SeedStream::kNetQueue);
  network_ = std::make_unique<net::Network>(&sim_, std::move(latency_model),
                                            link);
  // Shard servers (sites > num_clients) must count as servers in the
  // message-direction breakdown; harmless when there are none.
  network_->SetSiteLayout(config.num_clients);
  if (config.trace) network_->EnableTracing();
  tracer_.Attach(&sim_);
  if (config.obs_trace) tracer_.Enable();
  if (!config.trace_stream_path.empty()) {
    // Bounded-memory streaming: the tracer forwards every event to the
    // chunked JSONL sink instead of buffering (DESIGN.md §16).
    trace_sink_ = std::make_unique<obs::StreamSink>(config.trace_stream_path,
                                                    config.trace_flush_bytes);
    GTPL_CHECK(trace_sink_->ok())
        << "cannot open trace stream " << config.trace_stream_path;
    tracer_.SetSink(trace_sink_.get());
  }
  network_->SetTracer(&tracer_);
  // Full response / op-wait distributions behind the Welford means. Bucket
  // width tracks the configured latency (the natural unit of every round),
  // with generous headroom before the overflow bucket.
  {
    const double unit = static_cast<double>(std::max<SimTime>(config.latency, 8));
    result_.response_hist = stats::Histogram(unit * 8192.0, 8192);
    result_.op_wait_hist = stats::Histogram(unit * 1024.0, 4096);
    result_.xcommit_span_hist = stats::Histogram(unit * 1024.0, 4096);
  }
  store_ = std::make_unique<db::DataStore>(config.workload.num_items);
  server_wal_ = std::make_unique<db::WriteAheadLog>(config.wal_force_delay);
  clients_.resize(static_cast<size_t>(config.num_clients));
  gc_queues_.resize(static_cast<size_t>(config.num_clients));
  rng::Rng seeder(config.seed);
  for (int32_t i = 0; i < config.num_clients; ++i) {
    ClientState& client = clients_[static_cast<size_t>(i)];
    client.index = i;
    client.generator = std::make_unique<workload::WorkloadGenerator>(
        config.workload, seeder.Next64());
    client.wal =
        std::make_unique<db::WriteAheadLog>(config.wal_force_delay);
  }
}

EngineBase::ClientState& EngineBase::ClientOfSite(SiteId site) {
  GTPL_CHECK_GE(site, 1);
  GTPL_CHECK_LE(static_cast<size_t>(site), clients_.size());
  return clients_[static_cast<size_t>(site - 1)];
}

EngineBase::TxnRun* EngineBase::FindRun(TxnId txn) {
  auto it = txn_client_.find(txn);
  if (it == txn_client_.end()) return nullptr;
  TxnRun* run = clients_[static_cast<size_t>(it->second)].current.get();
  if (run == nullptr || run->id != txn) return nullptr;
  return run;
}

RunResult EngineBase::Run() {
  // Time-series sampling (DESIGN.md §16): one self-rescheduling event fires
  // at every multiple of the interval and reads the registered probes.
  // Probes are read-only and draw no randomness, so the run is
  // bit-identical with sampling on or off (the sampler's own fires are
  // subtracted from the event count below). The sampler stops rescheduling
  // once the queue is otherwise empty so a drain-ended run still drains.
  obs::MetricsRegistry metrics;
  uint64_t sampler_fires = 0;
  std::function<void()> sample;
  if (config_.metrics_interval > 0) {
    RegisterMetrics(&metrics);
    sample = [this, &metrics, &sampler_fires, &sample] {
      ++sampler_fires;
      metrics.SampleAll(sim_.Now());
      if (sim_.pending_events() > 0) {
        sim_.Schedule(config_.metrics_interval, sample);
      }
    };
    sim_.Schedule(config_.metrics_interval, sample);
  }
  for (ClientState& client : clients_) {
    const SimTime idle = client.generator->SampleIdle();
    sim_.Schedule(idle, [this, index = client.index] {
      BeginTxn(clients_[static_cast<size_t>(index)]);
    });
  }
  sim_.Run(config_.max_sim_time == 0 ? -1 : config_.max_sim_time);
  result_.timed_out = measured_commits_ < config_.measured_txns;
  if (config_.trace) result_.trace = network_->trace();
  result_.events = sim_.events_executed() - sampler_fires;
  result_.end_time = sim_.Now();
  result_.network = network_->stats();
  result_.max_link_utilization = network_->MaxLinkUtilization(sim_.Now());
  result_.queue_delay_p99 =
      network_->queue_delay_histogram().Percentile(0.99);
  result_.obs_trace = tracer_.Take();
  if (trace_sink_ != nullptr) {
    trace_sink_->Flush();
    result_.trace_stream_bytes = trace_sink_->bytes_written();
    result_.trace_peak_buffer = trace_sink_->peak_buffer_bytes();
  }
  if (config_.metrics_interval > 0) {
    result_.metrics = metrics.TakeRows();
    result_.metric_names = metrics.TakeNames();
  }
  result_.wal_appends = server_wal_->appends();
  result_.wal_forces = server_wal_->forces();
  result_.wal_retained = static_cast<int64_t>(server_wal_->size());
  for (const ClientState& client : clients_) {
    result_.wal_appends += client.wal->appends();
    result_.wal_forces += client.wal->forces();
    result_.wal_retained += static_cast<int64_t>(client.wal->size());
  }
  FillProtocolMetrics(&result_);
  return std::move(result_);
}

void EngineBase::BeginTxn(ClientState& client) {
  auto run = std::make_unique<TxnRun>();
  run->id = next_txn_id_++;
  run->client_index = client.index;
  run->spec = client.generator->NextTxn();
  run->spec.id = run->id;
  run->start_time = sim_.Now();
  if (client.current != nullptr) txn_client_.erase(client.current->id);
  txn_client_[run->id] = client.index;
  client.current = std::move(run);
  client.current->request_time = sim_.Now();
  if (tracer_.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnBegin;
    event.txn = client.current->id;
    event.site = client.current->site();
    event.payload = static_cast<int64_t>(client.current->spec.ops.size());
    tracer_.Emit(std::move(event));
  }
  IssueRequest(*client.current);
}

void EngineBase::ScheduleNextTxn(ClientState& client) {
  const SimTime idle = client.generator->SampleIdle();
  sim_.Schedule(idle, [this, index = client.index] {
    BeginTxn(clients_[static_cast<size_t>(index)]);
  });
}

void EngineBase::OpGranted(TxnRun& run, Version version_read) {
  GTPL_CHECK(!run.finished);
  const SimTime wait = sim_.Now() - run.request_time;
  if (result_.total_commits >= config_.warmup_txns) {
    result_.op_wait.Add(static_cast<double>(wait));
    result_.op_wait_hist.Add(static_cast<double>(wait));
  }
  // Span accounting: the grant/data flight's network components come from
  // the delivery being executed right now — valid only when this call is
  // inside a delivery *to this client* (cache-hit grants and timer-driven
  // grants get zero network attribution). What remains of the wait after
  // subtracting the request and grant flights is server-side lock wait.
  SimTime grant_prop = 0;
  SimTime grant_queue = 0;
  {
    const net::DeliveryInfo& d = network_->current_delivery();
    if (d.active && d.to == run.site()) {
      grant_prop = d.Propagation();
      grant_queue = d.Queueing();
    }
  }
  const SimTime op_lock_wait = std::max<SimTime>(
      0, wait - run.req_prop - run.req_queue - grant_prop - grant_queue);
  run.span.lock_wait += op_lock_wait;
  run.span.propagation += run.req_prop + grant_prop;
  run.span.queueing += run.req_queue + grant_queue;
  // Revoke-wait attribution (sticky leases): the server stamped how long
  // this op sat queued behind a lease revocation; clamp it into the
  // lock-wait sub-span so lease_revoke_wait <= lock_wait always holds.
  run.span.lease_revoke_wait +=
      std::min<SimTime>(run.pending_revoke_wait, op_lock_wait);
  run.pending_revoke_wait = 0;
  run.req_prop = 0;
  run.req_queue = 0;
  if (tracer_.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockGrant;
    event.txn = run.id;
    event.site = run.site();
    event.item = run.op().item;
    event.mode = static_cast<int32_t>(run.op().mode);
    event.d0 = op_lock_wait;
    event.d1 = wait;
    tracer_.Emit(std::move(event));
  }
  run.pending_version = version_read;
  ClientState& client = clients_[static_cast<size_t>(run.client_index)];
  const SimTime think = client.generator->SampleThink();
  run.span.execution += think;
  const TxnId txn = run.id;
  sim_.Schedule(think, [this, txn, index = run.client_index] {
    TxnRun* current = clients_[static_cast<size_t>(index)].current.get();
    if (current == nullptr || current->id != txn) return;  // superseded
    FinishOp(*current);
  });
}

void EngineBase::FinishOp(TxnRun& run) {
  if (run.doomed || run.finished) return;  // abort decision outran us
  const workload::Operation& op = run.op();
  OpRecord record;
  record.item = op.item;
  record.mode = op.mode;
  record.version_read = run.pending_version;
  record.version_written =
      op.mode == LockMode::kExclusive ? run.pending_version + 1 : 0;
  run.records.push_back(record);
  if (op.mode == LockMode::kExclusive) {
    ClientState& client = clients_[static_cast<size_t>(run.client_index)];
    client.wal->Append(db::LogRecordKind::kUpdate, run.id, op.item,
                       record.version_written);
  }
  if (run.LastOp()) {
    run.commit_start = sim_.Now();
    run.committing = true;
    StartCommit(run);
    return;
  }
  ++run.current_op;
  run.request_time = sim_.Now();
  IssueRequest(run);
}

void EngineBase::StartCommit(TxnRun& run) {
  GTPL_CHECK(!run.finished);
  GTPL_CHECK(!run.doomed);
  ClientState& client = clients_[static_cast<size_t>(run.client_index)];
  // WAL discipline: the commit record is forced before the transaction
  // reports commit; force_delay defaults to 0.
  const int64_t commit_lsn = client.wal->Append(db::LogRecordKind::kCommit,
                                                run.id, kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(commit_lsn);
  if (force_delay > 0) {
    const TxnId txn = run.id;
    sim_.Schedule(force_delay, [this, txn, index = run.client_index] {
      TxnRun* current = clients_[static_cast<size_t>(index)].current.get();
      if (current == nullptr || current->id != txn) return;
      if (current->doomed) return;
      FinalizeCommit(*current);
    });
    return;
  }
  FinalizeCommit(run);
}

void EngineBase::FinalizeCommit(TxnRun& run) {
  run.finished = true;
  run.span.commit = sim_.Now() - run.commit_start;
  ClientState& client = clients_[static_cast<size_t>(run.client_index)];
  client.restart_streak = 0;
  ++result_.total_commits;
  const bool measured = result_.total_commits > config_.warmup_txns;
  if (measured) {
    ++result_.commits;
    result_.response.Add(static_cast<double>(sim_.Now() - run.start_time));
    result_.response_hist.Add(static_cast<double>(sim_.Now() - run.start_time));
    result_.span_lock_wait.Add(static_cast<double>(run.span.lock_wait));
    result_.span_propagation.Add(static_cast<double>(run.span.propagation));
    result_.span_queueing.Add(static_cast<double>(run.span.queueing));
    result_.span_execution.Add(static_cast<double>(run.span.execution));
    result_.span_commit.Add(static_cast<double>(run.span.commit));
    result_.span_commit_prepare.Add(
        static_cast<double>(run.span.commit_prepare));
    result_.span_commit_vote.Add(static_cast<double>(run.span.commit_vote));
    result_.span_lease_revoke.Add(
        static_cast<double>(run.span.lease_revoke_wait));
    if (run.commit_flights >= 0) {
      result_.commit_flights.Add(static_cast<double>(run.commit_flights));
      result_.xcommit_span_hist.Add(static_cast<double>(run.span.commit));
    }
    if (config_.record_history) {
      CommittedTxn committed;
      committed.id = run.id;
      committed.client = run.site();
      committed.start_time = run.start_time;
      committed.commit_time = sim_.Now();
      committed.span = run.span;
      committed.ops = run.records;
      committed.commit_flights = run.commit_flights;
      result_.history.push_back(std::move(committed));
    }
    ++measured_commits_;
  } else if (config_.record_history) {
    // Warmup commits still participate in version chains; record them so the
    // serializability check sees complete writer histories.
    CommittedTxn committed;
    committed.id = run.id;
    committed.client = run.site();
    committed.start_time = run.start_time;
    committed.commit_time = sim_.Now();
    committed.span = run.span;
    committed.ops = run.records;
    committed.commit_flights = run.commit_flights;
    result_.history.push_back(std::move(committed));
  }
  if (tracer_.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnCommit;
    event.txn = run.id;
    event.site = run.site();
    event.flag = measured;
    event.payload = sim_.Now() - run.start_time;  // response time
    event.d0 = run.span.lock_wait;
    event.d1 = run.span.propagation;
    event.d2 = run.span.queueing;
    event.d3 = run.span.execution;
    event.d4 = run.span.commit;
    tracer_.Emit(std::move(event));
  }
  // Queue the commit's updates for client-log garbage collection once the
  // server has made them permanent.
  PendingGc gc;
  gc.lsn = client.wal->next_lsn() - 1;
  for (const OpRecord& record : run.records) {
    if (record.mode == LockMode::kExclusive) {
      gc.updates.emplace_back(record.item, record.version_written);
    }
  }
  gc_queues_[static_cast<size_t>(run.client_index)].push_back(std::move(gc));
  DoCommit(run);
  OnTxnClosed(run);
  if (measured_commits_ >= config_.measured_txns) {
    sim_.Stop();
    return;
  }
  ScheduleNextTxn(client);
}

void EngineBase::MaybeGcClientLogs() {
  // The server checkpoints continuously: every installed version is already
  // in the data store, so the forced prefix of its log can be dropped.
  if (server_wal_->next_lsn() > 1) {
    server_wal_->Force(server_wal_->next_lsn() - 1);
    server_wal_->TruncateThrough(server_wal_->durable_lsn());
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    auto& queue = gc_queues_[i];
    db::WriteAheadLog& wal = *clients_[i].wal;
    while (!queue.empty()) {
      const PendingGc& front = queue.front();
      bool permanent = true;
      for (const auto& [item, version] : front.updates) {
        if (store_->VersionOf(item) < version) {
          permanent = false;
          break;
        }
      }
      if (!permanent) break;
      wal.Force(front.lsn);
      wal.TruncateThrough(front.lsn);
      queue.pop_front();
    }
  }
}

void EngineBase::RegisterMetrics(obs::MetricsRegistry* metrics) {
  // Engine-global gauges every protocol shares. Subclasses override, call
  // this first, then append their own series (the registration order IS the
  // series order in the output file).
  metrics->Register("active_txns", -1, [this] {
    int64_t active = 0;
    for (const ClientState& client : clients_) {
      if (client.current != nullptr && !client.current->finished) ++active;
    }
    return active;
  });
  metrics->Register("commits_total", -1,
                    [this] { return result_.total_commits; });
  metrics->Register("aborts_total", -1,
                    [this] { return result_.total_aborts; });
  metrics->Register("nic_backlog", -1, [this] {
    net::LinkModel* link = network_->link_model();
    return link == nullptr ? 0 : link->MaxNicBacklog(sim_.Now());
  });
}

void EngineBase::RecordEvent(ProtocolEvent event) {
  if (!config_.record_protocol_events) return;
  event.time = sim_.Now();
  result_.protocol_events.push_back(std::move(event));
}

void EngineBase::ServerAbortDecision(TxnId txn, SiteId client_site,
                                     SiteId server_site) {
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished || run->doomed) return;
  run->doomed = true;
  const int32_t index = run->client_index;
  // The abort is counted at decision time; the client reacts only when the
  // notice arrives one latency later.
  ++result_.total_aborts;
  if (result_.total_commits >= config_.warmup_txns) {
    ++result_.aborts;
    result_.abort_age.Add(static_cast<double>(sim_.Now() - run->start_time));
    result_.abort_held_items.Add(static_cast<double>(run->records.size()));
  }
  if (tracer_.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnAbort;
    event.txn = txn;
    event.site = client_site;
    event.peer = server_site;
    event.d0 = sim_.Now() - run->start_time;  // age at the abort decision
    event.payload = static_cast<int64_t>(run->records.size());
    tracer_.Emit(std::move(event));
  }
  if (config_.instant_abort_notice) {
    sim_.Schedule(0, [this, txn, index] { AbortNoticeArrived(txn, index); });
  } else {
    network_->Send(server_site, client_site, "abort",
                   [this, txn, index] { AbortNoticeArrived(txn, index); });
  }
}

void EngineBase::NoteRequestAtServer(TxnId txn, ItemId item, LockMode mode,
                                     int32_t shard) {
  TxnRun* run = FindRun(txn);
  const net::DeliveryInfo& d = network_->current_delivery();
  if (run != nullptr && !run->finished && d.active &&
      run->current_op < run->spec.ops.size() &&
      run->op().item == item) {
    run->req_prop = d.Propagation();
    run->req_queue = d.Queueing();
  }
  if (tracer_.enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRequest;
    event.txn = txn;
    event.site = run == nullptr ? SiteId{-1} : run->site();
    event.item = item;
    event.mode = static_cast<int32_t>(mode);
    event.shard = shard;
    if (d.active) {
      event.d0 = d.Propagation();
      event.d1 = d.Queueing();
    }
    tracer_.Emit(std::move(event));
  }
}

void EngineBase::AbortNoticeArrived(TxnId txn, int32_t client_index) {
  ClientState& client = clients_[static_cast<size_t>(client_index)];
  TxnRun* run = client.current.get();
  if (run == nullptr || run->id != txn || run->finished) return;
  run->finished = true;
  client.wal->Append(db::LogRecordKind::kAbort, txn, kInvalidItem, 0);
  ++client.restart_streak;
  OnClientAborted(*run);
  OnTxnClosed(*run);
  ScheduleNextTxn(client);
}

}  // namespace gtpl::proto
