#ifndef GTPL_PROTOCOLS_SHARDED_H_
#define GTPL_PROTOCOLS_SHARDED_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/forward_list.h"
#include "core/window_manager.h"
#include "protocols/engine.h"

namespace gtpl::proto {

/// Multi-server extension of the paper's model (ROADMAP's sharding item):
/// the item space is partitioned across `num_servers` simulated data
/// servers by hash or range, each server owning the per-item protocol state
/// for its shard. Clients still run one transaction at a time; each request
/// is routed to the owning server's site, so every data round is charged
/// the configured WAN latency by net::LatencyModel.
///
/// Commits that touched more than one server run a client-coordinated
/// two-phase commit: the client forces a prepare record, fans `prepare` to
/// every participant *in parallel* (all sends leave at the same simulated
/// instant, so the prepare phase costs max-RTT, not sum-RTT), collects
/// votes, and on unanimous yes sends the commit decision (then commits
/// locally as usual). Both rounds travel through the simulated network, so
/// a cross-server commit pays two extra latency rounds — the cost the
/// sharding bench quantifies. Transactions confined to one shard skip the
/// protocol entirely, which is what makes the `num_servers == 1`
/// configuration reproduce the single-server engines bit for bit (the
/// standing equivalence suite pins this).
///
/// That two-flight protocol is CommitPath::kClassic. The geo-aware commit
/// paths (protocols/commit.h, DESIGN.md §13) rework it per
/// config().commit_path:
///  - kEarly piggybacks a *speculative* prepare on the last operation that
///    touches each shard (PreRequestHook), overlapping the prepare/vote
///    round with the remaining execution; the commit point then blocks
///    only on votes not yet home (zero flights under pure propagation).
///    Sound because a vote is exactly "this shard has not aborted the
///    transaction", abort decisions doom a run instantly, and the
///    coordinator re-checks !doomed at the commit point — a stale yes vote
///    can never resurrect a doomed transaction. Speculative prepares do
///    NOT trigger release-at-prepare (the vote is not yet a commit
///    promise); see ShardVote's `speculative` flag.
///  - kFastPath commits transactions whose writes land on a single shard
///    without any prepare/vote round: the client's forced commit record is
///    the commit point and the engine's ordinary release/forward messages
///    carry the (implicit) decision — the read-only shards still hold
///    their locks, so the piggybacked validation cannot fail for a
///    non-doomed transaction (ServerOnRelease checks this).
///  - kCoord picks, per transaction, between the client and the server
///    co-located with the write-heaviest participant as coordinator, from
///    the static latency matrix (LatencyModel::BaseLatency, never the
///    jitter stream). A remote coordinator pays handoff + ack legs on the
///    client's response but delivers the decision to participants sooner
///    (lock-hold reduction), the right trade when the server mesh is much
///    faster than the WAN (config().server_latency).
/// Engines that override StartCommit with their own certification commit
/// (OCC) fall back to kClassic and count commit_path_fallbacks.
///
/// Determinism contract (DESIGN.md §8): the servers' *coordination plane*
/// (shared precedence graph / waits-for graph, abort decisions) is modeled
/// as instantaneous, like the paper's zero-cost server reordering; only the
/// data and commit paths pay latency.
class ShardedEngineBase : public EngineBase {
 public:
  explicit ShardedEngineBase(const SimConfig& config);

  int32_t num_servers() const { return config().num_servers; }

  /// Shard owning `item`, by the configured routing.
  int32_t ShardOf(ItemId item) const;

  /// Site id of shard `shard`'s server: shard 0 keeps kServerSite, extra
  /// shard k >= 1 lives at site num_clients + k.
  SiteId ServerSiteOf(int32_t shard) const {
    return shard == 0 ? kServerSite
                      : static_cast<SiteId>(num_clients() + shard);
  }

 protected:
  /// Distinct shards `run`'s operations touch, ascending.
  std::vector<int32_t> ParticipantsOf(const TxnRun& run) const;

  /// Distinct shards `run` *writes*, ascending (kFastPath eligibility and
  /// the kCoord write-heaviest choice both key off the spec's write set,
  /// which is static — tests recompute it from the spec).
  std::vector<int32_t> WriteShardsOf(const TxnRun& run) const;

  /// Commit entry point: single-shard transactions fall through to
  /// EngineBase::StartCommit; cross-server ones run the configured commit
  /// path (classic/early/fastpath/coord — see the class comment).
  void StartCommit(TxnRun& run) override;

  /// kEarly: piggyback a speculative prepare when the current op is the
  /// last one touching its shard (and the txn is cross-server).
  void PreRequestHook(TxnRun& run) override;

  /// Drop the commit/early contexts of a closed run (stale speculative
  /// votes must not leak into the client's next transaction, which reuses
  /// no txn id but the maps are keyed per txn and cleaned here).
  void OnTxnClosed(const TxnRun& run) override;

  /// Participant `shard`'s vote on committing `txn`, computed when the
  /// prepare message arrives at the server. `speculative` marks kEarly
  /// prepares sent before the commit point: the vote is advisory ("not
  /// aborted so far"), so engines must NOT take commit-promise actions on
  /// it (e.g. release-at-prepare).
  virtual bool ShardVote(int32_t shard, TxnId txn, bool speculative) = 0;

  /// The commit decision arrived at participant `shard` (phase two); the
  /// base already logged it to the server WAL and recorded the event.
  virtual void OnCommitDecision(int32_t shard, TxnId txn) = 0;

  /// Copies the commit-path counters (cross_server_commits, participants,
  /// sub-path tallies) into the result; subclasses override-and-call.
  void FillProtocolMetrics(RunResult* result) override;

  /// Adds the 2PC coordinator gauge (commits with votes outstanding);
  /// subclasses override-and-call.
  void RegisterMetrics(obs::MetricsRegistry* metrics) override;

  /// Whether `txn`'s commit decision was issued by a remote coordinator
  /// (kCoord): lock engines then release at decision arrival, ahead of the
  /// client's ack-delayed DoCommit. Cleared when the run closes.
  bool RemoteCoordinated(TxnId txn) const;

  /// Cross-server commit counters (copied out by FillProtocolMetrics).
  int64_t cross_server_commits_ = 0;
  stats::Welford commit_participants_;
  int64_t fastpath_commits_ = 0;
  int64_t early_prepares_ = 0;
  int64_t coord_remote_commits_ = 0;
  /// Cross-server commits that ran kClassic although another path was
  /// configured (OCC's certification commit increments this).
  int64_t commit_path_fallbacks_ = 0;

 private:
  struct CommitCtx {
    int32_t votes_pending = 0;
    bool all_yes = true;
    std::vector<int32_t> participants;
    /// When the prepare fan-out (or vote wait, for kEarly) actually began —
    /// after the coordinator's WAL force. Anchors the commit sub-spans.
    SimTime sent_time = 0;
    /// Non-speculative prepares still in flight; hits 0 when the last one
    /// arrives, closing the span.commit_prepare sub-span.
    int32_t prepares_pending = 0;
    /// Blocking one-way WAN flights this commit path charges the client's
    /// response time (written to TxnRun::commit_flights on completion).
    int32_t flights = 2;
    /// Where participants address their votes: the client site (classic,
    /// early) or the coordinator server's site (coord).
    SiteId vote_site = 0;
    /// Coordinating shard under kCoord with a remote choice; -1 otherwise.
    int32_t coord_shard = -1;
  };

  /// kEarly per-txn state, built lazily on the first request.
  struct EarlyCtx {
    bool active = false;  // cross-server txn: speculative prepares flow
    /// shard -> index of the last op touching it (send point).
    std::unordered_map<int32_t, size_t> last_touch;
    /// Shards whose speculative yes votes are already home.
    std::unordered_set<int32_t> votes;
    int32_t prepares_sent = 0;
  };

  // The classic two-flight path, verbatim; also the fallback body for
  // fastpath (multi-write-shard txns) and coord (client-side choice).
  void StartClassic(TxnRun& run, std::vector<int32_t> participants);
  void StartEarly(TxnRun& run, std::vector<int32_t> participants);
  void StartFastPath(TxnRun& run, const std::vector<int32_t>& participants);
  void StartCoord(TxnRun& run, std::vector<int32_t> participants,
                  int32_t coord_shard);

  /// kCoord's placement decision: the write-heaviest participant's shard if
  /// coordinating there beats the client on (response cost, lock-hold lag),
  /// else -1 for the client. Deterministic: consults only BaseLatency.
  int32_t ChooseCoordinator(const TxnRun& run,
                            const std::vector<int32_t>& participants);

  void OnPrepareArrived(int32_t shard, TxnId txn, bool speculative);
  void OnVoteArrived(TxnId txn, int32_t shard, bool yes);
  void OnDecisionArrived(int32_t shard, TxnId txn);
  /// kCoord: the client's handoff reached the coordinator server; it fans
  /// the prepares (its own shard prepares locally, votes inline).
  void OnHandoffArrived(int32_t coord_shard, TxnId txn);
  /// kCoord: the coordinator's commit ack reached the client.
  void OnAckArrived(TxnId txn);
  /// All votes are in: erase the ctx, fan the decisions, finish the commit
  /// (or send the ack leg when a remote coordinator ran the rounds).
  void FinishVotedCommit(TxnId txn);

  int32_t items_per_shard_ = 1;  // range routing stride
  std::unordered_map<TxnId, CommitCtx> commits_;
  std::unordered_map<TxnId, EarlyCtx> early_;
  /// Txns whose decisions fanned out from a remote coordinator and whose
  /// runs have not closed yet (RemoteCoordinated).
  std::unordered_set<TxnId> remote_decided_;
};

/// g-2PL across shards: one WindowManager per server, all sharing a single
/// ShardCoordinator, so deadlock avoidance and forward-list reordering
/// consult one global precedence graph — the same-pair-same-order property
/// holds across shards. Client-side obligation tracking is shard-agnostic
/// (items migrate client to client exactly as in the single-server engine;
/// only the request/return endpoints differ per item).
class ShardedG2plEngine : public ShardedEngineBase {
 public:
  explicit ShardedG2plEngine(const SimConfig& config);

  const core::WindowManager& window_manager(int32_t shard) const {
    return *wms_[static_cast<size_t>(shard)];
  }
  const core::ShardCoordinator& coordinator() const { return *coordinator_; }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(RunResult* result) override;
  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override;
  void OnCommitDecision(int32_t shard, TxnId txn) override;

 private:
  // Client-side state mirrors G2plEngine exactly (see g2pl.h).
  struct TxnState {
    int32_t client_index = 0;
    bool finished = false;
    bool committed = false;
    bool drained = false;
    int32_t slots_outstanding = 0;
    std::vector<ItemId> slot_items;
  };

  struct Obligation {
    std::shared_ptr<const core::ForwardList> fl;
    int32_t entry = 0;
    int32_t member = 0;
    bool is_writer = false;
    bool data_arrived = false;
    Version version = -1;
    int32_t releases_needed = 0;
    int32_t releases_received = 0;
    bool granted = false;
    bool forwarded = false;
  };

  struct ObKey {
    TxnId txn;
    ItemId item;
    bool operator==(const ObKey& other) const {
      return txn == other.txn && item == other.item;
    }
  };
  struct ObKeyHash {
    size_t operator()(const ObKey& key) const {
      return std::hash<int64_t>()(key.txn * 1000003 + key.item);
    }
  };

  void WmDispatch(int32_t shard, ItemId item, Version version,
                  std::shared_ptr<const core::ForwardList> fl);
  void WmAbort(int32_t shard, TxnId txn, SiteId client_site);
  void WmExpand(int32_t shard, ItemId item, Version version,
                std::shared_ptr<const core::ForwardList> fl, TxnId txn,
                SiteId client_site, int32_t member_index);

  void DeliverToEntry(SiteId from_site, ItemId item, Version version,
                      std::shared_ptr<const core::ForwardList> fl,
                      int32_t entry_index);
  void OnData(TxnId txn, ItemId item, Version version,
              std::shared_ptr<const core::ForwardList> fl,
              int32_t entry_index, int32_t member_index,
              int32_t early_releases);
  void OnReaderRelease(TxnId writer_txn, ItemId item, Version version,
                       std::shared_ptr<const core::ForwardList> fl,
                       int32_t writer_entry_index);
  void MaybeGrant(TxnId txn, ItemId item, Obligation& ob);
  void TryForward(TxnId txn, ItemId item);
  void CheckDrain(TxnId txn);
  TxnState& EnsureTxn(TxnId txn, int32_t client_index);

  std::unique_ptr<core::ShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<core::WindowManager>> wms_;
  std::unordered_map<TxnId, TxnState> txns_;
  std::unordered_map<ObKey, Obligation, ObKeyHash> obligations_;
  std::unordered_set<TxnId> drained_;
};

// (The former ShardedS2plEngine lives on as cc::LockCcEngine with the
// detection policy — the generic lock engine in cc/lock_engine.h — so the
// no-wait / wait-die / ordered variants inherit its sharding and 2PC
// machinery. protocols/s2pl.h keeps the S2plEngine name as a thin alias.)

/// Builds the sharded engine for `config.protocol` (any engine the registry
/// marks sharded; Validate() rejects sharded caching protocols). Defined in
/// cc/registry.cc alongside RunSimulation.
std::unique_ptr<EngineBase> MakeShardedEngine(const SimConfig& config);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_SHARDED_H_
