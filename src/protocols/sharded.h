#ifndef GTPL_PROTOCOLS_SHARDED_H_
#define GTPL_PROTOCOLS_SHARDED_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/forward_list.h"
#include "core/window_manager.h"
#include "protocols/engine.h"

namespace gtpl::proto {

/// Multi-server extension of the paper's model (ROADMAP's sharding item):
/// the item space is partitioned across `num_servers` simulated data
/// servers by hash or range, each server owning the per-item protocol state
/// for its shard. Clients still run one transaction at a time; each request
/// is routed to the owning server's site, so every data round is charged
/// the configured WAN latency by net::LatencyModel.
///
/// Commits that touched more than one server run a client-coordinated
/// two-phase commit: the client forces a prepare record, sends `prepare` to
/// every participant, collects votes, and on unanimous yes sends the commit
/// decision (then commits locally as usual). Both rounds travel through the
/// simulated network, so a cross-server commit pays two extra latency
/// rounds — the cost the sharding bench quantifies. Transactions confined
/// to one shard skip the protocol entirely, which is what makes the
/// `num_servers == 1` configuration reproduce the single-server engines
/// bit for bit (the standing equivalence suite pins this).
///
/// Determinism contract (DESIGN.md §8): the servers' *coordination plane*
/// (shared precedence graph / waits-for graph, abort decisions) is modeled
/// as instantaneous, like the paper's zero-cost server reordering; only the
/// data and commit paths pay latency.
class ShardedEngineBase : public EngineBase {
 public:
  explicit ShardedEngineBase(const SimConfig& config);

  int32_t num_servers() const { return config().num_servers; }

  /// Shard owning `item`, by the configured routing.
  int32_t ShardOf(ItemId item) const;

  /// Site id of shard `shard`'s server: shard 0 keeps kServerSite, extra
  /// shard k >= 1 lives at site num_clients + k.
  SiteId ServerSiteOf(int32_t shard) const {
    return shard == 0 ? kServerSite
                      : static_cast<SiteId>(num_clients() + shard);
  }

 protected:
  /// Distinct shards `run`'s operations touch, ascending.
  std::vector<int32_t> ParticipantsOf(const TxnRun& run) const;

  /// Two-phase commit entry point: single-shard transactions fall through
  /// to EngineBase::StartCommit; cross-server ones run prepare/vote first.
  void StartCommit(TxnRun& run) override;

  /// Participant `shard`'s vote on committing `txn`, computed when the
  /// prepare message arrives at the server.
  virtual bool ShardVote(int32_t shard, TxnId txn) = 0;

  /// The commit decision arrived at participant `shard` (phase two); the
  /// base already logged it to the server WAL and recorded the event.
  virtual void OnCommitDecision(int32_t shard, TxnId txn) = 0;

  /// Cross-server commit counters; subclasses copy them into the result
  /// from FillProtocolMetrics.
  int64_t cross_server_commits_ = 0;
  stats::Welford commit_participants_;

 private:
  struct CommitCtx {
    int32_t votes_pending = 0;
    bool all_yes = true;
    std::vector<int32_t> participants;
  };

  void OnPrepareArrived(int32_t shard, TxnId txn);
  void OnVoteArrived(TxnId txn, int32_t shard, bool yes);
  void OnDecisionArrived(int32_t shard, TxnId txn);

  int32_t items_per_shard_ = 1;  // range routing stride
  std::unordered_map<TxnId, CommitCtx> commits_;
};

/// g-2PL across shards: one WindowManager per server, all sharing a single
/// ShardCoordinator, so deadlock avoidance and forward-list reordering
/// consult one global precedence graph — the same-pair-same-order property
/// holds across shards. Client-side obligation tracking is shard-agnostic
/// (items migrate client to client exactly as in the single-server engine;
/// only the request/return endpoints differ per item).
class ShardedG2plEngine : public ShardedEngineBase {
 public:
  explicit ShardedG2plEngine(const SimConfig& config);

  const core::WindowManager& window_manager(int32_t shard) const {
    return *wms_[static_cast<size_t>(shard)];
  }
  const core::ShardCoordinator& coordinator() const { return *coordinator_; }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(RunResult* result) override;
  bool ShardVote(int32_t shard, TxnId txn) override;
  void OnCommitDecision(int32_t shard, TxnId txn) override;

 private:
  // Client-side state mirrors G2plEngine exactly (see g2pl.h).
  struct TxnState {
    int32_t client_index = 0;
    bool finished = false;
    bool committed = false;
    bool drained = false;
    int32_t slots_outstanding = 0;
    std::vector<ItemId> slot_items;
  };

  struct Obligation {
    std::shared_ptr<const core::ForwardList> fl;
    int32_t entry = 0;
    int32_t member = 0;
    bool is_writer = false;
    bool data_arrived = false;
    Version version = -1;
    int32_t releases_needed = 0;
    int32_t releases_received = 0;
    bool granted = false;
    bool forwarded = false;
  };

  struct ObKey {
    TxnId txn;
    ItemId item;
    bool operator==(const ObKey& other) const {
      return txn == other.txn && item == other.item;
    }
  };
  struct ObKeyHash {
    size_t operator()(const ObKey& key) const {
      return std::hash<int64_t>()(key.txn * 1000003 + key.item);
    }
  };

  void WmDispatch(int32_t shard, ItemId item, Version version,
                  std::shared_ptr<const core::ForwardList> fl);
  void WmAbort(int32_t shard, TxnId txn, SiteId client_site);
  void WmExpand(int32_t shard, ItemId item, Version version,
                std::shared_ptr<const core::ForwardList> fl, TxnId txn,
                SiteId client_site, int32_t member_index);

  void DeliverToEntry(SiteId from_site, ItemId item, Version version,
                      std::shared_ptr<const core::ForwardList> fl,
                      int32_t entry_index);
  void OnData(TxnId txn, ItemId item, Version version,
              std::shared_ptr<const core::ForwardList> fl,
              int32_t entry_index, int32_t member_index,
              int32_t early_releases);
  void OnReaderRelease(TxnId writer_txn, ItemId item, Version version,
                       std::shared_ptr<const core::ForwardList> fl,
                       int32_t writer_entry_index);
  void MaybeGrant(TxnId txn, ItemId item, Obligation& ob);
  void TryForward(TxnId txn, ItemId item);
  void CheckDrain(TxnId txn);
  TxnState& EnsureTxn(TxnId txn, int32_t client_index);

  std::unique_ptr<core::ShardCoordinator> coordinator_;
  std::vector<std::unique_ptr<core::WindowManager>> wms_;
  std::unordered_map<TxnId, TxnState> txns_;
  std::unordered_map<ObKey, Obligation, ObKeyHash> obligations_;
  std::unordered_set<TxnId> drained_;
};

// (The former ShardedS2plEngine lives on as cc::LockCcEngine with the
// detection policy — the generic lock engine in cc/lock_engine.h — so the
// no-wait / wait-die / ordered variants inherit its sharding and 2PC
// machinery. protocols/s2pl.h keeps the S2plEngine name as a thin alias.)

/// Builds the sharded engine for `config.protocol` (any engine the registry
/// marks sharded; Validate() rejects sharded caching protocols). Defined in
/// cc/registry.cc alongside RunSimulation.
std::unique_ptr<EngineBase> MakeShardedEngine(const SimConfig& config);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_SHARDED_H_
