#ifndef GTPL_PROTOCOLS_PARSIM_H_
#define GTPL_PROTOCOLS_PARSIM_H_

#include "protocols/config.h"
#include "protocols/metrics.h"

namespace gtpl::proto {

/// Runs `config` on the conservative per-shard parallel engine
/// (DESIGN.md §15): one sim::ShardSim logical process per server shard,
/// hosting that shard's lock table / versions / WAL plus the clients with
/// index % num_servers == shard. Every client<->server interaction rides a
/// cross-LP channel message of exactly one WAN latency — the kernel's
/// lookahead — so LPs execute whole windows concurrently without locks.
///
/// Determinism contract: results are bit-identical at ANY sim_threads
/// value >= 1 (windows, channel merge order, and the barrier-snapshot
/// warmup/stop gates are all thread-count independent). They are NOT
/// byte-identical to the serial engine the same config runs at
/// sim_threads == 1 through RunSimulation: the serial engine assigns txn
/// ids in global begin order and evaluates warmup/stop per-commit, which
/// a parallel run cannot reproduce without serializing. This engine
/// stripes ids (client c's k-th txn is k * num_clients + c + 1 — still a
/// valid age order for wait-die) and latches the warmup flag / stop
/// target at window barriers over global commit-count snapshots.
///
/// Modeling deltas vs. the serial engines, all documented in §15: an
/// abort victim's locks on non-deciding shards are released by explicit
/// client cleanup messages (decision + notice + release, instead of the
/// serial instantaneous coordination plane; Validate requires
/// --charged-abort-notice for this reason), the 2PC decision rides the
/// release messages, prepare/vote sub-spans are computed from the uniform
/// latency, and client logs truncate at commit finalize.
///
/// `config` must satisfy the sim_threads > 1 subset of
/// SimConfig::Validate (checked here even when config.sim_threads == 1,
/// so benches can run the engine single-threaded as a scaling baseline).
RunResult RunParallelSimulation(const SimConfig& config);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_PARSIM_H_
