#ifndef GTPL_PROTOCOLS_INVARIANTS_H_
#define GTPL_PROTOCOLS_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/trace.h"

namespace gtpl::core {
class ForwardList;
}

namespace gtpl::proto {

/// Kind of a recorded protocol event (see ProtocolEvent).
enum class ProtocolEventKind : uint8_t {
  /// A server dispatched a window; `entries` snapshots its forward list.
  kWindowDispatched = 0,
  /// Read-group expansion admitted a member; `entries` snapshots the
  /// re-published forward list (expanded member included), `txn` the
  /// admitted transaction.
  kWindowExpanded = 1,
  /// A reader's release message reached the writer client that follows its
  /// read group; `txn` is the *writer*, `item` the migrating item.
  kReaderReleaseArrived = 2,
  /// A committed writer forwarded (released) its update downstream or back
  /// to the server.
  kWriterUpdateReleased = 3,
  /// Acyclicity audit of the (global) precedence graph; `flag` = acyclic.
  kGraphCheck = 4,
  /// Cross-server commit: prepare message reached participant `server`.
  kPrepareArrived = 5,
  /// Cross-server commit: participant `server`'s vote reached the client
  /// coordinator; `flag` = yes-vote.
  kVoteArrived = 6,
  /// Cross-server commit: commit decision reached participant `server`.
  kCommitDecisionArrived = 7,
  /// Sticky lease granted to `site` on `item`; `flag` = exclusive.
  kLeaseGranted = 8,
  /// Revoke callback sent to holder `site` on `item`.
  kLeaseRevoked = 9,
  /// Lease release from `site` on `item` processed at the server.
  kLeaseReleased = 10,
};

/// One forward-list entry as recorded in a window event.
struct FlEntryRecord {
  bool is_read_group = false;
  std::vector<TxnId> txns;

  bool operator==(const FlEntryRecord& other) const {
    return is_read_group == other.is_read_group && txns == other.txns;
  }
};

/// One entry of the protocol-invariant event stream that engines emit when
/// SimConfig::record_protocol_events is set. The stream is what the
/// invariant checkers below consume; it deliberately records protocol
/// *facts* (dispatch orders, release arrivals, graph audits) rather than
/// engine internals, so the same checkers apply to the single-server and
/// sharded engines.
struct ProtocolEvent {
  ProtocolEventKind kind = ProtocolEventKind::kWindowDispatched;
  SimTime time = 0;
  TxnId txn = kInvalidTxn;
  ItemId item = kInvalidItem;
  int32_t server = 0;  // shard index (0 in single-server runs)
  /// Lease events: the client site holding / being revoked. -1 elsewhere.
  SiteId site = -1;
  bool flag = false;  // kGraphCheck: acyclic; kVoteArrived: yes;
                      // kLeaseGranted: exclusive
  std::vector<FlEntryRecord> entries;  // window events only

  bool operator==(const ProtocolEvent& other) const {
    return kind == other.kind && time == other.time && txn == other.txn &&
           item == other.item && server == other.server &&
           site == other.site && flag == other.flag &&
           entries == other.entries;
  }
};

/// Entry/member snapshot of a forward list, for window events.
std::vector<FlEntryRecord> SnapshotForwardList(const core::ForwardList& fl);

/// Same snapshot in the observability-trace representation (obs/trace.h).
std::vector<obs::FlEntrySnapshot> ObsSnapshotForwardList(
    const core::ForwardList& fl);

/// Projects a structured observability trace onto the protocol-invariant
/// event stream: the trace events that mirror ProtocolEvents (window
/// dispatch/expand, graph audits, reader/writer releases, 2PC rounds)
/// convert one to one and in order; everything else is dropped. Engines
/// emit both streams at the same points, so the result equals
/// RunResult::protocol_events field for field — which lets the checkers
/// below replay a saved trace file with no live run (trace_inspect
/// --check-invariants).
std::vector<ProtocolEvent> ProtocolEventsFromTrace(
    const std::vector<obs::TraceEvent>& trace);

/// Every kGraphCheck event in the stream reported an acyclic graph.
bool CheckAcyclicity(const std::vector<ProtocolEvent>& events,
                     std::string* explanation = nullptr);

/// Same-pair-same-order (paper §3.3, global across shards): no two
/// transactions appear in opposite orders in two forward lists they share.
/// Co-membership in a read group orders neither way and is compatible with
/// any order elsewhere.
bool CheckForwardListOrderConsistency(
    const std::vector<ProtocolEvent>& events,
    std::string* explanation = nullptr);

/// MR1W release discipline (paper §3.4): a committed writer never releases
/// its update before the release messages of *all* readers of the preceding
/// read group have arrived at it.
bool CheckMr1wDiscipline(const std::vector<ProtocolEvent>& events,
                         std::string* explanation = nullptr);

/// Lease coherence (DESIGN.md §14): replays the kLease* events and checks
/// that an exclusive grant admits no other holder site, a shared grant
/// admits no other-site write holder, and *no* grant of any mode lands on
/// an item while a revoke on it is outstanding (sent but not yet followed
/// by that holder's release).
bool CheckLeaseCoherence(const std::vector<ProtocolEvent>& events,
                         std::string* explanation = nullptr);

/// All of the above.
bool CheckProtocolInvariants(const std::vector<ProtocolEvent>& events,
                             std::string* explanation = nullptr);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_INVARIANTS_H_
