// Client-caching concurrency-control protocols (extensions beyond the
// paper's evaluation; §1 names the families, §6 defers the comparison):
//
//  * c-2PL  — caching 2PL: clients cache *data* across transactions; every
//    access still takes a per-transaction server lock, but the reply omits
//    the data when the cached copy is current. With negligible transmission
//    delay (the paper's WAN model) it behaves like s-2PL in rounds — an
//    honest negative result the comparison bench shows.
//  * CBL    — callback locking: clients cache data and *read permission*
//    across transactions; a writer's exclusive request triggers callbacks to
//    all caching clients and waits for their acknowledgements (deferred
//    while a local transaction has the copy pinned).
//  * O2PL   — optimistic 2PL: clients read/write cached copies with no
//    synchronous permission checks; commit runs a server-side backward
//    certification (validate read versions, install writes, invalidate
//    remote copies). Conflicts cost aborts instead of blocking.
//
// All three run under sharding (ShardedEngineBase): the per-item protocol
// state lives at the owning shard's server site, while the coordination
// plane (waits-for graph, abort decisions) stays global and instantaneous
// like every other engine (DESIGN.md §8). Cross-server c-2PL/CBL commits
// run the classic client-coordinated 2PC; O2PL certifies OCC-style, with
// per-shard validates, reservations, and a decision round (Validate()
// restricts sharded caching runs to the classic commit path). With
// num_servers == 1 each engine reproduces its pre-sharding self bit for
// bit (the cc invariants battery and the legacy goldens pin this).

#include "protocols/caching.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "db/lock_table.h"
#include "db/waits_for_graph.h"
#include "protocols/sharded.h"

namespace gtpl::proto {
namespace {

// ---------------------------------------------------------------------------
// c-2PL
// ---------------------------------------------------------------------------

/// Caching 2PL. Server side is a strict-2PL lock table exactly like s-2PL;
/// the only difference is client data caching, which saves payload bytes but
/// (by design of the latency model) no rounds. Cache hits are counted so the
/// protocol-comparison bench can report the (lack of) benefit.
class C2plEngine : public ShardedEngineBase {
 public:
  explicit C2plEngine(const SimConfig& config)
      : ShardedEngineBase(config),
        lock_table_(config.workload.num_items),
        caches_(static_cast<size_t>(config.num_clients)) {}

  int64_t cache_hits() const { return cache_hits_; }

 protected:
  void SendRequest(TxnRun& run) override {
    const TxnId txn = run.id;
    const SiteId site = run.site();
    const workload::Operation op = run.op();
    const int32_t shard = ShardOf(op.item);
    network().Send(site, ServerSiteOf(shard), "lock-request",
                   [this, shard, txn, site, op] {
                     ServerOnRequest(shard, txn, site, op.item, op.mode);
                   });
  }

  void DoCommit(TxnRun& run) override {
    // One release message per participant shard (read-only shards included:
    // their locks are held there too). The lock table itself is global, so
    // the locks drop when the *last* release arrives — strictness holds,
    // and with num_servers == 1 this is the original single message.
    std::vector<std::vector<std::pair<ItemId, Version>>> updates_by(
        static_cast<size_t>(num_servers()));
    std::vector<bool> touched(static_cast<size_t>(num_servers()), false);
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      const size_t shard = static_cast<size_t>(ShardOf(record.item));
      touched[shard] = true;
      if (record.mode == LockMode::kExclusive) {
        updates_by[shard].emplace_back(record.item, record.version_written);
        cache[record.item] = record.version_written;
      } else {
        cache[record.item] = record.version_read;
      }
    }
    const TxnId txn = run.id;
    int32_t participants = 0;
    for (const bool t : touched) participants += t ? 1 : 0;
    pending_releases_[txn] = participants;
    for (int32_t shard = 0; shard < num_servers(); ++shard) {
      if (!touched[static_cast<size_t>(shard)]) continue;
      network().Send(
          run.site(), ServerSiteOf(shard), "release",
          [this, shard, txn,
           updates = std::move(updates_by[static_cast<size_t>(shard)])] {
            ServerOnRelease(shard, txn, updates);
          });
    }
  }

  void OnClientAborted(TxnRun& run) override {
    // Locally updated copies are dirty; drop them.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) cache.erase(record.item);
    }
  }

  void FillProtocolMetrics(RunResult* result) override {
    ShardedEngineBase::FillProtocolMetrics(result);
  }

  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override {
    (void)shard;
    (void)speculative;
    // The locks the shard holds for `txn` are the promise; a doomed txn
    // never reaches its commit point, so this is a safety net.
    return server_aborted_.count(txn) == 0;
  }

  void OnCommitDecision(int32_t shard, TxnId txn) override {
    // The per-shard release messages (DoCommit) carry the actual work.
    (void)shard;
    (void)txn;
  }

 private:
  void ServerOnRequest(int32_t shard, TxnId txn, SiteId site, ItemId item,
                       LockMode mode) {
    NoteRequestAtServer(txn, item, mode, shard);
    if (server_aborted_.count(txn) > 0) return;
    const db::LockResult outcome = lock_table_.Request(txn, item, mode);
    if (outcome == db::LockResult::kGranted) {
      SendGrant(txn, site, item);
      return;
    }
    wfg_.AddWaits(txn, lock_table_.Blockers(txn, item));
    if (!wfg_.CycleThrough(txn).empty()) ServerAbort(txn, shard);
  }

  void SendGrant(TxnId txn, SiteId site, ItemId item) {
    const int32_t shard = ShardOf(item);
    const Version version = store().VersionOf(item);
    auto& cache = caches_[static_cast<size_t>(site - 1)];
    auto cached = cache.find(item);
    const bool hit = cached != cache.end() && cached->second == version;
    if (hit) ++cache_hits_;
    network().Send(
        ServerSiteOf(shard), site, hit ? "grant(validate)" : "grant+data",
        [this, txn, item, version] {
          TxnRun* run = FindRun(txn);
          if (run == nullptr || run->finished || run->doomed) {
            return;
          }
          GTPL_CHECK_EQ(run->op().item, item);
          OpGranted(*run, version);
        },
        hit ? net::kControlPayload
            : net::kControlPayload + net::kDataPayload);
  }

  void ServerOnRelease(
      int32_t shard, TxnId txn,
      const std::vector<std::pair<ItemId, Version>>& updates) {
    GTPL_CHECK_EQ(server_aborted_.count(txn), 0u);
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = ServerSiteOf(shard);
      event.shard = shard;
      event.payload = static_cast<int64_t>(updates.size());
      tracer().Emit(std::move(event));
    }
    for (const auto& [item, version] : updates) {
      store().Install(item, version);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, item, version);
      server_wal().Force(lsn);
      // Remote cached copies of `item` are now stale; they fail validation
      // on their next access (detection-based consistency).
    }
    MaybeGcClientLogs();
    auto pending = pending_releases_.find(txn);
    GTPL_CHECK(pending != pending_releases_.end());
    if (--pending->second > 0) return;  // locks drop with the last release
    pending_releases_.erase(pending);
    wfg_.RemoveTxn(txn);
    ReleaseLocks(txn);
  }

  void ReleaseLocks(TxnId txn) {
    lock_table_.ReleaseAll(txn, [this](TxnId granted, ItemId item,
                                       LockMode mode) {
      (void)mode;
      wfg_.ClearWaits(granted);
      TxnRun* run = FindRun(granted);
      if (run != nullptr) SendGrant(granted, run->site(), item);
    });
  }

  void ServerAbort(TxnId victim, int32_t shard) {
    GTPL_CHECK(server_aborted_.insert(victim).second);
    wfg_.RemoveTxn(victim);
    ReleaseLocks(victim);
    TxnRun* run = FindRun(victim);
    GTPL_CHECK(run != nullptr);
    ServerAbortDecision(victim, run->site(), ServerSiteOf(shard));
  }

  db::LockTable lock_table_;
  db::WaitsForGraph wfg_;
  std::unordered_set<TxnId> server_aborted_;
  std::unordered_map<TxnId, int32_t> pending_releases_;
  std::vector<std::unordered_map<ItemId, Version>> caches_;
  int64_t cache_hits_ = 0;
};

// ---------------------------------------------------------------------------
// CBL — callback locking
// ---------------------------------------------------------------------------

class CblEngine : public ShardedEngineBase {
 public:
  explicit CblEngine(const SimConfig& config)
      : ShardedEngineBase(config),
        items_(static_cast<size_t>(config.workload.num_items)),
        clients_cbl_(static_cast<size_t>(config.num_clients)) {}

  int64_t cache_hits() const { return cache_hits_; }
  int64_t callbacks_sent() const { return callbacks_sent_; }

 protected:
  void SendRequest(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    if (run.current_op == 0) cc.pins.clear();  // a fresh transaction
    const workload::Operation op = run.op();
    if (op.mode == LockMode::kShared) {
      auto cached = cc.cache.find(op.item);
      if (cached != cc.cache.end()) {
        // Read permission is retained across transactions: local access.
        ++cache_hits_;
        cc.pins.insert(op.item);
        OpGranted(run, cached->second);
        return;
      }
    }
    const TxnId txn = run.id;
    const SiteId site = run.site();
    const int32_t shard = ShardOf(op.item);
    network().Send(site, ServerSiteOf(shard), "cbl-request",
                   [this, shard, txn, site, op] {
                     ServerOnRequest(shard, txn, site, op.item, op.mode);
                   });
  }

  void DoCommit(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    std::vector<std::vector<std::pair<ItemId, Version>>> updates_by(
        static_cast<size_t>(num_servers()));
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) {
        updates_by[static_cast<size_t>(ShardOf(record.item))].emplace_back(
            record.item, record.version_written);
        // CB-read downgrade: the writer keeps the copy with read permission.
        cc.cache[record.item] = record.version_written;
      } else {
        cc.cache[record.item] = record.version_read;
      }
    }
    FlushDeferredAcks(run.client_index);
    const TxnId txn = run.id;
    for (int32_t shard = 0; shard < num_servers(); ++shard) {
      std::vector<std::pair<ItemId, Version>>& updates =
          updates_by[static_cast<size_t>(shard)];
      if (updates.empty()) continue;
      const uint64_t payload =
          net::kControlPayload + net::kDataPayload * updates.size();
      network().Send(
          run.site(), ServerSiteOf(shard), "cbl-commit",
          [this, txn, updates = std::move(updates)] {
            ServerOnCommit(txn, updates);
          },
          payload);
    }
    cc.pins.clear();
  }

  void OnClientAborted(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) cc.cache.erase(record.item);
    }
    FlushDeferredAcks(run.client_index);
    cc.pins.clear();
    // If the victim held the exclusive lock or was queued, the server
    // cleaned that up at decision time (ServerAbort).
  }

  void FillProtocolMetrics(RunResult* result) override {
    ShardedEngineBase::FillProtocolMetrics(result);
  }

  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override {
    (void)shard;
    (void)speculative;
    return server_aborted_.count(txn) == 0;
  }

  void OnCommitDecision(int32_t shard, TxnId txn) override {
    // The per-shard cbl-commit messages (DoCommit) carry the actual work.
    (void)shard;
    (void)txn;
  }

 private:
  struct PendingReq {
    TxnId txn;
    SiteId site;
    LockMode mode;
  };
  struct ItemCbl {
    std::unordered_set<SiteId> copy_set;   // clients with read permission
    TxnId x_holder = kInvalidTxn;
    std::deque<PendingReq> queue;          // FIFO; head X may be collecting
    int32_t acks_outstanding = 0;          // callbacks pending for head X
  };
  struct ClientCbl {
    std::unordered_map<ItemId, Version> cache;
    std::unordered_set<ItemId> pins;       // items used by the current txn
    std::vector<ItemId> deferred_acks;     // callbacks answered at txn end
  };

  void ServerOnRequest(int32_t shard, TxnId txn, SiteId site, ItemId item,
                       LockMode mode) {
    NoteRequestAtServer(txn, item, mode, shard);
    if (server_aborted_.count(txn) > 0) return;
    ItemCbl& it = items_[static_cast<size_t>(item)];
    if (it.x_holder == kInvalidTxn && it.queue.empty()) {
      if (mode == LockMode::kShared) {
        GrantShared(txn, site, item);
        return;
      }
      it.queue.push_back(PendingReq{txn, site, mode});
      StartCallbackCollection(item);
      if (it.queue.empty() || it.queue.front().txn != txn) return;
      if (it.acks_outstanding == 0) GrantHead(item);
      return;
    }
    it.queue.push_back(PendingReq{txn, site, mode});
    AddWaitEdges(txn, item);
    if (!wfg_.CycleThrough(txn).empty()) ServerAbort(txn, item);
  }

  void GrantShared(TxnId txn, SiteId site, ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    it.copy_set.insert(site);
    const Version version = store().VersionOf(item);
    // Shared grants ship the data.
    network().Send(
        ServerSiteOf(ShardOf(item)), site, "cbl-grant+data",
        [this, txn, item, version] {
          TxnRun* run = FindRun(txn);
          if (run == nullptr || run->finished || run->doomed) {
            return;
          }
          GTPL_CHECK_EQ(run->op().item, item);
          ClientCbl& cc =
              clients_cbl_[static_cast<size_t>(run->client_index)];
          cc.cache[item] = version;
          cc.pins.insert(item);
          OpGranted(*run, version);
        },
        net::kControlPayload + net::kDataPayload);
  }

  /// Sends callbacks for the X request at the head of `item`'s queue.
  void StartCallbackCollection(ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    GTPL_CHECK(!it.queue.empty());
    const PendingReq head = it.queue.front();
    GTPL_CHECK(head.mode == LockMode::kExclusive);
    std::vector<SiteId> targets;
    for (SiteId site : it.copy_set) {
      if (site != head.site) targets.push_back(site);
    }
    it.acks_outstanding = static_cast<int32_t>(targets.size());
    // Wait edges toward transactions that pin a cached copy right now.
    std::vector<TxnId> blockers;
    for (SiteId site : targets) {
      ++callbacks_sent_;
      ClientCbl& cc = clients_cbl_[static_cast<size_t>(site - 1)];
      if (cc.pins.count(item) > 0) {
        TxnRun* pinner = ClientAt(site - 1).current.get();
        if (pinner != nullptr && !pinner->finished) {
          blockers.push_back(pinner->id);
        }
      }
      network().Send(ServerSiteOf(ShardOf(item)), site, "cbl-callback",
                     [this, site, item, collector = head.txn] {
                       ClientOnCallback(site, item, collector);
                     });
    }
    if (!blockers.empty()) {
      wfg_.AddWaits(head.txn, blockers);
      if (!wfg_.CycleThrough(head.txn).empty()) {
        ServerAbort(head.txn, item);
      }
    }
  }

  void ClientOnCallback(SiteId site, ItemId item, TxnId collector) {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(site - 1)];
    if (cc.pins.count(item) > 0) {
      // In use by the running transaction: answer when it ends. The pin may
      // postdate the collection start (local cache hits need no server
      // round), so the collector's wait edge is recorded here; a cycle
      // means the pinner closed a deadlock and is aborted.
      cc.deferred_acks.push_back(item);
      TxnRun* pinner = ClientAt(site - 1).current.get();
      if (pinner != nullptr && !pinner->finished &&
          server_aborted_.count(collector) == 0 &&
          server_aborted_.count(pinner->id) == 0) {
        wfg_.AddWaits(collector, {pinner->id});
        if (!wfg_.CycleThrough(collector).empty()) {
          ServerAbort(pinner->id, item);
        }
      }
      return;
    }
    cc.cache.erase(item);
    TxnRun* run = ClientAt(site - 1).current.get();
    const TxnId acker = run != nullptr ? run->id : kInvalidTxn;
    network().Send(site, ServerSiteOf(ShardOf(item)), "cbl-ack",
                   [this, site, item, acker] {
                     ServerOnAck(site, item, acker, /*pinned=*/false);
                   });
  }

  void FlushDeferredAcks(int32_t client_index) {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(client_index)];
    if (cc.deferred_acks.empty()) return;
    const SiteId site = client_index + 1;
    TxnRun* run = ClientAt(client_index).current.get();
    const TxnId acker = run != nullptr ? run->id : kInvalidTxn;
    for (ItemId item : cc.deferred_acks) {
      cc.cache.erase(item);
      network().Send(site, ServerSiteOf(ShardOf(item)), "cbl-ack",
                     [this, site, item, acker] {
                       ServerOnAck(site, item, acker, /*pinned=*/true);
                     });
    }
    cc.deferred_acks.clear();
  }

  void ServerOnAck(SiteId site, ItemId item, TxnId acker, bool pinned) {
    if (pinned && acker != kInvalidTxn) wfg_.RemoveTxn(acker);
    ItemCbl& it = items_[static_cast<size_t>(item)];
    it.copy_set.erase(site);
    if (it.acks_outstanding > 0) {
      --it.acks_outstanding;
      if (it.acks_outstanding == 0 && !it.queue.empty() &&
          it.queue.front().mode == LockMode::kExclusive &&
          it.x_holder == kInvalidTxn) {
        GrantHead(item);
      }
    }
  }

  void GrantHead(ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    while (!it.queue.empty()) {
      const PendingReq head = it.queue.front();
      if (server_aborted_.count(head.txn) > 0) {
        it.queue.pop_front();
        continue;
      }
      if (head.mode == LockMode::kShared) {
        if (it.x_holder != kInvalidTxn) return;
        it.queue.pop_front();
        wfg_.ClearWaits(head.txn);
        GrantShared(head.txn, head.site, item);
        continue;  // batch-grant consecutive shared requests
      }
      // Exclusive head.
      if (it.x_holder != kInvalidTxn) return;
      if (it.acks_outstanding == 0 &&
          std::none_of(it.copy_set.begin(), it.copy_set.end(),
                       [&head](SiteId s) { return s != head.site; })) {
        it.queue.pop_front();
        it.x_holder = head.txn;
        wfg_.ClearWaits(head.txn);
        const Version version = store().VersionOf(item);
        it.copy_set.insert(head.site);
        network().Send(
            ServerSiteOf(ShardOf(item)), head.site, "cbl-grant-x+data",
            [this, txn = head.txn, item, version] {
              TxnRun* run = FindRun(txn);
              if (run == nullptr || run->finished || run->doomed) {
                return;
              }
              GTPL_CHECK_EQ(run->op().item, item);
              ClientCbl& cc =
                  clients_cbl_[static_cast<size_t>(run->client_index)];
              cc.pins.insert(item);
              OpGranted(*run, version);
            },
            net::kControlPayload + net::kDataPayload);
        return;  // exclusive: nothing behind it can be granted
      }
      StartCallbackCollection(item);
      if (it.acks_outstanding == 0 && it.x_holder == kInvalidTxn &&
          !it.queue.empty() && it.queue.front().mode == LockMode::kExclusive) {
        // No callbacks were actually needed (copy set empty or only the
        // requester); grant immediately rather than stalling forever.
        continue;
      }
      return;
    }
  }

  void ServerOnCommit(TxnId txn,
                      const std::vector<std::pair<ItemId, Version>>& updates) {
    GTPL_CHECK_EQ(server_aborted_.count(txn), 0u);
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = updates.empty() ? kServerSite
                                   : ServerSiteOf(ShardOf(updates[0].first));
      event.payload = static_cast<int64_t>(updates.size());
      tracer().Emit(std::move(event));
    }
    for (const auto& [item, version] : updates) {
      store().Install(item, version);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, item, version);
      server_wal().Force(lsn);
      ItemCbl& it = items_[static_cast<size_t>(item)];
      GTPL_CHECK_EQ(it.x_holder, txn);
      it.x_holder = kInvalidTxn;
      GrantHead(item);
    }
    MaybeGcClientLogs();
    // Idempotent across the per-shard commit messages of one txn.
    wfg_.RemoveTxn(txn);
  }

  void ServerAbort(TxnId victim, ItemId requested_item) {
    GTPL_CHECK(server_aborted_.insert(victim).second);
    wfg_.RemoveTxn(victim);
    // Drop the victim's queued requests and exclusive holds.
    for (size_t i = 0; i < items_.size(); ++i) {
      ItemCbl& it = items_[i];
      const bool head_was_victim =
          !it.queue.empty() && it.queue.front().txn == victim;
      auto pos = std::remove_if(
          it.queue.begin(), it.queue.end(),
          [victim](const PendingReq& r) { return r.txn == victim; });
      it.queue.erase(pos, it.queue.end());
      if (it.x_holder == victim) it.x_holder = kInvalidTxn;
      if (head_was_victim) it.acks_outstanding = 0;
      if (it.x_holder == kInvalidTxn && !it.queue.empty()) {
        GrantHead(static_cast<ItemId>(i));
      }
    }
    TxnRun* run = FindRun(victim);
    GTPL_CHECK(run != nullptr);
    ServerAbortDecision(victim, run->site(),
                        ServerSiteOf(ShardOf(requested_item)));
  }

  void AddWaitEdges(TxnId txn, ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    std::vector<TxnId> blockers;
    if (it.x_holder != kInvalidTxn) blockers.push_back(it.x_holder);
    for (const PendingReq& r : it.queue) {
      if (r.txn == txn) break;
      blockers.push_back(r.txn);  // FIFO: everything ahead blocks
    }
    wfg_.AddWaits(txn, blockers);
  }

  db::WaitsForGraph wfg_;
  std::vector<ItemCbl> items_;
  std::vector<ClientCbl> clients_cbl_;
  std::unordered_set<TxnId> server_aborted_;
  int64_t cache_hits_ = 0;
  int64_t callbacks_sent_ = 0;
};

// ---------------------------------------------------------------------------
// O2PL — optimistic with server-side certification
// ---------------------------------------------------------------------------

/// Certification under sharding mirrors OccEngine: a single-shard commit is
/// the original one-round certify; a cross-server one fans per-shard
/// validates (which double as prepares), reserves validated items so
/// concurrent certifications on other shards cannot invalidate a promised
/// install, and installs + invalidates at decision arrival.
class O2plEngine : public ShardedEngineBase {
 public:
  explicit O2plEngine(const SimConfig& config)
      : ShardedEngineBase(config),
        copy_sets_(static_cast<size_t>(config.workload.num_items)),
        caches_(static_cast<size_t>(config.num_clients)),
        reserved_(static_cast<size_t>(config.num_servers)),
        prepared_(static_cast<size_t>(config.num_servers)) {}

  int64_t cache_hits() const { return cache_hits_; }
  int64_t certification_failures() const { return certification_failures_; }

 protected:
  void SendRequest(TxnRun& run) override {
    const workload::Operation op = run.op();
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    auto cached = cache.find(op.item);
    if (cached != cache.end()) {
      ++cache_hits_;
      OpGranted(run, cached->second);  // optimistic local access
      return;
    }
    const TxnId txn = run.id;
    const SiteId site = run.site();
    const int32_t shard = ShardOf(op.item);
    network().Send(
        site, ServerSiteOf(shard), "o2pl-fetch",
        [this, shard, txn, site, item = op.item, mode = op.mode] {
          NoteRequestAtServer(txn, item, mode, shard);
          copy_sets_[static_cast<size_t>(item)].insert(site);
          const Version version = store().VersionOf(item);
          network().Send(ServerSiteOf(shard), site, "o2pl-data",
                         [this, txn, item, version] {
                           TxnRun* run2 = FindRun(txn);
                           if (run2 == nullptr || run2->finished ||
                               run2->doomed) {
                             return;
                           }
                           GTPL_CHECK_EQ(run2->op().item, item);
                           caches_[static_cast<size_t>(
                               run2->client_index)][item] = version;
                           OpGranted(*run2, version);
                         },
                         net::kControlPayload + net::kDataPayload);
        });
  }

  void StartCommit(TxnRun& run) override {
    GTPL_CHECK(!run.finished);
    GTPL_CHECK(!run.doomed);
    const TxnId txn = run.id;
    std::vector<int32_t> participants = ParticipantsOf(run);
    if (participants.size() <= 1) {
      GTPL_CHECK_EQ(participants.size(), 1u);
      SendCertify(participants[0], run, /*multi=*/false);
      return;
    }
    // Phase one, as in ShardedEngineBase::StartCommit: the coordinator
    // (client) forces its prepare record, then the validates fan out.
    ClientState& client = ClientAt(run.client_index);
    const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, txn,
                                           kInvalidItem, 0);
    const SimTime force_delay = client.wal->Force(lsn);
    VoteCtx ctx;
    ctx.votes_pending = static_cast<int32_t>(participants.size());
    ctx.prepares_pending = static_cast<int32_t>(participants.size());
    ctx.participants = participants;
    votes_[txn] = std::move(ctx);
    auto send_validates = [this, txn,
                           participants = std::move(participants)] {
      TxnRun* current = FindRun(txn);
      if (current == nullptr || current->finished || current->doomed) {
        votes_.erase(txn);
        return;
      }
      votes_.at(txn).sent_time = simulator().Now();
      for (int32_t shard : participants) {
        SendCertify(shard, *current, /*multi=*/true);
      }
    };
    if (force_delay > 0) {
      simulator().Schedule(force_delay, std::move(send_validates));
    } else {
      send_validates();
    }
  }

  void DoCommit(TxnRun& run) override {
    // Keep the successfully installed versions cached locally.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) {
        cache[record.item] = record.version_written;
      }
    }
  }

  void OnClientAborted(TxnRun& run) override {
    // Stale reads caused the failure; evict everything the txn touched so
    // the retry fetches fresh copies.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) cache.erase(record.item);
    if (!run.LastOp() || run.records.size() < run.spec.ops.size()) {
      // also evict the item of the op in flight, if cached stale
      cache.erase(run.op().item);
    }
    votes_.erase(run.id);
    std::vector<int32_t> participants = ParticipantsOf(run);
    if (participants.size() <= 1) return;  // nothing was reserved
    // Shards that validated before the failing shard doomed the
    // transaction still hold reservations; release them. Idempotent: a
    // shard that never prepared this transaction ignores the message.
    for (int32_t shard : participants) {
      network().Send(run.site(), ServerSiteOf(shard), "o2pl-abort",
                     [this, shard, txn = run.id] {
                       auto& shard_prepared =
                           prepared_[static_cast<size_t>(shard)];
                       auto it = shard_prepared.find(txn);
                       if (it == shard_prepared.end()) return;
                       ClearReservations(shard, it->second);
                       shard_prepared.erase(it);
                     });
    }
  }

  bool ShardVote(int32_t shard, TxnId txn, bool speculative) override {
    (void)shard;
    (void)txn;
    (void)speculative;
    GTPL_CHECK(false) << "O2PL overrides StartCommit; base 2PC is unreachable";
    return false;
  }

  void OnCommitDecision(int32_t shard, TxnId txn) override {
    (void)shard;
    (void)txn;
    GTPL_CHECK(false) << "O2PL overrides StartCommit; base 2PC is unreachable";
  }

  void FillProtocolMetrics(RunResult* result) override {
    ShardedEngineBase::FillProtocolMetrics(result);
  }

 private:
  struct Slot {
    TxnId writer = kInvalidTxn;
    int32_t readers = 0;
  };
  struct VoteCtx {
    int32_t votes_pending = 0;
    int32_t prepares_pending = 0;
    bool all_yes = true;
    std::vector<int32_t> participants;
    SimTime sent_time = 0;
  };

  void SendCertify(int32_t shard, TxnRun& run, bool multi) {
    std::vector<OpRecord> slice;
    for (const OpRecord& record : run.records) {
      if (ShardOf(record.item) != shard) continue;
      slice.push_back(record);
    }
    // The certify ships the shard's read versions and write values, so the
    // later decision message can stay control-only.
    const uint64_t payload =
        net::kControlPayload +
        net::kDataPayload * static_cast<uint64_t>(slice.size());
    network().Send(
        run.site(), ServerSiteOf(shard), "o2pl-certify",
        [this, shard, txn = run.id, site = run.site(),
         slice = std::move(slice), multi] {
          OnCertify(shard, txn, site, std::move(slice), multi);
        },
        payload);
  }

  void OnCertify(int32_t shard, TxnId txn, SiteId client_site,
                 std::vector<OpRecord> records, bool multi) {
    if (multi) {
      if (config().record_protocol_events) {
        ProtocolEvent event;
        event.kind = ProtocolEventKind::kPrepareArrived;
        event.txn = txn;
        event.server = shard;
        RecordEvent(std::move(event));
      }
      if (tracer().enabled()) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::kPrepare;
        event.txn = txn;
        event.shard = shard;
        event.site = ServerSiteOf(shard);
        tracer().Emit(std::move(event));
      }
      auto vote_it = votes_.find(txn);
      if (vote_it != votes_.end() &&
          --vote_it->second.prepares_pending == 0) {
        TxnRun* owner = FindRun(txn);
        if (owner != nullptr && !owner->finished) {
          owner->span.commit_prepare =
              simulator().Now() - vote_it->second.sent_time;
        }
      }
    }
    TxnRun* run = FindRun(txn);
    const bool alive = run != nullptr && !run->finished && !run->doomed;
    const bool ok = alive && ValidateSlice(shard, records);
    if (!multi) {
      if (!ok) {
        if (alive) {
          ++certification_failures_;
          ServerAbortDecision(txn, run->site(), ServerSiteOf(shard));
        }
        return;
      }
      // Validate + install are atomic at the server: the validation instant
      // is the serialization point, then the commit-ok closes the round.
      InstallCertified(shard, txn, client_site, records);
      network().Send(ServerSiteOf(shard), client_site, "o2pl-commit-ok",
                     [this, txn] {
                       TxnRun* target = FindRun(txn);
                       if (target == nullptr || target->finished ||
                           target->doomed) {
                         return;
                       }
                       FinalizeCommit(*target);
                     });
      return;
    }
    if (ok) {
      Reserve(shard, txn, records);
      prepared_[static_cast<size_t>(shard)][txn] = std::move(records);
      // The participant forces its own prepare record before voting yes.
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kPrepare,
                                              txn, kInvalidItem, 0);
      server_wal().Force(lsn);
    } else if (alive) {
      ++certification_failures_;
      ServerAbortDecision(txn, run->site(), ServerSiteOf(shard));
    }
    // client_site was captured at send time: the vote must be deliverable
    // even when the run is already gone (it is dropped at tally time).
    network().Send(ServerSiteOf(shard), client_site, "vote",
                   [this, txn, shard, ok] { OnO2plVote(txn, shard, ok); });
  }

  void OnO2plVote(TxnId txn, int32_t shard, bool yes) {
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kVoteArrived;
      event.txn = txn;
      event.server = shard;
      event.flag = yes;
      RecordEvent(std::move(event));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kVote;
      event.txn = txn;
      event.shard = shard;
      event.flag = yes;
      tracer().Emit(std::move(event));
    }
    auto it = votes_.find(txn);
    if (it == votes_.end()) return;
    VoteCtx& ctx = it->second;
    ctx.all_yes = ctx.all_yes && yes;
    if (--ctx.votes_pending > 0) return;
    const bool all_yes = ctx.all_yes;
    const SimTime sent_time = ctx.sent_time;
    const std::vector<int32_t> participants = std::move(ctx.participants);
    votes_.erase(it);
    TxnRun* run = FindRun(txn);
    if (run == nullptr || run->finished || run->doomed) return;
    if (!all_yes) {
      // A no vote came with the voting shard's abort decision, which
      // doomed the run instantly — unreachable in practice; safety net.
      return;
    }
    run->span.commit_vote =
        simulator().Now() - sent_time - run->span.commit_prepare;
    run->commit_flights = 2;
    if (measuring()) {
      ++cross_server_commits_;
      commit_participants_.Add(static_cast<double>(participants.size()));
    }
    const SiteId from = run->site();
    for (int32_t participant : participants) {
      network().Send(
          from, ServerSiteOf(participant), "commit-decision",
          [this, participant, txn] { OnO2plDecision(participant, txn); });
    }
    EngineBase::StartCommit(*run);
  }

  void OnO2plDecision(int32_t shard, TxnId txn) {
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kCommitDecisionArrived;
      event.txn = txn;
      event.server = shard;
      RecordEvent(std::move(event));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kDecide;
      event.txn = txn;
      event.shard = shard;
      event.site = ServerSiteOf(shard);
      tracer().Emit(std::move(event));
    }
    server_wal().Append(db::LogRecordKind::kCommit, txn, kInvalidItem, 0);
    auto& shard_prepared = prepared_[static_cast<size_t>(shard)];
    auto it = shard_prepared.find(txn);
    GTPL_CHECK(it != shard_prepared.end()) << "decision for unprepared txn";
    const std::vector<OpRecord> records = std::move(it->second);
    shard_prepared.erase(it);
    TxnRun* run = FindRun(txn);
    const SiteId committer = run != nullptr ? run->site() : kInvalidTxn;
    InstallCertified(shard, txn, committer, records);
    ClearReservations(shard, records);
  }

  bool ValidateSlice(int32_t shard, const std::vector<OpRecord>& records) {
    const auto& slots = reserved_[static_cast<size_t>(shard)];
    for (const OpRecord& record : records) {
      // Backward validation: the read version must still be committed.
      if (store().VersionOf(record.item) != record.version_read) {
        return false;
      }
      // And no concurrently prepared transaction may hold a conflicting
      // reservation (its install is already promised).
      auto it = slots.find(record.item);
      if (it == slots.end()) continue;
      const Slot& slot = it->second;
      if (slot.writer != kInvalidTxn) return false;
      if (slot.readers > 0 && record.mode == LockMode::kExclusive) {
        return false;
      }
    }
    return true;
  }

  void Reserve(int32_t shard, TxnId txn,
               const std::vector<OpRecord>& records) {
    auto& slots = reserved_[static_cast<size_t>(shard)];
    for (const OpRecord& record : records) {
      Slot& slot = slots[record.item];
      if (record.mode == LockMode::kExclusive) {
        GTPL_CHECK_EQ(slot.writer, kInvalidTxn);
        slot.writer = txn;
      } else {
        ++slot.readers;
      }
    }
  }

  void ClearReservations(int32_t shard,
                         const std::vector<OpRecord>& records) {
    auto& slots = reserved_[static_cast<size_t>(shard)];
    for (const OpRecord& record : records) {
      auto it = slots.find(record.item);
      GTPL_CHECK(it != slots.end());
      Slot& slot = it->second;
      if (record.mode == LockMode::kExclusive) {
        slot.writer = kInvalidTxn;
      } else {
        --slot.readers;
      }
      if (slot.readers == 0 && slot.writer == kInvalidTxn) slots.erase(it);
    }
  }

  /// Install + invalidate for the certified records of one shard.
  /// `committer_site` keeps its cached copies; everyone else's are stale.
  void InstallCertified(int32_t shard, TxnId txn, SiteId committer_site,
                        const std::vector<OpRecord>& records) {
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = ServerSiteOf(shard);
      event.shard = shard;
      event.payload = static_cast<int64_t>(records.size());
      event.label = "certified";
      tracer().Emit(std::move(event));
    }
    for (const OpRecord& record : records) {
      if (record.mode != LockMode::kExclusive) continue;
      store().Install(record.item, record.version_written);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, record.item,
                                              record.version_written);
      server_wal().Force(lsn);
      // Invalidate remote copies.
      auto& copies = copy_sets_[static_cast<size_t>(record.item)];
      for (SiteId other : copies) {
        if (other == committer_site) continue;
        network().Send(ServerSiteOf(shard), other, "o2pl-invalidate",
                       [this, other, item = record.item] {
                         caches_[static_cast<size_t>(other - 1)].erase(item);
                       });
      }
      copies.clear();
      if (committer_site != kInvalidTxn) copies.insert(committer_site);
    }
    MaybeGcClientLogs();
  }

  std::vector<std::unordered_set<SiteId>> copy_sets_;
  std::vector<std::unordered_map<ItemId, Version>> caches_;
  std::vector<std::unordered_map<ItemId, Slot>> reserved_;
  std::vector<std::unordered_map<TxnId, std::vector<OpRecord>>> prepared_;
  std::unordered_map<TxnId, VoteCtx> votes_;
  int64_t cache_hits_ = 0;
  int64_t certification_failures_ = 0;
};

}  // namespace

std::unique_ptr<EngineBase> MakeCachingEngine(const SimConfig& config) {
  switch (config.protocol) {
    case Protocol::kC2pl:
      return std::make_unique<C2plEngine>(config);
    case Protocol::kCbl:
      return std::make_unique<CblEngine>(config);
    case Protocol::kO2pl:
      return std::make_unique<O2plEngine>(config);
    default:
      GTPL_CHECK(false) << "not a caching protocol";
  }
  return nullptr;
}

}  // namespace gtpl::proto
