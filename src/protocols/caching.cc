// Client-caching concurrency-control protocols (extensions beyond the
// paper's evaluation; §1 names the families, §6 defers the comparison):
//
//  * c-2PL  — caching 2PL: clients cache *data* across transactions; every
//    access still takes a per-transaction server lock, but the reply omits
//    the data when the cached copy is current. With negligible transmission
//    delay (the paper's WAN model) it behaves like s-2PL in rounds — an
//    honest negative result the comparison bench shows.
//  * CBL    — callback locking: clients cache data and *read permission*
//    across transactions; a writer's exclusive request triggers callbacks to
//    all caching clients and waits for their acknowledgements (deferred
//    while a local transaction has the copy pinned).
//  * O2PL   — optimistic 2PL: clients read/write cached copies with no
//    synchronous permission checks; commit runs a server-side backward
//    certification (validate read versions, install writes, invalidate
//    remote copies). Conflicts cost aborts instead of blocking.

#include "protocols/caching.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "db/lock_table.h"
#include "db/waits_for_graph.h"

namespace gtpl::proto {
namespace {

// ---------------------------------------------------------------------------
// c-2PL
// ---------------------------------------------------------------------------

/// Caching 2PL. Server side is a strict-2PL lock table exactly like s-2PL;
/// the only difference is client data caching, which saves payload bytes but
/// (by design of the latency model) no rounds. Cache hits are counted so the
/// protocol-comparison bench can report the (lack of) benefit.
class C2plEngine : public EngineBase {
 public:
  explicit C2plEngine(const SimConfig& config)
      : EngineBase(config),
        lock_table_(config.workload.num_items),
        caches_(static_cast<size_t>(config.num_clients)) {}

  int64_t cache_hits() const { return cache_hits_; }

 protected:
  void SendRequest(TxnRun& run) override {
    const TxnId txn = run.id;
    const SiteId site = run.site();
    const workload::Operation op = run.op();
    network().Send(site, kServerSite, "lock-request",
                   [this, txn, site, op] {
                     ServerOnRequest(txn, site, op.item, op.mode);
                   });
  }

  void DoCommit(TxnRun& run) override {
    std::vector<std::pair<ItemId, Version>> updates;
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) {
        updates.emplace_back(record.item, record.version_written);
        cache[record.item] = record.version_written;
      } else {
        cache[record.item] = record.version_read;
      }
    }
    const TxnId txn = run.id;
    network().Send(run.site(), kServerSite, "release",
                   [this, txn, updates = std::move(updates)] {
                     ServerOnRelease(txn, updates);
                   });
  }

  void OnClientAborted(TxnRun& run) override {
    // Locally updated copies are dirty; drop them.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) cache.erase(record.item);
    }
  }

 private:
  void ServerOnRequest(TxnId txn, SiteId site, ItemId item, LockMode mode) {
    NoteRequestAtServer(txn, item, mode);
    if (server_aborted_.count(txn) > 0) return;
    const db::LockResult outcome = lock_table_.Request(txn, item, mode);
    if (outcome == db::LockResult::kGranted) {
      SendGrant(txn, site, item);
      return;
    }
    wfg_.AddWaits(txn, lock_table_.Blockers(txn, item));
    if (!wfg_.CycleThrough(txn).empty()) ServerAbort(txn);
  }

  void SendGrant(TxnId txn, SiteId site, ItemId item) {
    const Version version = store().VersionOf(item);
    auto& cache = caches_[static_cast<size_t>(site - 1)];
    auto cached = cache.find(item);
    const bool hit = cached != cache.end() && cached->second == version;
    if (hit) ++cache_hits_;
    network().Send(
        kServerSite, site, hit ? "grant(validate)" : "grant+data",
        [this, txn, item, version] {
          TxnRun* run = FindRun(txn);
          if (run == nullptr || run->finished || run->doomed) {
            return;
          }
          GTPL_CHECK_EQ(run->op().item, item);
          OpGranted(*run, version);
        },
        hit ? net::kControlPayload
            : net::kControlPayload + net::kDataPayload);
  }

  void ServerOnRelease(TxnId txn,
                       const std::vector<std::pair<ItemId, Version>>& updates) {
    GTPL_CHECK_EQ(server_aborted_.count(txn), 0u);
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = kServerSite;
      event.payload = static_cast<int64_t>(updates.size());
      tracer().Emit(std::move(event));
    }
    for (const auto& [item, version] : updates) {
      store().Install(item, version);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, item, version);
      server_wal().Force(lsn);
      // Remote cached copies of `item` are now stale; they fail validation
      // on their next access (detection-based consistency).
    }
    MaybeGcClientLogs();
    wfg_.RemoveTxn(txn);
    ReleaseLocks(txn);
  }

  void ReleaseLocks(TxnId txn) {
    lock_table_.ReleaseAll(txn, [this](TxnId granted, ItemId item,
                                       LockMode mode) {
      (void)mode;
      wfg_.ClearWaits(granted);
      TxnRun* run = FindRun(granted);
      if (run != nullptr) SendGrant(granted, run->site(), item);
    });
  }

  void ServerAbort(TxnId victim) {
    GTPL_CHECK(server_aborted_.insert(victim).second);
    wfg_.RemoveTxn(victim);
    ReleaseLocks(victim);
    TxnRun* run = FindRun(victim);
    GTPL_CHECK(run != nullptr);
    ServerAbortDecision(victim, run->site());
  }

  db::LockTable lock_table_;
  db::WaitsForGraph wfg_;
  std::unordered_set<TxnId> server_aborted_;
  std::vector<std::unordered_map<ItemId, Version>> caches_;
  int64_t cache_hits_ = 0;
};

// ---------------------------------------------------------------------------
// CBL — callback locking
// ---------------------------------------------------------------------------

class CblEngine : public EngineBase {
 public:
  explicit CblEngine(const SimConfig& config)
      : EngineBase(config),
        items_(static_cast<size_t>(config.workload.num_items)),
        clients_cbl_(static_cast<size_t>(config.num_clients)) {}

  int64_t cache_hits() const { return cache_hits_; }
  int64_t callbacks_sent() const { return callbacks_sent_; }

 protected:
  void SendRequest(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    if (run.current_op == 0) cc.pins.clear();  // a fresh transaction
    const workload::Operation op = run.op();
    if (op.mode == LockMode::kShared) {
      auto cached = cc.cache.find(op.item);
      if (cached != cc.cache.end()) {
        // Read permission is retained across transactions: local access.
        ++cache_hits_;
        cc.pins.insert(op.item);
        OpGranted(run, cached->second);
        return;
      }
    }
    const TxnId txn = run.id;
    const SiteId site = run.site();
    network().Send(site, kServerSite, "cbl-request",
                   [this, txn, site, op] {
                     ServerOnRequest(txn, site, op.item, op.mode);
                   });
  }

  void DoCommit(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    std::vector<std::pair<ItemId, Version>> updates;
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) {
        updates.emplace_back(record.item, record.version_written);
        // CB-read downgrade: the writer keeps the copy with read permission.
        cc.cache[record.item] = record.version_written;
      } else {
        cc.cache[record.item] = record.version_read;
      }
    }
    FlushDeferredAcks(run.client_index);
    if (!updates.empty()) {
      const TxnId txn = run.id;
      const uint64_t payload =
          net::kControlPayload + net::kDataPayload * updates.size();
      network().Send(
          run.site(), kServerSite, "cbl-commit",
          [this, txn, updates = std::move(updates)] {
            ServerOnCommit(txn, updates);
          },
          payload);
    }
    cc.pins.clear();
  }

  void OnClientAborted(TxnRun& run) override {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) cc.cache.erase(record.item);
    }
    FlushDeferredAcks(run.client_index);
    cc.pins.clear();
    // If the victim held the exclusive lock or was queued, the server
    // cleaned that up at decision time (ServerAbort).
  }

  void FillProtocolMetrics(RunResult* result) override { (void)result; }

 private:
  struct PendingReq {
    TxnId txn;
    SiteId site;
    LockMode mode;
  };
  struct ItemCbl {
    std::unordered_set<SiteId> copy_set;   // clients with read permission
    TxnId x_holder = kInvalidTxn;
    std::deque<PendingReq> queue;          // FIFO; head X may be collecting
    int32_t acks_outstanding = 0;          // callbacks pending for head X
  };
  struct ClientCbl {
    std::unordered_map<ItemId, Version> cache;
    std::unordered_set<ItemId> pins;       // items used by the current txn
    std::vector<ItemId> deferred_acks;     // callbacks answered at txn end
  };

  void ServerOnRequest(TxnId txn, SiteId site, ItemId item, LockMode mode) {
    NoteRequestAtServer(txn, item, mode);
    if (server_aborted_.count(txn) > 0) return;
    ItemCbl& it = items_[static_cast<size_t>(item)];
    if (it.x_holder == kInvalidTxn && it.queue.empty()) {
      if (mode == LockMode::kShared) {
        GrantShared(txn, site, item);
        return;
      }
      it.queue.push_back(PendingReq{txn, site, mode});
      StartCallbackCollection(item);
      if (it.queue.empty() || it.queue.front().txn != txn) return;
      if (it.acks_outstanding == 0) GrantHead(item);
      return;
    }
    it.queue.push_back(PendingReq{txn, site, mode});
    AddWaitEdges(txn, item);
    if (!wfg_.CycleThrough(txn).empty()) ServerAbort(txn, item);
  }

  void GrantShared(TxnId txn, SiteId site, ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    it.copy_set.insert(site);
    const Version version = store().VersionOf(item);
    // Shared grants ship the data.
    network().Send(
        kServerSite, site, "cbl-grant+data",
        [this, txn, item, version] {
          TxnRun* run = FindRun(txn);
          if (run == nullptr || run->finished || run->doomed) {
            return;
          }
          GTPL_CHECK_EQ(run->op().item, item);
          ClientCbl& cc =
              clients_cbl_[static_cast<size_t>(run->client_index)];
          cc.cache[item] = version;
          cc.pins.insert(item);
          OpGranted(*run, version);
        },
        net::kControlPayload + net::kDataPayload);
  }

  /// Sends callbacks for the X request at the head of `item`'s queue.
  void StartCallbackCollection(ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    GTPL_CHECK(!it.queue.empty());
    const PendingReq head = it.queue.front();
    GTPL_CHECK(head.mode == LockMode::kExclusive);
    std::vector<SiteId> targets;
    for (SiteId site : it.copy_set) {
      if (site != head.site) targets.push_back(site);
    }
    it.acks_outstanding = static_cast<int32_t>(targets.size());
    // Wait edges toward transactions that pin a cached copy right now.
    std::vector<TxnId> blockers;
    for (SiteId site : targets) {
      ++callbacks_sent_;
      ClientCbl& cc = clients_cbl_[static_cast<size_t>(site - 1)];
      if (cc.pins.count(item) > 0) {
        TxnRun* pinner = ClientAt(site - 1).current.get();
        if (pinner != nullptr && !pinner->finished) {
          blockers.push_back(pinner->id);
        }
      }
      network().Send(kServerSite, site, "cbl-callback",
                     [this, site, item, collector = head.txn] {
                       ClientOnCallback(site, item, collector);
                     });
    }
    if (!blockers.empty()) {
      wfg_.AddWaits(head.txn, blockers);
      if (!wfg_.CycleThrough(head.txn).empty()) {
        ServerAbort(head.txn, item);
      }
    }
  }

  void ClientOnCallback(SiteId site, ItemId item, TxnId collector) {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(site - 1)];
    if (cc.pins.count(item) > 0) {
      // In use by the running transaction: answer when it ends. The pin may
      // postdate the collection start (local cache hits need no server
      // round), so the collector's wait edge is recorded here; a cycle
      // means the pinner closed a deadlock and is aborted.
      cc.deferred_acks.push_back(item);
      TxnRun* pinner = ClientAt(site - 1).current.get();
      if (pinner != nullptr && !pinner->finished &&
          server_aborted_.count(collector) == 0 &&
          server_aborted_.count(pinner->id) == 0) {
        wfg_.AddWaits(collector, {pinner->id});
        if (!wfg_.CycleThrough(collector).empty()) {
          ServerAbort(pinner->id, item);
        }
      }
      return;
    }
    cc.cache.erase(item);
    TxnRun* run = ClientAt(site - 1).current.get();
    const TxnId acker = run != nullptr ? run->id : kInvalidTxn;
    network().Send(site, kServerSite, "cbl-ack", [this, site, item, acker] {
      ServerOnAck(site, item, acker, /*pinned=*/false);
    });
  }

  void FlushDeferredAcks(int32_t client_index) {
    ClientCbl& cc = clients_cbl_[static_cast<size_t>(client_index)];
    if (cc.deferred_acks.empty()) return;
    const SiteId site = client_index + 1;
    TxnRun* run = ClientAt(client_index).current.get();
    const TxnId acker = run != nullptr ? run->id : kInvalidTxn;
    for (ItemId item : cc.deferred_acks) {
      cc.cache.erase(item);
      network().Send(site, kServerSite, "cbl-ack", [this, site, item, acker] {
        ServerOnAck(site, item, acker, /*pinned=*/true);
      });
    }
    cc.deferred_acks.clear();
  }

  void ServerOnAck(SiteId site, ItemId item, TxnId acker, bool pinned) {
    if (pinned && acker != kInvalidTxn) wfg_.RemoveTxn(acker);
    ItemCbl& it = items_[static_cast<size_t>(item)];
    it.copy_set.erase(site);
    if (it.acks_outstanding > 0) {
      --it.acks_outstanding;
      if (it.acks_outstanding == 0 && !it.queue.empty() &&
          it.queue.front().mode == LockMode::kExclusive &&
          it.x_holder == kInvalidTxn) {
        GrantHead(item);
      }
    }
  }

  void GrantHead(ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    while (!it.queue.empty()) {
      const PendingReq head = it.queue.front();
      if (server_aborted_.count(head.txn) > 0) {
        it.queue.pop_front();
        continue;
      }
      if (head.mode == LockMode::kShared) {
        if (it.x_holder != kInvalidTxn) return;
        it.queue.pop_front();
        wfg_.ClearWaits(head.txn);
        GrantShared(head.txn, head.site, item);
        continue;  // batch-grant consecutive shared requests
      }
      // Exclusive head.
      if (it.x_holder != kInvalidTxn) return;
      if (it.acks_outstanding == 0 &&
          std::none_of(it.copy_set.begin(), it.copy_set.end(),
                       [&head](SiteId s) { return s != head.site; })) {
        it.queue.pop_front();
        it.x_holder = head.txn;
        wfg_.ClearWaits(head.txn);
        const Version version = store().VersionOf(item);
        it.copy_set.insert(head.site);
        network().Send(
            kServerSite, head.site, "cbl-grant-x+data",
            [this, txn = head.txn, item, version] {
              TxnRun* run = FindRun(txn);
              if (run == nullptr || run->finished || run->doomed) {
                return;
              }
              GTPL_CHECK_EQ(run->op().item, item);
              ClientCbl& cc =
                  clients_cbl_[static_cast<size_t>(run->client_index)];
              cc.pins.insert(item);
              OpGranted(*run, version);
            },
            net::kControlPayload + net::kDataPayload);
        return;  // exclusive: nothing behind it can be granted
      }
      StartCallbackCollection(item);
      if (it.acks_outstanding == 0 && it.x_holder == kInvalidTxn &&
          !it.queue.empty() && it.queue.front().mode == LockMode::kExclusive) {
        // No callbacks were actually needed (copy set empty or only the
        // requester); grant immediately rather than stalling forever.
        continue;
      }
      return;
    }
  }

  void ServerOnCommit(TxnId txn,
                      const std::vector<std::pair<ItemId, Version>>& updates) {
    GTPL_CHECK_EQ(server_aborted_.count(txn), 0u);
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = kServerSite;
      event.payload = static_cast<int64_t>(updates.size());
      tracer().Emit(std::move(event));
    }
    for (const auto& [item, version] : updates) {
      store().Install(item, version);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, item, version);
      server_wal().Force(lsn);
      ItemCbl& it = items_[static_cast<size_t>(item)];
      GTPL_CHECK_EQ(it.x_holder, txn);
      it.x_holder = kInvalidTxn;
      GrantHead(item);
    }
    MaybeGcClientLogs();
    wfg_.RemoveTxn(txn);
  }

  void ServerAbort(TxnId victim, ItemId requested_item) {
    (void)requested_item;
    GTPL_CHECK(server_aborted_.insert(victim).second);
    wfg_.RemoveTxn(victim);
    // Drop the victim's queued requests and exclusive holds.
    for (size_t i = 0; i < items_.size(); ++i) {
      ItemCbl& it = items_[i];
      const bool head_was_victim =
          !it.queue.empty() && it.queue.front().txn == victim;
      auto pos = std::remove_if(
          it.queue.begin(), it.queue.end(),
          [victim](const PendingReq& r) { return r.txn == victim; });
      it.queue.erase(pos, it.queue.end());
      if (it.x_holder == victim) it.x_holder = kInvalidTxn;
      if (head_was_victim) it.acks_outstanding = 0;
      if (it.x_holder == kInvalidTxn && !it.queue.empty()) {
        GrantHead(static_cast<ItemId>(i));
      }
    }
    TxnRun* run = FindRun(victim);
    GTPL_CHECK(run != nullptr);
    ServerAbortDecision(victim, run->site());
  }

  void AddWaitEdges(TxnId txn, ItemId item) {
    ItemCbl& it = items_[static_cast<size_t>(item)];
    std::vector<TxnId> blockers;
    if (it.x_holder != kInvalidTxn) blockers.push_back(it.x_holder);
    for (const PendingReq& r : it.queue) {
      if (r.txn == txn) break;
      blockers.push_back(r.txn);  // FIFO: everything ahead blocks
    }
    wfg_.AddWaits(txn, blockers);
  }

  db::WaitsForGraph wfg_;
  std::vector<ItemCbl> items_;
  std::vector<ClientCbl> clients_cbl_;
  std::unordered_set<TxnId> server_aborted_;
  int64_t cache_hits_ = 0;
  int64_t callbacks_sent_ = 0;
};

// ---------------------------------------------------------------------------
// O2PL — optimistic with server-side certification
// ---------------------------------------------------------------------------

class O2plEngine : public EngineBase {
 public:
  explicit O2plEngine(const SimConfig& config)
      : EngineBase(config),
        copy_sets_(static_cast<size_t>(config.workload.num_items)),
        caches_(static_cast<size_t>(config.num_clients)) {}

  int64_t cache_hits() const { return cache_hits_; }
  int64_t certification_failures() const { return certification_failures_; }

 protected:
  void SendRequest(TxnRun& run) override {
    const workload::Operation op = run.op();
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    auto cached = cache.find(op.item);
    if (cached != cache.end()) {
      ++cache_hits_;
      OpGranted(run, cached->second);  // optimistic local access
      return;
    }
    const TxnId txn = run.id;
    const SiteId site = run.site();
    network().Send(site, kServerSite, "o2pl-fetch",
                   [this, txn, site, item = op.item, mode = op.mode] {
                     NoteRequestAtServer(txn, item, mode);
                     copy_sets_[static_cast<size_t>(item)].insert(site);
                     const Version version = store().VersionOf(item);
                     network().Send(kServerSite, site, "o2pl-data",
                                    [this, txn, item, version] {
                                      TxnRun* run2 = FindRun(txn);
                                      if (run2 == nullptr || run2->finished ||
                                          run2->doomed) {
                                        return;
                                      }
                                      GTPL_CHECK_EQ(run2->op().item, item);
                                      caches_[static_cast<size_t>(
                                          run2->client_index)][item] = version;
                                      OpGranted(*run2, version);
                                    },
                                    net::kControlPayload +
                                        net::kDataPayload);
                   });
  }

  void StartCommit(TxnRun& run) override {
    // Commit = certification round: ship read versions and updates; the
    // server validates, installs, and invalidates remote copies.
    const TxnId txn = run.id;
    const SiteId site = run.site();
    const std::vector<OpRecord> records = run.records;
    const uint64_t payload =
        net::kControlPayload +
        net::kDataPayload * static_cast<uint64_t>(records.size());
    network().Send(
        site, kServerSite, "o2pl-certify",
        [this, txn, site, records] { Certify(txn, site, records); },
        payload);
  }

  void DoCommit(TxnRun& run) override {
    // Keep the successfully installed versions cached locally.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) {
      if (record.mode == LockMode::kExclusive) {
        cache[record.item] = record.version_written;
      }
    }
  }

  void OnClientAborted(TxnRun& run) override {
    // Stale reads caused the failure; evict everything the txn touched so
    // the retry fetches fresh copies.
    auto& cache = caches_[static_cast<size_t>(run.client_index)];
    for (const OpRecord& record : run.records) cache.erase(record.item);
    if (!run.LastOp() || run.records.size() < run.spec.ops.size()) {
      // also evict the item of the op in flight, if cached stale
      cache.erase(run.op().item);
    }
  }

 private:
  void Certify(TxnId txn, SiteId site, const std::vector<OpRecord>& records) {
    bool valid = true;
    for (const OpRecord& record : records) {
      if (store().VersionOf(record.item) != record.version_read) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      ++certification_failures_;
      ServerAbortDecision(txn, site);
      return;
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kLockRelease;
      event.txn = txn;
      event.site = kServerSite;
      event.payload = static_cast<int64_t>(records.size());
      event.label = "certified";
      tracer().Emit(std::move(event));
    }
    for (const OpRecord& record : records) {
      if (record.mode != LockMode::kExclusive) continue;
      store().Install(record.item, record.version_written);
      const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall,
                                              txn, record.item,
                                              record.version_written);
      server_wal().Force(lsn);
      // Invalidate remote copies.
      auto& copies = copy_sets_[static_cast<size_t>(record.item)];
      for (SiteId other : copies) {
        if (other == site) continue;
        network().Send(kServerSite, other, "o2pl-invalidate",
                       [this, other, item = record.item] {
                         caches_[static_cast<size_t>(other - 1)].erase(item);
                       });
      }
      copies.clear();
      copies.insert(site);
    }
    MaybeGcClientLogs();
    network().Send(kServerSite, site, "o2pl-commit-ok", [this, txn] {
      TxnRun* run = FindRun(txn);
      if (run == nullptr || run->finished || run->doomed) return;
      FinalizeCommit(*run);
    });
  }

  std::vector<std::unordered_set<SiteId>> copy_sets_;
  std::vector<std::unordered_map<ItemId, Version>> caches_;
  int64_t cache_hits_ = 0;
  int64_t certification_failures_ = 0;
};

}  // namespace

std::unique_ptr<EngineBase> MakeCachingEngine(const SimConfig& config) {
  switch (config.protocol) {
    case Protocol::kC2pl:
      return std::make_unique<C2plEngine>(config);
    case Protocol::kCbl:
      return std::make_unique<CblEngine>(config);
    case Protocol::kO2pl:
      return std::make_unique<O2plEngine>(config);
    default:
      GTPL_CHECK(false) << "not a caching protocol";
  }
  return nullptr;
}

}  // namespace gtpl::proto
