#include "protocols/engine.h"

#include <memory>

#include "common/check.h"
#include "protocols/caching.h"
#include "protocols/g2pl.h"
#include "protocols/s2pl.h"

namespace gtpl::proto {

RunResult RunSimulation(const SimConfig& config) {
  GTPL_CHECK(config.Validate().ok()) << config.Validate().ToString();
  std::unique_ptr<EngineBase> engine;
  switch (config.protocol) {
    case Protocol::kS2pl:
      engine = std::make_unique<S2plEngine>(config);
      break;
    case Protocol::kG2pl:
      engine = std::make_unique<G2plEngine>(config);
      break;
    case Protocol::kC2pl:
    case Protocol::kCbl:
    case Protocol::kO2pl:
      engine = MakeCachingEngine(config);
      break;
  }
  GTPL_CHECK(engine != nullptr);
  return engine->Run();
}

}  // namespace gtpl::proto
