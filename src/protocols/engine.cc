#include "protocols/engine.h"

#include <memory>

#include "common/check.h"
#include "protocols/caching.h"
#include "protocols/g2pl.h"
#include "protocols/s2pl.h"
#include "protocols/sharded.h"

namespace gtpl::proto {

RunResult RunSimulation(const SimConfig& config) {
  GTPL_CHECK(config.Validate().ok()) << config.Validate().ToString();
  std::unique_ptr<EngineBase> engine;
  if (config.num_servers > 1) {
    // Sharded server group; num_servers == 1 keeps the original engines
    // (the sharded ones reproduce them bit for bit — equivalence suite).
    engine = MakeShardedEngine(config);
    return engine->Run();
  }
  switch (config.protocol) {
    case Protocol::kS2pl:
      engine = std::make_unique<S2plEngine>(config);
      break;
    case Protocol::kG2pl:
      engine = std::make_unique<G2plEngine>(config);
      break;
    case Protocol::kC2pl:
    case Protocol::kCbl:
    case Protocol::kO2pl:
      engine = MakeCachingEngine(config);
      break;
  }
  GTPL_CHECK(engine != nullptr);
  return engine->Run();
}

}  // namespace gtpl::proto
