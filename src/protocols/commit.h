#ifndef GTPL_PROTOCOLS_COMMIT_H_
#define GTPL_PROTOCOLS_COMMIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gtpl::proto {

/// Geo-aware commit-path variants for cross-server two-phase commit
/// (DESIGN.md §13). Selected per run by SimConfig::commit_path / the
/// `--commit=NAME` flag; every variant composes with every sharded engine
/// in the cc registry. kClassic is the default and is bit-identical to the
/// pre-registry engines (the standing goldens and the equivalence battery
/// pin this); transactions confined to one shard never enter any of these
/// paths.
enum class CommitPath {
  /// Today's client-coordinated 2PC: the prepare fan-out is already
  /// parallel (all participants at the same simulated instant, so the
  /// prepare phase costs max-RTT, not sum-RTT); response blocks on the
  /// prepare flight out plus the vote flight back — two WAN flights.
  kClassic = 0,
  /// Speculative early prepare: a participant whose share of the work set
  /// is complete gets its prepare piggybacked on the last operation that
  /// touches it, so the prepare/vote round overlaps the remaining
  /// execution rounds. With every vote home by commit time the commit
  /// phase blocks on zero WAN flights.
  kEarly = 1,
  /// One-round fast path for transactions whose writes land on a single
  /// shard: the prepare/vote round is skipped entirely and the commit
  /// outcome rides the ordinary release/forward messages (reads elsewhere
  /// are validated by the piggybacked decision — the shard still holds
  /// their locks, and a doomed transaction can never reach this path).
  kFastPath = 2,
  /// Coordinator placement: per transaction, choose between the client
  /// and the server co-located with the write-heaviest participant as 2PC
  /// coordinator, from the static latency matrix. A remote coordinator
  /// adds a handoff and an ack leg on the client's own response (four
  /// blocking flights) but delivers the commit decision to participants
  /// sooner, releasing their locks earlier — a win when the server mesh
  /// is much faster than the client-server WAN (server_latency).
  kCoord = 3,
};

const char* ToString(CommitPath path);

/// One registered commit-path variant, mirroring cc::EngineInfo: the
/// registry is the single place mapping CommitPath values to string names
/// (--commit=<name>) and one-line summaries.
struct CommitPathInfo {
  const char* name;     // registry key, e.g. "fastpath"
  const char* summary;  // one-liner for --help and error listings
  CommitPath path;
};

/// All registered commit paths, in presentation order.
const std::vector<CommitPathInfo>& CommitPaths();

/// Commit path registered under `name`, or nullptr.
const CommitPathInfo* FindCommitPath(const std::string& name);

/// Registry entry of `path` (every CommitPath value has exactly one).
const CommitPathInfo& CommitPathFor(CommitPath path);

/// Comma-separated registered names, for error messages and usage text.
std::string CommitPathNames();

/// Resolves `name` to its CommitPath, or InvalidArgument listing the
/// registered names (the CLI strict-parsing convention, like
/// cc::ParseEngineName).
Status ParseCommitPathName(const std::string& name, CommitPath* path);

/// Blocking one-way WAN flights a *cross-server* commit pays in its commit
/// phase under the paper's pure-propagation model (the round-count table of
/// DESIGN.md §13; the property battery asserts these exactly per txn).
/// `single_write_shard` is whether the transaction's writes land on at most
/// one shard; `remote_coordinator` is whether kCoord handed coordination to
/// a server. Engines that run their own certification commit (OCC) fall
/// back to kClassic counts for every path.
int32_t ExpectedCommitFlights(CommitPath path, bool single_write_shard,
                              bool remote_coordinator);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_COMMIT_H_
