#include "protocols/sharded.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "net/latency_model.h"

namespace gtpl::proto {

// ---------------------------------------------------------------------------
// ShardedEngineBase: routing + client-coordinated two-phase commit
// ---------------------------------------------------------------------------

ShardedEngineBase::ShardedEngineBase(const SimConfig& config)
    : EngineBase(config) {
  items_per_shard_ =
      (config.workload.num_items + config.num_servers - 1) /
      config.num_servers;
}

int32_t ShardedEngineBase::ShardOf(ItemId item) const {
  if (config().shard_routing == ShardRouting::kRange) {
    return std::min(item / items_per_shard_, num_servers() - 1);
  }
  return item % num_servers();
}

std::vector<int32_t> ShardedEngineBase::ParticipantsOf(
    const TxnRun& run) const {
  std::vector<int32_t> shards;
  for (const workload::Operation& op : run.spec.ops) {
    shards.push_back(ShardOf(op.item));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

std::vector<int32_t> ShardedEngineBase::WriteShardsOf(
    const TxnRun& run) const {
  std::vector<int32_t> shards;
  for (const workload::Operation& op : run.spec.ops) {
    if (op.mode == LockMode::kExclusive) shards.push_back(ShardOf(op.item));
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

void ShardedEngineBase::StartCommit(TxnRun& run) {
  std::vector<int32_t> participants = ParticipantsOf(run);
  if (participants.size() <= 1) {
    // Single-shard transaction: the ordinary commit path, bit-identical to
    // the single-server engines (and the only path when num_servers == 1).
    EngineBase::StartCommit(run);
    return;
  }
  GTPL_CHECK(!run.finished);
  GTPL_CHECK(!run.doomed);
  switch (config().commit_path) {
    case CommitPath::kClassic:
      StartClassic(run, std::move(participants));
      return;
    case CommitPath::kEarly:
      StartEarly(run, std::move(participants));
      return;
    case CommitPath::kFastPath:
      if (WriteShardsOf(run).size() <= 1) {
        StartFastPath(run, participants);
      } else {
        StartClassic(run, std::move(participants));
      }
      return;
    case CommitPath::kCoord: {
      const int32_t coord = ChooseCoordinator(run, participants);
      if (coord < 0) {
        StartClassic(run, std::move(participants));
      } else {
        StartCoord(run, std::move(participants), coord);
      }
      return;
    }
  }
  GTPL_CHECK(false) << "unhandled commit path";
}

void ShardedEngineBase::StartClassic(TxnRun& run,
                                     std::vector<int32_t> participants) {
  const TxnId txn = run.id;
  ClientState& client = ClientAt(run.client_index);
  // Phase one: the coordinator (client) forces its prepare record, then
  // asks every participant server to vote.
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, txn,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  CommitCtx ctx;
  ctx.votes_pending = static_cast<int32_t>(participants.size());
  ctx.prepares_pending = static_cast<int32_t>(participants.size());
  ctx.participants = participants;
  ctx.flights = 2;
  ctx.vote_site = run.site();
  commits_[txn] = std::move(ctx);
  const SiteId from = run.site();
  auto send_prepares = [this, txn, from,
                        participants = std::move(participants)] {
    TxnRun* current = FindRun(txn);
    if (current == nullptr || current->finished || current->doomed) {
      commits_.erase(txn);
      return;
    }
    commits_.at(txn).sent_time = simulator().Now();
    for (int32_t shard : participants) {
      network().Send(from, ServerSiteOf(shard), "prepare", [this, shard, txn] {
        OnPrepareArrived(shard, txn, /*speculative=*/false);
      });
    }
  };
  if (force_delay > 0) {
    simulator().Schedule(force_delay, std::move(send_prepares));
  } else {
    send_prepares();
  }
}

void ShardedEngineBase::PreRequestHook(TxnRun& run) {
  if (config().commit_path != CommitPath::kEarly || num_servers() <= 1) {
    return;
  }
  auto [it, inserted] = early_.try_emplace(run.id);
  EarlyCtx& early = it->second;
  if (inserted) {
    for (size_t i = 0; i < run.spec.ops.size(); ++i) {
      early.last_touch[ShardOf(run.spec.ops[i].item)] = i;
    }
    early.active = early.last_touch.size() > 1;
  }
  if (!early.active) return;
  const int32_t shard = ShardOf(run.op().item);
  auto last = early.last_touch.find(shard);
  if (last == early.last_touch.end() || last->second != run.current_op) {
    return;
  }
  // This request is the last one touching `shard`: piggyback a speculative
  // prepare so the vote overlaps the rest of the execution.
  ++early.prepares_sent;
  if (measuring()) ++early_prepares_;
  network().Send(run.site(), ServerSiteOf(shard), "prepare(early)",
                 [this, shard, txn = run.id] {
                   OnPrepareArrived(shard, txn, /*speculative=*/true);
                 });
}

void ShardedEngineBase::StartEarly(TxnRun& run,
                                   std::vector<int32_t> participants) {
  const TxnId txn = run.id;
  ClientState& client = ClientAt(run.client_index);
  // The coordinator still forces its prepare record — the commit point must
  // be recoverable — but the prepares themselves already flew with the
  // operations, so it then only waits for votes not yet home.
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, txn,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  auto begin_wait = [this, txn, participants = std::move(participants)] {
    TxnRun* current = FindRun(txn);
    if (current == nullptr || current->finished || current->doomed) return;
    auto early_it = early_.find(txn);
    GTPL_CHECK(early_it != early_.end() && early_it->second.active)
        << "kEarly commit without speculative prepares";
    GTPL_CHECK_EQ(early_it->second.prepares_sent,
                  static_cast<int32_t>(participants.size()));
    CommitCtx ctx;
    ctx.participants = participants;
    ctx.vote_site = current->site();
    ctx.sent_time = simulator().Now();
    ctx.prepares_pending = 0;  // all prepares were speculative; sub-span 0
    int32_t have = 0;
    for (int32_t shard : participants) {
      have += early_it->second.votes.count(shard) > 0 ? 1 : 0;
    }
    ctx.votes_pending = static_cast<int32_t>(participants.size()) - have;
    ctx.flights = ctx.votes_pending == 0 ? 0 : 1;
    const bool complete = ctx.votes_pending == 0;
    commits_[txn] = std::move(ctx);
    if (complete) FinishVotedCommit(txn);
  };
  if (force_delay > 0) {
    simulator().Schedule(force_delay, std::move(begin_wait));
  } else {
    begin_wait();
  }
}

void ShardedEngineBase::StartFastPath(
    TxnRun& run, const std::vector<int32_t>& participants) {
  // Single-write-shard transaction: no prepare/vote round at all. The
  // client's forced commit record (EngineBase::StartCommit) is the commit
  // point, and the engine's ordinary release/forward messages carry the
  // piggybacked validation + decision to every participant — the read-only
  // shards still hold locks for a non-doomed transaction, so the
  // validation cannot fail (lock engines assert this in ServerOnRelease).
  if (measuring()) {
    ++cross_server_commits_;
    commit_participants_.Add(static_cast<double>(participants.size()));
    ++fastpath_commits_;
  }
  run.commit_flights = 0;
  EngineBase::StartCommit(run);
}

int32_t ShardedEngineBase::ChooseCoordinator(
    const TxnRun& run, const std::vector<int32_t>& participants) {
  // Candidate: the write-heaviest participant (most exclusive ops; lowest
  // shard id breaks ties). Read-only cross-server commits stay with the
  // client — there is no lock-hold pressure worth the handoff.
  std::unordered_map<int32_t, int32_t> writes;
  for (const workload::Operation& op : run.spec.ops) {
    if (op.mode == LockMode::kExclusive) ++writes[ShardOf(op.item)];
  }
  int32_t cand = -1;
  int32_t best = 0;
  for (int32_t shard : participants) {  // ascending; first max wins ties
    auto it = writes.find(shard);
    const int32_t count = it == writes.end() ? 0 : it->second;
    if (count > best) {
      best = count;
      cand = shard;
    }
  }
  if (cand < 0) return -1;
  // Score both placements from the static latency matrix (deterministic —
  // never the jitter stream). cost_* is the commit phase's contribution to
  // the client's response time; lag_* is when the commit decision reaches
  // the last participant (lock-hold time). Prefer the remote coordinator
  // only when its extra response cost is outweighed by the lock-hold
  // savings; under uniform latency that is never true, so kCoord degrades
  // to kClassic exactly (the equivalence suite pins this).
  const net::LatencyModel& lm = *network().latency_model();
  const SiteId client = run.site();
  const SiteId coord = ServerSiteOf(cand);
  SimTime cost_client = 0;
  SimTime decide_leg_client = 0;
  SimTime round_coord = 0;
  SimTime decide_leg_coord = 0;
  for (int32_t shard : participants) {
    const SiteId site = ServerSiteOf(shard);
    cost_client = std::max(cost_client, lm.BaseLatency(client, site) +
                                            lm.BaseLatency(site, client));
    decide_leg_client =
        std::max(decide_leg_client, lm.BaseLatency(client, site));
    if (shard == cand) continue;  // the coordinator's own shard votes inline
    round_coord = std::max(round_coord, lm.BaseLatency(coord, site) +
                                            lm.BaseLatency(site, coord));
    decide_leg_coord =
        std::max(decide_leg_coord, lm.BaseLatency(coord, site));
  }
  const SimTime handoff = lm.BaseLatency(client, coord);
  const SimTime votes_done = handoff + round_coord;
  const SimTime cost_coord = votes_done + lm.BaseLatency(coord, client);
  const SimTime lag_classic = cost_client + decide_leg_client;
  const SimTime lag_coord = votes_done + decide_leg_coord;
  const SimTime extra_response = cost_coord - cost_client;
  const SimTime lockhold_saving = lag_classic - lag_coord;
  return extra_response < lockhold_saving ? cand : -1;
}

void ShardedEngineBase::StartCoord(TxnRun& run,
                                   std::vector<int32_t> participants,
                                   int32_t coord_shard) {
  const TxnId txn = run.id;
  ClientState& client = ClientAt(run.client_index);
  // The client still forces its prepare record, then hands the whole 2PC to
  // the coordinator server: handoff -> prepares -> votes (at the
  // coordinator) -> decisions (from the coordinator) -> ack to the client.
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, txn,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  CommitCtx ctx;
  ctx.votes_pending = static_cast<int32_t>(participants.size());
  ctx.prepares_pending = static_cast<int32_t>(participants.size());
  ctx.participants = std::move(participants);
  ctx.flights = 4;  // handoff + prepare + vote + ack on the response path
  ctx.vote_site = ServerSiteOf(coord_shard);
  ctx.coord_shard = coord_shard;
  commits_[txn] = std::move(ctx);
  const SiteId from = run.site();
  auto send_handoff = [this, txn, from, coord_shard] {
    TxnRun* current = FindRun(txn);
    if (current == nullptr || current->finished || current->doomed) {
      commits_.erase(txn);
      return;
    }
    commits_.at(txn).sent_time = simulator().Now();
    network().Send(from, ServerSiteOf(coord_shard), "commit-handoff",
                   [this, coord_shard, txn] {
                     OnHandoffArrived(coord_shard, txn);
                   });
  };
  if (force_delay > 0) {
    simulator().Schedule(force_delay, std::move(send_handoff));
  } else {
    send_handoff();
  }
}

void ShardedEngineBase::OnHandoffArrived(int32_t coord_shard, TxnId txn) {
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished || run->doomed) {
    commits_.erase(txn);  // no votes will ever tally
    return;
  }
  auto it = commits_.find(txn);
  GTPL_CHECK(it != commits_.end()) << "handoff without a commit context";
  const std::vector<int32_t> participants = it->second.participants;
  // Fan the prepares over the (fast) server mesh; the coordinator's own
  // shard prepares locally below — never through the network, which would
  // charge a self-latency the real system does not pay.
  for (int32_t shard : participants) {
    if (shard == coord_shard) continue;
    network().Send(ServerSiteOf(coord_shard), ServerSiteOf(shard), "prepare",
                   [this, shard, txn] {
                     OnPrepareArrived(shard, txn, /*speculative=*/false);
                   });
  }
  OnPrepareArrived(coord_shard, txn, /*speculative=*/false);
}

void ShardedEngineBase::OnAckArrived(TxnId txn) {
  TxnRun* run = FindRun(txn);
  GTPL_CHECK(run != nullptr && !run->finished)
      << "commit ack for a finished transaction";
  GTPL_CHECK(!run->doomed) << "commit ack for a doomed transaction";
  EngineBase::StartCommit(*run);
}

bool ShardedEngineBase::RemoteCoordinated(TxnId txn) const {
  return remote_decided_.count(txn) > 0;
}

void ShardedEngineBase::OnTxnClosed(const TxnRun& run) {
  commits_.erase(run.id);
  early_.erase(run.id);
  remote_decided_.erase(run.id);
}

void ShardedEngineBase::OnPrepareArrived(int32_t shard, TxnId txn,
                                         bool speculative) {
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kPrepareArrived;
    event.txn = txn;
    event.server = shard;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kPrepare;
    event.txn = txn;
    event.shard = shard;
    event.site = ServerSiteOf(shard);
    if (speculative) event.label = "speculative";
    tracer().Emit(std::move(event));
  }
  const bool yes = ShardVote(shard, txn, speculative);
  // The participant forces its own prepare record before voting yes.
  if (yes) {
    const int64_t lsn = server_wal().Append(db::LogRecordKind::kPrepare, txn,
                                            kInvalidItem, 0);
    server_wal().Force(lsn);
  }
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;  // coordinator already moved on; drop the vote
  SiteId vote_to = run->site();
  if (!speculative) {
    auto it = commits_.find(txn);
    if (it != commits_.end()) {
      CommitCtx& ctx = it->second;
      if (--ctx.prepares_pending == 0 && !run->finished) {
        // Last prepare of the fan-out landed: close the prepare sub-span.
        run->span.commit_prepare = simulator().Now() - ctx.sent_time;
      }
      vote_to = ctx.vote_site;
    }
  }
  const SiteId vote_from = ServerSiteOf(shard);
  if (vote_to == vote_from) {
    // The coordinator server's own shard: the vote is local.
    OnVoteArrived(txn, shard, yes);
    return;
  }
  network().Send(vote_from, vote_to, "vote",
                 [this, txn, shard, yes] { OnVoteArrived(txn, shard, yes); });
}

void ShardedEngineBase::OnVoteArrived(TxnId txn, int32_t shard, bool yes) {
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kVoteArrived;
    event.txn = txn;
    event.server = shard;
    event.flag = yes;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kVote;
    event.txn = txn;
    event.shard = shard;
    event.flag = yes;
    tracer().Emit(std::move(event));
  }
  auto it = commits_.find(txn);
  if (it == commits_.end()) {
    // kEarly: a speculative vote arriving before the commit point. Bank it
    // for StartEarly's tally; votes of dead runs are dropped.
    auto early_it = early_.find(txn);
    if (early_it == early_.end() || !early_it->second.active) return;
    TxnRun* run = FindRun(txn);
    if (run == nullptr || run->finished || run->doomed) return;
    if (yes) early_it->second.votes.insert(shard);
    return;
  }
  CommitCtx& ctx = it->second;
  ctx.all_yes = ctx.all_yes && yes;
  if (--ctx.votes_pending > 0) return;
  FinishVotedCommit(txn);
}

void ShardedEngineBase::FinishVotedCommit(TxnId txn) {
  auto it = commits_.find(txn);
  GTPL_CHECK(it != commits_.end());
  const bool all_yes = it->second.all_yes;
  const CommitCtx ctx = std::move(it->second);
  commits_.erase(it);
  TxnRun* run = FindRun(txn);
  if (run == nullptr || run->finished || run->doomed) return;
  if (!all_yes) {
    // A no vote means that shard's server had already aborted the
    // transaction, and its abort decision doomed the run instantly — so
    // this branch is unreachable in practice; kept as a safety net.
    return;
  }
  // Close the vote sub-span: everything since the fan-out began that the
  // prepare sub-span did not absorb.
  run->span.commit_vote =
      simulator().Now() - ctx.sent_time - run->span.commit_prepare;
  GTPL_CHECK_GE(run->span.commit_vote, 0);
  if (measuring()) {
    ++cross_server_commits_;
    commit_participants_.Add(static_cast<double>(ctx.participants.size()));
    if (ctx.coord_shard >= 0) ++coord_remote_commits_;
  }
  // Phase two: the decision travels to every participant; the local commit
  // (forced commit record, then the protocol's release messages) proceeds
  // in parallel — or, with a remote coordinator, after the ack flies home.
  const SiteId decision_from =
      ctx.coord_shard >= 0 ? ServerSiteOf(ctx.coord_shard) : run->site();
  if (ctx.coord_shard >= 0) remote_decided_.insert(txn);
  for (int32_t participant : ctx.participants) {
    if (participant == ctx.coord_shard) {
      OnDecisionArrived(participant, txn);  // the coordinator's own shard
      continue;
    }
    network().Send(
        decision_from, ServerSiteOf(participant), "commit-decision",
        [this, participant, txn] { OnDecisionArrived(participant, txn); });
  }
  run->commit_flights = ctx.flights;
  if (ctx.coord_shard >= 0) {
    network().Send(decision_from, run->site(), "commit-ack",
                   [this, txn] { OnAckArrived(txn); });
    return;
  }
  EngineBase::StartCommit(*run);
}

void ShardedEngineBase::OnDecisionArrived(int32_t shard, TxnId txn) {
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kCommitDecisionArrived;
    event.txn = txn;
    event.server = shard;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kDecide;
    event.txn = txn;
    event.shard = shard;
    event.site = ServerSiteOf(shard);
    tracer().Emit(std::move(event));
  }
  server_wal().Append(db::LogRecordKind::kCommit, txn, kInvalidItem, 0);
  OnCommitDecision(shard, txn);
}

void ShardedEngineBase::FillProtocolMetrics(RunResult* result) {
  result->cross_server_commits = cross_server_commits_;
  result->commit_participants = commit_participants_;
  result->fastpath_commits = fastpath_commits_;
  result->early_prepares = early_prepares_;
  result->coord_remote_commits = coord_remote_commits_;
  result->commit_path_fallbacks = commit_path_fallbacks_;
}

void ShardedEngineBase::RegisterMetrics(obs::MetricsRegistry* metrics) {
  EngineBase::RegisterMetrics(metrics);
  metrics->Register("inflight_2pc", -1, [this] {
    return static_cast<int64_t>(commits_.size());
  });
}

// ---------------------------------------------------------------------------
// ShardedG2plEngine
// ---------------------------------------------------------------------------
// The client-side machinery below mirrors G2plEngine (g2pl.cc) operation for
// operation; only the server endpoints differ (per-item shard sites instead
// of the single kServerSite). Keeping the operation sequences identical is
// what makes the num_servers == 1 configuration bit-identical to the
// single-server engine — the equivalence suite enforces this.

ShardedG2plEngine::ShardedG2plEngine(const SimConfig& config)
    : ShardedEngineBase(config) {
  coordinator_ = std::make_unique<core::ShardCoordinator>();
  wms_.reserve(static_cast<size_t>(config.num_servers));
  for (int32_t shard = 0; shard < config.num_servers; ++shard) {
    core::WindowManager::Callbacks callbacks;
    callbacks.dispatch = [this, shard](
                             ItemId item, Version version,
                             std::shared_ptr<const core::ForwardList> fl) {
      WmDispatch(shard, item, version, std::move(fl));
    };
    callbacks.abort = [this, shard](TxnId txn, SiteId client_site) {
      WmAbort(shard, txn, client_site);
    };
    callbacks.expand = [this, shard](
                           ItemId item, Version version,
                           std::shared_ptr<const core::ForwardList> fl,
                           TxnId txn, SiteId client_site,
                           int32_t member_index) {
      WmExpand(shard, item, version, std::move(fl), txn, client_site,
               member_index);
    };
    callbacks.can_abort = [this](TxnId txn) {
      TxnRun* run = FindRun(txn);
      return run != nullptr && !run->finished && !run->doomed;
    };
    wms_.push_back(std::make_unique<core::WindowManager>(
        config.workload.num_items, config.g2pl, &store(),
        std::move(callbacks), coordinator_.get()));
  }
}

ShardedG2plEngine::TxnState& ShardedG2plEngine::EnsureTxn(
    TxnId txn, int32_t client_index) {
  auto [it, inserted] = txns_.try_emplace(txn);
  if (inserted) it->second.client_index = client_index;
  return it->second;
}

void ShardedG2plEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  const int32_t restarts = ClientAt(run.client_index).restart_streak;
  EnsureTxn(txn, run.client_index);
  const int32_t shard = ShardOf(op.item);
  network().Send(site, ServerSiteOf(shard), "lock-request",
                 [this, shard, txn, site, op, restarts] {
                   NoteRequestAtServer(txn, op.item, op.mode, shard);
                   wms_[static_cast<size_t>(shard)]->OnRequest(
                       txn, site, op.item, op.mode, restarts);
                 });
}

void ShardedG2plEngine::WmDispatch(
    int32_t shard, ItemId item, Version version,
    std::shared_ptr<const core::ForwardList> fl) {
  if (config().record_protocol_events || tracer().enabled()) {
    const bool acyclic = coordinator_->graph().IsAcyclic();
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kWindowDispatched;
      event.item = item;
      event.server = shard;
      event.entries = SnapshotForwardList(*fl);
      RecordEvent(std::move(event));
      ProtocolEvent audit;
      audit.kind = ProtocolEventKind::kGraphCheck;
      audit.item = item;
      audit.server = shard;
      audit.flag = acyclic;
      RecordEvent(std::move(audit));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kWindowDispatch;
      event.item = item;
      event.shard = shard;
      event.payload = static_cast<int64_t>(version);
      event.entries = ObsSnapshotForwardList(*fl);
      tracer().Emit(std::move(event));
      obs::TraceEvent audit;
      audit.kind = obs::EventKind::kGraphCheck;
      audit.item = item;
      audit.shard = shard;
      audit.flag = acyclic;
      tracer().Emit(std::move(audit));
    }
  }
  for (int32_t e = 0; e < fl->num_entries(); ++e) {
    for (const core::FlMember& m : fl->entry(e).members) {
      TxnState& ts = EnsureTxn(m.txn, m.client - 1);
      ++ts.slots_outstanding;
      ts.slot_items.push_back(item);
    }
  }
  DeliverToEntry(ServerSiteOf(shard), item, version, std::move(fl), 0);
}

void ShardedG2plEngine::WmAbort(int32_t shard, TxnId txn,
                                SiteId client_site) {
  ServerAbortDecision(txn, client_site, ServerSiteOf(shard));
}

void ShardedG2plEngine::WmExpand(int32_t shard, ItemId item, Version version,
                                 std::shared_ptr<const core::ForwardList> fl,
                                 TxnId txn, SiteId client_site,
                                 int32_t member_index) {
  if (config().record_protocol_events || tracer().enabled()) {
    const bool acyclic = coordinator_->graph().IsAcyclic();
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kWindowExpanded;
      event.txn = txn;
      event.item = item;
      event.server = shard;
      event.entries = SnapshotForwardList(*fl);
      RecordEvent(std::move(event));
      ProtocolEvent audit;
      audit.kind = ProtocolEventKind::kGraphCheck;
      audit.item = item;
      audit.server = shard;
      audit.flag = acyclic;
      RecordEvent(std::move(audit));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kWindowExpand;
      event.txn = txn;
      event.item = item;
      event.shard = shard;
      event.payload = static_cast<int64_t>(version);
      event.entries = ObsSnapshotForwardList(*fl);
      tracer().Emit(std::move(event));
      obs::TraceEvent audit;
      audit.kind = obs::EventKind::kGraphCheck;
      audit.item = item;
      audit.shard = shard;
      audit.flag = acyclic;
      tracer().Emit(std::move(audit));
    }
  }
  TxnState& ts = EnsureTxn(txn, client_site - 1);
  ++ts.slots_outstanding;
  ts.slot_items.push_back(item);
  network().Send(ServerSiteOf(shard), client_site, "data(expand)",
                 [this, txn, item, version, fl = std::move(fl),
                  member_index] {
                   OnData(txn, item, version, fl, 0, member_index, 0);
                 });
}

void ShardedG2plEngine::DeliverToEntry(
    SiteId from_site, ItemId item, Version version,
    std::shared_ptr<const core::ForwardList> fl, int32_t entry_index) {
  const uint64_t payload =
      net::kDataPayload +
      net::kFlSlotPayload * static_cast<uint64_t>(fl->num_members());
  const core::FlEntry& entry = fl->entry(entry_index);
  if (!entry.is_read_group) {
    const core::FlMember writer = entry.members[0];
    network().Send(
        from_site, writer.client, "data",
        [this, txn = writer.txn, item, version, fl, entry_index] {
          OnData(txn, item, version, fl, entry_index, 0, 0);
        },
        payload);
    return;
  }
  for (int32_t j = 0; j < entry.size(); ++j) {
    const core::FlMember reader = entry.members[static_cast<size_t>(j)];
    network().Send(
        from_site, reader.client, "data(copy)",
        [this, txn = reader.txn, item, version, fl, entry_index, j] {
          OnData(txn, item, version, fl, entry_index, j, 0);
        },
        payload);
  }
  if (config().g2pl.mr1w && entry_index + 1 < fl->num_entries()) {
    const core::FlEntry& next = fl->entry(entry_index + 1);
    GTPL_CHECK(!next.is_read_group);
    const core::FlMember writer = next.members[0];
    network().Send(
        from_site, writer.client, "data(early)",
        [this, txn = writer.txn, item, version, fl, entry_index,
         releases = entry.size()] {
          OnData(txn, item, version, fl, entry_index + 1, 0, releases);
        },
        payload);
  }
}

void ShardedG2plEngine::OnData(TxnId txn, ItemId item, Version version,
                               std::shared_ptr<const core::ForwardList> fl,
                               int32_t entry_index, int32_t member_index,
                               int32_t early_releases) {
  if (drained_.count(txn) > 0) return;
  Obligation& ob = obligations_[ObKey{txn, item}];
  if (ob.data_arrived) {
    if (early_releases > 0) ob.releases_needed = early_releases;
  } else {
    ob.fl = std::move(fl);
    ob.entry = entry_index;
    ob.member = member_index;
    ob.is_writer = !ob.fl->entry(entry_index).is_read_group;
    ob.data_arrived = true;
    ob.version = version;
    if (early_releases > 0) ob.releases_needed = early_releases;
  }
  TxnState& ts = txns_.at(txn);
  if (ts.finished) {
    TryForward(txn, item);
    return;
  }
  MaybeGrant(txn, item, ob);
}

void ShardedG2plEngine::OnReaderRelease(
    TxnId writer_txn, ItemId item, Version version,
    std::shared_ptr<const core::ForwardList> fl, int32_t writer_entry_index) {
  if (drained_.count(writer_txn) > 0) return;
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kReaderReleaseArrived;
    event.txn = writer_txn;
    event.item = item;
    event.server = ShardOf(item);
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kReaderRelease;
    event.txn = writer_txn;
    event.item = item;
    event.shard = ShardOf(item);
    tracer().Emit(std::move(event));
  }
  Obligation& ob = obligations_[ObKey{writer_txn, item}];
  if (ob.fl == nullptr) {
    ob.fl = std::move(fl);
    ob.entry = writer_entry_index;
    ob.member = 0;
    ob.is_writer = true;
    GTPL_CHECK_GT(writer_entry_index, 0);
    ob.releases_needed = ob.fl->entry(writer_entry_index - 1).size();
  }
  ++ob.releases_received;
  GTPL_CHECK_LE(ob.releases_received, ob.releases_needed);
  if (!ob.data_arrived) {
    ob.data_arrived = true;
    ob.version = version;
  }
  if (ob.forwarded) return;
  TxnState& ts = txns_.at(writer_txn);
  if (ts.finished) {
    TryForward(writer_txn, item);
  } else {
    MaybeGrant(writer_txn, item, ob);
  }
}

void ShardedG2plEngine::MaybeGrant(TxnId txn, ItemId item, Obligation& ob) {
  if (ob.granted || !ob.data_arrived) return;
  if (!config().g2pl.mr1w && ob.releases_received < ob.releases_needed) {
    return;
  }
  TxnRun* run = FindRun(txn);
  GTPL_CHECK(run != nullptr) << "live g-2PL txn without a run";
  if (run->doomed) return;
  GTPL_CHECK_EQ(run->op().item, item)
      << "grant does not match the sequentially outstanding operation";
  ob.granted = true;
  OpGranted(*run, ob.version);
}

void ShardedG2plEngine::TryForward(TxnId txn, ItemId item) {
  auto it = obligations_.find(ObKey{txn, item});
  if (it == obligations_.end()) return;
  Obligation& ob = it->second;
  TxnState& ts = txns_.at(txn);
  if (ob.forwarded || !ob.data_arrived || !ts.finished) return;
  if (ts.committed && ob.releases_received < ob.releases_needed) return;
  ob.forwarded = true;
  if (ts.committed && ob.is_writer && config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kWriterUpdateReleased;
    event.txn = txn;
    event.item = item;
    event.server = ShardOf(item);
    RecordEvent(std::move(event));
  }
  if (ts.committed && ob.is_writer && tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWriterRelease;
    event.txn = txn;
    event.item = item;
    event.shard = ShardOf(item);
    tracer().Emit(std::move(event));
  }
  const Version version_out =
      ts.committed && ob.is_writer ? ob.version + 1 : ob.version;
  const SiteId from = ts.client_index + 1;
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kFlHandoff;
    event.txn = txn;
    event.site = from;
    event.item = item;
    event.shard = ShardOf(item);
    event.flag = ts.committed;
    event.mode = ob.is_writer ? 1 : 0;
    event.payload = static_cast<int64_t>(version_out);
    event.label = ob.fl->IsLastEntry(ob.entry)
                      ? "return"
                      : (!ob.is_writer ? "reader-release" : "forward");
    tracer().Emit(std::move(event));
  }
  if (ob.fl->IsLastEntry(ob.entry)) {
    const int32_t shard = ShardOf(item);
    network().Send(
        from, ServerSiteOf(shard), "return",
        [this, shard, item, version_out] {
          wms_[static_cast<size_t>(shard)]->OnReturn(item, version_out);
          MaybeGcClientLogs();
        },
        net::kControlPayload + net::kDataPayload);
  } else if (!ob.is_writer) {
    const core::FlEntry& next = ob.fl->entry(ob.entry + 1);
    GTPL_CHECK(!next.is_read_group);
    const core::FlMember writer = next.members[0];
    const uint64_t release_payload =
        config().g2pl.mr1w ? net::kControlPayload
                           : net::kControlPayload + net::kDataPayload;
    network().Send(
        from, writer.client, "reader-release",
        [this, wt = writer.txn, item, version_out, fl = ob.fl,
         we = ob.entry + 1] {
          OnReaderRelease(wt, item, version_out, fl, we);
        },
        release_payload);
  } else {
    DeliverToEntry(from, item, version_out, ob.fl, ob.entry + 1);
  }
  --ts.slots_outstanding;
  GTPL_CHECK_GE(ts.slots_outstanding, 0);
  CheckDrain(txn);
}

void ShardedG2plEngine::CheckDrain(TxnId txn) {
  TxnState& ts = txns_.at(txn);
  if (ts.drained || !ts.finished || ts.slots_outstanding != 0) return;
  ts.drained = true;
  drained_.insert(txn);
  // OnTxnDrained delegates to the shared coordinator, which retires the
  // transaction across every shard; any manager routes there.
  wms_[0]->OnTxnDrained(txn);
  for (ItemId item : ts.slot_items) obligations_.erase(ObKey{txn, item});
}

void ShardedG2plEngine::DoCommit(TxnRun& run) {
  TxnState& ts = EnsureTxn(run.id, run.client_index);
  ts.finished = true;
  ts.committed = true;
  const std::vector<ItemId> items = ts.slot_items;  // TryForward may drain
  for (ItemId item : items) TryForward(run.id, item);
  CheckDrain(run.id);
}

void ShardedG2plEngine::OnClientAborted(TxnRun& run) {
  TxnState& ts = EnsureTxn(run.id, run.client_index);
  ts.finished = true;
  ts.committed = false;
  const std::vector<ItemId> items = ts.slot_items;
  for (ItemId item : items) TryForward(run.id, item);
  CheckDrain(run.id);
}

bool ShardedG2plEngine::ShardVote(int32_t shard, TxnId txn,
                                  bool speculative) {
  (void)shard;  // deadlock avoidance is global; every shard sees the same
  (void)speculative;  // the vote takes no commit-promise action either way
  return !coordinator_->IsAborted(txn);
}

void ShardedG2plEngine::OnCommitDecision(int32_t shard, TxnId txn) {
  // Nothing further server-side: in g-2PL the committed data itself
  // migrates along the forward lists; the servers learn outcomes from the
  // return messages. The base class already logged the decision.
  (void)shard;
  (void)txn;
}

void ShardedG2plEngine::FillProtocolMetrics(RunResult* result) {
  ShardedEngineBase::FillProtocolMetrics(result);
  int64_t requests = 0;
  int64_t cap_samples = 0;
  double cap_sample_sum = 0.0;
  int64_t touched_items = 0;
  double final_cap_sum = 0.0;
  for (const auto& wm : wms_) {
    result->windows_dispatched += wm->windows_dispatched();
    result->read_group_expansions += wm->expansions();
    requests += wm->total_dispatched_requests();
    if (const core::AdaptiveWindowController* ctl =
            wm->adaptive_controller()) {
      cap_samples += ctl->windows_sampled();
      cap_sample_sum += ctl->cap_sample_sum();
      touched_items += ctl->TouchedItems();
      final_cap_sum += ctl->FinalCapSum();
      result->cap_increases += ctl->cap_increases();
      result->cap_decreases += ctl->cap_decreases();
    }
  }
  result->mean_forward_list_length =
      result->windows_dispatched > 0
          ? static_cast<double>(requests) /
                static_cast<double>(result->windows_dispatched)
          : 0.0;
  result->mean_effective_cap =
      cap_samples > 0 ? cap_sample_sum / static_cast<double>(cap_samples)
                      : 0.0;
  result->final_effective_cap =
      touched_items > 0
          ? final_cap_sum / static_cast<double>(touched_items)
          : 0.0;
}

}  // namespace gtpl::proto
