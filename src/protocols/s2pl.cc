#include "protocols/s2pl.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace gtpl::proto {

S2plEngine::S2plEngine(const SimConfig& config)
    : EngineBase(config), lock_table_(config.workload.num_items) {}

void S2plEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  network().Send(site, kServerSite, "lock-request",
                 [this, txn, site, op] {
                   ServerOnRequest(txn, site, op.item, op.mode);
                 });
}

void S2plEngine::ServerOnRequest(TxnId txn, SiteId client_site, ItemId item,
                                 LockMode mode) {
  (void)client_site;
  NoteRequestAtServer(txn, item, mode);
  if (server_aborted_.count(txn) > 0) return;  // stale request of a victim
  const db::LockResult outcome = lock_table_.Request(txn, item, mode);
  if (outcome == db::LockResult::kGranted) {
    SendGrant(txn, item, mode);
    return;
  }
  // Blocked: deadlock detection is initiated whenever a lock cannot be
  // granted (no timeouts), exactly as the paper's s-2PL model prescribes.
  wfg_.AddWaits(txn, lock_table_.Blockers(txn, item));
  while (true) {
    const std::vector<TxnId> cycle = wfg_.CycleThrough(txn);
    if (cycle.empty()) break;
    TxnId victim = txn;
    if (config().s2pl.victim == S2plOptions::Victim::kYoungest) {
      victim = *std::max_element(cycle.begin(), cycle.end());
    }
    ServerAbort(victim);
    if (victim == txn) break;
  }
}

void S2plEngine::SendGrant(TxnId txn, ItemId item, LockMode mode) {
  (void)mode;
  TxnRun* run = FindRun(txn);
  if (run == nullptr) return;  // finished in the meantime (nothing to ship)
  const Version version = store().VersionOf(item);
  network().Send(
      kServerSite, run->site(), "grant+data",
      [this, txn, item, version] {
        TxnRun* target = FindRun(txn);
        if (target == nullptr || target->finished || target->doomed) {
          return;
        }
        GTPL_CHECK_EQ(target->op().item, item);
        OpGranted(*target, version);
      },
      net::kControlPayload + net::kDataPayload);
}

void S2plEngine::ServerAbort(TxnId victim) {
  GTPL_CHECK(server_aborted_.insert(victim).second);
  ++deadlock_aborts_;
  wfg_.RemoveTxn(victim);
  lock_table_.ReleaseAll(victim, [this](TxnId txn, ItemId item,
                                        LockMode mode) {
    wfg_.ClearWaits(txn);
    SendGrant(txn, item, mode);
  });
  TxnRun* run = FindRun(victim);
  GTPL_CHECK(run != nullptr) << "deadlock victim is not an active txn";
  ServerAbortDecision(victim, run->site());
}

void S2plEngine::DoCommit(TxnRun& run) {
  std::vector<Update> updates;
  for (const OpRecord& record : run.records) {
    if (record.mode == LockMode::kExclusive) {
      updates.push_back(Update{record.item, record.version_written});
    }
  }
  const TxnId txn = run.id;
  const uint64_t payload =
      net::kControlPayload + net::kDataPayload * updates.size();
  network().Send(
      run.site(), kServerSite, "release",
      [this, txn, updates = std::move(updates)] {
        ServerOnRelease(txn, updates);
      },
      payload);
}

void S2plEngine::ServerOnRelease(TxnId txn, std::vector<Update> updates) {
  GTPL_CHECK_EQ(server_aborted_.count(txn), 0u)
      << "a doomed transaction committed";
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = kServerSite;
    event.payload = static_cast<int64_t>(updates.size());
    tracer().Emit(std::move(event));
  }
  for (const Update& update : updates) {
    store().Install(update.item, update.version);
    const int64_t lsn = server_wal().Append(db::LogRecordKind::kInstall, txn,
                                            update.item, update.version);
    server_wal().Force(lsn);
  }
  // Data permanent at the server: client log space for this transaction
  // could now be garbage collected (the paper's recovery assumption); the
  // client-side WAL truncation is driven from the engine's accounting.
  MaybeGcClientLogs();
  wfg_.RemoveTxn(txn);
  lock_table_.ReleaseAll(txn, [this](TxnId granted, ItemId item,
                                     LockMode mode) {
    wfg_.ClearWaits(granted);
    SendGrant(granted, item, mode);
  });
}

void S2plEngine::OnClientAborted(TxnRun& run) {
  // Server state was already cleaned at decision time; nothing client-side.
  (void)run;
}

void S2plEngine::FillProtocolMetrics(RunResult* result) {
  (void)result;  // deadlock_aborts_ equals total_aborts for s-2PL.
}

}  // namespace gtpl::proto
