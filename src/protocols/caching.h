#ifndef GTPL_PROTOCOLS_CACHING_H_
#define GTPL_PROTOCOLS_CACHING_H_

#include <memory>

#include "protocols/engine.h"

namespace gtpl::proto {

/// Builds one of the client-caching protocol engines (c-2PL, CBL, O2PL) —
/// the caching families the paper names in §1 and defers comparing against
/// in §6. `config.protocol` selects the variant.
std::unique_ptr<EngineBase> MakeCachingEngine(const SimConfig& config);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_CACHING_H_
