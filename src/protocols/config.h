#ifndef GTPL_PROTOCOLS_CONFIG_H_
#define GTPL_PROTOCOLS_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "core/window_manager.h"
#include "lease/lease.h"
#include "protocols/commit.h"
#include "workload/generator.h"

namespace gtpl::proto {

/// Concurrency-control protocol run by the data-server system. The cc
/// registry (cc/registry.h) maps protocols to engine factories and string
/// names; add new engines there.
enum class Protocol {
  kS2pl = 0,     // server-based strict 2PL (paper baseline)
  kG2pl = 1,     // group 2PL (paper contribution)
  kC2pl = 2,     // caching 2PL: locks+data cached across txns (extension)
  kCbl = 3,      // callback locking (extension)
  kO2pl = 4,     // optimistic 2PL (extension)
  kNoWait = 5,   // no-wait 2PL: blocked requests abort the requester
  kWaitDie = 6,  // wait-die 2PL: wait for younger only, die on older
  kOcc = 7,      // optimistic CC, backward validation at commit
  kOrdered = 8,  // ordered 2PL: in-order acquisition, release at prepare
  kWoundWait = 9,  // wound-wait 2PL: wound younger blockers, wait on older
};

const char* ToString(Protocol protocol);

/// How a sharded server group partitions the item space (extension; the
/// paper's model is a single server owning every item).
enum class ShardRouting {
  kHash = 0,   // item % num_servers
  kRange = 1,  // contiguous ranges of ceil(num_items / num_servers) items
};

const char* ToString(ShardRouting routing);

/// s-2PL deadlock-resolution options.
struct S2plOptions {
  enum class Victim {
    kRequester = 0,  // abort the transaction whose request closed the cycle
    kYoungest = 1,   // abort the youngest (highest id) transaction on it
  };
  Victim victim = Victim::kRequester;
};

/// Full configuration of one simulation run (paper Table 1 defaults:
/// 1 server, 50 clients, 25 hot items, 1-5 items/txn, think U[1,3],
/// idle U[2,10], MPL 1, latency swept over Table 2).
struct SimConfig {
  Protocol protocol = Protocol::kS2pl;
  int32_t num_clients = 50;
  SimTime latency = 500;

  /// Number of data servers the item space is sharded across (extension).
  /// 1 reproduces the paper's single-server model and runs the original
  /// engines; N > 1 runs the sharded engines with client-coordinated
  /// two-phase commit across the servers a transaction touched. Server 0
  /// keeps site id kServerSite (0); extra server k >= 1 gets site id
  /// num_clients + k.
  int32_t num_servers = 1;
  ShardRouting shard_routing = ShardRouting::kHash;

  /// Cross-server commit-path variant (protocols/commit.h, DESIGN.md §13).
  /// kClassic (default) is bit-identical to the pre-registry 2PC; the other
  /// variants shave WAN flights off the commit phase and are selected with
  /// --commit=NAME. Inert when num_servers == 1 (no cross-server commits).
  CommitPath commit_path = CommitPath::kClassic;

  /// One-way latency override for server-to-server messages (the commit
  /// handoff/prepare/vote/decision legs between shard sites). -1 (default)
  /// keeps the base latency model untouched — the paper's uniform
  /// assumption; >= 0 models a fast inter-datacenter mesh, the regime where
  /// kCoord's remote-coordinator choice pays off.
  SimTime server_latency = -1;

  /// Extensions beyond the paper's uniform-latency assumption ("the network
  /// latency between any two sites ... is the same"). `latency_jitter` adds
  /// U[0, jitter] to every message; `latency_spread` places clients at
  /// different distances: client c's one-way offset is
  /// latency * spread * (c/(C-1) - 1/2), applied additively per endpoint.
  /// Both default to 0 (the paper's model).
  SimTime latency_jitter = 0;
  double latency_spread = 0.0;

  /// Link-level transport extension (DESIGN.md §9). `link_bandwidth` is the
  /// link capacity in abstract payload units (net::k*Payload) per time
  /// unit; 0 = infinite, the paper's "gigabit rates" premise and the
  /// default — the transport then charges pure propagation, bit-identical
  /// to the pre-link-model engines (standing bandwidth_equivalence_test).
  /// Finite bandwidth charges transmission delay = payload / bandwidth per
  /// message; `nic_queue` additionally serializes concurrent sends FIFO
  /// through per-endpoint NIC queues (sender uplink + receiver downlink);
  /// `cross_traffic_load` (in [0,1), requires nic_queue) adds deterministic
  /// periodic background frames eating that fraction of every NIC.
  double link_bandwidth = 0.0;
  bool nic_queue = false;
  double cross_traffic_load = 0.0;
  /// Lease-based client lock caching (lease/lease.h, DESIGN.md §14).
  /// kNone (default) is bit-identical to the pre-lease engines; kSticky
  /// turns every grant from a lock-table engine into a per-item site lease
  /// that outlives the transaction, with callback revocation. Selected
  /// with --lease=NAME plus the --lease-ttl / --lease-max-held knobs.
  lease::LeaseOptions lease;

  workload::WorkloadProfile workload;
  core::G2plOptions g2pl;
  S2plOptions s2pl;

  /// Committed transactions measured after the transient phase.
  int64_t measured_txns = 10000;
  /// Committed transactions discarded as the transient phase.
  int64_t warmup_txns = 1000;
  uint64_t seed = 1;

  /// Record per-transaction version reads/writes for serializability checks
  /// (tests only; costs memory).
  bool record_history = false;
  /// Record per-message network trace (examples only).
  bool trace = false;
  /// Record the structured observability trace (obs/trace.h): protocol
  /// events, lock traffic, 2PC rounds, and message-level queueing detail,
  /// returned in RunResult::obs_trace. Observation-only — never draws
  /// randomness or schedules events, so metrics are bit-identical with it
  /// on or off; the stream itself is deterministic per seed (DESIGN.md
  /// §11). Costs memory and time; default off (simulate --trace).
  bool obs_trace = false;
  /// Stream the observability trace to this JSONL file instead of buffering
  /// it in memory (obs/sink.h, DESIGN.md §16): events serialize through the
  /// same writer as the buffered path and flush in chunks bounded by
  /// `trace_flush_bytes`, so traces larger than RAM survive sweep-scale
  /// runs and the file is byte-identical to the buffered export of the same
  /// run. Requires obs_trace; empty (default) keeps the buffered path.
  /// When the harness replicates a point (runs > 1), replica r writes to
  /// "<path>.rep<r>".
  std::string trace_stream_path;
  /// Flush watermark for the streaming sink, in bytes: the chunk buffer is
  /// flushed before an append would push it past this bound, so peak
  /// tracer-buffer occupancy stays under max(watermark, longest line).
  int64_t trace_flush_bytes = 1 << 20;
  /// Sampling interval, in simulated time units, for the time-series
  /// metrics registry (obs/metrics.h, DESIGN.md §16): every registered
  /// gauge/counter — lock-table occupancy, lease tables, NIC backlog,
  /// in-flight 2PC, PDES window/stall telemetry — is sampled at each
  /// multiple of the interval and returned in RunResult::metrics.
  /// Observation-only and deterministic at any thread count. 0 (default)
  /// disables sampling.
  SimTime metrics_interval = 0;
  /// Record the protocol-invariant event stream (window dispatches, reader
  /// release arrivals, writer update releases, graph audits, 2PC rounds)
  /// consumed by the checkers in protocols/invariants.h (tests only; costs
  /// memory, never changes protocol behavior).
  bool record_protocol_events = false;

  /// Simulated delay of a log force at commit/install; 0 keeps the recovery
  /// substrate free so it does not perturb the reproduced numbers.
  SimTime wal_force_delay = 0;

  /// Abort notices take effect instantly at the victim (default), matching
  /// the paper's model: its round accounting has no abort messages, and its
  /// reported g-2PL gains at ~40% abort rates are only reachable when a
  /// victim's held data starts moving at the abort decision. Setting this
  /// to false charges one network latency for the notice before the victim
  /// forwards anything (the ablation bench quantifies the difference; under
  /// deep contention the extra hop compounds along every wait chain).
  bool instant_abort_notice = true;

  /// Safety horizon: the run reports timed_out instead of spinning forever
  /// if the simulated clock passes this bound. 0 = unlimited.
  SimTime max_sim_time = 0;

  /// Worker threads for intra-run parallelism (--sim-threads, DESIGN.md
  /// §15). 1 (default) runs the legacy single-queue serial engine —
  /// bit-identical to every pre-existing result. N > 1 runs the
  /// conservative per-shard parallel engine (protocols/parsim.h): one
  /// logical process per server shard, windows bounded by the one-way WAN
  /// latency (the natural lookahead), results bit-identical at any thread
  /// count (2, 4, 8, ... all produce the same bytes). The parallel engine
  /// supports the decomposable configuration subset — requester-victim
  /// conflict policies (nowait, waitdie), the classic commit path, no
  /// leases, uniform pure-propagation latency, charged abort notices —
  /// and Validate() rejects the rest (they couple shards through
  /// zero-latency shared state, which has no finite lookahead).
  int32_t sim_threads = 1;

  /// Sanity-checks field ranges; call before running.
  Status Validate() const;
};

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_CONFIG_H_
