#include "protocols/config.h"

namespace gtpl::proto {

const char* ToString(Protocol protocol) {
  switch (protocol) {
    case Protocol::kS2pl:
      return "s-2PL";
    case Protocol::kG2pl:
      return "g-2PL";
    case Protocol::kC2pl:
      return "c-2PL";
    case Protocol::kCbl:
      return "CBL";
    case Protocol::kO2pl:
      return "O2PL";
    case Protocol::kNoWait:
      return "nw-2PL";
    case Protocol::kWaitDie:
      return "wd-2PL";
    case Protocol::kOcc:
      return "OCC";
    case Protocol::kOrdered:
      return "or-2PL";
    case Protocol::kWoundWait:
      return "ww-2PL";
  }
  return "unknown";
}

const char* ToString(ShardRouting routing) {
  switch (routing) {
    case ShardRouting::kHash:
      return "hash";
    case ShardRouting::kRange:
      return "range";
  }
  return "unknown";
}

Status SimConfig::Validate() const {
  if (num_clients < 1) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (num_servers < 1) {
    return Status::InvalidArgument("num_servers must be >= 1");
  }
  if (num_servers > workload.num_items) {
    return Status::InvalidArgument("num_servers must be <= num_items");
  }
  if (num_servers > 1 && commit_path != CommitPath::kClassic &&
      (protocol == Protocol::kC2pl || protocol == Protocol::kCbl ||
       protocol == Protocol::kO2pl)) {
    return Status::InvalidArgument(
        "the caching protocols support only the classic commit path");
  }
  if (lease.mode == lease::LeaseMode::kSticky &&
      protocol != Protocol::kS2pl && protocol != Protocol::kNoWait &&
      protocol != Protocol::kWaitDie && protocol != Protocol::kOrdered &&
      protocol != Protocol::kWoundWait) {
    return Status::InvalidArgument(
        "lease=sticky requires a lock-table engine "
        "(s2pl, nowait, waitdie, woundwait, ordered)");
  }
  if (lease.ttl < 0) {
    return Status::InvalidArgument("lease ttl must be >= 0 (0 = infinite)");
  }
  if (lease.max_held < 0) {
    return Status::InvalidArgument(
        "lease max_held must be >= 0 (0 = unlimited)");
  }
  if (latency < 0) return Status::InvalidArgument("latency must be >= 0");
  if (server_latency < -1) {
    return Status::InvalidArgument("server_latency must be -1 or >= 0");
  }
  if (latency_jitter < 0) {
    return Status::InvalidArgument("latency_jitter must be >= 0");
  }
  if (latency_spread < 0.0 || latency_spread > 1.0) {
    return Status::InvalidArgument("latency_spread must be in [0,1]");
  }
  if (link_bandwidth < 0.0) {
    return Status::InvalidArgument("link_bandwidth must be >= 0 (0 = inf)");
  }
  if (cross_traffic_load < 0.0 || cross_traffic_load >= 1.0) {
    return Status::InvalidArgument("cross_traffic_load must be in [0,1)");
  }
  if (cross_traffic_load > 0.0 && (!nic_queue || link_bandwidth <= 0.0)) {
    return Status::InvalidArgument(
        "cross_traffic_load requires nic_queue and finite link_bandwidth");
  }
  if (workload.num_items < 1) {
    return Status::InvalidArgument("num_items must be >= 1");
  }
  if (workload.min_items_per_txn < 1 ||
      workload.min_items_per_txn > workload.max_items_per_txn ||
      workload.max_items_per_txn > workload.num_items) {
    return Status::InvalidArgument("items-per-txn range invalid");
  }
  if (workload.read_prob < 0.0 || workload.read_prob > 1.0) {
    return Status::InvalidArgument("read_prob must be in [0,1]");
  }
  if (workload.repeat_prob < 0.0 || workload.repeat_prob > 1.0) {
    return Status::InvalidArgument("repeat_prob must be in [0,1]");
  }
  if (workload.min_think < 0 || workload.min_think > workload.max_think) {
    return Status::InvalidArgument("think range invalid");
  }
  if (workload.min_idle < 0 || workload.min_idle > workload.max_idle) {
    return Status::InvalidArgument("idle range invalid");
  }
  if (measured_txns < 1) {
    return Status::InvalidArgument("measured_txns must be >= 1");
  }
  if (warmup_txns < 0) {
    return Status::InvalidArgument("warmup_txns must be >= 0");
  }
  if (g2pl.max_forward_list_length < 0) {
    return Status::InvalidArgument("max_forward_list_length must be >= 0");
  }
  if (g2pl.aging_threshold < 0) {
    return Status::InvalidArgument("aging_threshold must be >= 0");
  }
  if (g2pl.adaptive.enabled) {
    const core::AdaptiveWindowOptions& a = g2pl.adaptive;
    if (a.min_cap < 1) {
      return Status::InvalidArgument("adaptive min_cap must be >= 1");
    }
    if (a.max_cap < a.min_cap) {
      return Status::InvalidArgument("adaptive max_cap must be >= min_cap");
    }
    if (a.initial_cap < a.min_cap || a.initial_cap > a.max_cap) {
      return Status::InvalidArgument(
          "adaptive initial_cap must be in [min_cap, max_cap]");
    }
    if (a.decrease_factor <= 0.0 || a.decrease_factor >= 1.0) {
      return Status::InvalidArgument(
          "adaptive decrease_factor must be in (0,1)");
    }
    if (a.increase_step < 1) {
      return Status::InvalidArgument("adaptive increase_step must be >= 1");
    }
    if (a.hysteresis < 1) {
      return Status::InvalidArgument("adaptive hysteresis must be >= 1");
    }
  }
  if (wal_force_delay < 0) {
    return Status::InvalidArgument("wal_force_delay must be >= 0");
  }
  if (max_sim_time < 0) {
    return Status::InvalidArgument("max_sim_time must be >= 0");
  }
  if (!trace_stream_path.empty() && !obs_trace) {
    return Status::InvalidArgument(
        "trace_stream_path requires obs_trace (simulate --trace-stream "
        "implies it)");
  }
  if (trace_flush_bytes < 1) {
    return Status::InvalidArgument("trace_flush_bytes must be >= 1");
  }
  if (metrics_interval < 0) {
    return Status::InvalidArgument("metrics_interval must be >= 0 (0 = off)");
  }
  if (sim_threads < 1) {
    return Status::InvalidArgument("sim_threads must be >= 1");
  }
  if (sim_threads > 1) {
    // The parallel engine covers the decomposable subset: every coupling
    // between shards must ride a message with >= one latency of delay
    // (the lookahead), or conservative windows have no safe width.
    if (protocol != Protocol::kNoWait && protocol != Protocol::kWaitDie) {
      return Status::InvalidArgument(
          "sim_threads > 1 supports the requester-victim engines only "
          "(nowait, waitdie); other protocols consult instantaneous "
          "cross-shard state (global graphs, wounds, caches)");
    }
    if (commit_path != CommitPath::kClassic) {
      return Status::InvalidArgument(
          "sim_threads > 1 requires the classic commit path");
    }
    if (lease.mode != lease::LeaseMode::kNone) {
      return Status::InvalidArgument(
          "sim_threads > 1 does not support lock leases");
    }
    if (link_bandwidth != 0.0 || latency_jitter != 0 ||
        latency_spread != 0.0 || server_latency >= 0) {
      return Status::InvalidArgument(
          "sim_threads > 1 requires the uniform pure-propagation network "
          "model (no bandwidth, jitter, spread, or server-latency mesh)");
    }
    if (latency < 1) {
      return Status::InvalidArgument(
          "sim_threads > 1 requires latency >= 1 (the lookahead bound)");
    }
    if (instant_abort_notice) {
      return Status::InvalidArgument(
          "sim_threads > 1 requires charged abort notices "
          "(--charged-abort-notice): an instant notice is a zero-latency "
          "cross-shard edge");
    }
    // obs_trace is supported: each LP gets its own Tracer and the streams
    // are k-way merged at window barriers into the kernel's deterministic
    // (time, lp, seq) order (DESIGN.md §16). The legacy per-message network
    // trace and the invariant event stream remain serial-only.
    if (trace || record_protocol_events) {
      return Status::InvalidArgument(
          "sim_threads > 1 does not record network traces or protocol "
          "events (the structured obs trace IS supported: --trace merges "
          "per-LP streams deterministically)");
    }
  }
  return Status::Ok();
}

}  // namespace gtpl::proto
