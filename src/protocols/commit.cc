#include "protocols/commit.h"

#include "common/check.h"

namespace gtpl::proto {

const char* ToString(CommitPath path) {
  switch (path) {
    case CommitPath::kClassic:
      return "classic";
    case CommitPath::kEarly:
      return "early";
    case CommitPath::kFastPath:
      return "fastpath";
    case CommitPath::kCoord:
      return "coord";
  }
  return "unknown";
}

const std::vector<CommitPathInfo>& CommitPaths() {
  static const std::vector<CommitPathInfo>* paths =
      new std::vector<CommitPathInfo>{
          {"classic",
           "client-coordinated 2PC, parallel prepare fan-out (default)",
           CommitPath::kClassic},
          {"early",
           "speculative prepare piggybacked on each shard's last operation",
           CommitPath::kEarly},
          {"fastpath",
           "one-round commit for single-write-shard transactions",
           CommitPath::kFastPath},
          {"coord",
           "per-txn coordinator placement: client vs write-heaviest server",
           CommitPath::kCoord},
      };
  return *paths;
}

const CommitPathInfo* FindCommitPath(const std::string& name) {
  for (const CommitPathInfo& info : CommitPaths()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const CommitPathInfo& CommitPathFor(CommitPath path) {
  for (const CommitPathInfo& info : CommitPaths()) {
    if (info.path == path) return info;
  }
  GTPL_CHECK(false) << "commit path without a registry entry";
  return CommitPaths().front();
}

std::string CommitPathNames() {
  std::string names;
  for (const CommitPathInfo& info : CommitPaths()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

Status ParseCommitPathName(const std::string& name, CommitPath* path) {
  const CommitPathInfo* info = FindCommitPath(name);
  if (info == nullptr) {
    return Status::InvalidArgument("unknown commit path '" + name +
                                   "' (registered: " + CommitPathNames() +
                                   ")");
  }
  *path = info->path;
  return Status::Ok();
}

int32_t ExpectedCommitFlights(CommitPath path, bool single_write_shard,
                              bool remote_coordinator) {
  switch (path) {
    case CommitPath::kClassic:
      return 2;  // prepare out + vote back
    case CommitPath::kEarly:
      return 0;  // every vote is home before the commit point
    case CommitPath::kFastPath:
      return single_write_shard ? 0 : 2;
    case CommitPath::kCoord:
      return remote_coordinator ? 4 : 2;  // + handoff and ack legs
  }
  return 2;
}

}  // namespace gtpl::proto
