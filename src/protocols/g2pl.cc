#include "protocols/g2pl.h"

#include <utility>

#include "common/check.h"

namespace gtpl::proto {

G2plEngine::G2plEngine(const SimConfig& config) : EngineBase(config) {
  core::WindowManager::Callbacks callbacks;
  callbacks.dispatch = [this](ItemId item, Version version,
                              std::shared_ptr<const core::ForwardList> fl) {
    WmDispatch(item, version, std::move(fl));
  };
  callbacks.abort = [this](TxnId txn, SiteId client_site) {
    WmAbort(txn, client_site);
  };
  callbacks.expand = [this](ItemId item, Version version,
                            std::shared_ptr<const core::ForwardList> fl,
                            TxnId txn, SiteId client_site,
                            int32_t member_index) {
    WmExpand(item, version, std::move(fl), txn, client_site, member_index);
  };
  callbacks.can_abort = [this](TxnId txn) {
    TxnRun* run = FindRun(txn);
    return run != nullptr && !run->finished && !run->doomed;
  };
  wm_ = std::make_unique<core::WindowManager>(
      config.workload.num_items, config.g2pl, &store(), std::move(callbacks));
}

G2plEngine::TxnState& G2plEngine::EnsureTxn(TxnId txn, int32_t client_index) {
  auto [it, inserted] = txns_.try_emplace(txn);
  if (inserted) it->second.client_index = client_index;
  return it->second;
}

void G2plEngine::SendRequest(TxnRun& run) {
  const TxnId txn = run.id;
  const SiteId site = run.site();
  const workload::Operation op = run.op();
  const int32_t restarts = ClientAt(run.client_index).restart_streak;
  EnsureTxn(txn, run.client_index);
  network().Send(site, kServerSite, "lock-request",
                 [this, txn, site, op, restarts] {
                   NoteRequestAtServer(txn, op.item, op.mode);
                   wm_->OnRequest(txn, site, op.item, op.mode, restarts);
                 });
}

void G2plEngine::WmDispatch(ItemId item, Version version,
                            std::shared_ptr<const core::ForwardList> fl) {
  if (config().record_protocol_events || tracer().enabled()) {
    const bool acyclic = wm_->graph().IsAcyclic();
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kWindowDispatched;
      event.item = item;
      event.entries = SnapshotForwardList(*fl);
      RecordEvent(std::move(event));
      ProtocolEvent audit;
      audit.kind = ProtocolEventKind::kGraphCheck;
      audit.item = item;
      audit.flag = acyclic;
      RecordEvent(std::move(audit));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kWindowDispatch;
      event.item = item;
      event.payload = static_cast<int64_t>(version);
      event.entries = ObsSnapshotForwardList(*fl);
      tracer().Emit(std::move(event));
      obs::TraceEvent audit;
      audit.kind = obs::EventKind::kGraphCheck;
      audit.item = item;
      audit.flag = acyclic;
      tracer().Emit(std::move(audit));
    }
  }
  for (int32_t e = 0; e < fl->num_entries(); ++e) {
    for (const core::FlMember& m : fl->entry(e).members) {
      TxnState& ts = EnsureTxn(m.txn, m.client - 1);
      ++ts.slots_outstanding;
      ts.slot_items.push_back(item);
    }
  }
  DeliverToEntry(kServerSite, item, version, std::move(fl), 0);
}

void G2plEngine::WmAbort(TxnId txn, SiteId client_site) {
  ServerAbortDecision(txn, client_site);
}

void G2plEngine::WmExpand(ItemId item, Version version,
                          std::shared_ptr<const core::ForwardList> fl,
                          TxnId txn, SiteId client_site,
                          int32_t member_index) {
  if (config().record_protocol_events || tracer().enabled()) {
    const bool acyclic = wm_->graph().IsAcyclic();
    if (config().record_protocol_events) {
      ProtocolEvent event;
      event.kind = ProtocolEventKind::kWindowExpanded;
      event.txn = txn;
      event.item = item;
      event.entries = SnapshotForwardList(*fl);
      RecordEvent(std::move(event));
      ProtocolEvent audit;
      audit.kind = ProtocolEventKind::kGraphCheck;
      audit.item = item;
      audit.flag = acyclic;
      RecordEvent(std::move(audit));
    }
    if (tracer().enabled()) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kWindowExpand;
      event.txn = txn;
      event.item = item;
      event.payload = static_cast<int64_t>(version);
      event.entries = ObsSnapshotForwardList(*fl);
      tracer().Emit(std::move(event));
      obs::TraceEvent audit;
      audit.kind = obs::EventKind::kGraphCheck;
      audit.item = item;
      audit.flag = acyclic;
      tracer().Emit(std::move(audit));
    }
  }
  TxnState& ts = EnsureTxn(txn, client_site - 1);
  ++ts.slots_outstanding;
  ts.slot_items.push_back(item);
  network().Send(kServerSite, client_site, "data(expand)",
                 [this, txn, item, version, fl = std::move(fl),
                  member_index] {
                   OnData(txn, item, version, fl, 0, member_index, 0);
                 });
}

void G2plEngine::DeliverToEntry(SiteId from_site, ItemId item,
                                Version version,
                                std::shared_ptr<const core::ForwardList> fl,
                                int32_t entry_index) {
  // Data messages carry the item plus a copy of the forward list — the
  // larger-but-fewer messages the paper deems cheap at gigabit rates.
  const uint64_t payload =
      net::kDataPayload +
      net::kFlSlotPayload * static_cast<uint64_t>(fl->num_members());
  const core::FlEntry& entry = fl->entry(entry_index);
  if (!entry.is_read_group) {
    const core::FlMember writer = entry.members[0];
    network().Send(
        from_site, writer.client, "data",
        [this, txn = writer.txn, item, version, fl, entry_index] {
          OnData(txn, item, version, fl, entry_index, 0, 0);
        },
        payload);
    return;
  }
  for (int32_t j = 0; j < entry.size(); ++j) {
    const core::FlMember reader = entry.members[static_cast<size_t>(j)];
    network().Send(
        from_site, reader.client, "data(copy)",
        [this, txn = reader.txn, item, version, fl, entry_index, j] {
          OnData(txn, item, version, fl, entry_index, j, 0);
        },
        payload);
  }
  // MR1W (paper §3.4): the writer that follows the read group receives the
  // data at the same time and executes concurrently; it may not release its
  // update before every reader's release reaches it.
  if (config().g2pl.mr1w && entry_index + 1 < fl->num_entries()) {
    const core::FlEntry& next = fl->entry(entry_index + 1);
    GTPL_CHECK(!next.is_read_group);
    const core::FlMember writer = next.members[0];
    network().Send(
        from_site, writer.client, "data(early)",
        [this, txn = writer.txn, item, version, fl, entry_index,
         releases = entry.size()] {
          OnData(txn, item, version, fl, entry_index + 1, 0, releases);
        },
        payload);
  }
}

void G2plEngine::OnData(TxnId txn, ItemId item, Version version,
                        std::shared_ptr<const core::ForwardList> fl,
                        int32_t entry_index, int32_t member_index,
                        int32_t early_releases) {
  if (drained_.count(txn) > 0) return;
  Obligation& ob = obligations_[ObKey{txn, item}];
  if (ob.data_arrived) {
    // A ride-along copy already arrived via a reader release (possible only
    // with reordering latency models); keep the established state.
    if (early_releases > 0) ob.releases_needed = early_releases;
  } else {
    ob.fl = std::move(fl);
    ob.entry = entry_index;
    ob.member = member_index;
    ob.is_writer = !ob.fl->entry(entry_index).is_read_group;
    ob.data_arrived = true;
    ob.version = version;
    if (early_releases > 0) ob.releases_needed = early_releases;
  }
  TxnState& ts = txns_.at(txn);
  if (ts.finished) {
    TryForward(txn, item);
    return;
  }
  MaybeGrant(txn, item, ob);
}

void G2plEngine::OnReaderRelease(TxnId writer_txn, ItemId item,
                                 Version version,
                                 std::shared_ptr<const core::ForwardList> fl,
                                 int32_t writer_entry_index) {
  if (drained_.count(writer_txn) > 0) return;  // waived wait; already gone
  if (config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kReaderReleaseArrived;
    event.txn = writer_txn;
    event.item = item;
    RecordEvent(std::move(event));
  }
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kReaderRelease;
    event.txn = writer_txn;
    event.item = item;
    tracer().Emit(std::move(event));
  }
  Obligation& ob = obligations_[ObKey{writer_txn, item}];
  if (ob.fl == nullptr) {
    // Basic mode (MR1W off): the first reader release carries the data.
    ob.fl = std::move(fl);
    ob.entry = writer_entry_index;
    ob.member = 0;
    ob.is_writer = true;
    GTPL_CHECK_GT(writer_entry_index, 0);
    ob.releases_needed = ob.fl->entry(writer_entry_index - 1).size();
  }
  ++ob.releases_received;
  GTPL_CHECK_LE(ob.releases_received, ob.releases_needed);
  if (!ob.data_arrived) {
    ob.data_arrived = true;
    ob.version = version;
  }
  if (ob.forwarded) return;  // aborted writer already passed it through
  TxnState& ts = txns_.at(writer_txn);
  if (ts.finished) {
    TryForward(writer_txn, item);
  } else {
    MaybeGrant(writer_txn, item, ob);
  }
}

void G2plEngine::MaybeGrant(TxnId txn, ItemId item, Obligation& ob) {
  if (ob.granted || !ob.data_arrived) return;
  // MR1W early writers may execute immediately; in basic mode a writer
  // behind a read group starts only once every reader has released to it.
  if (!config().g2pl.mr1w &&
      ob.releases_received < ob.releases_needed) {
    return;
  }
  TxnRun* run = FindRun(txn);
  GTPL_CHECK(run != nullptr) << "live g-2PL txn without a run";
  if (run->doomed) return;  // abort notice in flight; pass through later
  GTPL_CHECK_EQ(run->op().item, item)
      << "grant does not match the sequentially outstanding operation";
  ob.granted = true;
  OpGranted(*run, ob.version);
}

void G2plEngine::TryForward(TxnId txn, ItemId item) {
  auto it = obligations_.find(ObKey{txn, item});
  if (it == obligations_.end()) return;  // slot not yet materialized or gone
  Obligation& ob = it->second;
  TxnState& ts = txns_.at(txn);
  if (ob.forwarded || !ob.data_arrived || !ts.finished) return;
  // A committed writer may not release its update before all reader
  // releases arrive (MR1W rule); an aborted transaction waits for nothing.
  if (ts.committed && ob.releases_received < ob.releases_needed) return;
  ob.forwarded = true;
  if (ts.committed && ob.is_writer && config().record_protocol_events) {
    ProtocolEvent event;
    event.kind = ProtocolEventKind::kWriterUpdateReleased;
    event.txn = txn;
    event.item = item;
    RecordEvent(std::move(event));
  }
  if (ts.committed && ob.is_writer && tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWriterRelease;
    event.txn = txn;
    event.item = item;
    tracer().Emit(std::move(event));
  }
  const Version version_out =
      ts.committed && ob.is_writer ? ob.version + 1 : ob.version;
  const SiteId from = ts.client_index + 1;
  if (tracer().enabled()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kFlHandoff;
    event.txn = txn;
    event.site = from;
    event.item = item;
    event.flag = ts.committed;
    event.mode = ob.is_writer ? 1 : 0;
    event.payload = static_cast<int64_t>(version_out);
    event.label = ob.fl->IsLastEntry(ob.entry)
                      ? "return"
                      : (!ob.is_writer ? "reader-release" : "forward");
    tracer().Emit(std::move(event));
  }
  if (ob.fl->IsLastEntry(ob.entry)) {
    network().Send(
        from, kServerSite, "return",
        [this, item, version_out] {
          wm_->OnReturn(item, version_out);
          MaybeGcClientLogs();
        },
        net::kControlPayload + net::kDataPayload);
  } else if (!ob.is_writer) {
    const core::FlEntry& next = ob.fl->entry(ob.entry + 1);
    GTPL_CHECK(!next.is_read_group);
    const core::FlMember writer = next.members[0];
    const uint64_t release_payload =
        config().g2pl.mr1w ? net::kControlPayload
                           : net::kControlPayload + net::kDataPayload;
    network().Send(
        from, writer.client, "reader-release",
        [this, wt = writer.txn, item, version_out, fl = ob.fl,
         we = ob.entry + 1] {
          OnReaderRelease(wt, item, version_out, fl, we);
        },
        release_payload);
  } else {
    DeliverToEntry(from, item, version_out, ob.fl, ob.entry + 1);
  }
  --ts.slots_outstanding;
  GTPL_CHECK_GE(ts.slots_outstanding, 0);
  CheckDrain(txn);
}

void G2plEngine::CheckDrain(TxnId txn) {
  TxnState& ts = txns_.at(txn);
  if (ts.drained || !ts.finished || ts.slots_outstanding != 0) return;
  ts.drained = true;
  drained_.insert(txn);
  wm_->OnTxnDrained(txn);
  for (ItemId item : ts.slot_items) obligations_.erase(ObKey{txn, item});
}

void G2plEngine::DoCommit(TxnRun& run) {
  TxnState& ts = EnsureTxn(run.id, run.client_index);
  ts.finished = true;
  ts.committed = true;
  const std::vector<ItemId> items = ts.slot_items;  // TryForward may drain
  for (ItemId item : items) TryForward(run.id, item);
  CheckDrain(run.id);
}

void G2plEngine::OnClientAborted(TxnRun& run) {
  TxnState& ts = EnsureTxn(run.id, run.client_index);
  ts.finished = true;
  ts.committed = false;
  const std::vector<ItemId> items = ts.slot_items;
  for (ItemId item : items) TryForward(run.id, item);
  CheckDrain(run.id);
}

void G2plEngine::FillProtocolMetrics(RunResult* result) {
  result->windows_dispatched = wm_->windows_dispatched();
  result->mean_forward_list_length = wm_->MeanForwardListLength();
  result->read_group_expansions = wm_->expansions();
  if (const core::AdaptiveWindowController* ctl = wm_->adaptive_controller()) {
    result->mean_effective_cap = ctl->MeanEffectiveCap();
    result->final_effective_cap = ctl->FinalEffectiveCap();
    result->cap_increases = ctl->cap_increases();
    result->cap_decreases = ctl->cap_decreases();
  }
}

}  // namespace gtpl::proto
