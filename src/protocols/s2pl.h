#ifndef GTPL_PROTOCOLS_S2PL_H_
#define GTPL_PROTOCOLS_S2PL_H_

#include <unordered_set>
#include <vector>

#include "db/lock_table.h"
#include "db/waits_for_graph.h"
#include "protocols/engine.h"

namespace gtpl::proto {

/// Server-based strict two-phase locking (paper §3.1), the baseline.
///
/// Clients request one item at a time (sequential execution); the server
/// grants via a FIFO strict-2PL lock table and ships the data with the
/// grant. Deadlock detection runs a waits-for-graph cycle check whenever a
/// lock cannot be granted, aborting the requester (default, the commercial
/// "detect at block time" style) or the youngest cycle member. At commit the
/// client returns all modified items in a single release message; the server
/// installs them, releases the locks, and promotes waiters.
class S2plEngine : public EngineBase {
 public:
  explicit S2plEngine(const SimConfig& config);

  int64_t deadlock_aborts() const { return deadlock_aborts_; }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(RunResult* result) override;

 private:
  struct Update {
    ItemId item;
    Version version;
  };

  // Server-side handlers (run at message-arrival time).
  void ServerOnRequest(TxnId txn, SiteId client_site, ItemId item,
                       LockMode mode);
  void ServerOnRelease(TxnId txn, std::vector<Update> updates);

  /// Sends the granted item's data to the owning client.
  void SendGrant(TxnId txn, ItemId item, LockMode mode);

  /// Aborts `victim` at the server: drops its locks/queued requests and
  /// waits-for edges, promotes unblocked waiters, dooms it at the client.
  void ServerAbort(TxnId victim);

  db::LockTable lock_table_;
  db::WaitsForGraph wfg_;
  std::unordered_set<TxnId> server_aborted_;  // ignore their late messages
  int64_t deadlock_aborts_ = 0;
};

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_S2PL_H_
