#ifndef GTPL_PROTOCOLS_S2PL_H_
#define GTPL_PROTOCOLS_S2PL_H_

#include "cc/lock_engine.h"
#include "cc/policy.h"

namespace gtpl::proto {

/// Server-based strict two-phase locking (paper §3.1), the baseline.
///
/// Clients request one item at a time (sequential execution); the server
/// grants via a FIFO strict-2PL lock table and ships the data with the
/// grant. Deadlock detection runs a waits-for-graph cycle check whenever a
/// lock cannot be granted, aborting the requester (default, the commercial
/// "detect at block time" style) or the youngest cycle member. At commit the
/// client returns all modified items in a single release message; the server
/// installs them, releases the locks, and promotes waiters.
///
/// Since the cc refactor this is a thin instantiation of the generic lock
/// engine with the detection policy; the message sequences are the original
/// ones (the legacy golden tables pin them bit for bit).
class S2plEngine : public cc::LockCcEngine {
 public:
  explicit S2plEngine(const SimConfig& config)
      : cc::LockCcEngine(config, cc::MakeDetectPolicy()) {}

  int64_t deadlock_aborts() const { return policy_aborts(); }
};

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_S2PL_H_
