#include "protocols/invariants.h"

#include <cstdio>
#include <map>
#include <utility>

#include "core/forward_list.h"

namespace gtpl::proto {
namespace {

std::string Describe(const ProtocolEvent& event) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "event(kind=%d time=%lld txn=%lld item=%d server=%d)",
                static_cast<int>(event.kind),
                static_cast<long long>(event.time),
                static_cast<long long>(event.txn), event.item, event.server);
  return buffer;
}

void Explain(std::string* explanation, std::string text) {
  if (explanation != nullptr) *explanation = std::move(text);
}

}  // namespace

std::vector<FlEntryRecord> SnapshotForwardList(const core::ForwardList& fl) {
  std::vector<FlEntryRecord> entries;
  entries.reserve(static_cast<size_t>(fl.num_entries()));
  for (int32_t e = 0; e < fl.num_entries(); ++e) {
    FlEntryRecord record;
    record.is_read_group = fl.entry(e).is_read_group;
    for (const core::FlMember& member : fl.entry(e).members) {
      record.txns.push_back(member.txn);
    }
    entries.push_back(std::move(record));
  }
  return entries;
}

std::vector<obs::FlEntrySnapshot> ObsSnapshotForwardList(
    const core::ForwardList& fl) {
  std::vector<obs::FlEntrySnapshot> entries;
  entries.reserve(static_cast<size_t>(fl.num_entries()));
  for (int32_t e = 0; e < fl.num_entries(); ++e) {
    obs::FlEntrySnapshot snapshot;
    snapshot.is_read_group = fl.entry(e).is_read_group;
    for (const core::FlMember& member : fl.entry(e).members) {
      snapshot.txns.push_back(member.txn);
    }
    entries.push_back(std::move(snapshot));
  }
  return entries;
}

std::vector<ProtocolEvent> ProtocolEventsFromTrace(
    const std::vector<obs::TraceEvent>& trace) {
  std::vector<ProtocolEvent> events;
  for (const obs::TraceEvent& te : trace) {
    ProtocolEventKind kind;
    switch (te.kind) {
      case obs::EventKind::kWindowDispatch:
        kind = ProtocolEventKind::kWindowDispatched;
        break;
      case obs::EventKind::kWindowExpand:
        kind = ProtocolEventKind::kWindowExpanded;
        break;
      case obs::EventKind::kReaderRelease:
        kind = ProtocolEventKind::kReaderReleaseArrived;
        break;
      case obs::EventKind::kWriterRelease:
        kind = ProtocolEventKind::kWriterUpdateReleased;
        break;
      case obs::EventKind::kGraphCheck:
        kind = ProtocolEventKind::kGraphCheck;
        break;
      case obs::EventKind::kPrepare:
        kind = ProtocolEventKind::kPrepareArrived;
        break;
      case obs::EventKind::kVote:
        kind = ProtocolEventKind::kVoteArrived;
        break;
      case obs::EventKind::kDecide:
        kind = ProtocolEventKind::kCommitDecisionArrived;
        break;
      case obs::EventKind::kLeaseGrant:
        kind = ProtocolEventKind::kLeaseGranted;
        break;
      case obs::EventKind::kLeaseRevoke:
        kind = ProtocolEventKind::kLeaseRevoked;
        break;
      case obs::EventKind::kLeaseRelease:
        kind = ProtocolEventKind::kLeaseReleased;
        break;
      default:
        continue;  // lifecycle / lock / message events have no counterpart
    }
    ProtocolEvent pe;
    pe.kind = kind;
    pe.time = te.time;
    pe.txn = te.txn;
    pe.item = te.item;
    pe.server = te.shard;
    if (kind == ProtocolEventKind::kLeaseGranted ||
        kind == ProtocolEventKind::kLeaseRevoked ||
        kind == ProtocolEventKind::kLeaseReleased) {
      pe.site = te.site;
    }
    pe.flag = te.flag;
    pe.entries.reserve(te.entries.size());
    for (const obs::FlEntrySnapshot& entry : te.entries) {
      FlEntryRecord record;
      record.is_read_group = entry.is_read_group;
      record.txns = entry.txns;
      pe.entries.push_back(std::move(record));
    }
    events.push_back(std::move(pe));
  }
  return events;
}

bool CheckAcyclicity(const std::vector<ProtocolEvent>& events,
                     std::string* explanation) {
  for (const ProtocolEvent& event : events) {
    if (event.kind == ProtocolEventKind::kGraphCheck && !event.flag) {
      Explain(explanation,
              "precedence graph cyclic at " + Describe(event));
      return false;
    }
  }
  return true;
}

bool CheckForwardListOrderConsistency(
    const std::vector<ProtocolEvent>& events, std::string* explanation) {
  // sign[{a,b}] with a < b: +1 when a precedes b, -1 when b precedes a.
  std::map<std::pair<TxnId, TxnId>, int> sign;
  for (const ProtocolEvent& event : events) {
    if (event.kind != ProtocolEventKind::kWindowDispatched &&
        event.kind != ProtocolEventKind::kWindowExpanded) {
      continue;
    }
    for (size_t i = 0; i < event.entries.size(); ++i) {
      for (size_t j = i + 1; j < event.entries.size(); ++j) {
        for (TxnId first : event.entries[i].txns) {
          for (TxnId second : event.entries[j].txns) {
            const bool swapped = second < first;
            const std::pair<TxnId, TxnId> key =
                swapped ? std::make_pair(second, first)
                        : std::make_pair(first, second);
            const int order = swapped ? -1 : +1;
            auto [it, inserted] = sign.emplace(key, order);
            if (!inserted && it->second != order) {
              Explain(explanation,
                      "transactions " + std::to_string(key.first) + " and " +
                          std::to_string(key.second) +
                          " appear in opposite orders; second occurrence at " +
                          Describe(event));
              return false;
            }
          }
        }
      }
    }
  }
  return true;
}

bool CheckMr1wDiscipline(const std::vector<ProtocolEvent>& events,
                         std::string* explanation) {
  // (writer txn, item) -> number of reader releases the writer must collect
  // before releasing its update: the size of the read group directly
  // preceding it in the dispatched forward list. Expansion events
  // re-publish the list and overwrite the expectation (expansion only
  // applies to pure read groups, so it can never grow a group that already
  // has a trailing writer — but processing events in order keeps the
  // checker robust either way).
  std::map<std::pair<TxnId, ItemId>, int> expected;
  std::map<std::pair<TxnId, ItemId>, int> arrived;
  for (const ProtocolEvent& event : events) {
    switch (event.kind) {
      case ProtocolEventKind::kWindowDispatched:
      case ProtocolEventKind::kWindowExpanded:
        for (size_t e = 1; e < event.entries.size(); ++e) {
          const FlEntryRecord& entry = event.entries[e];
          const FlEntryRecord& previous = event.entries[e - 1];
          if (entry.is_read_group || !previous.is_read_group) continue;
          for (TxnId writer : entry.txns) {
            expected[{writer, event.item}] =
                static_cast<int>(previous.txns.size());
          }
        }
        break;
      case ProtocolEventKind::kReaderReleaseArrived:
        ++arrived[{event.txn, event.item}];
        break;
      case ProtocolEventKind::kWriterUpdateReleased: {
        const auto need = expected.find({event.txn, event.item});
        if (need == expected.end()) break;  // no preceding read group
        const auto have = arrived.find({event.txn, event.item});
        const int got = have == arrived.end() ? 0 : have->second;
        if (got < need->second) {
          Explain(explanation,
                  "writer released its update after " + std::to_string(got) +
                      "/" + std::to_string(need->second) +
                      " reader releases at " + Describe(event));
          return false;
        }
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool CheckLeaseCoherence(const std::vector<ProtocolEvent>& events,
                         std::string* explanation) {
  // Per-item replay of the lease state machine as the *events* describe it.
  struct ItemState {
    SiteId writer = -1;
    std::vector<SiteId> readers;          // unsorted, tiny
    std::vector<SiteId> revoking;         // sites with an outstanding revoke
  };
  auto contains = [](const std::vector<SiteId>& v, SiteId s) {
    for (SiteId x : v) {
      if (x == s) return true;
    }
    return false;
  };
  auto erase = [](std::vector<SiteId>& v, SiteId s) {
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i] == s) {
        v.erase(v.begin() + static_cast<long>(i));
        return;
      }
    }
  };
  std::map<ItemId, ItemState> items;
  for (const ProtocolEvent& event : events) {
    switch (event.kind) {
      case ProtocolEventKind::kLeaseGranted: {
        ItemState& state = items[event.item];
        if (!state.revoking.empty()) {
          Explain(explanation,
                  "lease granted while a revoke is outstanding at " +
                      Describe(event));
          return false;
        }
        if (state.writer >= 0 && state.writer != event.site) {
          Explain(explanation,
                  "lease granted alongside a foreign write lease at " +
                      Describe(event));
          return false;
        }
        if (event.flag) {  // exclusive
          for (SiteId reader : state.readers) {
            if (reader != event.site) {
              Explain(explanation,
                      "write lease granted alongside a foreign read lease "
                      "at " + Describe(event));
              return false;
            }
          }
          erase(state.readers, event.site);
          state.writer = event.site;
        } else if (state.writer != event.site &&
                   !contains(state.readers, event.site)) {
          state.readers.push_back(event.site);
        }
        break;
      }
      case ProtocolEventKind::kLeaseRevoked: {
        ItemState& state = items[event.item];
        if (state.writer != event.site &&
            !contains(state.readers, event.site)) {
          Explain(explanation,
                  "revoke sent to a site holding no lease at " +
                      Describe(event));
          return false;
        }
        if (!contains(state.revoking, event.site)) {
          state.revoking.push_back(event.site);
        }
        break;
      }
      case ProtocolEventKind::kLeaseReleased: {
        ItemState& state = items[event.item];
        if (state.writer == event.site) state.writer = -1;
        erase(state.readers, event.site);
        erase(state.revoking, event.site);
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool CheckProtocolInvariants(const std::vector<ProtocolEvent>& events,
                             std::string* explanation) {
  return CheckAcyclicity(events, explanation) &&
         CheckForwardListOrderConsistency(events, explanation) &&
         CheckMr1wDiscipline(events, explanation) &&
         CheckLeaseCoherence(events, explanation);
}

}  // namespace gtpl::proto
