// Conservative per-shard parallel engine (DESIGN.md §15).
//
// Topology: LP s owns server shard s (lock table, installed versions, WAL)
// and the clients with index % num_servers == s. All state is partitioned
// by LP; an event only ever touches its own LP's slice, and every
// cross-LP interaction is a sim::ShardSim channel message of exactly one
// WAN latency (the lookahead). Metrics accumulate into per-LP RunResult
// slices merged in LP order after the run — so the whole simulation is
// bit-identical at any thread count.

#include "protocols/parsim.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "db/lock_table.h"
#include "db/wal.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "rng/rng.h"
#include "sim/parallel.h"
#include "workload/generator.h"

namespace gtpl::proto {
namespace {

using workload::Operation;

struct Update {
  ItemId item;
  Version version;
};

class ParallelEngine {
 public:
  explicit ParallelEngine(const SimConfig& config);
  RunResult Run();

 private:
  /// One in-flight transaction at a client (the parallel analogue of
  /// EngineBase::TxnRun; doomed/committing flags are unnecessary because a
  /// requester-victim abort always rides the reply to the one outstanding
  /// request, so no stale message can reach a finished run).
  struct PTxn {
    TxnId id = kInvalidTxn;
    int32_t client_index = 0;
    workload::TxnSpec spec;
    size_t current_op = 0;
    SimTime start_time = 0;
    bool finished = false;
    SimTime request_time = 0;
    Version pending_version = 0;
    std::vector<OpRecord> records;
    TxnSpan span;
    SimTime commit_start = 0;
    int32_t commit_flights = -1;
    // Classic 2PC coordination (cross-shard commits only).
    int32_t votes_pending = 0;
    int32_t participants = 0;
    SimTime prepare_sent = 0;

    SiteId site() const { return client_index + 1; }
    const Operation& op() const { return spec.ops[current_op]; }
    bool LastOp() const { return current_op + 1 == spec.ops.size(); }
  };

  struct Client {
    int32_t index = 0;
    std::unique_ptr<workload::WorkloadGenerator> generator;
    std::unique_ptr<db::WriteAheadLog> wal;
    std::unique_ptr<PTxn> current;
    int64_t started_txns = 0;  // stripes the next txn id
  };

  struct Shard {
    std::unique_ptr<db::LockTable> locks;
    std::unique_ptr<db::WriteAheadLog> wal;
    std::vector<Version> versions;  // full item space; only own items used
  };

  int32_t num_shards() const { return config_.num_servers; }
  int32_t ShardOf(ItemId item) const {
    if (config_.shard_routing == ShardRouting::kRange) {
      return std::min(item / items_per_shard_, num_shards() - 1);
    }
    return item % num_shards();
  }
  int32_t LpOfClient(int32_t client) const { return client % num_shards(); }
  SiteId ShardSiteOf(int32_t shard) const {
    return shard == 0 ? kServerSite : config_.num_clients + shard;
  }
  bool IsServerSite(SiteId site) const {
    return site == kServerSite || site > config_.num_clients;
  }

  /// Counts the message in the SENDER's slice and parks it on the channel.
  void SendMsg(int32_t src_lp, int32_t dst_lp, SiteId from, SiteId to,
               uint64_t payload, std::function<void()> action);

  // --- client-LP handlers ---------------------------------------------
  void BeginTxn(int32_t client_index);
  void IssueRequest(Client& client);
  void ClientOnGrant(int32_t client_index, TxnId txn, ItemId item,
                     Version version);
  void FinishOp(int32_t client_index, TxnId txn);
  void StartCommit(Client& client);
  void StartLocalCommit(Client& client);
  void FinalizeCommit(Client& client);
  void SendReleases(Client& client);
  void ClientOnVote(int32_t client_index, TxnId txn, int32_t voting_shard);
  void ClientOnAbortNotice(int32_t client_index, TxnId txn,
                           int32_t deciding_shard);
  void ScheduleNextTxn(Client& client);

  // --- shard-LP handlers ----------------------------------------------
  void ServerOnRequest(int32_t shard, TxnId txn, int32_t client_index,
                       ItemId item, LockMode mode, SimTime txn_start,
                       int64_t held_ops);
  void SendGrant(int32_t shard, TxnId txn, ItemId item);
  void ServerOnPrepare(int32_t shard, TxnId txn, int32_t client_index);
  void ServerOnRelease(int32_t shard, TxnId txn, std::vector<Update> updates);
  void ServerOnAbortRelease(int32_t shard, TxnId txn);

  // --- observability (DESIGN.md §16) ----------------------------------
  bool tracing() const { return merger_ != nullptr; }
  obs::Tracer& TracerOf(int32_t lp) {
    return *tracers_[static_cast<size_t>(lp)];
  }
  /// Emits every metrics_interval crossing strictly below `horizon` (the
  /// completed window's horizon). Probe state and the crossing sequence are
  /// barrier state — thread-count-invariant, so the series is deterministic.
  void SampleMetricsBelow(SimTime horizon);

  SimConfig config_;
  SimTime latency_;
  int32_t items_per_shard_;
  bool wait_die_;
  std::unique_ptr<sim::ParallelSim> psim_;
  std::vector<Client> clients_;
  std::vector<Shard> shards_;
  /// One Tracer per LP (obs_trace only): events stamp the owning LP's
  /// clock and a dense per-LP seq; merger_ re-orders them into the global
  /// (time, lp, per-LP seq) stream at window barriers — byte-identical at
  /// any thread count, and to the same run at sim_threads == 1.
  std::vector<std::unique_ptr<obs::Tracer>> tracers_;
  std::unique_ptr<obs::StreamSink> trace_sink_;
  std::unique_ptr<obs::TraceMerger> merger_;
  /// Time-series gauges (metrics_interval > 0 only), sampled from the
  /// barrier hook; see SampleMetricsBelow.
  obs::MetricsRegistry metrics_;
  SimTime next_sample_ = 0;
  /// Per-LP metric slices (merged in LP order after the run).
  std::vector<RunResult> slices_;
  /// Global warmup flag, latched in the window-barrier hook on a snapshot
  /// of the per-LP commit counters: written only between windows (the
  /// pool barrier provides the happens-before edges), read by LP events
  /// during windows — every LP of a window sees the same value, at any
  /// thread count.
  bool measuring_ = false;
};

ParallelEngine::ParallelEngine(const SimConfig& config)
    : config_(config),
      latency_(config.latency),
      items_per_shard_((config.workload.num_items + config.num_servers - 1) /
                       config.num_servers),
      wait_die_(config.protocol == Protocol::kWaitDie) {
  psim_ = std::make_unique<sim::ParallelSim>(num_shards(), latency_,
                                             config.sim_threads);
  shards_.resize(static_cast<size_t>(num_shards()));
  for (Shard& shard : shards_) {
    shard.locks = std::make_unique<db::LockTable>(config.workload.num_items);
    shard.wal = std::make_unique<db::WriteAheadLog>(config.wal_force_delay);
    shard.versions.assign(static_cast<size_t>(config.workload.num_items), 0);
  }
  slices_.resize(static_cast<size_t>(num_shards()));
  // Same histogram sizing as EngineBase, so slices merge into an
  // identically-shaped final result.
  const double unit =
      static_cast<double>(std::max<SimTime>(config.latency, 8));
  for (RunResult& slice : slices_) {
    slice.response_hist = stats::Histogram(unit * 8192.0, 8192);
    slice.op_wait_hist = stats::Histogram(unit * 1024.0, 4096);
    slice.xcommit_span_hist = stats::Histogram(unit * 1024.0, 4096);
  }
  // Generator seeds are drawn in client order from the run seed — the same
  // seeder discipline as EngineBase, so client c's draw stream does not
  // depend on the shard count.
  clients_.resize(static_cast<size_t>(config.num_clients));
  rng::Rng seeder(config.seed);
  for (int32_t i = 0; i < config.num_clients; ++i) {
    Client& client = clients_[static_cast<size_t>(i)];
    client.index = i;
    client.generator = std::make_unique<workload::WorkloadGenerator>(
        config.workload, seeder.Next64());
    client.wal = std::make_unique<db::WriteAheadLog>(config.wal_force_delay);
  }
  if (config.obs_trace) {
    std::vector<obs::Tracer*> lps;
    tracers_.reserve(static_cast<size_t>(num_shards()));
    for (int32_t i = 0; i < num_shards(); ++i) {
      auto tracer = std::make_unique<obs::Tracer>();
      tracer->AttachClock([this, i] { return psim_->lp(i).Now(); });
      tracer->Enable();
      lps.push_back(tracer.get());
      tracers_.push_back(std::move(tracer));
    }
    merger_ = std::make_unique<obs::TraceMerger>(std::move(lps));
    if (!config.trace_stream_path.empty()) {
      trace_sink_ = std::make_unique<obs::StreamSink>(
          config.trace_stream_path, config.trace_flush_bytes);
      GTPL_CHECK(trace_sink_->ok())
          << "cannot open trace stream " << config.trace_stream_path;
      merger_->SetSink(trace_sink_.get());
    }
  }
  if (config.metrics_interval > 0) {
    next_sample_ = config.metrics_interval;
    // Per-shard protocol gauges first (shard-major, fixed series order),
    // then the kernel's window/stall telemetry as global series — the
    // registration order is the file's series order.
    for (int32_t s = 0; s < num_shards(); ++s) {
      metrics_.Register("active_txns", s, [this, s] {
        int64_t active = 0;
        for (const Client& client : clients_) {
          if (LpOfClient(client.index) != s) continue;
          if (client.current != nullptr && !client.current->finished) {
            ++active;
          }
        }
        return active;
      });
      metrics_.Register("commits_total", s, [this, s] {
        return slices_[static_cast<size_t>(s)].total_commits;
      });
      metrics_.Register("aborts_total", s, [this, s] {
        return slices_[static_cast<size_t>(s)].total_aborts;
      });
      metrics_.Register("locks_held", s, [this, s] {
        return shards_[static_cast<size_t>(s)].locks->TotalHeld();
      });
      metrics_.Register("lock_waiters", s, [this, s] {
        return shards_[static_cast<size_t>(s)].locks->TotalWaiters();
      });
    }
    metrics_.Register("sync_windows", -1, [this] {
      return static_cast<int64_t>(psim_->running_stats().windows);
    });
    metrics_.Register("sync_stalls", -1, [this] {
      return static_cast<int64_t>(psim_->running_stats().stalls);
    });
  }
}

void ParallelEngine::SampleMetricsBelow(SimTime horizon) {
  if (config_.metrics_interval <= 0) return;
  while (next_sample_ < horizon) {
    metrics_.SampleAll(next_sample_);
    next_sample_ += config_.metrics_interval;
  }
}

void ParallelEngine::SendMsg(int32_t src_lp, int32_t dst_lp, SiteId from,
                             SiteId to, uint64_t payload,
                             std::function<void()> action) {
  net::NetworkStats& n = slices_[static_cast<size_t>(src_lp)].network;
  ++n.messages;
  n.payload_units += payload;
  const bool from_server = IsServerSite(from);
  const bool to_server = IsServerSite(to);
  if (from_server && to_server) {
    ++n.server_to_server;
  } else if (from_server) {
    ++n.server_to_client;
  } else if (to_server) {
    ++n.client_to_server;
  } else {
    ++n.client_to_client;
  }
  psim_->lp(src_lp).SendTo(dst_lp, latency_, std::move(action));
}

// ---------------------------------------------------------------------------
// Client lifecycle (runs on the client's LP)

void ParallelEngine::BeginTxn(int32_t client_index) {
  Client& client = clients_[static_cast<size_t>(client_index)];
  auto run = std::make_unique<PTxn>();
  // Striped ids: globally unique, deterministic at any thread/shard
  // placement, and monotone per client — a valid wait-die age order.
  run->id = client.started_txns * config_.num_clients + client_index + 1;
  ++client.started_txns;
  run->client_index = client_index;
  run->spec = client.generator->NextTxn();
  run->spec.id = run->id;
  const SimTime now = psim_->lp(LpOfClient(client_index)).Now();
  run->start_time = now;
  run->request_time = now;
  client.current = std::move(run);
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnBegin;
    event.txn = client.current->id;
    event.site = client.current->site();
    event.payload = static_cast<int64_t>(client.current->spec.ops.size());
    TracerOf(LpOfClient(client_index)).Emit(std::move(event));
  }
  IssueRequest(client);
}

void ParallelEngine::IssueRequest(Client& client) {
  PTxn& run = *client.current;
  const Operation op = run.op();
  const int32_t shard = ShardOf(op.item);
  const int32_t src_lp = LpOfClient(client.index);
  // The request carries everything the shard needs for a requester-victim
  // abort decision (age metrics) — the shard never reads client state.
  SendMsg(src_lp, shard, run.site(), ShardSiteOf(shard), net::kControlPayload,
          [this, shard, txn = run.id, client_index = client.index,
           item = op.item, mode = op.mode, txn_start = run.start_time,
           held_ops = static_cast<int64_t>(run.records.size())] {
            ServerOnRequest(shard, txn, client_index, item, mode, txn_start,
                            held_ops);
          });
}

void ParallelEngine::ClientOnGrant(int32_t client_index, TxnId txn,
                                   ItemId item, Version version) {
  Client& client = clients_[static_cast<size_t>(client_index)];
  PTxn* run = client.current.get();
  if (run == nullptr || run->id != txn || run->finished) return;
  GTPL_CHECK_EQ(run->op().item, item);
  sim::ShardSim& lp = psim_->lp(LpOfClient(client_index));
  const SimTime wait = lp.Now() - run->request_time;
  RunResult& slice = slices_[static_cast<size_t>(LpOfClient(client_index))];
  if (measuring_) {
    slice.op_wait.Add(static_cast<double>(wait));
    slice.op_wait_hist.Add(static_cast<double>(wait));
  }
  // Uniform pure propagation: the request and grant flights each took
  // exactly one latency; the residual is server-side lock wait.
  const SimTime op_lock_wait = std::max<SimTime>(0, wait - 2 * latency_);
  run->span.lock_wait += op_lock_wait;
  run->span.propagation += 2 * latency_;
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockGrant;
    event.txn = run->id;
    event.site = run->site();
    event.item = item;
    event.mode = static_cast<int32_t>(run->op().mode);
    event.d0 = op_lock_wait;
    event.d1 = wait;
    TracerOf(LpOfClient(client_index)).Emit(std::move(event));
  }
  run->pending_version = version;
  const SimTime think = client.generator->SampleThink();
  run->span.execution += think;
  lp.Schedule(think, [this, client_index, txn] { FinishOp(client_index, txn); });
}

void ParallelEngine::FinishOp(int32_t client_index, TxnId txn) {
  Client& client = clients_[static_cast<size_t>(client_index)];
  PTxn* run = client.current.get();
  if (run == nullptr || run->id != txn || run->finished) return;
  const Operation& op = run->op();
  OpRecord record;
  record.item = op.item;
  record.mode = op.mode;
  record.version_read = run->pending_version;
  record.version_written =
      op.mode == LockMode::kExclusive ? run->pending_version + 1 : 0;
  run->records.push_back(record);
  if (op.mode == LockMode::kExclusive) {
    client.wal->Append(db::LogRecordKind::kUpdate, run->id, op.item,
                       record.version_written);
  }
  if (run->LastOp()) {
    run->commit_start = psim_->lp(LpOfClient(client_index)).Now();
    StartCommit(client);
    return;
  }
  ++run->current_op;
  run->request_time = psim_->lp(LpOfClient(client_index)).Now();
  IssueRequest(client);
}

void ParallelEngine::StartCommit(Client& client) {
  PTxn& run = *client.current;
  std::vector<bool> touched(static_cast<size_t>(num_shards()), false);
  for (const OpRecord& record : run.records) {
    touched[static_cast<size_t>(ShardOf(record.item))] = true;
  }
  int32_t participants = 0;
  for (const bool t : touched) participants += t ? 1 : 0;
  if (participants <= 1) {
    // Single-shard commit: the ordinary local commit point, then one
    // release message (commit_flights stays -1, like the serial engines).
    StartLocalCommit(client);
    return;
  }
  // Classic client-coordinated 2PC: force the coordinator's prepare
  // record, fan prepares out, collect votes, then commit locally — the
  // decision rides the release messages (2 blocking flights).
  run.participants = participants;
  run.votes_pending = participants;
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kPrepare, run.id,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  const int32_t src_lp = LpOfClient(client.index);
  auto send_prepares = [this, client_index = client.index, txn = run.id,
                        touched = std::move(touched)] {
    Client& cl = clients_[static_cast<size_t>(client_index)];
    PTxn* current = cl.current.get();
    if (current == nullptr || current->id != txn || current->finished) return;
    const int32_t lp = LpOfClient(client_index);
    current->prepare_sent = psim_->lp(lp).Now();
    for (int32_t shard = 0; shard < num_shards(); ++shard) {
      if (!touched[static_cast<size_t>(shard)]) continue;
      SendMsg(lp, shard, current->site(), ShardSiteOf(shard),
              net::kControlPayload, [this, shard, txn, client_index] {
                ServerOnPrepare(shard, txn, client_index);
              });
    }
  };
  if (force_delay > 0) {
    psim_->lp(src_lp).Schedule(force_delay, std::move(send_prepares));
  } else {
    send_prepares();
  }
}

void ParallelEngine::StartLocalCommit(Client& client) {
  PTxn& run = *client.current;
  const int64_t lsn = client.wal->Append(db::LogRecordKind::kCommit, run.id,
                                         kInvalidItem, 0);
  const SimTime force_delay = client.wal->Force(lsn);
  if (force_delay > 0) {
    psim_->lp(LpOfClient(client.index))
        .Schedule(force_delay, [this, client_index = client.index,
                                txn = run.id] {
          Client& cl = clients_[static_cast<size_t>(client_index)];
          PTxn* current = cl.current.get();
          if (current == nullptr || current->id != txn || current->finished) {
            return;
          }
          FinalizeCommit(cl);
        });
    return;
  }
  FinalizeCommit(client);
}

void ParallelEngine::ServerOnPrepare(int32_t shard, TxnId txn,
                                     int32_t client_index) {
  // A committing transaction has no blocked request, so it can never be an
  // abort victim (requester-victim subset): the vote is always yes. The
  // participant forces its own prepare record before voting.
  Shard& state = shards_[static_cast<size_t>(shard)];
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kPrepare;
    event.txn = txn;
    event.shard = shard;
    event.site = ShardSiteOf(shard);
    TracerOf(shard).Emit(std::move(event));
  }
  const int64_t lsn =
      state.wal->Append(db::LogRecordKind::kPrepare, txn, kInvalidItem, 0);
  state.wal->Force(lsn);
  SendMsg(shard, LpOfClient(client_index), ShardSiteOf(shard),
          client_index + 1, net::kControlPayload, [this, client_index, txn,
                                                  shard] {
            ClientOnVote(client_index, txn, shard);
          });
}

void ParallelEngine::ClientOnVote(int32_t client_index, TxnId txn,
                                  int32_t voting_shard) {
  Client& client = clients_[static_cast<size_t>(client_index)];
  PTxn* run = client.current.get();
  if (run == nullptr || run->id != txn || run->finished) return;
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kVote;
    event.txn = txn;
    event.shard = voting_shard;
    event.flag = true;  // requester-victim subset: votes are always yes
    TracerOf(LpOfClient(client_index)).Emit(std::move(event));
  }
  GTPL_CHECK_GT(run->votes_pending, 0);
  if (--run->votes_pending > 0) return;
  // All votes home. Under uniform latency the last prepare landed exactly
  // one latency after the fan-out; the rest of the round is the vote leg.
  const SimTime now = psim_->lp(LpOfClient(client_index)).Now();
  run->span.commit_prepare = latency_;
  run->span.commit_vote = now - run->prepare_sent - latency_;
  GTPL_CHECK_GE(run->span.commit_vote, 0);
  run->commit_flights = 2;
  RunResult& slice = slices_[static_cast<size_t>(LpOfClient(client_index))];
  if (measuring_) {
    ++slice.cross_server_commits;
    slice.commit_participants.Add(static_cast<double>(run->participants));
  }
  StartLocalCommit(client);
}

void ParallelEngine::FinalizeCommit(Client& client) {
  PTxn& run = *client.current;
  const int32_t lp_index = LpOfClient(client.index);
  const SimTime now = psim_->lp(lp_index).Now();
  run.finished = true;
  run.span.commit = now - run.commit_start;
  RunResult& slice = slices_[static_cast<size_t>(lp_index)];
  ++slice.total_commits;
  const bool measured = measuring_;
  if (measured) {
    ++slice.commits;
    const double response = static_cast<double>(now - run.start_time);
    slice.response.Add(response);
    slice.response_hist.Add(response);
    slice.span_lock_wait.Add(static_cast<double>(run.span.lock_wait));
    slice.span_propagation.Add(static_cast<double>(run.span.propagation));
    slice.span_queueing.Add(static_cast<double>(run.span.queueing));
    slice.span_execution.Add(static_cast<double>(run.span.execution));
    slice.span_commit.Add(static_cast<double>(run.span.commit));
    slice.span_commit_prepare.Add(
        static_cast<double>(run.span.commit_prepare));
    slice.span_commit_vote.Add(static_cast<double>(run.span.commit_vote));
    slice.span_lease_revoke.Add(0.0);
    if (run.commit_flights >= 0) {
      slice.commit_flights.Add(static_cast<double>(run.commit_flights));
      slice.xcommit_span_hist.Add(static_cast<double>(run.span.commit));
    }
  }
  if (config_.record_history) {
    // Warmup commits participate in version chains too (same rationale as
    // the serial engine): record both phases.
    CommittedTxn committed;
    committed.id = run.id;
    committed.client = run.site();
    committed.start_time = run.start_time;
    committed.commit_time = now;
    committed.span = run.span;
    committed.ops = run.records;
    committed.commit_flights = run.commit_flights;
    slice.history.push_back(std::move(committed));
  }
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnCommit;
    event.txn = run.id;
    event.site = run.site();
    event.flag = measured;
    event.payload = now - run.start_time;  // response time
    event.d0 = run.span.lock_wait;
    event.d1 = run.span.propagation;
    event.d2 = run.span.queueing;
    event.d3 = run.span.execution;
    event.d4 = run.span.commit;
    TracerOf(lp_index).Emit(std::move(event));
  }
  SendReleases(client);
  // Client-log GC at commit finalize (documented simplification of the
  // serial engines' server-acknowledged truncation): the commit's installs
  // are on their way and will be permanent before any dependent read.
  client.wal->Force(client.wal->next_lsn() - 1);
  client.wal->TruncateThrough(client.wal->durable_lsn());
  ScheduleNextTxn(client);
}

void ParallelEngine::SendReleases(Client& client) {
  PTxn& run = *client.current;
  // One release per participant shard carrying that shard's installs —
  // phase two of a cross-shard commit (the decision rides along), or the
  // single release message of a single-shard commit.
  std::vector<std::vector<Update>> updates_by(
      static_cast<size_t>(num_shards()));
  std::vector<bool> touched(static_cast<size_t>(num_shards()), false);
  for (const OpRecord& record : run.records) {
    const size_t shard = static_cast<size_t>(ShardOf(record.item));
    touched[shard] = true;
    if (record.mode == LockMode::kExclusive) {
      updates_by[shard].push_back(
          Update{record.item, record.version_written});
    }
  }
  const int32_t src_lp = LpOfClient(client.index);
  for (int32_t shard = 0; shard < num_shards(); ++shard) {
    if (!touched[static_cast<size_t>(shard)]) continue;
    std::vector<Update>& updates = updates_by[static_cast<size_t>(shard)];
    const uint64_t payload =
        net::kControlPayload + net::kDataPayload * updates.size();
    SendMsg(src_lp, shard, run.site(), ShardSiteOf(shard), payload,
            [this, shard, txn = run.id, updates = std::move(updates)] {
              ServerOnRelease(shard, txn, updates);
            });
  }
}

void ParallelEngine::ScheduleNextTxn(Client& client) {
  const SimTime idle = client.generator->SampleIdle();
  psim_->lp(LpOfClient(client.index))
      .Schedule(idle,
                [this, index = client.index] { BeginTxn(index); });
}

// ---------------------------------------------------------------------------
// Shard handlers (run on the shard's LP)

void ParallelEngine::ServerOnRequest(int32_t shard, TxnId txn,
                                     int32_t client_index, ItemId item,
                                     LockMode mode, SimTime txn_start,
                                     int64_t held_ops) {
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRequest;
    event.txn = txn;
    event.site = client_index + 1;
    event.item = item;
    event.mode = static_cast<int32_t>(mode);
    event.shard = shard;
    TracerOf(shard).Emit(std::move(event));
  }
  Shard& state = shards_[static_cast<size_t>(shard)];
  const db::LockResult outcome = state.locks->Request(txn, item, mode);
  if (outcome == db::LockResult::kGranted) {
    SendGrant(shard, txn, item);
    return;
  }
  // Blocked. Wait-die: die iff any blocker is older (smaller id — the
  // striped ids are monotone per client, a valid age order); the blocker
  // set includes conflicting earlier waiters, so granted wait edges always
  // point old -> young and no cross-shard cycle can form. No-wait: die
  // unconditionally.
  bool die = true;
  if (wait_die_) {
    die = false;
    for (TxnId blocker : state.locks->Blockers(txn, item)) {
      if (blocker < txn) {
        die = true;
        break;
      }
    }
  }
  if (!die) return;  // parked in the FIFO queue; a release will grant it
  // Requester-victim abort, decided at this shard: count it here (the
  // request carried the age data), drop the victim's queue entry and any
  // locks it holds on THIS shard, and send the charged notice; the client
  // cleans up its locks on other shards with explicit release messages.
  RunResult& slice = slices_[static_cast<size_t>(shard)];
  ++slice.total_aborts;
  if (measuring_) {
    ++slice.aborts;
    slice.abort_age.Add(
        static_cast<double>(psim_->lp(shard).Now() - txn_start));
    slice.abort_held_items.Add(static_cast<double>(held_ops));
  }
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kTxnAbort;
    event.txn = txn;
    event.site = client_index + 1;
    event.peer = ShardSiteOf(shard);
    event.d0 = psim_->lp(shard).Now() - txn_start;  // age at the decision
    event.payload = held_ops;
    TracerOf(shard).Emit(std::move(event));
  }
  state.locks->ReleaseAll(txn,
                          [this, shard](TxnId granted, ItemId gitem,
                                        LockMode gmode) {
                            (void)gmode;
                            SendGrant(shard, granted, gitem);
                          });
  SendMsg(shard, LpOfClient(client_index), ShardSiteOf(shard),
          client_index + 1, net::kControlPayload,
          [this, client_index, txn, shard] {
            ClientOnAbortNotice(client_index, txn, shard);
          });
}

void ParallelEngine::SendGrant(int32_t shard, TxnId txn, ItemId item) {
  // The striped id encodes the owner: client = (txn - 1) % num_clients.
  const int32_t client_index =
      static_cast<int32_t>((txn - 1) % config_.num_clients);
  const Version version =
      shards_[static_cast<size_t>(shard)].versions[static_cast<size_t>(item)];
  SendMsg(shard, LpOfClient(client_index), ShardSiteOf(shard),
          client_index + 1, net::kControlPayload + net::kDataPayload,
          [this, client_index, txn, item, version] {
            ClientOnGrant(client_index, txn, item, version);
          });
}

void ParallelEngine::ServerOnRelease(int32_t shard, TxnId txn,
                                     std::vector<Update> updates) {
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ShardSiteOf(shard);
    event.shard = shard;
    event.payload = static_cast<int64_t>(updates.size());
    TracerOf(shard).Emit(std::move(event));
  }
  Shard& state = shards_[static_cast<size_t>(shard)];
  for (const Update& update : updates) {
    Version& installed = state.versions[static_cast<size_t>(update.item)];
    GTPL_CHECK_GE(update.version, installed) << "stale install";
    installed = update.version;
    const int64_t lsn = state.wal->Append(db::LogRecordKind::kInstall, txn,
                                          update.item, update.version);
    state.wal->Force(lsn);
  }
  // Continuous server checkpointing (as in the serial engines): installed
  // versions are already in the store, so the forced prefix truncates.
  if (state.wal->next_lsn() > 1) {
    state.wal->Force(state.wal->next_lsn() - 1);
    state.wal->TruncateThrough(state.wal->durable_lsn());
  }
  // Installs land before promotions, so a promoted reader sees the new
  // version (the strict-2PL reads-from edge the serializability test pins).
  state.locks->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        (void)mode;
        SendGrant(shard, granted, item);
      });
}

void ParallelEngine::ServerOnAbortRelease(int32_t shard, TxnId txn) {
  if (tracing()) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kLockRelease;
    event.txn = txn;
    event.site = ShardSiteOf(shard);
    event.shard = shard;
    event.label = "abort";
    TracerOf(shard).Emit(std::move(event));
  }
  shards_[static_cast<size_t>(shard)].locks->ReleaseAll(
      txn, [this, shard](TxnId granted, ItemId item, LockMode mode) {
        (void)mode;
        SendGrant(shard, granted, item);
      });
}

void ParallelEngine::ClientOnAbortNotice(int32_t client_index, TxnId txn,
                                         int32_t deciding_shard) {
  Client& client = clients_[static_cast<size_t>(client_index)];
  PTxn* run = client.current.get();
  if (run == nullptr || run->id != txn || run->finished) return;
  run->finished = true;
  client.wal->Append(db::LogRecordKind::kAbort, txn, kInvalidItem, 0);
  // Release the victim's locks on every other shard it touched (the
  // deciding shard already dropped them at decision time).
  std::vector<bool> touched(static_cast<size_t>(num_shards()), false);
  for (const OpRecord& record : run->records) {
    touched[static_cast<size_t>(ShardOf(record.item))] = true;
  }
  const int32_t src_lp = LpOfClient(client_index);
  for (int32_t shard = 0; shard < num_shards(); ++shard) {
    if (!touched[static_cast<size_t>(shard)] || shard == deciding_shard) {
      continue;
    }
    SendMsg(src_lp, shard, run->site(), ShardSiteOf(shard),
            net::kControlPayload,
            [this, shard, txn] { ServerOnAbortRelease(shard, txn); });
  }
  ScheduleNextTxn(client);
}

// ---------------------------------------------------------------------------
// Run loop

RunResult ParallelEngine::Run() {
  measuring_ = config_.warmup_txns == 0;
  // Initial idle draws happen in client order on the main thread — the
  // same draw order as the serial engines' setup loop.
  for (Client& client : clients_) {
    const SimTime idle = client.generator->SampleIdle();
    psim_->lp(LpOfClient(client.index))
        .Schedule(idle,
                  [this, index = client.index] { BeginTxn(index); });
  }
  // Warmup crossing and the stop target are evaluated at window barriers
  // on global commit-count snapshots — deterministic at any thread count
  // (the run overshoots the serial per-commit stop by at most one window).
  psim_->SetBarrierHook([this](SimTime horizon) {
    int64_t total = 0;
    int64_t measured = 0;
    for (const RunResult& slice : slices_) {
      total += slice.total_commits;
      measured += slice.commits;
    }
    if (!measuring_ && total >= config_.warmup_txns) measuring_ = true;
    if (measured >= config_.measured_txns) psim_->lp(0).Stop();
    // The barrier guarantees no future event can be stamped below the
    // horizon, so the trace prefix and the metric crossings below it are
    // final — drain both here (single-threaded, all LPs quiescent).
    if (merger_ != nullptr) merger_->Flush(horizon);
    SampleMetricsBelow(horizon);
  });
  const sim::ParallelRunStats stats =
      psim_->Run(config_.max_sim_time == 0 ? -1 : config_.max_sim_time);

  // Merge the per-LP slices in LP order (fixed, thread-count independent).
  RunResult result;
  const double unit =
      static_cast<double>(std::max<SimTime>(config_.latency, 8));
  result.response_hist = stats::Histogram(unit * 8192.0, 8192);
  result.op_wait_hist = stats::Histogram(unit * 1024.0, 4096);
  result.xcommit_span_hist = stats::Histogram(unit * 1024.0, 4096);
  int64_t measured_total = 0;
  for (RunResult& slice : slices_) {
    result.response.Merge(slice.response);
    result.op_wait.Merge(slice.op_wait);
    result.abort_age.Merge(slice.abort_age);
    result.abort_held_items.Merge(slice.abort_held_items);
    result.span_lock_wait.Merge(slice.span_lock_wait);
    result.span_propagation.Merge(slice.span_propagation);
    result.span_queueing.Merge(slice.span_queueing);
    result.span_execution.Merge(slice.span_execution);
    result.span_commit.Merge(slice.span_commit);
    result.span_commit_prepare.Merge(slice.span_commit_prepare);
    result.span_commit_vote.Merge(slice.span_commit_vote);
    result.span_lease_revoke.Merge(slice.span_lease_revoke);
    result.commit_flights.Merge(slice.commit_flights);
    result.commit_participants.Merge(slice.commit_participants);
    result.response_hist.Merge(slice.response_hist);
    result.op_wait_hist.Merge(slice.op_wait_hist);
    result.xcommit_span_hist.Merge(slice.xcommit_span_hist);
    result.commits += slice.commits;
    result.aborts += slice.aborts;
    result.total_commits += slice.total_commits;
    result.total_aborts += slice.total_aborts;
    result.cross_server_commits += slice.cross_server_commits;
    net::NetworkStats& n = result.network;
    n.messages += slice.network.messages;
    n.server_to_client += slice.network.server_to_client;
    n.client_to_server += slice.network.client_to_server;
    n.client_to_client += slice.network.client_to_client;
    n.server_to_server += slice.network.server_to_server;
    n.payload_units += slice.network.payload_units;
    for (CommittedTxn& committed : slice.history) {
      result.history.push_back(std::move(committed));
    }
    measured_total += slice.commits;
  }
  std::sort(result.history.begin(), result.history.end(),
            [](const CommittedTxn& a, const CommittedTxn& b) {
              if (a.commit_time != b.commit_time) {
                return a.commit_time < b.commit_time;
              }
              return a.id < b.id;
            });
  result.timed_out = measured_total < config_.measured_txns;
  result.sync_windows = stats.windows;
  result.sync_stalls = stats.stalls;
  result.shard_events.reserve(static_cast<size_t>(num_shards()));
  SimTime end_time = 0;
  for (int32_t i = 0; i < num_shards(); ++i) {
    const uint64_t events = psim_->lp(i).events_executed();
    result.shard_events.push_back(events);
    result.events += events;
    end_time = std::max(end_time, psim_->lp(i).Now());
  }
  result.end_time = end_time;
  for (const Shard& shard : shards_) {
    result.wal_appends += shard.wal->appends();
    result.wal_forces += shard.wal->forces();
    result.wal_retained += static_cast<int64_t>(shard.wal->size());
  }
  for (const Client& client : clients_) {
    result.wal_appends += client.wal->appends();
    result.wal_forces += client.wal->forces();
    result.wal_retained += static_cast<int64_t>(client.wal->size());
  }
  if (merger_ != nullptr) {
    merger_->FlushAll();
    if (trace_sink_ != nullptr) {
      trace_sink_->Flush();
      result.trace_stream_bytes = trace_sink_->bytes_written();
      result.trace_peak_buffer = trace_sink_->peak_buffer_bytes();
    } else {
      result.obs_trace = merger_->Take();
    }
  }
  result.metrics = metrics_.TakeRows();
  result.metric_names = metrics_.TakeNames();
  return result;
}

}  // namespace

RunResult RunParallelSimulation(const SimConfig& config) {
  // Re-validate against the sim_threads > 1 subset even when called
  // directly with sim_threads == 1 (the bench's scaling baseline): the
  // engine itself needs the decomposable subset, not just the threads.
  SimConfig probe = config;
  probe.sim_threads = std::max<int32_t>(config.sim_threads, 2);
  GTPL_CHECK(probe.Validate().ok()) << probe.Validate().ToString();
  ParallelEngine engine(config);
  return engine.Run();
}

}  // namespace gtpl::proto
