#ifndef GTPL_PROTOCOLS_METRICS_H_
#define GTPL_PROTOCOLS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocols/invariants.h"
#include "stats/histogram.h"
#include "stats/welford.h"

namespace gtpl::proto {

/// One executed operation with the data versions it observed/produced.
struct OpRecord {
  ItemId item = kInvalidItem;
  LockMode mode = LockMode::kShared;
  Version version_read = 0;
  Version version_written = 0;  // 0 for reads
};

/// Decomposition of one committed transaction's response time into
/// lifecycle phases (DESIGN.md §11). The phases are exhaustive and
/// disjoint: lock_wait + propagation + queueing + execution + commit equals
/// commit_time - start_time exactly (span_accounting_test pins this for
/// every protocol, sharded and unsharded, with and without the link model).
struct TxnSpan {
  /// Server-side waiting: request arrival -> grant departure (residual of
  /// each operation's round after subtracting the network components).
  SimTime lock_wait = 0;
  /// Pure propagation of the request and grant/data flights.
  SimTime propagation = 0;
  /// Transmission delay + NIC queueing of those flights (0 under the
  /// paper's pure-propagation model).
  SimTime queueing = 0;
  /// Client think time after each granted operation.
  SimTime execution = 0;
  /// Commit phase: WAL force, 2PC prepare + vote rounds, certification.
  SimTime commit = 0;

  /// Per-round decomposition of `commit` for cross-server 2PC commits
  /// (both 0 otherwise, and 0 when a variant removed the round). The
  /// prepare round runs fan-out to the last prepare arrival at a
  /// participant (under kCoord it includes the handoff leg); the vote
  /// round runs from there until the coordinator tallied every vote. What
  /// remains of `commit` is CommitResidual(): WAL forces and, under
  /// kCoord, the ack leg back to the client. Always:
  ///   0 <= commit_prepare, 0 <= commit_vote,
  ///   commit_prepare + commit_vote <= commit
  /// (span_accounting_test pins this for every engine x commit path).
  SimTime commit_prepare = 0;
  SimTime commit_vote = 0;

  /// Sub-span of `lock_wait`: the part of this transaction's server-side
  /// waiting spent queued behind lease revocations (sticky leases only;
  /// DESIGN.md §14). Always 0 <= lease_revoke_wait <= lock_wait, and it
  /// does not enter Total() — revoke latency is an attribution of the
  /// lock-wait phase, not a sixth phase.
  SimTime lease_revoke_wait = 0;

  SimTime CommitResidual() const {
    return commit - commit_prepare - commit_vote;
  }

  SimTime Total() const {
    return lock_wait + propagation + queueing + execution + commit;
  }
};

/// A committed transaction, for post-hoc serializability verification.
struct CommittedTxn {
  TxnId id = kInvalidTxn;
  SiteId client = 0;
  SimTime start_time = 0;
  SimTime commit_time = 0;
  TxnSpan span;
  std::vector<OpRecord> ops;
  /// Blocking one-way WAN flights the commit phase paid: -1 for
  /// single-shard commits (no 2PC), else the per-variant count the
  /// round-count battery asserts against ExpectedCommitFlights.
  int32_t commit_flights = -1;
};

/// Everything a single simulation run produces.
struct RunResult {
  /// Response time over committed transactions in the measured phase.
  stats::Welford response;
  /// Per-operation wait: request issued -> data/grant available (all
  /// transactions, measured phase).
  stats::Welford op_wait;
  /// Age (time since start) and completed ops of transactions at the moment
  /// the server decided to abort them (measured phase) - wasted occupancy.
  stats::Welford abort_age;
  stats::Welford abort_held_items;
  /// Messages each committed transaction's lifetime overlapped is not
  /// meaningful per-txn; we track total network traffic instead.
  net::NetworkStats network;
  /// Busy fraction of the busiest NIC over the run (finite-bandwidth link
  /// model only; 0 under pure propagation). Can exceed 1 when overloaded.
  double max_link_utilization = 0.0;
  /// 99th percentile of per-message total queueing delay (sender uplink +
  /// receiver downlink waits; link model with nic_queue only).
  double queue_delay_p99 = 0.0;

  /// Latency-breakdown spans over committed transactions in the measured
  /// phase (each Welford averages one TxnSpan phase; the five means sum to
  /// response.mean()).
  stats::Welford span_lock_wait;
  stats::Welford span_propagation;
  stats::Welford span_queueing;
  stats::Welford span_execution;
  stats::Welford span_commit;
  /// Per-round commit sub-spans (TxnSpan::commit_prepare / commit_vote),
  /// over the same committed transactions; nonzero only for cross-server
  /// 2PC commits, so the attribution tables can show exactly which round
  /// each commit-path variant removes.
  stats::Welford span_commit_prepare;
  stats::Welford span_commit_vote;
  /// Lease revoke-wait sub-span of lock_wait (TxnSpan::lease_revoke_wait),
  /// over the same committed transactions; nonzero only under sticky
  /// leases, attributing exactly how much of the lock-wait phase was spent
  /// waiting for callback revocations to drain.
  stats::Welford span_lease_revoke;

  /// Full distributions behind the Welford means: committed-transaction
  /// response times and per-operation waits (measured phase). Sized by the
  /// engine from the configured latency.
  stats::Histogram response_hist;
  stats::Histogram op_wait_hist;
  /// Commit-phase span distribution of *cross-server* commits only
  /// (measured phase) — the p50 the commit bench attributes per variant.
  stats::Histogram xcommit_span_hist;

  int64_t commits = 0;         // measured phase
  int64_t aborts = 0;          // measured phase
  int64_t total_commits = 0;   // including warmup
  int64_t total_aborts = 0;    // including warmup

  uint64_t events = 0;
  SimTime end_time = 0;
  bool timed_out = false;

  // Parallel-engine telemetry (sim_threads > 1 only; empty/0 under the
  // serial engine, DESIGN.md §15). `shard_events` is the per-LP event
  // count (its imbalance bounds the speedup); `sync_windows` counts
  // conservative synchronization windows, `sync_stalls` the (LP, window)
  // pairs where an LP had nothing below the horizon and only waited at
  // the barrier.
  std::vector<uint64_t> shard_events;
  uint64_t sync_windows = 0;
  uint64_t sync_stalls = 0;

  // g-2PL specifics (0 for other protocols).
  int64_t windows_dispatched = 0;
  double mean_forward_list_length = 0.0;
  int64_t read_group_expansions = 0;

  // Adaptive collection-window controller (g-2PL with
  // g2pl.adaptive.enabled; all 0 otherwise). `mean_effective_cap` averages
  // the cap consulted at every window dispatch; `final_effective_cap`
  // averages the end-of-run cap over items that dispatched at least one
  // window; the counters tally caps that actually moved.
  double mean_effective_cap = 0.0;
  double final_effective_cap = 0.0;
  int64_t cap_increases = 0;
  int64_t cap_decreases = 0;

  // Sharding specifics (0 / empty unless num_servers > 1). A commit is
  // cross-server when the transaction touched items on more than one
  // server and therefore ran the two-phase commit path.
  int64_t cross_server_commits = 0;  // measured phase
  /// Participant servers per cross-server commit (measured phase).
  stats::Welford commit_participants;

  // Commit-path telemetry (protocols/commit.h; all 0 under kClassic /
  // unsharded runs, measured phase).
  /// Blocking one-way WAN flights per cross-server commit.
  stats::Welford commit_flights;
  /// Cross-server commits that took the single-write-shard fast path.
  int64_t fastpath_commits = 0;
  /// Speculative prepares sent ahead of the commit point (kEarly).
  int64_t early_prepares = 0;
  /// Cross-server commits coordinated by a server instead of the client
  /// (kCoord chose the write-heaviest participant's site).
  int64_t coord_remote_commits = 0;
  /// Cross-server commits that fell back to the classic path because the
  /// engine runs its own certification commit (OCC).
  int64_t commit_path_fallbacks = 0;

  // Sticky-lease telemetry (lease/lease.h; all 0 under --lease=none).
  // Counted over the WHOLE run, not just the measured phase, so they match
  // the trace event counts exactly (the lease tests assert this). A lease
  // hit is a lock acquisition served entirely from the client's LeaseCache
  // (zero network flights); revokes and releases count the callback
  // messages the server sent / applied.
  int64_t lease_hits = 0;
  int64_t lease_revokes = 0;
  int64_t lease_releases = 0;

  // Recovery substrate counters. `wal_retained` is the number of log
  // records still held at end of run; garbage collection (triggered when
  // updates become permanent at the server) keeps it far below appends.
  int64_t wal_appends = 0;
  int64_t wal_forces = 0;
  int64_t wal_retained = 0;

  /// Committed-transaction history (only when record_history was set).
  std::vector<CommittedTxn> history;

  /// Per-message network trace (only when trace was set).
  std::vector<net::TraceRecord> trace;

  /// Protocol-invariant event stream (only when record_protocol_events was
  /// set); consumed by the checkers in protocols/invariants.h.
  std::vector<ProtocolEvent> protocol_events;

  /// Structured observability trace (only when obs_trace was set); see
  /// obs/trace.h and DESIGN.md §11. Deterministic: byte-identical across
  /// reruns of the same seed at any worker count. Empty when the trace was
  /// streamed to a file instead (trace_stream_path, DESIGN.md §16).
  std::vector<obs::TraceEvent> obs_trace;

  /// Streaming-sink telemetry (trace_stream_path only; 0 otherwise): bytes
  /// written and the peak chunk-buffer occupancy — the bounded-memory
  /// acceptance check asserts peak stays under the flush watermark.
  int64_t trace_stream_bytes = 0;
  int64_t trace_peak_buffer = 0;

  /// Time-series metric samples (only when metrics_interval > 0); see
  /// obs/metrics.h and DESIGN.md §16. `metric_names` maps MetricRow::series
  /// to series names. Deterministic: the CSV export is byte-identical
  /// across reruns of the same seed at any thread count.
  std::vector<obs::MetricRow> metrics;
  std::vector<std::string> metric_names;

  /// Aborted / (aborted + committed) in the measured phase, in percent —
  /// the quantity plotted in the paper's Figures 8-15.
  double AbortPercent() const;

  /// Committed transactions per 1000 time units (throughput).
  double Throughput() const;
};

/// Builds the serialization graph of `history` (version-order, reads-from
/// and read-before-overwrite edges) and returns true iff it is acyclic —
/// i.e., the execution was (view-)serializable. Used by property tests for
/// every protocol.
bool HistoryIsSerializable(const std::vector<CommittedTxn>& history,
                           std::string* explanation = nullptr);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_METRICS_H_
