#ifndef GTPL_PROTOCOLS_G2PL_H_
#define GTPL_PROTOCOLS_G2PL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/forward_list.h"
#include "core/window_manager.h"
#include "protocols/engine.h"

namespace gtpl::proto {

/// Group two-phase locking (paper §3): the server collects requests into
/// forward lists; data items migrate client-to-client along the list, fusing
/// each lock release with the next grant; deadlocks are avoided by keeping
/// the transaction precedence graph acyclic; MR1W lets the writer following
/// a read group run concurrently with its readers.
///
/// The server-side brain is core::WindowManager; this engine supplies the
/// messaging and the client-side obligation tracking (an *obligation* is one
/// occupied slot on a dispatched forward list: receive the data, process it
/// if the transaction is alive, and forward it downstream at commit — or
/// pass it through unchanged after an abort).
class G2plEngine : public EngineBase {
 public:
  explicit G2plEngine(const SimConfig& config);

  const core::WindowManager& window_manager() const { return *wm_; }

 protected:
  void SendRequest(TxnRun& run) override;
  void DoCommit(TxnRun& run) override;
  void OnClientAborted(TxnRun& run) override;
  void FillProtocolMetrics(RunResult* result) override;

 private:
  /// Transaction state that outlives the client's TxnRun: a finished
  /// transaction still occupies forward-list slots until every one of them
  /// has been forwarded (only then is it *drained* and leaves the
  /// precedence graph).
  struct TxnState {
    int32_t client_index = 0;
    bool finished = false;
    bool committed = false;
    bool drained = false;
    int32_t slots_outstanding = 0;
    std::vector<ItemId> slot_items;
  };

  /// One slot on a dispatched forward list, tracked at the owning client.
  struct Obligation {
    std::shared_ptr<const core::ForwardList> fl;
    int32_t entry = 0;
    int32_t member = 0;
    bool is_writer = false;
    bool data_arrived = false;
    Version version = -1;
    int32_t releases_needed = 0;   // reader releases a writer must collect
    int32_t releases_received = 0;
    bool granted = false;   // OpGranted already issued for this slot
    bool forwarded = false; // slot completed
  };

  struct ObKey {
    TxnId txn;
    ItemId item;
    bool operator==(const ObKey& other) const {
      return txn == other.txn && item == other.item;
    }
  };
  struct ObKeyHash {
    size_t operator()(const ObKey& key) const {
      return std::hash<int64_t>()(key.txn * 1000003 + key.item);
    }
  };

  // --- window-manager callbacks (server side) -------------------------
  void WmDispatch(ItemId item, Version version,
                  std::shared_ptr<const core::ForwardList> fl);
  void WmAbort(TxnId txn, SiteId client_site);
  void WmExpand(ItemId item, Version version,
                std::shared_ptr<const core::ForwardList> fl, TxnId txn,
                SiteId client_site, int32_t member_index);

  // --- data migration --------------------------------------------------
  /// Sends `version` of `item` to entry `entry_index` of `fl` from
  /// `from_site` (the server at dispatch, else the forwarding writer):
  /// copies to every read-group member, or the writer directly; under MR1W
  /// also the early copy to the writer that follows a read group.
  void DeliverToEntry(SiteId from_site, ItemId item, Version version,
                      std::shared_ptr<const core::ForwardList> fl,
                      int32_t entry_index);

  /// Client receives a data copy for (txn, item) at the given FL position.
  /// `early_releases` > 0 marks the MR1W early-writer copy.
  void OnData(TxnId txn, ItemId item, Version version,
              std::shared_ptr<const core::ForwardList> fl,
              int32_t entry_index, int32_t member_index,
              int32_t early_releases);

  /// Client (a writer) receives a reader's release. In basic mode (MR1W
  /// off) the data rides along with the first release.
  void OnReaderRelease(TxnId writer_txn, ItemId item, Version version,
                       std::shared_ptr<const core::ForwardList> fl,
                       int32_t writer_entry_index);

  /// Routes the grant into the shared client lifecycle when the slot's
  /// owner is alive and this slot satisfies its current operation.
  void MaybeGrant(TxnId txn, ItemId item, Obligation& ob);

  /// Forwards the slot if its conditions hold (data present, txn finished,
  /// releases collected unless aborted).
  void TryForward(TxnId txn, ItemId item);

  void CheckDrain(TxnId txn);

  TxnState& EnsureTxn(TxnId txn, int32_t client_index);

  std::unique_ptr<core::WindowManager> wm_;
  std::unordered_map<TxnId, TxnState> txns_;
  std::unordered_map<ObKey, Obligation, ObKeyHash> obligations_;
  std::unordered_set<TxnId> drained_;  // ignore late messages for these
};

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_G2PL_H_
