#ifndef GTPL_PROTOCOLS_ENGINE_H_
#define GTPL_PROTOCOLS_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "db/data_store.h"
#include "db/wal.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "protocols/config.h"
#include "protocols/metrics.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace gtpl::proto {

/// Shared client-side machinery of every protocol engine: the per-client
/// transaction lifecycle of the paper's system model (idle U[2,10] -> new
/// transaction -> sequential operations with think U[1,3] after each grant
/// -> commit; aborted transactions are *replaced* by fresh ones), plus
/// metrics, warmup handling, and the stop condition.
///
/// Protocol subclasses implement how requests, commits, and abort cleanup
/// translate into messages and server state.
class EngineBase {
 public:
  explicit EngineBase(const SimConfig& config);
  virtual ~EngineBase() = default;

  EngineBase(const EngineBase&) = delete;
  EngineBase& operator=(const EngineBase&) = delete;

  /// Runs the configured simulation to completion and returns its metrics.
  RunResult Run();

  net::Network& network() { return *network_; }
  sim::Simulator& simulator() { return sim_; }

 protected:
  /// One in-flight transaction at a client.
  struct TxnRun {
    TxnId id = kInvalidTxn;
    int32_t client_index = 0;  // 0-based; site = client_index + 1
    workload::TxnSpec spec;
    size_t current_op = 0;     // op being requested / processed
    SimTime start_time = 0;
    bool doomed = false;       // server decided to abort; notice in flight
    bool finished = false;
    SimTime request_time = 0;  // when the current op's request was issued
    Version pending_version = 0;  // version delivered for the current op
    std::vector<OpRecord> records;
    /// Latency-breakdown span accumulated over the transaction's lifetime
    /// (metrics.h); finalized at commit, unused for aborted transactions.
    TxnSpan span;
    /// Network components of the current op's request flight, captured when
    /// the request reaches the server (NoteRequestAtServer); folded into the
    /// span when the grant comes back.
    SimTime req_prop = 0;
    SimTime req_queue = 0;
    /// Time the current op spent queued behind a lease revocation at the
    /// server (sticky leases only): stamped by the server when the queued
    /// request is finally granted, folded into span.lease_revoke_wait
    /// (clamped to the op's lock wait) when the grant reaches the client.
    SimTime pending_revoke_wait = 0;
    /// When the commit phase started (last op's think elapsed).
    SimTime commit_start = 0;
    /// True once the commit phase started. A committing transaction has no
    /// outstanding request and must never be chosen as an abort victim
    /// (wound-wait checks this through PolicyHost::Woundable).
    bool committing = false;
    /// Blocking one-way WAN flights the commit phase paid: -1 until a
    /// cross-server 2PC path sets it (single-shard commits keep -1).
    int32_t commit_flights = -1;

    SiteId site() const { return client_index + 1; }
    const workload::Operation& op() const { return spec.ops[current_op]; }
    bool LastOp() const { return current_op + 1 == spec.ops.size(); }
  };

  struct ClientState {
    int32_t index = 0;
    std::unique_ptr<workload::WorkloadGenerator> generator;
    std::unique_ptr<TxnRun> current;
    int32_t restart_streak = 0;  // consecutive aborts (drives g-2PL aging)
    std::unique_ptr<db::WriteAheadLog> wal;
  };

  // --- protocol hooks -------------------------------------------------
  /// Send the lock/data request for `run.op()` to the server.
  virtual void SendRequest(TxnRun& run) = 0;
  /// The transaction committed locally: emit releases / data forwards.
  virtual void DoCommit(TxnRun& run) = 0;
  /// The abort notice reached the client: protocol-specific cleanup.
  virtual void OnClientAborted(TxnRun& run) = 0;
  /// Copy protocol-specific counters into the result.
  virtual void FillProtocolMetrics(RunResult* result) { (void)result; }
  /// The last operation's think time elapsed: begin committing. The default
  /// forces the client WAL and finalizes immediately (pessimistic
  /// protocols); optimistic protocols override to run certification and
  /// call FinalizeCommit / ServerAbortDecision asynchronously.
  virtual void StartCommit(TxnRun& run);
  /// Called just before SendRequest for every operation (first and
  /// subsequent). Default no-op; the kEarly commit path piggybacks
  /// speculative prepares on the last operation touching each shard here.
  virtual void PreRequestHook(TxnRun& run) { (void)run; }
  /// The run ended (committed or the abort notice arrived): drop any
  /// per-transaction bookkeeping. Default no-op.
  virtual void OnTxnClosed(const TxnRun& run) { (void)run; }
  /// Register this engine's time-series gauges with the metrics registry
  /// (obs/metrics.h; called once before the run when metrics_interval > 0).
  /// The base registers the engine-global series — active transactions,
  /// cumulative commits/aborts, NIC backlog; overrides call the parent
  /// first, then add their own (lock tables, lease state, in-flight 2PC),
  /// so the series order is the class hierarchy's registration order and
  /// identical across runs. Probes must be read-only.
  virtual void RegisterMetrics(obs::MetricsRegistry* metrics);

  /// PreRequestHook + SendRequest — the lifecycle's single entry for
  /// issuing the current operation's request.
  void IssueRequest(TxnRun& run) {
    PreRequestHook(run);
    SendRequest(run);
  }

  // --- services for protocol subclasses -------------------------------
  /// The server decided to abort `txn`: dooms it instantly (it can no longer
  /// commit) and delivers the abort notice to its client after one network
  /// latency. Safe to call for transactions that already finished.
  /// `server_site` is the deciding server (a shard's site in sharded runs).
  void ServerAbortDecision(TxnId txn, SiteId client_site,
                           SiteId server_site = kServerSite);

  /// Appends `event` (stamped with the current simulated time) to the run's
  /// protocol-event stream; no-op unless record_protocol_events is set.
  void RecordEvent(ProtocolEvent event);

  /// Structured observability tracer (obs/trace.h); enabled iff
  /// config.obs_trace. Protocol code emits through it freely — Emit is a
  /// no-op when disabled.
  obs::Tracer& tracer() { return tracer_; }

  /// Called by protocol request handlers when `txn`'s request for `item`
  /// reaches the owning server: captures the request flight's network
  /// components (from the network's current delivery, when one is active)
  /// for span accounting and emits kLockRequest. `shard` is the serving
  /// shard index (0 for single-server engines).
  void NoteRequestAtServer(TxnId txn, ItemId item, LockMode mode,
                           int32_t shard = 0);

  /// Data/grant for the current operation of `run` arrived: think, record
  /// the access, then issue the next request or commit.
  void OpGranted(TxnRun& run, Version version_read);

  /// Client whose site id is `site`.
  ClientState& ClientOfSite(SiteId site);
  ClientState& ClientAt(int32_t index) { return clients_[index]; }
  int32_t num_clients() const { return static_cast<int32_t>(clients_.size()); }

  /// Current run of `txn`'s client iff it is still running `txn`.
  TxnRun* FindRun(TxnId txn);

  const SimConfig& config() const { return config_; }
  db::DataStore& store() { return *store_; }
  db::WriteAheadLog& server_wal() { return *server_wal_; }
  RunResult& result() { return result_; }
  bool measuring() const {
    return result_.total_commits >= config_.warmup_txns;
  }

  /// Records the commit (metrics, history), emits DoCommit, and schedules
  /// the client's next transaction. Callable asynchronously by protocols
  /// whose commit point is decided at the server (certification).
  void FinalizeCommit(TxnRun& run);

  /// Client-log garbage collection (the paper's recovery assumption: "each
  /// site uses WAL and garbage collects its log once the data are made
  /// permanent at the server"). Protocol code calls this after installing
  /// new versions; any client whose oldest committed updates are now all
  /// permanent truncates its log prefix.
  void MaybeGcClientLogs();

 private:
  void BeginTxn(ClientState& client);
  void ScheduleNextTxn(ClientState& client);
  void FinishOp(TxnRun& run);
  void AbortNoticeArrived(TxnId txn, int32_t client_index);

  /// One committed transaction's log footprint awaiting permanence.
  struct PendingGc {
    int64_t lsn = 0;  // client log prefix covered by this transaction
    std::vector<std::pair<ItemId, Version>> updates;
  };

  SimConfig config_;
  sim::Simulator sim_;
  obs::Tracer tracer_;
  /// Streaming trace sink (trace_stream_path only; the tracer then streams
  /// through it instead of buffering — DESIGN.md §16).
  std::unique_ptr<obs::StreamSink> trace_sink_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<db::DataStore> store_;
  std::unique_ptr<db::WriteAheadLog> server_wal_;
  std::vector<ClientState> clients_;
  std::vector<std::deque<PendingGc>> gc_queues_;  // one per client
  std::unordered_map<TxnId, int32_t> txn_client_;  // active txns only
  TxnId next_txn_id_ = 1;
  int64_t measured_commits_ = 0;
  RunResult result_;
};

/// Runs one simulation with the given configuration (validates first).
/// Defined in cc/registry.cc: the engine is resolved through the cc
/// registry, so every registered protocol runs through the same entry.
RunResult RunSimulation(const SimConfig& config);

}  // namespace gtpl::proto

#endif  // GTPL_PROTOCOLS_ENGINE_H_
