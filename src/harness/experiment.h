#ifndef GTPL_HARNESS_EXPERIMENT_H_
#define GTPL_HARNESS_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocols/engine.h"
#include "stats/replication.h"

namespace gtpl::harness {

/// Aggregated metrics of one configuration point across R independent
/// replications (the paper: 5 runs, 95% Student-t confidence intervals,
/// relative precision kept under 2%).
struct PointResult {
  stats::ReplicationSummary response;      // mean transaction response time
  stats::ReplicationSummary abort_pct;     // % transactions aborted
  stats::ReplicationSummary throughput;    // commits per 1000 time units
  stats::ReplicationSummary fl_length;     // mean forward-list length (g-2PL)
  double mean_messages_per_commit = 0.0;
  double mean_payload_per_commit = 0.0;  // abstract units (net::k*Payload)
  /// Link-model metrics (0 under the default pure-propagation transport):
  /// mean per-message NIC queueing delay (sender + receiver waits), its
  /// 99th percentile, and the busiest NIC's busy fraction.
  double mean_queue_delay = 0.0;
  double queue_delay_p99 = 0.0;
  double mean_link_utilization = 0.0;
  double expansions_per_commit = 0.0;  // g-2PL read-group expansions
  /// Adaptive-window controller (g-2PL with adaptive enabled, 0 otherwise):
  /// mean cap consulted per dispatched window, mean end-of-run per-item cap,
  /// and mean controller adjustments (cap moves) per replication.
  double mean_effective_cap = 0.0;
  double final_effective_cap = 0.0;
  double mean_cap_increases = 0.0;
  double mean_cap_decreases = 0.0;
  /// Sharded runs: % of measured commits that ran cross-server 2PC, and the
  /// mean number of participant servers per such commit (0 when unsharded).
  double cross_server_pct = 0.0;
  double mean_commit_participants = 0.0;
  /// Geo-aware commit-path telemetry (0 unless sharded; DESIGN.md §13):
  /// per-round commit sub-span means, the p50 of the cross-server commit
  /// span, mean blocking WAN flights per cross-server commit, and the % of
  /// measured commits that took the fast path / a remote coordinator / the
  /// classic fallback (OCC).
  double mean_commit_prepare = 0.0;
  double mean_commit_vote = 0.0;
  double xcommit_p50 = 0.0;
  double mean_commit_flights = 0.0;
  double fastpath_pct = 0.0;
  double coord_remote_pct = 0.0;
  double fallback_pct = 0.0;
  /// Committed-transaction latency breakdown (DESIGN.md §11), averaged
  /// across replications. The five phase means sum to response.mean (each
  /// replication's phases sum exactly to its mean response time).
  double mean_lock_wait = 0.0;
  double mean_propagation = 0.0;
  double mean_queueing = 0.0;
  double mean_execution = 0.0;
  double mean_commit_phase = 0.0;
  /// Response-time / op-wait percentiles: each replication's histogram
  /// percentile, averaged across replications.
  double response_p50 = 0.0;
  double response_p95 = 0.0;
  double response_p99 = 0.0;
  double op_wait_p50 = 0.0;
  double op_wait_p99 = 0.0;
  /// Sticky-lease telemetry (all 0 under --lease=none; DESIGN.md §14):
  /// mean cache-local lease hits / revoke callbacks / lease releases per
  /// commit, and the mean revoke-wait sub-span of the lock-wait phase.
  double lease_hits_per_commit = 0.0;
  double lease_revokes_per_commit = 0.0;
  double lease_releases_per_commit = 0.0;
  double mean_lease_revoke_wait = 0.0;
  /// Parallel-engine telemetry (sim_threads > 1 only, 0 otherwise;
  /// DESIGN.md §15): mean conservative synchronization windows per
  /// replication and mean barrier stalls — (LP, window) pairs where an LP
  /// had nothing below the horizon — the idle tax of the window protocol.
  double mean_sync_windows = 0.0;
  double mean_sync_stalls = 0.0;
  /// Per-replication observability traces, in replication order (empty
  /// unless the config set obs_trace; also empty when the trace streamed
  /// to a file instead of the in-memory buffer).
  std::vector<std::vector<obs::TraceEvent>> traces;
  /// Per-replication time-series metric rows, in replication order (empty
  /// unless the config set metrics_interval > 0), and the series names
  /// shared by every replication (registration order).
  std::vector<std::vector<obs::MetricRow>> metrics;
  std::vector<std::string> metric_names;
  int64_t total_commits = 0;
  int64_t total_aborts = 0;
  bool any_timed_out = false;
  /// Summed wall-clock seconds of this point's replications (the point's
  /// serial cost, independent of how many workers ran it).
  double wall_seconds = 0.0;
};

/// Seed of replication `rep` (0-based) of a point whose configured seed is
/// `point_seed`: one SplitMix64 step keyed by the replication index, so runs
/// never collide across replications or across nearby base seeds (the old
/// `seed + rep + 1` scheme shared runs between adjacent sweep points).
uint64_t ReplicaSeed(uint64_t point_seed, int32_t rep);

/// Seed of sweep point `point_index` under base seed `base_seed`. A second
/// SplitMix64 stream keyed with a different odd constant, so point streams
/// and replica streams never alias.
uint64_t PointSeed(uint64_t base_seed, size_t point_index);

/// Runs `runs` replications of `config` with per-replication seeds
/// ReplicaSeed(config.seed, rep) and aggregates. `jobs` replications run
/// concurrently (1 = serial inline, <= 0 = GTPL_JOBS / all cores); results
/// are bit-identical at any job count.
PointResult RunReplicated(proto::SimConfig config, int32_t runs,
                          int jobs = 1);

/// Result of a (config-point × replication) sweep.
struct SweepResult {
  std::vector<PointResult> points;  // one per input config, in input order
  double wall_seconds = 0.0;    // elapsed wall clock of the whole grid
  double serial_seconds = 0.0;  // sum of all per-replication wall clocks
  int jobs = 1;                 // worker threads actually used
};

/// Fans `points.size() × runs` simulations out across `jobs` worker threads
/// and aggregates each point's replications in deterministic order. Point k
/// runs with seed PointSeed(points[k].seed, k), i.e. its PointResult equals
/// RunReplicated(points[k] with that seed, runs) exactly, at any job count.
SweepResult RunSweep(const std::vector<proto::SimConfig>& points,
                     int32_t runs, int jobs = 0);

/// How hard the bench binaries drive each point. Paper scale is 50000
/// measured transactions x 5 replications; the default is scaled down to
/// keep the full suite in minutes (shapes are stable well before that).
struct ExperimentScale {
  int64_t measured_txns = 4000;
  int64_t warmup_txns = 400;
  int32_t runs = 3;
  uint64_t base_seed = 42;
};

/// Applies a scale to a config (txns + warmup + seed).
void ApplyScale(const ExperimentScale& scale, proto::SimConfig* config);

}  // namespace gtpl::harness

#endif  // GTPL_HARNESS_EXPERIMENT_H_
