#ifndef GTPL_HARNESS_EXPERIMENT_H_
#define GTPL_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "protocols/engine.h"
#include "stats/replication.h"

namespace gtpl::harness {

/// Aggregated metrics of one configuration point across R independent
/// replications (the paper: 5 runs, 95% Student-t confidence intervals,
/// relative precision kept under 2%).
struct PointResult {
  stats::ReplicationSummary response;      // mean transaction response time
  stats::ReplicationSummary abort_pct;     // % transactions aborted
  stats::ReplicationSummary throughput;    // commits per 1000 time units
  stats::ReplicationSummary fl_length;     // mean forward-list length (g-2PL)
  double mean_messages_per_commit = 0.0;
  double mean_payload_per_commit = 0.0;  // abstract units (net::k*Payload)
  double expansions_per_commit = 0.0;  // g-2PL read-group expansions
  int64_t total_commits = 0;
  int64_t total_aborts = 0;
  bool any_timed_out = false;
};

/// Runs `runs` replications of `config` with seeds seed+1 ... seed+runs and
/// aggregates. `mutate_seed` of the config itself is ignored.
PointResult RunReplicated(proto::SimConfig config, int32_t runs);

/// How hard the bench binaries drive each point. Paper scale is 50000
/// measured transactions x 5 replications; the default is scaled down to
/// keep the full suite in minutes (shapes are stable well before that).
struct ExperimentScale {
  int64_t measured_txns = 4000;
  int64_t warmup_txns = 400;
  int32_t runs = 3;
  uint64_t base_seed = 42;
};

/// Applies a scale to a config (txns + warmup + seed).
void ApplyScale(const ExperimentScale& scale, proto::SimConfig* config);

}  // namespace gtpl::harness

#endif  // GTPL_HARNESS_EXPERIMENT_H_
