#ifndef GTPL_HARNESS_TABLE_H_
#define GTPL_HARNESS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gtpl::harness {

/// Fixed-width console table with an optional CSV mirror, used by every
/// bench binary to print paper-style series.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds one row; cells must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned console form.
  std::string ToString() const;

  /// Renders CSV (header + rows).
  std::string ToCsv() const;

  /// Prints ToString() to stdout; also writes CSV to `csv_path` when
  /// non-empty.
  void Print(const std::string& csv_path = "") const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` decimals ("12.34").
std::string Fmt(double value, int digits = 2);

/// Formats "mean +- half_width" for confidence-interval cells.
std::string FmtCi(double mean, double half_width, int digits = 1);

}  // namespace gtpl::harness

#endif  // GTPL_HARNESS_TABLE_H_
