#ifndef GTPL_HARNESS_CLI_H_
#define GTPL_HARNESS_CLI_H_

#include <string>

#include "common/status.h"
#include "harness/experiment.h"
#include "lease/lease.h"
#include "protocols/config.h"

namespace gtpl::harness {

/// Common command line of the bench binaries:
///   --txns=N     measured transactions per replication (default 4000)
///   --warmup=N   warmup transactions (default 400)
///   --runs=N     replications per point (default 3)
///   --seed=N     base seed (default 42)
///   --jobs=N     worker threads for the sweep grid (default: GTPL_JOBS
///                env var, else all hardware threads; results are
///                bit-identical at any value)
///   --cc=NAME    restrict a protocol-sweeping bench to one registered
///                engine (strict: unknown names fail listing the registry)
///   --commit=NAME  commit path for cross-server 2PC (classic, early,
///                fastpath, coord; strict like --cc)
///   --lease=NAME   lease mode for the lock engines (none, sticky; strict
///                like --cc)
///   --lease-ttl=N  lease lifetime in sim time units (0 = infinite)
///   --lease-max-held=N  max unpinned leases a client retains (0 = unlimited)
///   --sim-threads=N  intra-run worker threads (default 1 = the serial
///                engine; N > 1 runs the conservative per-shard parallel
///                engine, bit-identical at any N; strict: 0 or malformed
///                values fail)
///   --full       paper scale: 50000 measured txns, 5 replications
///   --quick      smoke scale: 800 measured txns, 2 replications
///   --smoke      CI scale: 200 measured txns, 1 replication
///   --csv=PATH   also write the main table as CSV
struct CliOptions {
  ExperimentScale scale;
  std::string csv_path;
  int jobs = 0;  // 0 = auto (GTPL_JOBS env, else hardware threads)
  /// Registered engine name from --cc, empty when the flag was not given
  /// (benches then sweep their default engine set); `cc_protocol` is
  /// meaningful only when `cc` is non-empty.
  std::string cc;
  proto::Protocol cc_protocol = proto::Protocol::kS2pl;
  /// Commit-path name from --commit, empty when the flag was not given
  /// (benches then sweep their default variant set or run kClassic).
  std::string commit;
  proto::CommitPath commit_path = proto::CommitPath::kClassic;
  /// Lease-mode name from --lease, empty when the flag was not given
  /// (benches then sweep their default lease set or run kNone). The ttl
  /// and max_held knobs in `lease_options` apply whenever the bench honors
  /// leases, independent of whether --lease itself was passed.
  std::string lease;
  lease::LeaseOptions lease_options;
  /// Intra-run worker threads from --sim-threads (SimConfig::sim_threads):
  /// 1 = the legacy serial engine, N > 1 = the parallel per-shard engine.
  int32_t sim_threads = 1;
};

/// Strict numeric parsing for CLI flag values (std::from_chars; the whole
/// token must be consumed, no leading whitespace, no trailing junk).
/// Returns false — leaving *out untouched — on empty, malformed, or
/// overflowing input, where the atoi/atof family silently yields 0.
bool ParseInt32Value(const char* text, int32_t* out);
bool ParseInt64Value(const char* text, int64_t* out);
bool ParseDoubleValue(const char* text, double* out);

/// Parses argv. On error prints usage to stderr and returns a non-ok status.
Status ParseCli(int argc, char** argv, CliOptions* options);

/// Prints the standard bench banner (experiment id + scale in use).
void PrintBanner(const std::string& title, const CliOptions& options);

}  // namespace gtpl::harness

#endif  // GTPL_HARNESS_CLI_H_
