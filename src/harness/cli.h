#ifndef GTPL_HARNESS_CLI_H_
#define GTPL_HARNESS_CLI_H_

#include <string>

#include "common/status.h"
#include "harness/experiment.h"

namespace gtpl::harness {

/// Common command line of the bench binaries:
///   --txns=N     measured transactions per replication (default 4000)
///   --warmup=N   warmup transactions (default 400)
///   --runs=N     replications per point (default 3)
///   --seed=N     base seed (default 42)
///   --jobs=N     worker threads for the sweep grid (default: GTPL_JOBS
///                env var, else all hardware threads; results are
///                bit-identical at any value)
///   --full       paper scale: 50000 measured txns, 5 replications
///   --quick      smoke scale: 800 measured txns, 2 replications
///   --csv=PATH   also write the main table as CSV
struct CliOptions {
  ExperimentScale scale;
  std::string csv_path;
  int jobs = 0;  // 0 = auto (GTPL_JOBS env, else hardware threads)
};

/// Strict numeric parsing for CLI flag values (std::from_chars; the whole
/// token must be consumed, no leading whitespace, no trailing junk).
/// Returns false — leaving *out untouched — on empty, malformed, or
/// overflowing input, where the atoi/atof family silently yields 0.
bool ParseInt32Value(const char* text, int32_t* out);
bool ParseInt64Value(const char* text, int64_t* out);
bool ParseDoubleValue(const char* text, double* out);

/// Parses argv. On error prints usage to stderr and returns a non-ok status.
Status ParseCli(int argc, char** argv, CliOptions* options);

/// Prints the standard bench banner (experiment id + scale in use).
void PrintBanner(const std::string& title, const CliOptions& options);

}  // namespace gtpl::harness

#endif  // GTPL_HARNESS_CLI_H_
