#include "harness/cli.h"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <system_error>

#include "cc/registry.h"
#include "exec/thread_pool.h"

namespace gtpl::harness {
namespace {

template <typename T>
bool ParseNumber(const char* text, T* out) {
  if (text == nullptr || *text == '\0') return false;
  const char* end = text + std::strlen(text);
  T value{};
  const std::from_chars_result result = std::from_chars(text, end, value);
  if (result.ec != std::errc() || result.ptr != end) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt32Value(const char* text, int32_t* out) {
  return ParseNumber(text, out);
}

bool ParseInt64Value(const char* text, int64_t* out) {
  return ParseNumber(text, out);
}

bool ParseDoubleValue(const char* text, double* out) {
  return ParseNumber(text, out);
}

Status ParseCli(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      if (arg.compare(0, len, prefix) == 0) return arg.c_str() + len;
      return nullptr;
    };
    int64_t value = 0;
    if (const char* v = value_of("--txns=")) {
      if (!ParseInt64Value(v, &value) || value < 1) {
        return Status::InvalidArgument("bad --txns");
      }
      options->scale.measured_txns = value;
    } else if (const char* v2 = value_of("--warmup=")) {
      if (!ParseInt64Value(v2, &value) || value < 0) {
        return Status::InvalidArgument("bad --warmup");
      }
      options->scale.warmup_txns = value;
    } else if (const char* v3 = value_of("--runs=")) {
      if (!ParseInt64Value(v3, &value) || value < 1 || value > 100) {
        return Status::InvalidArgument("bad --runs");
      }
      options->scale.runs = static_cast<int32_t>(value);
    } else if (const char* v4 = value_of("--seed=")) {
      if (!ParseInt64Value(v4, &value) || value < 0) {
        return Status::InvalidArgument("bad --seed");
      }
      options->scale.base_seed = static_cast<uint64_t>(value);
    } else if (const char* v5 = value_of("--csv=")) {
      options->csv_path = v5;
    } else if (const char* v6 = value_of("--jobs=")) {
      if (!ParseInt64Value(v6, &value) || value < 1 || value > 4096) {
        return Status::InvalidArgument("bad --jobs");
      }
      options->jobs = static_cast<int>(value);
    } else if (const char* v7 = value_of("--cc=")) {
      const Status status = cc::ParseEngineName(v7, &options->cc_protocol);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return status;
      }
      options->cc = v7;
    } else if (const char* v8 = value_of("--commit=")) {
      const Status status =
          proto::ParseCommitPathName(v8, &options->commit_path);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return status;
      }
      options->commit = v8;
    } else if (const char* v9 = value_of("--lease=")) {
      const Status status =
          lease::ParseLeaseModeName(v9, &options->lease_options.mode);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return status;
      }
      options->lease = v9;
    } else if (const char* v10 = value_of("--lease-ttl=")) {
      if (!ParseInt64Value(v10, &value) || value < 0) {
        return Status::InvalidArgument("bad --lease-ttl");
      }
      options->lease_options.ttl = value;
    } else if (const char* v11 = value_of("--lease-max-held=")) {
      if (!ParseInt64Value(v11, &value) || value < 0 ||
          value > INT32_MAX) {
        return Status::InvalidArgument("bad --lease-max-held");
      }
      options->lease_options.max_held = static_cast<int32_t>(value);
    } else if (const char* v12 = value_of("--sim-threads=")) {
      if (!ParseInt64Value(v12, &value) || value < 1 || value > 256) {
        return Status::InvalidArgument(
            "bad --sim-threads (must be an integer >= 1)");
      }
      options->sim_threads = static_cast<int32_t>(value);
    } else if (arg == "--full") {
      options->scale.measured_txns = 50000;
      options->scale.warmup_txns = 5000;
      options->scale.runs = 5;
    } else if (arg == "--quick") {
      options->scale.measured_txns = 800;
      options->scale.warmup_txns = 100;
      options->scale.runs = 2;
    } else if (arg == "--smoke") {
      options->scale.measured_txns = 200;
      options->scale.warmup_txns = 20;
      options->scale.runs = 1;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--txns=N] [--warmup=N] [--runs=N] [--seed=N] "
                   "[--jobs=N] [--cc=NAME] [--commit=NAME] [--lease=NAME] "
                   "[--lease-ttl=N] [--lease-max-held=N] [--sim-threads=N] "
                   "[--full] [--quick] [--smoke] [--csv=PATH]\n  engines: %s\n"
                   "  commit paths: %s\n  lease modes: %s\n",
                   argv[0], cc::EngineNames().c_str(),
                   proto::CommitPathNames().c_str(),
                   lease::LeaseModeNames().c_str());
      return Status::InvalidArgument("help requested");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Status::InvalidArgument("unknown flag " + arg);
    }
  }
  return Status::Ok();
}

void PrintBanner(const std::string& title, const CliOptions& options) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf(
      "scale: %lld measured txns (+%lld warmup) x %d replications, "
      "seed %llu, %d worker thread(s)\n\n",
      static_cast<long long>(options.scale.measured_txns),
      static_cast<long long>(options.scale.warmup_txns), options.scale.runs,
      static_cast<unsigned long long>(options.scale.base_seed),
      exec::ResolveJobs(options.jobs));
}

}  // namespace gtpl::harness
