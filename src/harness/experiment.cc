#include "harness/experiment.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "exec/sweep.h"
#include "rng/rng.h"

namespace gtpl::harness {
namespace {

/// One replication's raw output plus its wall-clock cost.
struct ReplicaRun {
  proto::RunResult result;
  double seconds = 0.0;
};

ReplicaRun RunOneReplica(proto::SimConfig config, uint64_t seed, int32_t rep,
                         int32_t runs) {
  config.seed = seed;
  if (!config.trace_stream_path.empty() && runs > 1) {
    // Each replication streams to its own file: path.rep<r> (the single-run
    // case keeps the configured path verbatim).
    config.trace_stream_path += ".rep" + std::to_string(rep);
  }
  const auto started = std::chrono::steady_clock::now();
  ReplicaRun run;
  run.result = proto::RunSimulation(config);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - started)
                    .count();
  return run;
}

/// Folds one point's replications, in replication order, into a
/// PointResult. Serial and order-deterministic by construction, so the
/// aggregate is bit-identical however the replications were scheduled.
PointResult AggregateReplications(std::vector<ReplicaRun>& runs) {
  PointResult out;
  std::vector<double> responses;
  std::vector<double> abort_pcts;
  std::vector<double> throughputs;
  std::vector<double> fl_lengths;
  double messages = 0.0;
  double payload = 0.0;
  double expansions = 0.0;
  double mean_cap = 0.0;
  double final_cap = 0.0;
  double cap_increases = 0.0;
  double cap_decreases = 0.0;
  double cross_pct = 0.0;
  double participants = 0.0;
  double queue_delay = 0.0;
  double queue_p99 = 0.0;
  double utilization = 0.0;
  double lock_wait = 0.0;
  double propagation = 0.0;
  double queueing = 0.0;
  double execution = 0.0;
  double commit_phase = 0.0;
  double resp_p50 = 0.0;
  double resp_p95 = 0.0;
  double resp_p99 = 0.0;
  double opw_p50 = 0.0;
  double opw_p99 = 0.0;
  double lease_hits = 0.0;
  double lease_revokes = 0.0;
  double lease_releases = 0.0;
  double lease_revoke_wait = 0.0;
  int64_t cross_runs = 0;
  double commit_prepare = 0.0;
  double commit_vote = 0.0;
  double xcommit_p50 = 0.0;
  double commit_flights = 0.0;
  int64_t flight_runs = 0;
  double fastpath_pct = 0.0;
  double coord_pct = 0.0;
  double fallback_pct = 0.0;
  double sync_windows = 0.0;
  double sync_stalls = 0.0;
  for (ReplicaRun& run : runs) {
    proto::RunResult& result = run.result;
    responses.push_back(result.response.mean());
    abort_pcts.push_back(result.AbortPercent());
    throughputs.push_back(result.Throughput());
    fl_lengths.push_back(result.mean_forward_list_length);
    out.total_commits += result.commits;
    out.total_aborts += result.aborts;
    out.any_timed_out = out.any_timed_out || result.timed_out;
    out.wall_seconds += run.seconds;
    if (result.commits > 0) {
      messages += static_cast<double>(result.network.messages) /
                  static_cast<double>(result.commits);
      payload += static_cast<double>(result.network.payload_units) /
                 static_cast<double>(result.commits);
      expansions += static_cast<double>(result.read_group_expansions) /
                    static_cast<double>(result.commits);
      cross_pct += 100.0 * static_cast<double>(result.cross_server_commits) /
                   static_cast<double>(result.commits);
      fastpath_pct += 100.0 * static_cast<double>(result.fastpath_commits) /
                      static_cast<double>(result.commits);
      coord_pct += 100.0 *
                   static_cast<double>(result.coord_remote_commits) /
                   static_cast<double>(result.commits);
      fallback_pct += 100.0 *
                      static_cast<double>(result.commit_path_fallbacks) /
                      static_cast<double>(result.commits);
      lease_hits += static_cast<double>(result.lease_hits) /
                    static_cast<double>(result.commits);
      lease_revokes += static_cast<double>(result.lease_revokes) /
                       static_cast<double>(result.commits);
      lease_releases += static_cast<double>(result.lease_releases) /
                        static_cast<double>(result.commits);
    }
    if (result.commit_participants.count() > 0) {
      participants += result.commit_participants.mean();
      ++cross_runs;
    }
    if (result.commit_flights.count() > 0) {
      commit_flights += result.commit_flights.mean();
      xcommit_p50 += result.xcommit_span_hist.Percentile(0.50);
      ++flight_runs;
    }
    commit_prepare += result.span_commit_prepare.mean();
    commit_vote += result.span_commit_vote.mean();
    mean_cap += result.mean_effective_cap;
    final_cap += result.final_effective_cap;
    cap_increases += static_cast<double>(result.cap_increases);
    cap_decreases += static_cast<double>(result.cap_decreases);
    queue_delay += result.network.sender_queue_delay.mean() +
                   result.network.receiver_queue_delay.mean();
    queue_p99 += result.queue_delay_p99;
    utilization += result.max_link_utilization;
    lock_wait += result.span_lock_wait.mean();
    propagation += result.span_propagation.mean();
    queueing += result.span_queueing.mean();
    execution += result.span_execution.mean();
    commit_phase += result.span_commit.mean();
    resp_p50 += result.response_hist.Percentile(0.50);
    resp_p95 += result.response_hist.Percentile(0.95);
    resp_p99 += result.response_hist.Percentile(0.99);
    opw_p50 += result.op_wait_hist.Percentile(0.50);
    opw_p99 += result.op_wait_hist.Percentile(0.99);
    lease_revoke_wait += result.span_lease_revoke.mean();
    sync_windows += static_cast<double>(result.sync_windows);
    sync_stalls += static_cast<double>(result.sync_stalls);
    if (!result.obs_trace.empty()) {
      out.traces.push_back(std::move(result.obs_trace));
    }
    if (!result.metrics.empty()) {
      out.metrics.push_back(std::move(result.metrics));
      if (out.metric_names.empty()) {
        out.metric_names = std::move(result.metric_names);
      }
    }
  }
  const auto runs_count = static_cast<double>(runs.size());
  out.response = stats::Summarize(responses);
  out.abort_pct = stats::Summarize(abort_pcts);
  out.throughput = stats::Summarize(throughputs);
  out.fl_length = stats::Summarize(fl_lengths);
  out.mean_messages_per_commit = messages / runs_count;
  out.mean_payload_per_commit = payload / runs_count;
  out.expansions_per_commit = expansions / runs_count;
  out.mean_effective_cap = mean_cap / runs_count;
  out.final_effective_cap = final_cap / runs_count;
  out.mean_cap_increases = cap_increases / runs_count;
  out.mean_cap_decreases = cap_decreases / runs_count;
  out.cross_server_pct = cross_pct / runs_count;
  out.mean_commit_participants =
      cross_runs > 0 ? participants / static_cast<double>(cross_runs) : 0.0;
  out.mean_queue_delay = queue_delay / runs_count;
  out.queue_delay_p99 = queue_p99 / runs_count;
  out.mean_link_utilization = utilization / runs_count;
  out.mean_lock_wait = lock_wait / runs_count;
  out.mean_propagation = propagation / runs_count;
  out.mean_queueing = queueing / runs_count;
  out.mean_execution = execution / runs_count;
  out.mean_commit_phase = commit_phase / runs_count;
  out.response_p50 = resp_p50 / runs_count;
  out.response_p95 = resp_p95 / runs_count;
  out.response_p99 = resp_p99 / runs_count;
  out.op_wait_p50 = opw_p50 / runs_count;
  out.op_wait_p99 = opw_p99 / runs_count;
  out.lease_hits_per_commit = lease_hits / runs_count;
  out.lease_revokes_per_commit = lease_revokes / runs_count;
  out.lease_releases_per_commit = lease_releases / runs_count;
  out.mean_lease_revoke_wait = lease_revoke_wait / runs_count;
  out.mean_commit_prepare = commit_prepare / runs_count;
  out.mean_commit_vote = commit_vote / runs_count;
  out.fastpath_pct = fastpath_pct / runs_count;
  out.coord_remote_pct = coord_pct / runs_count;
  out.fallback_pct = fallback_pct / runs_count;
  out.mean_commit_flights =
      flight_runs > 0 ? commit_flights / static_cast<double>(flight_runs)
                      : 0.0;
  out.xcommit_p50 =
      flight_runs > 0 ? xcommit_p50 / static_cast<double>(flight_runs) : 0.0;
  out.mean_sync_windows = sync_windows / runs_count;
  out.mean_sync_stalls = sync_stalls / runs_count;
  return out;
}

SweepResult RunSweepImpl(const std::vector<proto::SimConfig>& points,
                         int32_t runs, int jobs, bool mix_point_seeds) {
  GTPL_CHECK_GE(runs, 1);
  exec::SweepRunner<ReplicaRun> runner(jobs);
  std::vector<std::vector<ReplicaRun>> grid = runner.Run(
      points.size(), runs,
      [&points, runs, mix_point_seeds](size_t point, int32_t rep) {
        const proto::SimConfig& config = points[point];
        const uint64_t point_seed =
            mix_point_seeds ? PointSeed(config.seed, point) : config.seed;
        return RunOneReplica(config, ReplicaSeed(point_seed, rep), rep, runs);
      });
  SweepResult out;
  out.jobs = runner.jobs();
  out.wall_seconds = runner.elapsed_seconds();
  out.points.reserve(grid.size());
  for (std::vector<ReplicaRun>& point_runs : grid) {
    out.points.push_back(AggregateReplications(point_runs));
    out.serial_seconds += out.points.back().wall_seconds;
  }
  return out;
}

}  // namespace

uint64_t ReplicaSeed(uint64_t point_seed, int32_t rep) {
  // Key the stream position with an odd multiplier so that nearby base
  // seeds (42, 43, ...) land on unrelated stream offsets instead of
  // overlapping windows, the collision the old `seed + rep + 1` scheme had.
  return rng::SplitMix64(point_seed +
                         0xD1342543DE82EF95ULL *
                             (static_cast<uint64_t>(rep) + 1));
}

uint64_t PointSeed(uint64_t base_seed, size_t point_index) {
  // A different odd constant keeps point streams disjoint from replica
  // streams of the same base seed.
  return rng::SplitMix64(base_seed +
                         0xA0761D6478BD642FULL *
                             (static_cast<uint64_t>(point_index) + 1));
}

PointResult RunReplicated(proto::SimConfig config, int32_t runs, int jobs) {
  SweepResult sweep =
      RunSweepImpl({config}, runs, jobs, /*mix_point_seeds=*/false);
  return std::move(sweep.points.front());
}

SweepResult RunSweep(const std::vector<proto::SimConfig>& points,
                     int32_t runs, int jobs) {
  GTPL_CHECK_GE(points.size(), 1u);
  return RunSweepImpl(points, runs, jobs, /*mix_point_seeds=*/true);
}

void ApplyScale(const ExperimentScale& scale, proto::SimConfig* config) {
  config->measured_txns = scale.measured_txns;
  config->warmup_txns = scale.warmup_txns;
  config->seed = scale.base_seed;
}

}  // namespace gtpl::harness
