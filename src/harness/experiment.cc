#include "harness/experiment.h"

#include "common/check.h"

namespace gtpl::harness {

PointResult RunReplicated(proto::SimConfig config, int32_t runs) {
  GTPL_CHECK_GE(runs, 1);
  PointResult out;
  std::vector<double> responses;
  std::vector<double> abort_pcts;
  std::vector<double> throughputs;
  std::vector<double> fl_lengths;
  double messages = 0.0;
  double payload = 0.0;
  double expansions = 0.0;
  const uint64_t base_seed = config.seed;
  for (int32_t rep = 0; rep < runs; ++rep) {
    config.seed = base_seed + static_cast<uint64_t>(rep) + 1;
    proto::RunResult result = proto::RunSimulation(config);
    responses.push_back(result.response.mean());
    abort_pcts.push_back(result.AbortPercent());
    throughputs.push_back(result.Throughput());
    fl_lengths.push_back(result.mean_forward_list_length);
    out.total_commits += result.commits;
    out.total_aborts += result.aborts;
    out.any_timed_out = out.any_timed_out || result.timed_out;
    if (result.commits > 0) {
      messages += static_cast<double>(result.network.messages) /
                  static_cast<double>(result.commits);
      payload += static_cast<double>(result.network.payload_units) /
                 static_cast<double>(result.commits);
      expansions += static_cast<double>(result.read_group_expansions) /
                    static_cast<double>(result.commits);
    }
  }
  out.response = stats::Summarize(responses);
  out.abort_pct = stats::Summarize(abort_pcts);
  out.throughput = stats::Summarize(throughputs);
  out.fl_length = stats::Summarize(fl_lengths);
  out.mean_messages_per_commit = messages / runs;
  out.mean_payload_per_commit = payload / runs;
  out.expansions_per_commit = expansions / runs;
  return out;
}

void ApplyScale(const ExperimentScale& scale, proto::SimConfig* config) {
  config->measured_txns = scale.measured_txns;
  config->warmup_txns = scale.warmup_txns;
  config->seed = scale.base_seed;
}

}  // namespace gtpl::harness
