#include "harness/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace gtpl::harness {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  GTPL_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  GTPL_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += "  ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::ToCsv() const {
  auto csv_row = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ',';
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = csv_row(columns_);
  for (const auto& row : rows_) out += csv_row(row);
  return out;
}

void Table::Print(const std::string& csv_path) const {
  std::fputs(ToString().c_str(), stdout);
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    GTPL_CHECK(file.good()) << "cannot write " << csv_path;
    file << ToCsv();
  }
}

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtCi(double mean, double half_width, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", digits, mean, digits,
                half_width);
  return buf;
}

}  // namespace gtpl::harness
