#ifndef GTPL_CORE_FORWARD_LIST_H_
#define GTPL_CORE_FORWARD_LIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace gtpl::core {

/// One transaction's slot on a forward list.
struct FlMember {
  TxnId txn = kInvalidTxn;
  SiteId client = 0;
};

/// One entry of a forward list: either a *read group* (one or more clients
/// that receive copies simultaneously and read in parallel) or a single
/// writer with exclusive access. Adjacent reads are always coalesced into
/// one group, so two consecutive read-group entries never occur.
struct FlEntry {
  bool is_read_group = false;
  std::vector<FlMember> members;  // exactly 1 member when !is_read_group

  int32_t size() const { return static_cast<int32_t>(members.size()); }
};

/// The forward list of one collection window (paper §3.2): the dispatch
/// order of every client granted the data item in this window, with markers
/// delimiting parallel shared accesses and serial exclusive accesses.
///
/// Immutable once dispatched; messages carry shared_ptr<const ForwardList>
/// plus a position, mirroring the copy of the FL that accompanies each data
/// transfer in the real protocol. (The read-group-expansion extension
/// appends to the final read group before any copy has been consumed; the
/// window manager re-publishes a new snapshot in that case.)
class ForwardList {
 public:
  explicit ForwardList(std::vector<FlEntry> entries);

  int32_t num_entries() const { return static_cast<int32_t>(entries_.size()); }
  const FlEntry& entry(int32_t i) const;

  /// Total member slots across entries.
  int32_t num_members() const;

  /// All member transaction ids, in entry order.
  std::vector<TxnId> MemberTxns() const;

  /// True when `entry_index` is the final entry.
  bool IsLastEntry(int32_t entry_index) const {
    return entry_index + 1 == num_entries();
  }

  /// e.g. "[R{T3,T7} W{T9} R{T2}]" for debugging and traces.
  std::string DebugString() const;

 private:
  std::vector<FlEntry> entries_;
};

/// Builds a forward list from an ordered request sequence, coalescing
/// adjacent shared requests into read groups.
class ForwardListBuilder {
 public:
  void Add(TxnId txn, SiteId client, LockMode mode);

  bool empty() const { return entries_.empty(); }

  /// Finalizes into an immutable list. The builder is left empty.
  std::shared_ptr<const ForwardList> Build();

 private:
  std::vector<FlEntry> entries_;
};

}  // namespace gtpl::core

#endif  // GTPL_CORE_FORWARD_LIST_H_
