#include "core/ordering.h"

#include <algorithm>

namespace gtpl::core {

const char* ToString(OrderingPolicy policy) {
  switch (policy) {
    case OrderingPolicy::kFifo:
      return "fifo";
    case OrderingPolicy::kReadsFirst:
      return "reads-first";
    case OrderingPolicy::kWritesFirst:
      return "writes-first";
  }
  return "unknown";
}

std::vector<PendingRequest> ApplyPolicy(OrderingPolicy policy,
                                        std::vector<PendingRequest> batch) {
  switch (policy) {
    case OrderingPolicy::kFifo:
      // Batches are collected in arrival order already; keep it.
      break;
    case OrderingPolicy::kReadsFirst:
      std::stable_partition(batch.begin(), batch.end(),
                            [](const PendingRequest& r) {
                              return r.mode == LockMode::kShared;
                            });
      break;
    case OrderingPolicy::kWritesFirst:
      std::stable_partition(batch.begin(), batch.end(),
                            [](const PendingRequest& r) {
                              return r.mode == LockMode::kExclusive;
                            });
      break;
  }
  return batch;
}

}  // namespace gtpl::core
