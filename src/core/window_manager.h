#ifndef GTPL_CORE_WINDOW_MANAGER_H_
#define GTPL_CORE_WINDOW_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "core/adaptive_window.h"
#include "core/forward_list.h"
#include "core/ordering.h"
#include "core/precedence_graph.h"
#include "db/data_store.h"

namespace gtpl::core {

/// Tuning knobs of the g-2PL protocol. Defaults reproduce the protocol the
/// paper evaluates (all three optimizations: grouping + deadlock avoidance +
/// MR1W, FIFO ordering, unbounded forward lists, no read-group expansion).
struct G2plOptions {
  /// Multiple-Reads-Single-Write (paper §3.4): the writer following a read
  /// group receives an early copy and executes concurrently with the readers.
  bool mr1w = true;

  /// Pre-ordering rule for a window's batch (paper default: FIFO arrival).
  OrderingPolicy ordering = OrderingPolicy::kFifo;

  /// Maximum number of requests dispatched per window; 0 = unbounded.
  /// Figure 11 sweeps this cap to study deadlock-avoidance effectiveness.
  int32_t max_forward_list_length = 0;

  /// The paper's future-work read-only optimization (§3.3): a read request
  /// arriving for an item whose dispatched window is a pure read group joins
  /// that group instead of waiting for the next window, eliminating
  /// read-only deadlocks. Off by default (not part of the evaluated g-2PL).
  bool expand_read_groups = false;

  /// After this many consecutive restarts at a client, deadlock avoidance
  /// tries to abort the opposing window member instead of the requester
  /// (the paper's aging mechanism against cyclic restarts).
  int32_t aging_threshold = std::numeric_limits<int32_t>::max();

  /// Online per-item AIMD tuning of the effective forward-list cap
  /// (DESIGN.md §10). When enabled it replaces `max_forward_list_length`;
  /// off by default, and off is bit-identical to the static-cap path.
  AdaptiveWindowOptions adaptive;
};

class WindowManager;

/// Transaction-lifecycle state shared by every WindowManager of one server
/// group: the global precedence graph plus the abort/ghost/retirement
/// bookkeeping that must span shards.
///
/// A single-server WindowManager owns a private coordinator; a sharded
/// engine constructs one coordinator and hands it to every shard's manager.
/// Because deadlock avoidance and forward-list reordering always consult
/// this shared graph, the same-pair-same-order property of §3.3 holds
/// *across* shards, not just per item: two transactions granted on
/// different servers can never be serialized in opposite orders.
///
/// The coordinator models the servers' shared coordination plane as
/// instantaneous (decisions cost no simulated time, like the paper's
/// zero-cost server reordering); the data/commit path is what pays WAN
/// latency. DESIGN.md §8 states this determinism contract.
class ShardCoordinator {
 public:
  ShardCoordinator() = default;

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// `txn` aborted (decided on any shard): purge its pending request and
  /// memberships from every registered shard and contract it out of the
  /// shared graph. Idempotent.
  void OnTxnAborted(TxnId txn);

  /// `txn` is fully drained: finished *and* every forward-list slot it
  /// occupied on every shard has been forwarded. Retires it from the graph
  /// and all accessor sets once no edges point into it; until then it
  /// lingers as a "ghost" so that future grants are still ordered after it
  /// (under MR1W a writer can drain while its read-group predecessors run).
  void OnTxnDrained(TxnId txn);

  const PrecedenceGraph& graph() const { return graph_; }
  bool IsAborted(TxnId txn) const { return aborted_.count(txn) > 0; }

 private:
  friend class WindowManager;

  void Register(WindowManager* wm) { managers_.push_back(wm); }

  /// Removes a node from graph/accessor sets and cascades to ghosts whose
  /// last in-edge it held, across every registered shard.
  void RetireTxn(TxnId txn);

  PrecedenceGraph graph_;
  std::vector<WindowManager*> managers_;
  // txn -> client site (for abort routing); erased at drain.
  std::unordered_map<TxnId, SiteId> txn_client_;
  std::unordered_set<TxnId> aborted_;
  // Drained but not yet retired (something still points into them).
  std::unordered_set<TxnId> ghosts_;
};

/// The data server's per-item window state machine — the core of the g-2PL
/// protocol. The precedence graph and cross-cutting transaction lifecycle
/// live in a ShardCoordinator, private to this manager in the single-server
/// configuration and shared between managers in the sharded one.
///
/// The manager is transport-agnostic: it makes protocol decisions and emits
/// them through callbacks; the protocol layer (protocols/g2pl.cc and
/// protocols/sharded.cc) turns them into network messages. Simulated
/// decision cost is zero, following the paper: reordering happens while the
/// server waits for items to return, so it adds no blocking time.
class WindowManager {
 public:
  struct Callbacks {
    /// Dispatch a new window: send `version` of `item` to the first entry of
    /// `fl` (read-group copies / writer / MR1W early copy are the protocol
    /// layer's job).
    std::function<void(ItemId item, Version version,
                       std::shared_ptr<const ForwardList> fl)>
        dispatch;
    /// Abort `txn` at `client` (deadlock-avoidance victim).
    std::function<void(TxnId txn, SiteId client)> abort;
    /// Read-group expansion admitted `txn`: ship it a copy of `item` at
    /// `version`; it occupies `member_index` of entry 0 of `fl`.
    std::function<void(ItemId item, Version version,
                       std::shared_ptr<const ForwardList> fl, TxnId txn,
                       SiteId client, int32_t member_index)>
        expand;
    /// Whether `txn` may still be chosen as an abort victim (false once it
    /// committed or is already doomed). Optional; absent = always true.
    std::function<bool(TxnId txn)> can_abort;
  };

  /// `coordinator` may be null (the manager then owns a private one) or
  /// shared with other managers of a sharded server group.
  WindowManager(int32_t num_items, const G2plOptions& options,
                db::DataStore* store, Callbacks callbacks,
                ShardCoordinator* coordinator = nullptr);

  WindowManager(const WindowManager&) = delete;
  WindowManager& operator=(const WindowManager&) = delete;

  /// A lock/data request arrived at the server. May dispatch a singleton
  /// window (item at server), join/expand the current window, enqueue into
  /// the collection window, or abort a victim.
  void OnRequest(TxnId txn, SiteId client, ItemId item, LockMode mode,
                 int32_t restart_count);

  /// A return message for `item` reached the server (from the final writer,
  /// or one of the final read group's members). Installs and redispatches
  /// once all expected returns arrived.
  void OnReturn(ItemId item, Version version);

  /// `txn` aborted (decided here or elsewhere): purge its pending requests
  /// and dissolve its request/structural wait edges. Idempotent. Delegates
  /// to the coordinator, which cleans every shard of the group.
  void OnTxnAborted(TxnId txn);

  /// `txn` is fully drained: finished *and* every forward-list slot it
  /// occupied has been forwarded. Delegates to the coordinator (see
  /// ShardCoordinator::OnTxnDrained).
  void OnTxnDrained(TxnId txn);

  /// Counters for metrics and tests.
  int64_t windows_dispatched() const { return windows_dispatched_; }
  int64_t avoidance_aborts() const { return avoidance_aborts_; }
  /// Split of avoidance aborts by the moment the cycle was found.
  int64_t aborts_at_request() const { return aborts_at_request_; }
  int64_t aborts_at_dispatch_batch() const { return aborts_at_dispatch_batch_; }
  int64_t aborts_at_dispatch_pending() const {
    return aborts_at_dispatch_pending_;
  }
  int64_t expansions() const { return expansions_; }
  int64_t total_dispatched_requests() const {
    return total_dispatched_requests_;
  }
  /// Mean forward-list length over dispatched windows.
  double MeanForwardListLength() const;

  /// The adaptive cap controller, or null when `adaptive.enabled` is false.
  const AdaptiveWindowController* adaptive_controller() const {
    return adaptive_.get();
  }

  const PrecedenceGraph& graph() const { return coord_->graph_; }
  const ShardCoordinator& coordinator() const { return *coord_; }
  bool ItemAtServer(ItemId item) const;
  int32_t PendingCount(ItemId item) const;

 private:
  friend class ShardCoordinator;

  struct ItemState {
    bool at_server = true;
    std::shared_ptr<const ForwardList> fl;  // current out window (or null)
    // Transactions that were granted this item (in the current or an
    // earlier window) and are not yet fully drained. Every new grant is
    // ordered after all of them; drained transactions can safely be
    // forgotten (no edge can ever point into a finished transaction).
    std::unordered_set<TxnId> undrained_members;
    int32_t returns_expected = 0;
    int32_t returns_received = 0;
    Version return_version = -1;
    bool has_pending_write = false;  // disables read-group expansion
    std::deque<PendingRequest> pending;
  };

  /// Picks a victim for the would-be cycle between `requester` and the
  /// window members it reaches. Returns true when the REQUESTER survives
  /// (some members were aborted under aging); false when the requester was
  /// aborted.
  bool ResolveCycle(ItemId item, const PendingRequest& request,
                    std::vector<TxnId> reached_members);

  /// Closes the window bookkeeping and dispatches the next batch (if any).
  void InstallAndRedispatch(ItemId item);

  /// Dispatches up to max_forward_list_length pending requests of `item`.
  /// Precondition: item at server, pending not empty.
  void DispatchWindow(ItemId item);

  /// Aborts `txn` as a deadlock-avoidance/aging victim. `decided_at` is the
  /// item whose window decision chose the victim; it receives the adaptive
  /// controller's abort feedback (kInvalidItem when the decision has no item
  /// context, e.g. an engine-driven external abort).
  void AbortTxn(TxnId txn, SiteId client, ItemId decided_at);

  /// The effective forward-list cap for a new window of `item` (settling
  /// the controller's interval accounting when adaptive), 0 = unbounded.
  int32_t NextWindowCap(ItemId item);

  /// The cap a read-group expansion of `item` must honor (pure read).
  int32_t ExpansionCap(ItemId item) const;

  /// Coordinator hook: removes `txn`'s single pending (queued) request, if
  /// this shard holds it.
  void PurgeAbortedRequest(TxnId txn);

  /// Coordinator hook: erases `txn` from this shard's accessor sets.
  void EraseMembership(TxnId txn);

  /// Adds structural grant-order edges from every undrained (non-aborted)
  /// past accessor of `item` to `grantee`. With `skip_current_window`, the
  /// members of the currently dispatched forward list are excluded (used by
  /// read-group expansion, which joins that window rather than follows it).
  void AddAccessorOrderEdges(ItemId item, TxnId grantee,
                             bool skip_current_window = false);

  /// True iff `txn` already precedes an undrained accessor of `item` from a
  /// window older than the current one (expansion would be inconsistent).
  bool ReachesOlderAccessor(ItemId item, TxnId txn);

  void RecomputePendingWriteFlag(ItemState& state);

  ItemState& StateOf(ItemId item);

  G2plOptions options_;
  db::DataStore* store_;
  Callbacks callbacks_;
  std::vector<ItemState> items_;
  // Non-null iff options_.adaptive.enabled; tunes the per-item cap.
  std::unique_ptr<AdaptiveWindowController> adaptive_;
  // While AbortTxn runs the coordinator purge for a decision made at this
  // item, the purge of the victim's own pending entry at the same item must
  // not charge a second feedback signal (the decision already did).
  ItemId purge_feedback_suppressed_item_ = kInvalidItem;
  std::unique_ptr<ShardCoordinator> owned_coord_;  // null when shared
  ShardCoordinator* coord_;
  // txn -> items whose current window lists it as (undrained) member.
  std::unordered_map<TxnId, std::vector<ItemId>> member_of_;
  // txn -> item of its single outstanding (pending) request, if any.
  std::unordered_map<TxnId, ItemId> outstanding_request_;
  int64_t arrival_counter_ = 0;
  int64_t windows_dispatched_ = 0;
  int64_t total_dispatched_requests_ = 0;
  int64_t avoidance_aborts_ = 0;
  int64_t aborts_at_request_ = 0;
  int64_t aborts_at_dispatch_batch_ = 0;
  int64_t aborts_at_dispatch_pending_ = 0;
  int64_t expansions_ = 0;
};

}  // namespace gtpl::core

#endif  // GTPL_CORE_WINDOW_MANAGER_H_
