#include "core/precedence_graph.h"

#include <algorithm>

#include "common/check.h"

namespace gtpl::core {

void PrecedenceGraph::AddEdge(TxnId a, TxnId b, EdgeKind kind) {
  GTPL_CHECK_NE(a, b);
  auto [it, inserted] = out_[a].try_emplace(b, 0);
  if (inserted) {
    in_[b].insert(a);
    ++num_edges_;
  }
  it->second |= kind;
}

bool PrecedenceGraph::CanReach(TxnId from, TxnId to) const {
  if (from == to) return true;
  std::vector<TxnId> stack{from};
  std::unordered_set<TxnId> visited{from};
  while (!stack.empty()) {
    const TxnId node = stack.back();
    stack.pop_back();
    auto it = out_.find(node);
    if (it == out_.end()) continue;
    for (const auto& [next, kind] : it->second) {
      if (next == to) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

std::vector<TxnId> PrecedenceGraph::ReachableAmong(
    TxnId from, const std::unordered_set<TxnId>& candidates) const {
  std::vector<TxnId> hits;
  std::vector<TxnId> stack{from};
  std::unordered_set<TxnId> visited{from};
  while (!stack.empty()) {
    const TxnId node = stack.back();
    stack.pop_back();
    auto it = out_.find(node);
    if (it == out_.end()) continue;
    for (const auto& [next, kind] : it->second) {
      if (visited.insert(next).second) {
        if (candidates.count(next) > 0) hits.push_back(next);
        stack.push_back(next);
      }
    }
  }
  return hits;
}

void PrecedenceGraph::RemoveRequestEdgesInto(TxnId txn) {
  auto it = in_.find(txn);
  if (it == in_.end()) return;
  std::vector<TxnId> drop;
  for (TxnId from : it->second) {
    auto& kinds = out_.at(from);
    auto edge = kinds.find(txn);
    GTPL_CHECK(edge != kinds.end());
    edge->second &= static_cast<uint8_t>(~kRequestEdge);
    if (edge->second == 0) drop.push_back(from);
  }
  for (TxnId from : drop) EraseEdge(from, txn);
}

void PrecedenceGraph::PromoteRequestEdgesInto(TxnId txn) {
  auto it = in_.find(txn);
  if (it == in_.end()) return;
  for (TxnId from : it->second) {
    auto& kind = out_.at(from).at(txn);
    if ((kind & kRequestEdge) != 0) {
      kind = static_cast<uint8_t>((kind & ~kRequestEdge) | kStructuralEdge);
    }
  }
}

void PrecedenceGraph::Contract(TxnId txn) {
  // Structural in-sources: transactions whose forwarding still gates the
  // aborted transaction's pass-through slots.
  std::vector<TxnId> sources;
  if (auto it = in_.find(txn); it != in_.end()) {
    for (TxnId from : it->second) {
      if ((out_.at(from).at(txn) & kStructuralEdge) != 0) {
        sources.push_back(from);
      }
    }
  }
  std::vector<std::pair<TxnId, uint8_t>> targets;
  if (auto it = out_.find(txn); it != out_.end()) {
    targets.assign(it->second.begin(), it->second.end());
  }
  for (TxnId from : sources) {
    for (const auto& [to, kind] : targets) {
      if (from == to) continue;
      if ((kind & kStructuralEdge) != 0) AddEdge(from, to, kStructuralEdge);
      if ((kind & kRequestEdge) != 0) AddEdge(from, to, kRequestEdge);
    }
  }
  RemoveTxn(txn);
}

void PrecedenceGraph::EraseEdge(TxnId a, TxnId b) {
  auto out_it = out_.find(a);
  GTPL_CHECK(out_it != out_.end());
  out_it->second.erase(b);
  if (out_it->second.empty()) out_.erase(out_it);
  auto in_it = in_.find(b);
  GTPL_CHECK(in_it != in_.end());
  in_it->second.erase(a);
  if (in_it->second.empty()) in_.erase(in_it);
  --num_edges_;
}

void PrecedenceGraph::RemoveTxn(TxnId txn) {
  if (auto it = out_.find(txn); it != out_.end()) {
    // Copy targets: EraseEdge mutates the container.
    std::vector<TxnId> targets;
    targets.reserve(it->second.size());
    for (const auto& [to, kind] : it->second) targets.push_back(to);
    for (TxnId to : targets) EraseEdge(txn, to);
  }
  if (auto it = in_.find(txn); it != in_.end()) {
    std::vector<TxnId> sources(it->second.begin(), it->second.end());
    for (TxnId from : sources) EraseEdge(from, txn);
  }
}

bool PrecedenceGraph::HasEdge(TxnId a, TxnId b) const {
  auto it = out_.find(a);
  return it != out_.end() && it->second.count(b) > 0;
}

std::vector<TxnId> PrecedenceGraph::OutTargets(TxnId txn) const {
  std::vector<TxnId> targets;
  if (auto it = out_.find(txn); it != out_.end()) {
    targets.reserve(it->second.size());
    for (const auto& [to, kind] : it->second) targets.push_back(to);
  }
  return targets;
}

std::vector<TxnId> PrecedenceGraph::ConsistentOrder(
    const std::vector<TxnId>& txns) const {
  const size_t n = txns.size();
  if (n <= 1) return txns;
  // Constraints are global paths (they may run through transactions outside
  // the batch), so reachability is queried on the full graph.
  std::unordered_set<TxnId> batch(txns.begin(), txns.end());
  GTPL_CHECK_EQ(batch.size(), n) << "duplicate txns in batch";
  std::vector<std::vector<size_t>> succs(n);
  std::vector<int32_t> pending_preds(n, 0);
  std::unordered_map<TxnId, size_t> index;
  for (size_t i = 0; i < n; ++i) index[txns[i]] = i;
  for (size_t i = 0; i < n; ++i) {
    for (TxnId target : ReachableAmong(txns[i], batch)) {
      const size_t j = index[target];
      succs[i].push_back(j);
      ++pending_preds[j];
    }
  }
  // Kahn's algorithm; among ready nodes pick the smallest input index (FIFO
  // or pre-sorted preference). Batches are capped small, so O(n^2) is fine.
  std::vector<TxnId> order;
  order.reserve(n);
  std::vector<bool> done(n, false);
  for (size_t step = 0; step < n; ++step) {
    size_t pick = n;
    for (size_t i = 0; i < n; ++i) {
      if (!done[i] && pending_preds[i] == 0) {
        pick = i;
        break;
      }
    }
    GTPL_CHECK_LT(pick, n) << "precedence cycle within batch";
    done[pick] = true;
    order.push_back(txns[pick]);
    for (size_t j : succs[pick]) --pending_preds[j];
  }
  return order;
}

bool PrecedenceGraph::IsAcyclic() const {
  std::unordered_map<TxnId, int32_t> degree;
  for (const auto& [node, targets] : out_) {
    degree.try_emplace(node, 0);
    for (const auto& [to, kind] : targets) ++degree[to];
  }
  std::vector<TxnId> ready;
  for (const auto& [node, d] : degree) {
    if (d == 0) ready.push_back(node);
  }
  size_t removed = 0;
  while (!ready.empty()) {
    const TxnId node = ready.back();
    ready.pop_back();
    ++removed;
    auto it = out_.find(node);
    if (it == out_.end()) continue;
    for (const auto& [to, kind] : it->second) {
      if (--degree[to] == 0) ready.push_back(to);
    }
  }
  return removed == degree.size();
}

}  // namespace gtpl::core
