#ifndef GTPL_CORE_ADAPTIVE_WINDOW_H_
#define GTPL_CORE_ADAPTIVE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace gtpl::core {

/// Knobs of the per-item adaptive forward-list cap controller (an online
/// alternative to the static `max_forward_list_length` of Figure 11). Off by
/// default; when off the engines are bit-identical to the static-cap path.
struct AdaptiveWindowOptions {
  /// Master switch. When false no controller is constructed and
  /// `G2plOptions::max_forward_list_length` applies unchanged.
  bool enabled = false;

  /// Cap every item starts at. Must lie in [min_cap, max_cap].
  int32_t initial_cap = 4;

  /// Floor of the effective cap (>= 1: a window always admits one request).
  int32_t min_cap = 1;

  /// Ceiling of the effective cap.
  int32_t max_cap = 32;

  /// Multiplicative-decrease factor in (0, 1): applied to the item's cap on
  /// every deadlock-avoidance or aging abort charged to that item.
  double decrease_factor = 0.5;

  /// Additive-increase step (requests) applied after `hysteresis`
  /// consecutive clean windows of the item.
  int32_t increase_step = 1;

  /// Number of consecutive clean (abort-free) windows an item must complete
  /// before its cap grows by `increase_step`. >= 1.
  int32_t hysteresis = 2;
};

/// Per-item AIMD controller for the effective forward-list cap.
///
/// Signals: every deadlock-avoidance rejection or aging abort that a window
/// decision charges to an item multiplicatively shrinks that item's cap
/// (`decrease_factor`), floored at `min_cap`; a window interval that passes
/// with no such signal counts as "clean", and after `hysteresis` consecutive
/// clean windows the cap grows by `increase_step`, capped at `max_cap`.
///
/// Determinism contract: the controller is pure state driven by the
/// simulation's event order — no clocks, no randomness — so runs with equal
/// seeds and configs produce bit-identical caps. A shard group shares one
/// controller feed through the ShardCoordinator: abort feedback discovered on
/// one shard reaches the item's owning shard controller in the same
/// deterministic order the coordinator purges shards in.
class AdaptiveWindowController {
 public:
  AdaptiveWindowController(int32_t num_items,
                           const AdaptiveWindowOptions& options);

  AdaptiveWindowController(const AdaptiveWindowController&) = delete;
  AdaptiveWindowController& operator=(const AdaptiveWindowController&) =
      delete;

  /// The integer cap currently in effect for `item` (in [min_cap, max_cap]).
  /// Pure read — no state change (used by read-group expansion checks).
  int32_t CapFor(ItemId item) const;

  /// A window for `item` is about to be dispatched: settles the interval
  /// since the item's previous window (a clean interval advances the
  /// hysteresis streak and may trigger additive growth), then samples and
  /// returns the cap the new window must honor.
  int32_t NextWindowCap(ItemId item);

  /// An abort decision (deadlock-avoidance rejection or aging victim) was
  /// charged to `item`'s window: multiplicative decrease, applied
  /// immediately, and the clean streak resets.
  void OnAbortFeedback(ItemId item);

  /// Adjustment counters (an adjustment = a cap actually moved).
  int64_t cap_increases() const { return cap_increases_; }
  int64_t cap_decreases() const { return cap_decreases_; }

  /// Number of NextWindowCap samples and their sum, for the mean effective
  /// cap over dispatched windows.
  int64_t windows_sampled() const { return windows_sampled_; }
  double cap_sample_sum() const { return cap_sample_sum_; }
  double MeanEffectiveCap() const;

  /// End-of-run cap statistics over items that dispatched at least one
  /// window. Sum + count are exposed separately so a sharded engine can
  /// aggregate across per-shard controllers.
  double FinalCapSum() const;
  int64_t TouchedItems() const;
  double FinalEffectiveCap() const;

  const AdaptiveWindowOptions& options() const { return options_; }

 private:
  struct ItemControl {
    double cap = 0.0;            // continuous cap, clamped to [min, max]
    int32_t clean_streak = 0;    // consecutive clean windows
    bool dirty = false;          // abort feedback since the last window
    bool touched = false;        // dispatched at least one window
  };

  int32_t EffectiveCap(const ItemControl& control) const;

  AdaptiveWindowOptions options_;
  std::vector<ItemControl> items_;
  int64_t cap_increases_ = 0;
  int64_t cap_decreases_ = 0;
  int64_t windows_sampled_ = 0;
  double cap_sample_sum_ = 0.0;
};

}  // namespace gtpl::core

#endif  // GTPL_CORE_ADAPTIVE_WINDOW_H_
