#ifndef GTPL_CORE_ORDERING_H_
#define GTPL_CORE_ORDERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gtpl::core {

/// A lock request collected during an item's collection window.
struct PendingRequest {
  TxnId txn = kInvalidTxn;
  SiteId client = 0;
  LockMode mode = LockMode::kShared;
  int64_t arrival_seq = 0;      // global arrival counter (FIFO tie-break)
  int32_t restart_count = 0;    // consecutive aborts at the issuing client
};

/// Rule used to pre-order a window's batch before the precedence-consistent
/// topological sort fixes the final forward list (paper §3.2: "The forward
/// list may be created according to one of several ordering rules"; §6 lists
/// exploring such disciplines as future work).
enum class OrderingPolicy {
  kFifo = 0,        // sort by arrival of the request, the paper's default
  kReadsFirst = 1,  // shared requests first (larger leading read groups)
  kWritesFirst = 2, // exclusive requests first
};

const char* ToString(OrderingPolicy policy);

/// Stable pre-sort of `batch` according to `policy`. The result is fed to
/// PrecedenceGraph::ConsistentOrder, which respects this preference wherever
/// precedence constraints allow.
std::vector<PendingRequest> ApplyPolicy(OrderingPolicy policy,
                                        std::vector<PendingRequest> batch);

}  // namespace gtpl::core

#endif  // GTPL_CORE_ORDERING_H_
