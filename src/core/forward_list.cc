#include "core/forward_list.h"

#include "common/check.h"

namespace gtpl::core {

ForwardList::ForwardList(std::vector<FlEntry> entries)
    : entries_(std::move(entries)) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    const FlEntry& e = entries_[i];
    GTPL_CHECK(!e.members.empty());
    if (!e.is_read_group) GTPL_CHECK_EQ(e.members.size(), 1u);
    if (i > 0 && e.is_read_group) {
      GTPL_CHECK(!entries_[i - 1].is_read_group)
          << "adjacent read groups must be coalesced";
    }
  }
}

const FlEntry& ForwardList::entry(int32_t i) const {
  GTPL_CHECK_GE(i, 0);
  GTPL_CHECK_LT(static_cast<size_t>(i), entries_.size());
  return entries_[static_cast<size_t>(i)];
}

int32_t ForwardList::num_members() const {
  int32_t n = 0;
  for (const FlEntry& e : entries_) n += e.size();
  return n;
}

std::vector<TxnId> ForwardList::MemberTxns() const {
  std::vector<TxnId> out;
  for (const FlEntry& e : entries_) {
    for (const FlMember& m : e.members) out.push_back(m.txn);
  }
  return out;
}

std::string ForwardList::DebugString() const {
  std::string out = "[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += " ";
    const FlEntry& e = entries_[i];
    out += e.is_read_group ? "R{" : "W{";
    for (size_t j = 0; j < e.members.size(); ++j) {
      if (j > 0) out += ",";
      out += "T" + std::to_string(e.members[j].txn);
    }
    out += "}";
  }
  out += "]";
  return out;
}

void ForwardListBuilder::Add(TxnId txn, SiteId client, LockMode mode) {
  const bool read = mode == LockMode::kShared;
  if (read && !entries_.empty() && entries_.back().is_read_group) {
    entries_.back().members.push_back(FlMember{txn, client});
    return;
  }
  FlEntry entry;
  entry.is_read_group = read;
  entry.members.push_back(FlMember{txn, client});
  entries_.push_back(std::move(entry));
}

std::shared_ptr<const ForwardList> ForwardListBuilder::Build() {
  GTPL_CHECK(!entries_.empty());
  return std::make_shared<const ForwardList>(std::move(entries_));
}

}  // namespace gtpl::core
