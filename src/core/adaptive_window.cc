#include "core/adaptive_window.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gtpl::core {

AdaptiveWindowController::AdaptiveWindowController(
    int32_t num_items, const AdaptiveWindowOptions& options)
    : options_(options), items_(static_cast<size_t>(num_items)) {
  GTPL_CHECK_GT(num_items, 0);
  GTPL_CHECK_GE(options_.min_cap, 1);
  GTPL_CHECK_GE(options_.max_cap, options_.min_cap);
  GTPL_CHECK_GE(options_.initial_cap, options_.min_cap);
  GTPL_CHECK_LE(options_.initial_cap, options_.max_cap);
  GTPL_CHECK_GT(options_.decrease_factor, 0.0);
  GTPL_CHECK_LT(options_.decrease_factor, 1.0);
  GTPL_CHECK_GE(options_.increase_step, 1);
  GTPL_CHECK_GE(options_.hysteresis, 1);
  for (ItemControl& control : items_) {
    control.cap = static_cast<double>(options_.initial_cap);
  }
}

int32_t AdaptiveWindowController::EffectiveCap(
    const ItemControl& control) const {
  // The continuous cap is kept in [min_cap, max_cap]; the effective integer
  // cap is its floor, re-floored at min_cap so a multiplicative decrease
  // that lands between integers still admits at least min_cap requests.
  const auto floored = static_cast<int32_t>(std::floor(control.cap));
  return std::clamp(floored, options_.min_cap, options_.max_cap);
}

int32_t AdaptiveWindowController::CapFor(ItemId item) const {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), items_.size());
  return EffectiveCap(items_[static_cast<size_t>(item)]);
}

int32_t AdaptiveWindowController::NextWindowCap(ItemId item) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), items_.size());
  ItemControl& control = items_[static_cast<size_t>(item)];
  if (!control.touched) {
    // First window of the item: nothing to settle yet.
    control.touched = true;
  } else if (control.dirty) {
    control.dirty = false;  // decrease already applied at feedback time
  } else {
    ++control.clean_streak;
    if (control.clean_streak >= options_.hysteresis) {
      control.clean_streak = 0;
      const double grown =
          std::min(static_cast<double>(options_.max_cap),
                   control.cap + static_cast<double>(options_.increase_step));
      if (grown > control.cap) {
        control.cap = grown;
        ++cap_increases_;
      }
    }
  }
  const int32_t cap = EffectiveCap(control);
  ++windows_sampled_;
  cap_sample_sum_ += static_cast<double>(cap);
  return cap;
}

void AdaptiveWindowController::OnAbortFeedback(ItemId item) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), items_.size());
  ItemControl& control = items_[static_cast<size_t>(item)];
  control.dirty = true;
  control.clean_streak = 0;
  const double shrunk = std::max(static_cast<double>(options_.min_cap),
                                 control.cap * options_.decrease_factor);
  if (shrunk < control.cap) {
    control.cap = shrunk;
    ++cap_decreases_;
  }
}

double AdaptiveWindowController::MeanEffectiveCap() const {
  if (windows_sampled_ == 0) return 0.0;
  return cap_sample_sum_ / static_cast<double>(windows_sampled_);
}

double AdaptiveWindowController::FinalCapSum() const {
  double sum = 0.0;
  for (const ItemControl& control : items_) {
    if (control.touched) sum += static_cast<double>(EffectiveCap(control));
  }
  return sum;
}

int64_t AdaptiveWindowController::TouchedItems() const {
  int64_t count = 0;
  for (const ItemControl& control : items_) {
    if (control.touched) ++count;
  }
  return count;
}

double AdaptiveWindowController::FinalEffectiveCap() const {
  const int64_t touched = TouchedItems();
  if (touched == 0) return 0.0;
  return FinalCapSum() / static_cast<double>(touched);
}

}  // namespace gtpl::core
