#ifndef GTPL_CORE_PRECEDENCE_GRAPH_H_
#define GTPL_CORE_PRECEDENCE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace gtpl::core {

/// Why a precedence edge exists. An edge may carry both kinds at once (the
/// kinds are a bitmask); it disappears when its last kind is removed.
enum EdgeKind : uint8_t {
  /// "holder/window-member precedes an outstanding requester". Dissolves as
  /// soon as the requester's wait ends: at grant (window dispatch) or abort.
  kRequestEdge = 1,
  /// Forward-list chain order between consecutive entries of a dispatched
  /// window. Persists until the upstream transaction is fully drained.
  kStructuralEdge = 2,
};

/// Transaction precedence graph (paper §3.3): a directed acyclic graph whose
/// edge a -> b means "a accesses data before b" — equivalently, b
/// (transitively) waits for a. Deadlock avoidance keeps the graph acyclic:
/// any required edge that would close a cycle triggers an abort instead.
///
/// The graph is consistent with the lock-granting order, hence with the
/// serialization order of the g-2PL schedule.
class PrecedenceGraph {
 public:
  PrecedenceGraph() = default;

  /// True iff adding a -> b would close a cycle (i.e., b already reaches a).
  bool WouldCloseCycle(TxnId a, TxnId b) const { return CanReach(b, a); }

  /// Adds a -> b with the given kind (or adds the kind to an existing edge).
  /// Callers must have established that no cycle results.
  void AddEdge(TxnId a, TxnId b, EdgeKind kind);

  /// True iff a path from `from` to `to` exists (any edge kinds).
  bool CanReach(TxnId from, TxnId to) const;

  /// Subset of `candidates` reachable from `from` (single DFS).
  std::vector<TxnId> ReachableAmong(
      TxnId from, const std::unordered_set<TxnId>& candidates) const;

  /// Drops the request-kind from every edge into `txn` (the transaction's
  /// outstanding request was granted or aborted; it waits on no window now).
  /// Sequential transaction execution means one outstanding request at a
  /// time, so all current request edges into `txn` concern the same item.
  void RemoveRequestEdgesInto(TxnId txn);

  /// Upgrades every request-kind edge into `txn` to a structural edge: the
  /// transaction's wait just ended in a grant, so each "m waited-on by txn"
  /// edge (including edges bridged through contracted transactions) becomes
  /// a permanent grant-order fact that must outlive the wait.
  void PromoteRequestEdgesInto(TxnId txn);

  /// Removes a transaction while preserving the order facts and waits that
  /// flow *through* it: every (structural in-source, out-target) pair is
  /// bridged with a direct edge of the out-edge's kind, then the node is
  /// removed. Bridging cannot create cycles (reachability is unchanged).
  ///
  /// Used both for aborted transactions (their slots still pass data along,
  /// so downstream waiters transitively wait on their upstream sources; the
  /// victim's own request in-edges are dropped by the caller first) and for
  /// drained committed transactions (a finished-but-undrained predecessor,
  /// e.g. an MR1W writer awaiting reader releases, may still need its
  /// transitive grant-order constraints enforced against live grantees).
  void Contract(TxnId txn);

  /// Removes the node and all incident edges (transaction fully drained).
  void RemoveTxn(TxnId txn);

  /// Orders `txns` so that every existing path u ~> v among them puts u
  /// before v. Ties are broken by position in the input sequence, so callers
  /// get FIFO (or any pre-sorted preference) subject to constraints.
  std::vector<TxnId> ConsistentOrder(const std::vector<TxnId>& txns) const;

  int64_t num_edges() const { return num_edges_; }
  size_t num_nodes() const { return out_.size(); }
  bool HasEdge(TxnId a, TxnId b) const;

  /// True iff any edge points into `txn`.
  bool HasInEdges(TxnId txn) const {
    auto it = in_.find(txn);
    return it != in_.end() && !it->second.empty();
  }

  /// Targets of `txn`'s outgoing edges (any kind).
  std::vector<TxnId> OutTargets(TxnId txn) const;

  /// Exhaustive acyclicity check (O(V+E); for tests and debug assertions).
  bool IsAcyclic() const;

 private:
  void EraseEdge(TxnId a, TxnId b);

  // out_[a][b] = kind bitmask of edge a -> b; in_[b] = sources of edges into b.
  std::unordered_map<TxnId, std::unordered_map<TxnId, uint8_t>> out_;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> in_;
  int64_t num_edges_ = 0;
};

}  // namespace gtpl::core

#endif  // GTPL_CORE_PRECEDENCE_GRAPH_H_
