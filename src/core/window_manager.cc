#include "core/window_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace gtpl::core {

WindowManager::WindowManager(int32_t num_items, const G2plOptions& options,
                             db::DataStore* store, Callbacks callbacks,
                             ShardCoordinator* coordinator)
    : options_(options),
      store_(store),
      callbacks_(std::move(callbacks)),
      items_(static_cast<size_t>(num_items)),
      adaptive_(options.adaptive.enabled
                    ? std::make_unique<AdaptiveWindowController>(
                          num_items, options.adaptive)
                    : nullptr),
      owned_coord_(coordinator == nullptr ? std::make_unique<ShardCoordinator>()
                                          : nullptr),
      coord_(coordinator == nullptr ? owned_coord_.get() : coordinator) {
  GTPL_CHECK_GT(num_items, 0);
  GTPL_CHECK(store_ != nullptr);
  GTPL_CHECK_GE(options_.max_forward_list_length, 0);
  GTPL_CHECK(callbacks_.dispatch != nullptr);
  GTPL_CHECK(callbacks_.abort != nullptr);
  coord_->Register(this);
}

WindowManager::ItemState& WindowManager::StateOf(ItemId item) {
  GTPL_CHECK_GE(item, 0);
  GTPL_CHECK_LT(static_cast<size_t>(item), items_.size());
  return items_[static_cast<size_t>(item)];
}

void WindowManager::OnRequest(TxnId txn, SiteId client, ItemId item,
                              LockMode mode, int32_t restart_count) {
  if (coord_->aborted_.count(txn) > 0) return;  // stale in-flight request
  coord_->txn_client_[txn] = client;
  ItemState& state = StateOf(item);

  if (state.at_server) {
    // No collection window in progress: grant immediately with a singleton
    // forward list ("initially at start-up time and during periods of
    // extremely light loading, the forward-list will contain a single
    // client"). The grant is still ordered after every undrained past
    // accessor of the item; a required edge that would close a cycle means
    // the orders are already inconsistent and someone must abort.
    GTPL_CHECK(state.pending.empty());
    PendingRequest request{txn, client, mode, arrival_counter_++,
                           restart_count};
    std::vector<TxnId> reached =
        coord_->graph_.ReachableAmong(txn, state.undrained_members);
    if (!reached.empty()) {
      if (!ResolveCycle(item, request, std::move(reached))) {
        return;  // requester aborted
      }
    }
    coord_->graph_.PromoteRequestEdgesInto(txn);  // stale waits become order facts
    AddAccessorOrderEdges(item, txn);
    ForwardListBuilder builder;
    builder.Add(txn, client, mode);
    state.fl = builder.Build();
    state.at_server = false;
    state.undrained_members.insert(txn);
    member_of_[txn].push_back(item);
    state.returns_expected = 1;
    state.returns_received = 0;
    state.return_version = -1;
    NextWindowCap(item);  // a singleton window settles the item's interval
    ++windows_dispatched_;
    ++total_dispatched_requests_;
    callbacks_.dispatch(item, store_->VersionOf(item), state.fl);
    return;
  }

  // Read-group expansion (extension, off by default): a shared request may
  // join a dispatched pure-read window instead of waiting for it to close.
  // The expanded reader is unordered w.r.t. the group it joins but ordered
  // after older undrained accessors, which must not already follow it.
  const bool pure_read_window =
      state.fl != nullptr && state.fl->num_entries() == 1 &&
      state.fl->entry(0).is_read_group;
  const int32_t expansion_cap = ExpansionCap(item);
  if (options_.expand_read_groups && mode == LockMode::kShared &&
      pure_read_window && !state.has_pending_write &&
      (expansion_cap == 0 || state.fl->num_members() < expansion_cap) &&
      !ReachesOlderAccessor(item, txn)) {
    coord_->graph_.PromoteRequestEdgesInto(txn);
    AddAccessorOrderEdges(item, txn, /*skip_current_window=*/true);
    std::vector<FlEntry> entries{state.fl->entry(0)};
    entries[0].members.push_back(FlMember{txn, client});
    const auto member_index = static_cast<int32_t>(entries[0].members.size() - 1);
    state.fl = std::make_shared<const ForwardList>(std::move(entries));
    state.undrained_members.insert(txn);
    member_of_[txn].push_back(item);
    ++state.returns_expected;
    ++expansions_;
    GTPL_CHECK(callbacks_.expand != nullptr);
    callbacks_.expand(item, store_->VersionOf(item), state.fl, txn, client,
                      member_index);
    return;
  }

  // Collection window: the requester will be ordered after every member of
  // the current (dispatched) window. Required edges member -> txn close a
  // cycle iff txn already reaches a member.
  PendingRequest request{txn, client, mode, arrival_counter_++, restart_count};
  std::vector<TxnId> reached =
      coord_->graph_.ReachableAmong(txn, state.undrained_members);
  if (!reached.empty()) {
    if (!ResolveCycle(item, request, std::move(reached))) {
      return;  // requester aborted
    }
  }
  for (TxnId member : state.undrained_members) {
    coord_->graph_.AddEdge(member, txn, kRequestEdge);
  }
  if (mode == LockMode::kExclusive) state.has_pending_write = true;
  state.pending.push_back(request);
  outstanding_request_[txn] = item;
}

bool WindowManager::ResolveCycle(ItemId item, const PendingRequest& request,
                                 std::vector<TxnId> reached_members) {
  ItemState& state = StateOf(item);
  if (request.restart_count > options_.aging_threshold) {
    // Aging: favor the oft-restarted requester by aborting the opposing
    // window members; their dissolvable wait edges may break the cycle.
    // Members that already finished (committed) cannot be victims.
    for (TxnId member : reached_members) {
      if (callbacks_.can_abort != nullptr && !callbacks_.can_abort(member)) {
        continue;
      }
      auto it = coord_->txn_client_.find(member);
      GTPL_CHECK(it != coord_->txn_client_.end());
      AbortTxn(member, it->second, item);
    }
    std::vector<TxnId> still_reached =
        coord_->graph_.ReachableAmong(request.txn, state.undrained_members);
    if (still_reached.empty()) return true;
    // Structural constraints persist; fall through to aborting the requester.
  }
  AbortTxn(request.txn, request.client, item);
  return false;
}

void WindowManager::AbortTxn(TxnId txn, SiteId client, ItemId decided_at) {
  if (!coord_->aborted_.insert(txn).second) return;  // already aborted
  ++avoidance_aborts_;
  if (adaptive_ != nullptr && decided_at != kInvalidItem) {
    adaptive_->OnAbortFeedback(decided_at);
  }
  // The coordinator purge below may erase the victim's pending entry at
  // `decided_at` on this very shard — that is the same signal, not a second
  // one; purges at other items (or on other shards) still count.
  const ItemId saved_suppressed = purge_feedback_suppressed_item_;
  purge_feedback_suppressed_item_ = decided_at;
  coord_->OnTxnAborted(txn);
  purge_feedback_suppressed_item_ = saved_suppressed;
  callbacks_.abort(txn, client);
}

int32_t WindowManager::NextWindowCap(ItemId item) {
  if (adaptive_ == nullptr) return options_.max_forward_list_length;
  return adaptive_->NextWindowCap(item);
}

int32_t WindowManager::ExpansionCap(ItemId item) const {
  if (adaptive_ == nullptr) return options_.max_forward_list_length;
  return adaptive_->CapFor(item);
}

void WindowManager::OnTxnAborted(TxnId txn) { coord_->OnTxnAborted(txn); }

void WindowManager::PurgeAbortedRequest(TxnId txn) {
  // Purge the (single, sequential-execution) outstanding request, if any.
  if (auto it = outstanding_request_.find(txn);
      it != outstanding_request_.end()) {
    ItemState& state = StateOf(it->second);
    auto pos = std::find_if(
        state.pending.begin(), state.pending.end(),
        [txn](const PendingRequest& r) { return r.txn == txn; });
    if (pos != state.pending.end()) {
      state.pending.erase(pos);
      // A queued request evicted by an abort is contention pressure at this
      // item too — unless the deciding window already charged it here.
      if (adaptive_ != nullptr &&
          it->second != purge_feedback_suppressed_item_) {
        adaptive_->OnAbortFeedback(it->second);
      }
    }
    RecomputePendingWriteFlag(state);
    outstanding_request_.erase(it);
  }
}

void WindowManager::EraseMembership(TxnId txn) {
  if (auto it = member_of_.find(txn); it != member_of_.end()) {
    for (ItemId item : it->second) {
      StateOf(item).undrained_members.erase(txn);
    }
    member_of_.erase(it);
  }
}

void WindowManager::OnTxnDrained(TxnId txn) { coord_->OnTxnDrained(txn); }

void ShardCoordinator::OnTxnAborted(TxnId txn) {
  aborted_.insert(txn);
  for (WindowManager* wm : managers_) wm->PurgeAbortedRequest(txn);
  // An aborted transaction waits for nothing and serializes with nobody; it
  // merely passes data along its slots. Leave the waits that flow through
  // it (contraction) and take it out of the graph and the accessor sets so
  // it can no longer cause (false) deadlocks.
  graph_.RemoveRequestEdgesInto(txn);
  const std::vector<TxnId> targets = graph_.OutTargets(txn);
  graph_.Contract(txn);
  for (WindowManager* wm : managers_) wm->EraseMembership(txn);
  // Contracting the victim may have freed downstream ghosts.
  for (TxnId target : targets) {
    if (ghosts_.count(target) > 0 && !graph_.HasInEdges(target)) {
      RetireTxn(target);
    }
  }
}

void ShardCoordinator::OnTxnDrained(TxnId txn) {
  // A drained transaction may still have to order *future* grantees of the
  // items it accessed: under MR1W a writer can commit and drain while the
  // readers that precede it are still running, so its grant-order cone is
  // not closed yet. The node is retired only once nothing points into it
  // (then no cycle can ever run through it); until then it lingers as a
  // ghost in the graph and in the accessor sets.
  if (graph_.HasInEdges(txn)) {
    ghosts_.insert(txn);
    return;
  }
  RetireTxn(txn);
}

void ShardCoordinator::RetireTxn(TxnId txn) {
  std::vector<TxnId> worklist{txn};
  while (!worklist.empty()) {
    const TxnId current = worklist.back();
    worklist.pop_back();
    const std::vector<TxnId> targets = graph_.OutTargets(current);
    graph_.RemoveTxn(current);
    for (WindowManager* wm : managers_) wm->EraseMembership(current);
    txn_client_.erase(current);
    ghosts_.erase(current);
    // `aborted_` is kept for the whole run: an aborted transaction's
    // request can still be in flight after it drained, and must be ignored
    // on arrival. Retiring this node may free ghosts downstream.
    for (TxnId target : targets) {
      if (ghosts_.count(target) > 0 && !graph_.HasInEdges(target)) {
        worklist.push_back(target);
      }
    }
  }
}

void WindowManager::OnReturn(ItemId item, Version version) {
  ItemState& state = StateOf(item);
  GTPL_CHECK(!state.at_server) << "return for an item the server holds";
  GTPL_CHECK_LT(state.returns_received, state.returns_expected);
  if (state.return_version < 0) {
    state.return_version = version;
  } else {
    GTPL_CHECK_EQ(state.return_version, version)
        << "final read group returned inconsistent versions for item " << item;
  }
  ++state.returns_received;
  if (state.returns_received == state.returns_expected) {
    InstallAndRedispatch(item);
  }
}

void WindowManager::InstallAndRedispatch(ItemId item) {
  ItemState& state = StateOf(item);
  store_->Install(item, state.return_version);
  state.at_server = true;
  state.fl = nullptr;
  // Undrained members stay in the accessor set: the order "they accessed
  // the item before any future grantee" is a serialization fact that must
  // be enforceable until they are fully drained (§3.3 order consistency).
  state.returns_expected = 0;
  state.returns_received = 0;
  state.return_version = -1;
  if (!state.pending.empty()) DispatchWindow(item);
}

void WindowManager::DispatchWindow(ItemId item) {
  ItemState& state = StateOf(item);
  GTPL_CHECK(state.at_server);
  GTPL_CHECK(!state.pending.empty());
  // Take up to the cap, in arrival order. The cap is the static
  // max_forward_list_length, or the controller's current per-item value.
  const int32_t cap_limit = NextWindowCap(item);
  const size_t cap =
      cap_limit == 0
          ? state.pending.size()
          : std::min(state.pending.size(), static_cast<size_t>(cap_limit));
  std::vector<PendingRequest> batch(state.pending.begin(),
                                    state.pending.begin() +
                                        static_cast<long>(cap));
  state.pending.erase(state.pending.begin(),
                      state.pending.begin() + static_cast<long>(cap));
  RecomputePendingWriteFlag(state);

  // A batch member that already precedes an undrained past accessor of the
  // item cannot be granted after it without making the grant orders
  // inconsistent (a would-be precedence cycle): abort it.
  {
    std::vector<PendingRequest> kept;
    kept.reserve(batch.size());
    for (const PendingRequest& r : batch) {
      if (!coord_->graph_.ReachableAmong(r.txn, state.undrained_members).empty()) {
        AbortTxn(r.txn, r.client, item);
        ++aborts_at_dispatch_batch_;
      } else {
        kept.push_back(r);
      }
    }
    batch = std::move(kept);
    if (batch.empty()) {
      if (!state.pending.empty()) DispatchWindow(item);
      return;
    }
  }

  // Pre-order by policy, then fix a precedence-consistent total order.
  batch = ApplyPolicy(options_.ordering, std::move(batch));
  std::vector<TxnId> txns;
  txns.reserve(batch.size());
  std::unordered_map<TxnId, const PendingRequest*> by_txn;
  for (const PendingRequest& r : batch) {
    txns.push_back(r.txn);
    by_txn[r.txn] = &r;
  }
  const std::vector<TxnId> order = coord_->graph_.ConsistentOrder(txns);

  // The batch members' waits end here. Every request edge into them —
  // including edges bridged through drained or aborted transactions —
  // becomes a permanent grant-order fact; accessor edges below cover
  // orderings that never materialized as waits.
  for (TxnId txn : order) {
    coord_->graph_.PromoteRequestEdgesInto(txn);
    outstanding_request_.erase(txn);
  }
  for (TxnId txn : order) AddAccessorOrderEdges(item, txn);

  ForwardListBuilder builder;
  for (TxnId txn : order) {
    const PendingRequest& r = *by_txn.at(txn);
    builder.Add(r.txn, r.client, r.mode);
  }
  std::shared_ptr<const ForwardList> fl = builder.Build();

  // Chain edges between consecutive entries (structural: forward-list order).
  for (int32_t e = 0; e + 1 < fl->num_entries(); ++e) {
    for (const FlMember& a : fl->entry(e).members) {
      for (const FlMember& b : fl->entry(e + 1).members) {
        coord_->graph_.AddEdge(a.txn, b.txn, kStructuralEdge);
      }
    }
  }

  // Remaining pending requests now wait behind this window; encode the wait
  // from the final entry (paths from earlier entries follow the chain).
  // A pending request that already precedes a batch member is deadlocked.
  if (!state.pending.empty()) {
    std::unordered_set<TxnId> batch_set(order.begin(), order.end());
    const FlEntry& last = fl->entry(fl->num_entries() - 1);
    std::vector<TxnId> doomed;
    for (const PendingRequest& p : state.pending) {
      if (!coord_->graph_.ReachableAmong(p.txn, batch_set).empty()) {
        doomed.push_back(p.txn);
        continue;
      }
      for (const FlMember& m : last.members) {
        coord_->graph_.AddEdge(m.txn, p.txn, kRequestEdge);
      }
    }
    for (TxnId txn : doomed) {
      auto it = coord_->txn_client_.find(txn);
      GTPL_CHECK(it != coord_->txn_client_.end());
      AbortTxn(txn, it->second, item);  // also purges it from state.pending
      ++aborts_at_dispatch_pending_;
    }
  }

  // Window bookkeeping and dispatch. The accessor set accumulates: members
  // of earlier windows stay until drained.
  state.fl = fl;
  state.at_server = false;
  for (TxnId txn : order) {
    state.undrained_members.insert(txn);
    member_of_[txn].push_back(item);
  }
  const FlEntry& final_entry = fl->entry(fl->num_entries() - 1);
  state.returns_expected = final_entry.size();
  state.returns_received = 0;
  state.return_version = -1;
  ++windows_dispatched_;
  total_dispatched_requests_ += static_cast<int64_t>(order.size());
  callbacks_.dispatch(item, store_->VersionOf(item), fl);
}

void WindowManager::AddAccessorOrderEdges(ItemId item, TxnId grantee,
                                          bool skip_current_window) {
  ItemState& state = StateOf(item);
  std::unordered_set<TxnId> current;
  if (skip_current_window && state.fl != nullptr) {
    for (TxnId member : state.fl->MemberTxns()) current.insert(member);
  }
  for (TxnId accessor : state.undrained_members) {
    if (accessor == grantee) continue;
    if (coord_->aborted_.count(accessor) > 0) continue;  // not serialized
    if (skip_current_window && current.count(accessor) > 0) continue;
    coord_->graph_.AddEdge(accessor, grantee, kStructuralEdge);
  }
}

bool WindowManager::ReachesOlderAccessor(ItemId item, TxnId txn) {
  ItemState& state = StateOf(item);
  std::unordered_set<TxnId> older;
  std::unordered_set<TxnId> current;
  if (state.fl != nullptr) {
    for (TxnId member : state.fl->MemberTxns()) current.insert(member);
  }
  for (TxnId accessor : state.undrained_members) {
    if (current.count(accessor) == 0) older.insert(accessor);
  }
  return !coord_->graph_.ReachableAmong(txn, older).empty();
}

void WindowManager::RecomputePendingWriteFlag(ItemState& state) {
  state.has_pending_write = false;
  for (const PendingRequest& r : state.pending) {
    if (r.mode == LockMode::kExclusive) {
      state.has_pending_write = true;
      break;
    }
  }
}

double WindowManager::MeanForwardListLength() const {
  if (windows_dispatched_ == 0) return 0.0;
  return static_cast<double>(total_dispatched_requests_) /
         static_cast<double>(windows_dispatched_);
}

bool WindowManager::ItemAtServer(ItemId item) const {
  return items_[static_cast<size_t>(item)].at_server;
}

int32_t WindowManager::PendingCount(ItemId item) const {
  return static_cast<int32_t>(items_[static_cast<size_t>(item)].pending.size());
}

}  // namespace gtpl::core
