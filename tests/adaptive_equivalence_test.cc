// Standing equivalence suite for the adaptive collection-window controller
// (ISSUE 4 acceptance): with `g2pl.adaptive.enabled == false` every engine
// must be bit-identical to the pre-controller code, even when the adaptive
// knobs are set — the gate is the single `enabled` flag. A second family
// pins the "neutral-armed" identity: a controller pinned to a single cap
// (min == max == initial == C) behaves exactly like the static cap C, so
// the controller's dispatch-path plumbing provably adds no behavior of its
// own. Finally, adaptive runs themselves are deterministic, single-server
// and 4-way sharded.

#include <gtest/gtest.h>

#include "protocols/engine.h"
#include "protocols/sharded.h"

namespace gtpl::proto {
namespace {

void ExpectSameWelford(const stats::Welford& a, const stats::Welford& b,
                       const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

/// Field-for-field equality of everything the protocol *does* — metrics,
/// event counts, traffic, the committed history, and the protocol-event
/// stream. The adaptive cap telemetry is compared separately (a pinned
/// controller reports its cap where the static path reports zeros).
void ExpectSameBehavior(const RunResult& a, const RunResult& b) {
  ExpectSameWelford(a.response, b.response, "response");
  ExpectSameWelford(a.op_wait, b.op_wait, "op_wait");
  ExpectSameWelford(a.abort_age, b.abort_age, "abort_age");
  ExpectSameWelford(a.abort_held_items, b.abort_held_items,
                    "abort_held_items");
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.total_commits, b.total_commits);
  EXPECT_EQ(a.total_aborts, b.total_aborts);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.network.messages, b.network.messages);
  EXPECT_EQ(a.network.server_to_client, b.network.server_to_client);
  EXPECT_EQ(a.network.client_to_server, b.network.client_to_server);
  EXPECT_EQ(a.network.client_to_client, b.network.client_to_client);
  EXPECT_EQ(a.network.payload_units, b.network.payload_units);
  EXPECT_EQ(a.windows_dispatched, b.windows_dispatched);
  EXPECT_EQ(a.mean_forward_list_length, b.mean_forward_list_length);
  EXPECT_EQ(a.read_group_expansions, b.read_group_expansions);
  EXPECT_EQ(a.cross_server_commits, b.cross_server_commits);
  EXPECT_EQ(a.commit_participants.count(), b.commit_participants.count());
  EXPECT_EQ(a.wal_appends, b.wal_appends);
  EXPECT_EQ(a.wal_forces, b.wal_forces);
  EXPECT_EQ(a.wal_retained, b.wal_retained);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    const CommittedTxn& x = a.history[i];
    const CommittedTxn& y = b.history[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.client, y.client);
    EXPECT_EQ(x.start_time, y.start_time);
    EXPECT_EQ(x.commit_time, y.commit_time);
    ASSERT_EQ(x.ops.size(), y.ops.size());
    for (size_t k = 0; k < x.ops.size(); ++k) {
      EXPECT_EQ(x.ops[k].item, y.ops[k].item);
      EXPECT_EQ(x.ops[k].mode, y.ops[k].mode);
      EXPECT_EQ(x.ops[k].version_read, y.ops[k].version_read);
      EXPECT_EQ(x.ops[k].version_written, y.ops[k].version_written);
    }
  }
  ASSERT_EQ(a.protocol_events.size(), b.protocol_events.size());
  for (size_t i = 0; i < a.protocol_events.size(); ++i) {
    const ProtocolEvent& x = a.protocol_events[i];
    const ProtocolEvent& y = b.protocol_events[i];
    EXPECT_EQ(x.kind, y.kind) << "event " << i;
    EXPECT_EQ(x.time, y.time) << "event " << i;
    EXPECT_EQ(x.txn, y.txn) << "event " << i;
    EXPECT_EQ(x.item, y.item) << "event " << i;
    EXPECT_EQ(x.server, y.server) << "event " << i;
    EXPECT_EQ(x.flag, y.flag) << "event " << i;
    ASSERT_EQ(x.entries.size(), y.entries.size()) << "event " << i;
    for (size_t e = 0; e < x.entries.size(); ++e) {
      EXPECT_EQ(x.entries[e].is_read_group, y.entries[e].is_read_group);
      EXPECT_EQ(x.entries[e].txns, y.entries[e].txns);
    }
  }
}

void ExpectSameResult(const RunResult& a, const RunResult& b) {
  ExpectSameBehavior(a, b);
  EXPECT_EQ(a.mean_effective_cap, b.mean_effective_cap);
  EXPECT_EQ(a.final_effective_cap, b.final_effective_cap);
  EXPECT_EQ(a.cap_increases, b.cap_increases);
  EXPECT_EQ(a.cap_decreases, b.cap_decreases);
}

SimConfig BaseConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.latency = 50;
  config.workload.num_items = 15;
  config.measured_txns = 400;
  config.warmup_txns = 40;
  config.seed = 11;
  config.record_history = true;
  config.record_protocol_events = true;
  config.max_sim_time = 2'000'000'000;
  return config;
}

/// Sets every adaptive knob to a non-default value but leaves the master
/// switch off: nothing downstream may change.
void ArmKnobsDisabled(SimConfig* config) {
  config->g2pl.adaptive.enabled = false;
  config->g2pl.adaptive.initial_cap = 2;
  config->g2pl.adaptive.min_cap = 2;
  config->g2pl.adaptive.max_cap = 6;
  config->g2pl.adaptive.decrease_factor = 0.25;
  config->g2pl.adaptive.increase_step = 3;
  config->g2pl.adaptive.hysteresis = 1;
}

TEST(AdaptiveEquivalenceTest, DisabledControllerIsInertForEveryProtocol) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl, Protocol::kC2pl,
                            Protocol::kCbl, Protocol::kO2pl}) {
    SimConfig config = BaseConfig(protocol);
    const RunResult baseline = RunSimulation(config);
    ArmKnobsDisabled(&config);
    const RunResult armed = RunSimulation(config);
    ASSERT_FALSE(baseline.timed_out) << ToString(protocol);
    ExpectSameResult(baseline, armed);
  }
}

TEST(AdaptiveEquivalenceTest, DisabledControllerIsInertUnderSharding) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = BaseConfig(protocol);
    config.num_servers = 4;
    const RunResult baseline = RunSimulation(config);
    ArmKnobsDisabled(&config);
    const RunResult armed = RunSimulation(config);
    ASSERT_FALSE(baseline.timed_out) << ToString(protocol);
    ExpectSameResult(baseline, armed);
  }
}

/// A controller pinned to one cap value must reproduce the static cap's
/// behavior bit for bit — on the plain engine and 4-way sharded, with and
/// without aging in play.
void RunPinnedEquivalence(SimConfig config, int32_t cap) {
  config.g2pl.max_forward_list_length = cap;
  config.g2pl.adaptive.enabled = false;
  const RunResult statically_capped = RunSimulation(config);
  config.g2pl.max_forward_list_length = 0;
  config.g2pl.adaptive.enabled = true;
  config.g2pl.adaptive.initial_cap = cap;
  config.g2pl.adaptive.min_cap = cap;
  config.g2pl.adaptive.max_cap = cap;
  const RunResult pinned = RunSimulation(config);
  ASSERT_FALSE(statically_capped.timed_out);
  ExpectSameBehavior(statically_capped, pinned);
  // The pinned controller's telemetry is the pinned cap itself.
  EXPECT_EQ(pinned.mean_effective_cap, static_cast<double>(cap));
  EXPECT_EQ(pinned.cap_increases, 0);
  EXPECT_EQ(pinned.cap_decreases, 0);
}

TEST(AdaptiveEquivalenceTest, PinnedControllerMatchesStaticCap) {
  RunPinnedEquivalence(BaseConfig(Protocol::kG2pl), 3);
}

TEST(AdaptiveEquivalenceTest, PinnedControllerMatchesStaticCapWithAging) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.aging_threshold = 2;
  RunPinnedEquivalence(config, 2);
}

TEST(AdaptiveEquivalenceTest, PinnedControllerMatchesStaticCapSharded) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.num_servers = 4;
  RunPinnedEquivalence(config, 3);
}

TEST(AdaptiveEquivalenceTest, AdaptiveRunsAreDeterministic) {
  for (int32_t servers : {1, 4}) {
    SimConfig config = BaseConfig(Protocol::kG2pl);
    config.num_servers = servers;
    config.g2pl.adaptive.enabled = true;
    config.g2pl.adaptive.initial_cap = 3;
    config.g2pl.adaptive.max_cap = 8;
    config.g2pl.aging_threshold = 2;
    const RunResult a = RunSimulation(config);
    const RunResult b = RunSimulation(config);
    ASSERT_FALSE(a.timed_out);
    ExpectSameResult(a, b);
    // The controller visibly adapted in this configuration (guards against
    // a silently disconnected feedback path).
    EXPECT_GT(a.cap_decreases, 0) << servers << " server(s)";
  }
}

}  // namespace
}  // namespace gtpl::proto
