// Unit tests for the exec subsystem: thread pool lifecycle and guarantees,
// parallel loop helpers, and the deterministic sweep runner.

#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel.h"
#include "exec/sweep.h"

namespace gtpl::exec {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, RunsEveryTaskToCompletionOnDestruction) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Post([&completed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        completed.fetch_add(1);
      });
    }
    // Destructor must drain all 64, not just the in-flight ones.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> failing =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> healthy = pool.Submit([] { return 3; });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // A throwing task must not poison the pool.
  EXPECT_EQ(healthy.get(), 3);
}

TEST(ThreadPoolTest, TaskMayEnqueueFurtherTasksWithoutDeadlock) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Post([&pool, &completed] {
        pool.Post([&pool, &completed] {
          pool.Post([&completed] { completed.fetch_add(1); });
          completed.fetch_add(1);
        });
        completed.fetch_add(1);
      });
    }
    // Chained enqueues during the destructor drain must all run.
  }
  EXPECT_EQ(completed.load(), 24);
}

TEST(ThreadPoolTest, CountsExecutedTasks) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(pool.tasks_executed(), 10);
}

TEST(ResolveJobsTest, ExplicitValueWins) {
  EXPECT_EQ(ResolveJobs(3), 3);
  EXPECT_EQ(ResolveJobs(1), 1);
}

TEST(ResolveJobsTest, EnvironmentFallback) {
  ASSERT_EQ(setenv("GTPL_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveJobs(0), 5);
  ASSERT_EQ(setenv("GTPL_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ResolveJobs(0), 1);  // malformed env falls back to hardware
  ASSERT_EQ(unsetenv("GTPL_JOBS"), 0);
  EXPECT_GE(ResolveJobs(0), 1);
}

TEST(ParallelForTest, CoversExactlyTheRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(pool, 10, 90,
              [&hits](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i >= 10 && i < 90 ? 1 : 0)
        << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 5, 5, [](int64_t) { FAIL() << "must not run"; });
}

TEST(ParallelForTest, RethrowsLowestIndexedFailureAfterCompletingRange) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    ParallelFor(
        pool, 0, 50,
        [&ran](int64_t i) {
          ran.fetch_add(1);
          if (i == 13 || i == 37) {
            throw std::out_of_range(std::to_string(i));
          }
        },
        /*chunk=*/1);
    FAIL() << "expected an exception";
  } catch (const std::out_of_range& error) {
    EXPECT_STREQ(error.what(), "13");  // deterministic: lowest index wins
  }
  EXPECT_EQ(ran.load(), 50);  // the range still ran to completion
}

TEST(ParallelMapTest, PreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items;
  for (int i = 0; i < 200; ++i) items.push_back(i);
  const std::vector<int> doubled =
      ParallelMap(pool, items, [](int x) { return 2 * x; });
  ASSERT_EQ(doubled.size(), items.size());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(doubled[static_cast<size_t>(i)], 2 * i);
  }
}

TEST(SweepRunnerTest, DeliversCellsInPointRepOrder) {
  SweepRunner<int> runner(/*jobs=*/3);
  EXPECT_EQ(runner.jobs(), 3);
  const std::vector<std::vector<int>> grid = runner.Run(
      4, 5, [](size_t point, int32_t rep) {
        return static_cast<int>(point) * 100 + rep;
      });
  ASSERT_EQ(grid.size(), 4u);
  for (size_t point = 0; point < 4; ++point) {
    ASSERT_EQ(grid[point].size(), 5u);
    for (int32_t rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(grid[point][static_cast<size_t>(rep)],
                static_cast<int>(point) * 100 + rep);
    }
  }
  EXPECT_GE(runner.elapsed_seconds(), 0.0);
}

TEST(SweepRunnerTest, SerialAndParallelGridsMatch) {
  auto cell = [](size_t point, int32_t rep) {
    // A little arithmetic so cells are distinguishable and cheap.
    return static_cast<double>(point + 1) / (rep + 2);
  };
  SweepRunner<double> serial(1);
  SweepRunner<double> parallel_runner(4);
  EXPECT_EQ(serial.Run(6, 3, cell), parallel_runner.Run(6, 3, cell));
}

}  // namespace
}  // namespace gtpl::exec
