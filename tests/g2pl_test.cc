// Protocol-level tests of g-2PL behaviors: grouping effects, MR1W
// concurrency, the read penalty, the read-only optimization, aging, and
// option plumbing.

#include "protocols/g2pl.h"

#include <gtest/gtest.h>

#include "protocols/engine.h"
#include "protocols/s2pl.h"

namespace gtpl::proto {
namespace {

SimConfig HotItemConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 10;
  config.latency = 100;
  config.workload.num_items = 1;
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 1;
  config.workload.read_prob = 0.0;
  config.measured_txns = 500;
  config.warmup_txns = 50;
  config.seed = 21;
  config.max_sim_time = 1'000'000'000;
  return config;
}

TEST(G2plTest, GroupingHalvesHotItemHandoffCost) {
  const RunResult s2pl = RunSimulation(HotItemConfig(Protocol::kS2pl));
  const RunResult g2pl = RunSimulation(HotItemConfig(Protocol::kG2pl));
  ASSERT_FALSE(s2pl.timed_out);
  ASSERT_FALSE(g2pl.timed_out);
  // Hand-off costs ~2L+think under s-2PL but ~L+think under g-2PL; with
  // deep queues the response ratio approaches (L+t)/(2L+t) ~ 0.5.
  EXPECT_LT(g2pl.response.mean(), 0.7 * s2pl.response.mean());
  EXPECT_GT(g2pl.mean_forward_list_length, 3.0);
}

TEST(G2plTest, FewerMessagesPerCommitOnHotItem) {
  const RunResult s2pl = RunSimulation(HotItemConfig(Protocol::kS2pl));
  const RunResult g2pl = RunSimulation(HotItemConfig(Protocol::kG2pl));
  const double s2pl_rate =
      static_cast<double>(s2pl.network.messages) / s2pl.commits;
  const double g2pl_rate =
      static_cast<double>(g2pl.network.messages) / g2pl.commits;
  EXPECT_LT(g2pl_rate, s2pl_rate);
}

TEST(G2plTest, ReadOnlyWorkloadPenalizedVersusS2pl) {
  SimConfig config = HotItemConfig(Protocol::kS2pl);
  config.workload.num_items = 10;
  config.workload.max_items_per_txn = 3;
  config.workload.read_prob = 1.0;
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kG2pl;
  const RunResult g2pl = RunSimulation(config);
  // "The reads are penalized in the g-2PL system": requests are granted
  // only at window boundaries, while s-2PL shares read locks instantly.
  EXPECT_GT(g2pl.response.mean(), s2pl.response.mean());
  EXPECT_EQ(s2pl.aborts, 0);
}

TEST(G2plTest, ReadExpansionRemovesReadOnlyDeadlocksAndPenalty) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.workload.num_items = 10;
  config.workload.max_items_per_txn = 3;
  config.workload.read_prob = 1.0;
  const RunResult plain = RunSimulation(config);
  config.g2pl.expand_read_groups = true;
  const RunResult expanded = RunSimulation(config);
  EXPECT_GT(plain.aborts, 0);      // read-only deadlocks exist (§3.3)
  EXPECT_EQ(expanded.aborts, 0);   // and the expansion eliminates them
  EXPECT_LT(expanded.response.mean(), plain.response.mean());
  EXPECT_GT(expanded.read_group_expansions, 0);
}

TEST(G2plTest, Mr1wSpeedsUpMixedWorkload) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.workload.read_prob = 0.7;
  config.num_clients = 15;
  const RunResult with_mr1w = RunSimulation(config);
  config.g2pl.mr1w = false;
  const RunResult basic = RunSimulation(config);
  ASSERT_FALSE(with_mr1w.timed_out);
  ASSERT_FALSE(basic.timed_out);
  // The writer following a read group overlaps its execution with the
  // readers, so MR1W can only help.
  EXPECT_LE(with_mr1w.response.mean(), basic.response.mean() * 1.01);
}

TEST(G2plTest, BasicModeStillSerializable) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.workload.num_items = 8;
  config.workload.max_items_per_txn = 4;
  config.workload.read_prob = 0.6;
  config.g2pl.mr1w = false;
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(G2plTest, ForwardListCapLimitsWindowLength) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.g2pl.max_forward_list_length = 2;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_LE(result.mean_forward_list_length, 2.0);
}

TEST(G2plTest, OrderingPoliciesAllSerializable) {
  for (core::OrderingPolicy policy :
       {core::OrderingPolicy::kFifo, core::OrderingPolicy::kReadsFirst,
        core::OrderingPolicy::kWritesFirst}) {
    SimConfig config = HotItemConfig(Protocol::kG2pl);
    config.workload.num_items = 8;
    config.workload.max_items_per_txn = 4;
    config.workload.read_prob = 0.5;
    config.g2pl.ordering = policy;
    config.record_history = true;
    const RunResult result = RunSimulation(config);
    ASSERT_FALSE(result.timed_out)
        << "policy " << core::ToString(policy);
    std::string why;
    EXPECT_TRUE(HistoryIsSerializable(result.history, &why))
        << core::ToString(policy) << ": " << why;
  }
}

TEST(G2plTest, AgingThresholdKeepsSystemLive) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.workload.num_items = 6;
  config.workload.max_items_per_txn = 4;
  config.workload.read_prob = 0.3;
  config.g2pl.aging_threshold = 2;  // aggressive member-abort path
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(G2plTest, DelayedAbortNoticeStillCorrect) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.workload.num_items = 8;
  config.workload.max_items_per_txn = 4;
  config.workload.read_prob = 0.4;
  config.instant_abort_notice = false;
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(G2plTest, WindowManagerCountersExposed) {
  G2plEngine engine(HotItemConfig(Protocol::kG2pl));
  const RunResult result = engine.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(engine.window_manager().windows_dispatched(),
            result.windows_dispatched);
  EXPECT_GT(result.windows_dispatched, 0);
  EXPECT_GT(result.mean_forward_list_length, 1.0);
}

TEST(G2plTest, ZeroLatencyDegenerateCaseWorks) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  config.latency = 0;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.commits, 500);
}

TEST(G2plTest, WalForceDelayExtendsResponse) {
  SimConfig config = HotItemConfig(Protocol::kG2pl);
  const RunResult fast = RunSimulation(config);
  config.wal_force_delay = 50;
  const RunResult slow = RunSimulation(config);
  ASSERT_FALSE(slow.timed_out);
  EXPECT_GT(slow.response.mean(), fast.response.mean());
  EXPECT_GT(slow.wal_forces, 0);
}

}  // namespace
}  // namespace gtpl::proto
