// Golden regression tests: tiny deterministic grids of the latency bench
// (Figures 2-4) and the sharding bench, rendered to fixed-precision metric
// tables and diffed against checked-in expectations. Catches silent
// protocol drift — a change that flips any metric of any grid point fails
// here even if every invariant still holds.
//
// To regenerate after an *intended* protocol change:
//   GTPL_UPDATE_GOLDEN=1 ./build/tests/golden_test
// then review the diff of tests/golden/*.golden like any other code change.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "protocols/config.h"

namespace gtpl::harness {
namespace {

#ifndef GTPL_GOLDEN_DIR
#error "GTPL_GOLDEN_DIR must point at the checked-in golden files"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(GTPL_GOLDEN_DIR) + "/" + name;
}

void CompareOrUpdate(const std::string& name, const std::string& fresh) {
  const std::string path = GoldenPath(name);
  if (std::getenv("GTPL_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with GTPL_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), fresh)
      << "metrics drifted from " << path
      << "; if the change is intended, regenerate with GTPL_UPDATE_GOLDEN=1 "
         "and review the diff";
}

proto::SimConfig TinyBaseConfig() {
  proto::SimConfig config;
  config.num_clients = 20;
  config.workload.num_items = 25;
  config.measured_txns = 300;
  config.warmup_txns = 30;
  config.seed = 42;
  config.max_sim_time = 10'000'000'000;
  return config;
}

TEST(GoldenTest, Fig24LatencyGrid) {
  // Shrunk version of bench_fig2_4_latency's grid (same sweep structure and
  // seed derivation as the bench: RunSweep with point-seed mixing).
  std::vector<proto::SimConfig> points;
  struct Row {
    double pr;
    SimTime latency;
    proto::Protocol protocol;
  };
  std::vector<Row> rows;
  for (double pr : {0.0, 0.6}) {
    for (SimTime latency : {1, 250}) {
      for (proto::Protocol protocol :
           {proto::Protocol::kS2pl, proto::Protocol::kG2pl}) {
        proto::SimConfig config = TinyBaseConfig();
        config.workload.read_prob = pr;
        config.latency = latency;
        config.protocol = protocol;
        points.push_back(config);
        rows.push_back({pr, latency, protocol});
      }
    }
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"pr", "latency", "protocol", "resp", "abort%", "msgs/commit",
               "fl_len", "lockw", "prop", "think", "resp_p50", "resp_p99"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    // The five span phases sum to the mean response of each replication, so
    // the averaged phases must sum to the averaged response too.
    EXPECT_NEAR(point.mean_lock_wait + point.mean_propagation +
                    point.mean_queueing + point.mean_execution +
                    point.mean_commit_phase,
                point.response.mean, 1e-6 * point.response.mean + 1e-6);
    table.AddRow({Fmt(rows[i].pr, 1), std::to_string(rows[i].latency),
                  proto::ToString(rows[i].protocol),
                  Fmt(point.response.mean, 3), Fmt(point.abort_pct.mean, 3),
                  Fmt(point.mean_messages_per_commit, 3),
                  Fmt(point.fl_length.mean, 3), Fmt(point.mean_lock_wait, 3),
                  Fmt(point.mean_propagation, 3), Fmt(point.mean_execution, 3),
                  Fmt(point.response_p50, 3), Fmt(point.response_p99, 3)});
  }
  CompareOrUpdate("fig2_4_latency.golden", table.ToCsv());
}

TEST(GoldenTest, BandwidthGrid) {
  // Shrunk version of bench_ext_bandwidth's grid: bandwidth x latency with
  // NIC queues on (bandwidth 0 = the infinite-bandwidth reference row).
  std::vector<proto::SimConfig> points;
  struct Row {
    proto::Protocol protocol;
    double bandwidth;
    SimTime latency;
  };
  std::vector<Row> rows;
  for (proto::Protocol protocol :
       {proto::Protocol::kS2pl, proto::Protocol::kG2pl}) {
    for (double bandwidth : {0.0, 2.0, 0.5}) {
      for (SimTime latency : {1, 100}) {
        proto::SimConfig config = TinyBaseConfig();
        config.protocol = protocol;
        config.latency = latency;
        config.link_bandwidth = bandwidth;
        config.nic_queue = bandwidth > 0.0;
        points.push_back(config);
        rows.push_back({protocol, bandwidth, latency});
      }
    }
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"protocol", "bw", "latency", "resp", "abort%", "msgs/commit",
               "qdelay", "qdelay_p99", "util%"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    table.AddRow({proto::ToString(rows[i].protocol), Fmt(rows[i].bandwidth, 1),
                  std::to_string(rows[i].latency), Fmt(point.response.mean, 3),
                  Fmt(point.abort_pct.mean, 3),
                  Fmt(point.mean_messages_per_commit, 3),
                  Fmt(point.mean_queue_delay, 3),
                  Fmt(point.queue_delay_p99, 3),
                  Fmt(100 * point.mean_link_utilization, 3)});
  }
  CompareOrUpdate("bandwidth.golden", table.ToCsv());
}

TEST(GoldenTest, ShardingGrid) {
  // Shrunk version of bench_ext_sharding's grid.
  std::vector<proto::SimConfig> points;
  struct Row {
    proto::Protocol protocol;
    int32_t servers;
  };
  std::vector<Row> rows;
  for (proto::Protocol protocol :
       {proto::Protocol::kS2pl, proto::Protocol::kG2pl}) {
    for (int32_t servers : {1, 2, 4}) {
      proto::SimConfig config = TinyBaseConfig();
      config.protocol = protocol;
      config.latency = 100;
      config.num_servers = servers;
      points.push_back(config);
      rows.push_back({protocol, servers});
    }
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"protocol", "servers", "resp", "abort%", "xserver%", "parts",
               "msgs/commit", "lockw", "commitph", "resp_p99"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    EXPECT_NEAR(point.mean_lock_wait + point.mean_propagation +
                    point.mean_queueing + point.mean_execution +
                    point.mean_commit_phase,
                point.response.mean, 1e-6 * point.response.mean + 1e-6);
    table.AddRow({proto::ToString(rows[i].protocol),
                  std::to_string(rows[i].servers), Fmt(point.response.mean, 3),
                  Fmt(point.abort_pct.mean, 3), Fmt(point.cross_server_pct, 3),
                  Fmt(point.mean_commit_participants, 3),
                  Fmt(point.mean_messages_per_commit, 3),
                  Fmt(point.mean_lock_wait, 3),
                  Fmt(point.mean_commit_phase, 3),
                  Fmt(point.response_p99, 3)});
  }
  CompareOrUpdate("sharding.golden", table.ToCsv());
}

TEST(GoldenTest, AdaptiveWindowGrid) {
  // Shrunk version of bench_ext_adaptive's grid: Zipf skew x cap in the
  // write-heavy aged regime, static caps against the adaptive controller
  // (cap -1), single-server and 2-way sharded adaptive points. Pins both
  // the engine metrics and the controller telemetry.
  std::vector<proto::SimConfig> points;
  struct Row {
    double zipf;
    int32_t cap;
    int32_t servers;
  };
  std::vector<Row> rows;
  for (double zipf : {0.0, 1.1}) {
    for (int32_t cap : {1, 3, 0, -1}) {
      for (int32_t servers : {1, 2}) {
        if (cap != -1 && servers != 1) continue;  // shard only the adaptive rows
        proto::SimConfig config = TinyBaseConfig();
        config.protocol = proto::Protocol::kG2pl;
        config.latency = 100;
        config.num_servers = servers;
        config.workload.read_prob = 0.2;
        config.workload.zipf_theta = zipf;
        config.g2pl.aging_threshold = 2;
        if (cap == -1) {
          config.g2pl.adaptive.enabled = true;
        } else {
          config.g2pl.max_forward_list_length = cap;
        }
        points.push_back(config);
        rows.push_back({zipf, cap, servers});
      }
    }
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"zipf", "cap", "servers", "resp", "abort%", "fl_len", "eff_cap",
               "final_cap", "grows", "shrinks"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    table.AddRow({Fmt(rows[i].zipf, 1),
                  rows[i].cap == -1 ? "adapt" : std::to_string(rows[i].cap),
                  std::to_string(rows[i].servers), Fmt(point.response.mean, 3),
                  Fmt(point.abort_pct.mean, 3), Fmt(point.fl_length.mean, 3),
                  Fmt(point.mean_effective_cap, 3),
                  Fmt(point.final_effective_cap, 3),
                  Fmt(point.mean_cap_increases, 1),
                  Fmt(point.mean_cap_decreases, 1)});
  }
  CompareOrUpdate("adaptive.golden", table.ToCsv());
}

TEST(GoldenTest, CcZooGrid) {
  // Shrunk version of bench_ext_cczoo's grid: the four new cc engines over
  // latency x server count. Pins the initial behavior of each engine the
  // same way fig2_4_latency.golden pins the legacy protocols — any later
  // change to a policy or to the shared lock-engine path that shifts a
  // metric of any point fails here.
  std::vector<proto::SimConfig> points;
  struct Row {
    proto::Protocol protocol;
    SimTime latency;
    int32_t servers;
  };
  std::vector<Row> rows;
  for (proto::Protocol protocol :
       {proto::Protocol::kNoWait, proto::Protocol::kWaitDie,
        proto::Protocol::kOcc, proto::Protocol::kOrdered}) {
    for (SimTime latency : {1, 250}) {
      for (int32_t servers : {1, 2}) {
        proto::SimConfig config = TinyBaseConfig();
        config.protocol = protocol;
        config.latency = latency;
        config.num_servers = servers;
        points.push_back(config);
        rows.push_back({protocol, latency, servers});
      }
    }
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"cc", "latency", "servers", "resp", "abort%", "msgs/commit",
               "lockw", "prop", "commitph", "resp_p99"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    EXPECT_NEAR(point.mean_lock_wait + point.mean_propagation +
                    point.mean_queueing + point.mean_execution +
                    point.mean_commit_phase,
                point.response.mean, 1e-6 * point.response.mean + 1e-6);
    table.AddRow({cc::EngineFor(rows[i].protocol).name,
                  std::to_string(rows[i].latency),
                  std::to_string(rows[i].servers), Fmt(point.response.mean, 3),
                  Fmt(point.abort_pct.mean, 3),
                  Fmt(point.mean_messages_per_commit, 3),
                  Fmt(point.mean_lock_wait, 3), Fmt(point.mean_propagation, 3),
                  Fmt(point.mean_commit_phase, 3),
                  Fmt(point.response_p99, 3)});
  }
  CompareOrUpdate("cczoo.golden", table.ToCsv());
}

TEST(GoldenTest, CommitPathGrid) {
  // Shrunk version of bench_ext_commit's grid (A17): every commit-path
  // variant over latency x read mix at 4 servers, plus the coordinator
  // ablation point (fast server mesh) where kCoord actually moves the
  // coordinator. Pins the cross-server share, the per-round sub-spans, the
  // p50 cross-commit span, the flight counts, and the variant telemetry —
  // any change to the 2PC machinery that shifts one metric of one variant
  // fails here even with every invariant intact.
  std::vector<proto::SimConfig> points;
  struct Row {
    proto::CommitPath path;
    SimTime latency;
    SimTime server_latency;
    double read_prob;
  };
  std::vector<Row> rows;
  for (const proto::CommitPathInfo& info : proto::CommitPaths()) {
    for (SimTime latency : {100, 400}) {
      for (double read_prob : {0.2, 0.8}) {
        proto::SimConfig config = TinyBaseConfig();
        config.protocol = proto::Protocol::kS2pl;
        config.num_servers = 4;
        config.latency = latency;
        config.commit_path = info.path;
        config.workload.read_prob = read_prob;
        points.push_back(config);
        rows.push_back({info.path, latency, -1, read_prob});
      }
    }
    // The fast-mesh point: only classic vs coord differ here, but running
    // all four keeps the table uniform and pins that early/fastpath ignore
    // server_latency for their own flights.
    proto::SimConfig mesh = TinyBaseConfig();
    mesh.protocol = proto::Protocol::kS2pl;
    mesh.num_servers = 4;
    mesh.latency = 200;
    mesh.server_latency = 20;
    mesh.commit_path = info.path;
    mesh.workload.read_prob = 0.5;
    points.push_back(mesh);
    rows.push_back({info.path, 200, 20, 0.5});
  }
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  Table table({"commit", "latency", "srvlat", "readp", "resp", "abort%",
               "xserver%", "prep", "vote", "xp50", "flights", "fast%",
               "coord%", "fb%"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const PointResult& point = sweep.points[i];
    EXPECT_FALSE(point.any_timed_out);
    EXPECT_NEAR(point.mean_lock_wait + point.mean_propagation +
                    point.mean_queueing + point.mean_execution +
                    point.mean_commit_phase,
                point.response.mean, 1e-6 * point.response.mean + 1e-6);
    // The sub-spans never exceed the commit phase they decompose.
    EXPECT_LE(point.mean_commit_prepare + point.mean_commit_vote,
              point.mean_commit_phase + 1e-9);
    table.AddRow({proto::ToString(rows[i].path),
                  std::to_string(rows[i].latency),
                  std::to_string(rows[i].server_latency),
                  Fmt(rows[i].read_prob, 1), Fmt(point.response.mean, 3),
                  Fmt(point.abort_pct.mean, 3),
                  Fmt(point.cross_server_pct, 3),
                  Fmt(point.mean_commit_prepare, 3),
                  Fmt(point.mean_commit_vote, 3), Fmt(point.xcommit_p50, 3),
                  Fmt(point.mean_commit_flights, 3),
                  Fmt(point.fastpath_pct, 3), Fmt(point.coord_remote_pct, 3),
                  Fmt(point.fallback_pct, 3)});
  }
  CompareOrUpdate("commit.golden", table.ToCsv());
}

}  // namespace
}  // namespace gtpl::harness
