// Unit tests for forward-list ordering policies.

#include "core/ordering.h"

#include <gtest/gtest.h>

namespace gtpl::core {
namespace {

std::vector<PendingRequest> Batch() {
  return {
      {1, 1, LockMode::kExclusive, 0, 0},
      {2, 2, LockMode::kShared, 1, 0},
      {3, 3, LockMode::kExclusive, 2, 0},
      {4, 4, LockMode::kShared, 3, 0},
  };
}

std::vector<TxnId> Txns(const std::vector<PendingRequest>& batch) {
  std::vector<TxnId> out;
  for (const PendingRequest& r : batch) out.push_back(r.txn);
  return out;
}

TEST(OrderingTest, FifoKeepsArrivalOrder) {
  const auto ordered = ApplyPolicy(OrderingPolicy::kFifo, Batch());
  EXPECT_EQ(Txns(ordered), (std::vector<TxnId>{1, 2, 3, 4}));
}

TEST(OrderingTest, ReadsFirstStablePartition) {
  const auto ordered = ApplyPolicy(OrderingPolicy::kReadsFirst, Batch());
  EXPECT_EQ(Txns(ordered), (std::vector<TxnId>{2, 4, 1, 3}));
}

TEST(OrderingTest, WritesFirstStablePartition) {
  const auto ordered = ApplyPolicy(OrderingPolicy::kWritesFirst, Batch());
  EXPECT_EQ(Txns(ordered), (std::vector<TxnId>{1, 3, 2, 4}));
}

TEST(OrderingTest, EmptyBatch) {
  EXPECT_TRUE(ApplyPolicy(OrderingPolicy::kReadsFirst, {}).empty());
}

TEST(OrderingTest, PolicyNames) {
  EXPECT_STREQ(ToString(OrderingPolicy::kFifo), "fifo");
  EXPECT_STREQ(ToString(OrderingPolicy::kReadsFirst), "reads-first");
  EXPECT_STREQ(ToString(OrderingPolicy::kWritesFirst), "writes-first");
}

}  // namespace
}  // namespace gtpl::core
