// Unit tests for run metrics and the serializability checker.

#include "protocols/metrics.h"

#include <gtest/gtest.h>

namespace gtpl::proto {
namespace {

CommittedTxn MakeTxn(TxnId id, std::vector<OpRecord> ops) {
  CommittedTxn txn;
  txn.id = id;
  txn.ops = std::move(ops);
  return txn;
}

OpRecord Read(ItemId item, Version version) {
  return OpRecord{item, LockMode::kShared, version, 0};
}

OpRecord Write(ItemId item, Version read, Version written) {
  return OpRecord{item, LockMode::kExclusive, read, written};
}

TEST(SerializabilityTest, EmptyHistoryIsSerializable) {
  EXPECT_TRUE(HistoryIsSerializable({}));
}

TEST(SerializabilityTest, SerialWritersChainIsSerializable) {
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Write(0, 0, 1)}));
  history.push_back(MakeTxn(2, {Write(0, 1, 2)}));
  history.push_back(MakeTxn(3, {Write(0, 2, 3)}));
  EXPECT_TRUE(HistoryIsSerializable(history));
}

TEST(SerializabilityTest, ReadersBetweenWritersSerializable) {
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Write(0, 0, 1)}));
  history.push_back(MakeTxn(2, {Read(0, 1)}));
  history.push_back(MakeTxn(3, {Read(0, 1)}));
  history.push_back(MakeTxn(4, {Write(0, 1, 2)}));
  EXPECT_TRUE(HistoryIsSerializable(history));
}

TEST(SerializabilityTest, ClassicWriteSkewCycleDetected) {
  // T1 reads x=0 and writes y=1; T2 reads y=0 and writes x=1.
  // T1 must precede T2 on y (T2... actually: T1 read x version 0, T2 wrote
  // x version 1 => T1 -> T2; T2 read y version 0, T1 wrote y version 1 =>
  // T2 -> T1. Cycle.
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Read(0, 0), Write(1, 0, 1)}));
  history.push_back(MakeTxn(2, {Read(1, 0), Write(0, 0, 1)}));
  std::string why;
  EXPECT_FALSE(HistoryIsSerializable(history, &why));
  EXPECT_FALSE(why.empty());
}

TEST(SerializabilityTest, InconsistentReadOrderDetected) {
  // T3 reads x after T1's write but y before T2's write, while T4 does the
  // opposite — fine individually, but make the writers depend on the
  // readers so a cycle forms:
  // T1 writes x=1. T2 writes y=1.
  // T3 reads x=1 (T1->T3) and y=0 (T3->T2).
  // T4 reads y=1 (T2->T4) and x=0 (T4->T1).
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Write(0, 0, 1)}));
  history.push_back(MakeTxn(2, {Write(1, 0, 1)}));
  history.push_back(MakeTxn(3, {Read(0, 1), Read(1, 0)}));
  history.push_back(MakeTxn(4, {Read(1, 1), Read(0, 0)}));
  EXPECT_FALSE(HistoryIsSerializable(history));
}

TEST(SerializabilityTest, DuplicateVersionWritersRejected) {
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Write(0, 0, 1)}));
  history.push_back(MakeTxn(2, {Write(0, 0, 1)}));
  std::string why;
  EXPECT_FALSE(HistoryIsSerializable(history, &why));
  EXPECT_NE(why.find("two committed writers"), std::string::npos);
}

TEST(SerializabilityTest, MultiItemInterleavingSerializable) {
  std::vector<CommittedTxn> history;
  history.push_back(MakeTxn(1, {Write(0, 0, 1), Write(1, 0, 1)}));
  history.push_back(MakeTxn(2, {Read(0, 1), Write(2, 0, 1)}));
  history.push_back(MakeTxn(3, {Read(1, 1), Read(2, 1)}));
  EXPECT_TRUE(HistoryIsSerializable(history));
}

TEST(RunResultTest, AbortPercent) {
  RunResult result;
  result.commits = 60;
  result.aborts = 40;
  EXPECT_DOUBLE_EQ(result.AbortPercent(), 40.0);
  RunResult empty;
  EXPECT_EQ(empty.AbortPercent(), 0.0);
}

TEST(RunResultTest, Throughput) {
  RunResult result;
  result.commits = 500;
  result.end_time = 1'000'000;
  EXPECT_DOUBLE_EQ(result.Throughput(), 0.5);
}

}  // namespace
}  // namespace gtpl::proto
