// The exec subsystem's determinism contract, on real simulations: the same
// base seed produces bit-identical PointResults at any job count, because
// per-(point, replication) seeds are derived from the configuration alone
// and aggregation folds the gathered replications in a fixed order.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "protocols/config.h"

namespace gtpl::harness {
namespace {

proto::SimConfig SmallConfig(proto::Protocol protocol, SimTime latency) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 6;
  config.latency = latency;
  config.workload.num_items = 10;
  config.measured_txns = 250;
  config.warmup_txns = 25;
  config.seed = 42;
  config.max_sim_time = 100'000'000;
  return config;
}

/// Bit-exact comparison of every result field except wall_seconds (timing
/// is the one thing allowed to differ between job counts).
void ExpectPointsIdentical(const PointResult& a, const PointResult& b) {
  EXPECT_EQ(a.response.runs, b.response.runs);
  EXPECT_EQ(a.response.mean, b.response.mean);
  EXPECT_EQ(a.response.stddev, b.response.stddev);
  EXPECT_EQ(a.response.ci_half_width, b.response.ci_half_width);
  EXPECT_EQ(a.response.relative_precision, b.response.relative_precision);
  EXPECT_EQ(a.abort_pct.mean, b.abort_pct.mean);
  EXPECT_EQ(a.abort_pct.ci_half_width, b.abort_pct.ci_half_width);
  EXPECT_EQ(a.throughput.mean, b.throughput.mean);
  EXPECT_EQ(a.throughput.ci_half_width, b.throughput.ci_half_width);
  EXPECT_EQ(a.fl_length.mean, b.fl_length.mean);
  EXPECT_EQ(a.mean_messages_per_commit, b.mean_messages_per_commit);
  EXPECT_EQ(a.mean_payload_per_commit, b.mean_payload_per_commit);
  EXPECT_EQ(a.expansions_per_commit, b.expansions_per_commit);
  EXPECT_EQ(a.total_commits, b.total_commits);
  EXPECT_EQ(a.total_aborts, b.total_aborts);
  EXPECT_EQ(a.any_timed_out, b.any_timed_out);
}

TEST(ExecEquivalenceTest, RunReplicatedSerialEqualsParallel) {
  const proto::SimConfig config = SmallConfig(proto::Protocol::kG2pl, 25);
  const PointResult serial = RunReplicated(config, /*runs=*/4, /*jobs=*/1);
  const PointResult parallel = RunReplicated(config, /*runs=*/4, /*jobs=*/4);
  ExpectPointsIdentical(serial, parallel);
  EXPECT_GT(serial.response.mean, 0.0);
}

TEST(ExecEquivalenceTest, RunSweepSerialEqualsParallel) {
  std::vector<proto::SimConfig> points;
  points.push_back(SmallConfig(proto::Protocol::kS2pl, 10));
  points.push_back(SmallConfig(proto::Protocol::kG2pl, 10));
  points.push_back(SmallConfig(proto::Protocol::kS2pl, 100));
  points.push_back(SmallConfig(proto::Protocol::kG2pl, 100));
  const SweepResult serial = RunSweep(points, /*runs=*/3, /*jobs=*/1);
  const SweepResult parallel = RunSweep(points, /*runs=*/3, /*jobs=*/4);
  ASSERT_EQ(serial.points.size(), points.size());
  ASSERT_EQ(parallel.points.size(), points.size());
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  for (size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectPointsIdentical(serial.points[i], parallel.points[i]);
  }
}

TEST(ExecEquivalenceTest, SweepPointMatchesStandaloneRunReplicated) {
  std::vector<proto::SimConfig> points;
  points.push_back(SmallConfig(proto::Protocol::kS2pl, 10));
  points.push_back(SmallConfig(proto::Protocol::kG2pl, 10));
  const SweepResult sweep = RunSweep(points, /*runs=*/2, /*jobs=*/2);
  for (size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(i);
    proto::SimConfig standalone = points[i];
    standalone.seed = PointSeed(points[i].seed, i);
    ExpectPointsIdentical(sweep.points[i],
                          RunReplicated(standalone, /*runs=*/2, /*jobs=*/1));
  }
}

TEST(ExecEquivalenceTest, SweepDecorrelatesIdenticalConfigs) {
  // Two sweep points with byte-identical configs must still run distinct
  // replications (the old seed+rep scheme made them share all runs).
  std::vector<proto::SimConfig> points(2,
                                       SmallConfig(proto::Protocol::kG2pl, 25));
  const SweepResult sweep = RunSweep(points, /*runs=*/3, /*jobs=*/2);
  EXPECT_NE(sweep.points[0].response.mean, sweep.points[1].response.mean);
}

}  // namespace
}  // namespace gtpl::harness
