// Equivalence battery for the commit-path registry (ISSUE 7). The
// non-negotiable claims behind `--commit`:
//
//  * kClassic is the default and the standing goldens pin it bit-for-bit,
//    so a run that never leaves the classic path must be unchanged — every
//    variant is inert on a single server (no cross-server commits exist),
//    and kCoord degrades to kClassic *exactly* under the paper's uniform
//    latency (the placement score can never favor a remote coordinator).
//  * kFastPath and kEarly change WHEN commits happen, never WHAT commits:
//    on a workload where every cross-server transaction qualifies (all
//    reads), they commit the same per-client transaction sequences as
//    kClassic — identical ops, identical decisions, only timing moves.

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "protocols/commit.h"
#include "protocols/engine.h"

namespace gtpl::proto {
namespace {

SimConfig BaseConfig(Protocol protocol, int32_t servers) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 10;
  config.num_servers = servers;
  config.latency = 120;
  config.workload.num_items = 24;
  config.measured_txns = 200;
  config.warmup_txns = 20;
  config.seed = 17;
  config.record_history = true;
  config.max_sim_time = 10'000'000'000;
  return config;
}

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b,
                         const std::string& what) {
  EXPECT_EQ(a.commits, b.commits) << what;
  EXPECT_EQ(a.aborts, b.aborts) << what;
  EXPECT_EQ(a.total_commits, b.total_commits) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.end_time, b.end_time) << what;
  EXPECT_EQ(a.response.mean(), b.response.mean()) << what;
  EXPECT_EQ(a.network.messages, b.network.messages) << what;
  EXPECT_EQ(a.wal_appends, b.wal_appends) << what;
  EXPECT_EQ(a.wal_forces, b.wal_forces) << what;
  EXPECT_EQ(a.cross_server_commits, b.cross_server_commits) << what;
  EXPECT_EQ(a.span_commit.mean(), b.span_commit.mean()) << what;
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id) << what << " txn " << i;
    EXPECT_EQ(a.history[i].commit_time, b.history[i].commit_time)
        << what << " txn " << i;
  }
}

// On one server there are no cross-server commits, so no variant has
// anything to change: every run must be bit-identical to classic, down to
// the event count and the per-transaction commit times.
TEST(CommitEquivalenceTest, EveryVariantInertOnSingleServer) {
  for (const cc::EngineInfo& info : cc::Engines()) {
    if (!info.sharded) continue;
    const RunResult classic = RunSimulation(BaseConfig(info.protocol, 1));
    for (const CommitPathInfo& path : CommitPaths()) {
      if (path.path == CommitPath::kClassic) continue;
      SimConfig config = BaseConfig(info.protocol, 1);
      config.commit_path = path.path;
      const RunResult variant = RunSimulation(config);
      ExpectIdenticalRuns(classic, variant,
                          std::string(info.name) + " x " + path.name);
      EXPECT_EQ(variant.early_prepares, 0) << path.name;
      EXPECT_EQ(variant.fastpath_commits, 0) << path.name;
      EXPECT_EQ(variant.coord_remote_commits, 0) << path.name;
    }
  }
}

// Under uniform latency the remote-coordinator score is always negative (a
// handoff plus an ack cost 2L against a lock-hold saving that cannot exceed
// 0), so kCoord must take the classic path for every single transaction —
// not statistically close: the same run, event for event.
TEST(CommitEquivalenceTest, CoordIsExactlyClassicUnderUniformLatency) {
  for (const cc::EngineInfo& info : cc::Engines()) {
    if (!info.sharded) continue;
    // The caching engines only admit the classic path under sharding
    // (Validate() rejects kCoord for them), so there is nothing to compare.
    if (info.protocol == Protocol::kC2pl || info.protocol == Protocol::kCbl ||
        info.protocol == Protocol::kO2pl) {
      continue;
    }
    const RunResult classic = RunSimulation(BaseConfig(info.protocol, 4));
    SimConfig config = BaseConfig(info.protocol, 4);
    config.commit_path = CommitPath::kCoord;
    const RunResult coord = RunSimulation(config);
    ExpectIdenticalRuns(classic, coord, std::string(info.name) + " coord");
    EXPECT_EQ(coord.coord_remote_commits, 0) << info.name;
  }
}

// The commit decisions a client's transactions receive, in client-local
// order: (item, mode) per op per committed transaction. Timing-only
// variants may shift which client's transaction ends the measured window,
// so sequences are compared over their common prefix.
using ClientSequences =
    std::map<SiteId, std::vector<std::vector<std::pair<ItemId, LockMode>>>>;

ClientSequences SequencesOf(const RunResult& result) {
  ClientSequences sequences;
  for (const CommittedTxn& txn : result.history) {
    std::vector<std::pair<ItemId, LockMode>> ops;
    for (const OpRecord& op : txn.ops) {
      ops.emplace_back(op.item, op.mode);
    }
    sequences[txn.client].push_back(std::move(ops));
  }
  return sequences;
}

void ExpectSameCommitDecisions(const RunResult& a, const RunResult& b,
                               const std::string& what) {
  EXPECT_EQ(a.commits, b.commits) << what;
  const ClientSequences seq_a = SequencesOf(a);
  const ClientSequences seq_b = SequencesOf(b);
  for (const auto& [client, txns_a] : seq_a) {
    auto it = seq_b.find(client);
    ASSERT_NE(it, seq_b.end()) << what << " client " << client;
    const auto& txns_b = it->second;
    const size_t common = std::min(txns_a.size(), txns_b.size());
    ASSERT_GT(common, 0u) << what << " client " << client;
    for (size_t i = 0; i < common; ++i) {
      EXPECT_EQ(txns_a[i], txns_b[i])
          << what << " client " << client << " txn " << i;
    }
  }
}

// All-read workload on 3 shards: every cross-server transaction has zero
// write shards, so kFastPath takes its one-round path for all of them and
// kEarly banks every vote — yet both must commit exactly what classic
// commits, per client, in the same order. Shared locks never conflict, so
// any abort at all would be a correctness bug, not a policy difference.
TEST(CommitEquivalenceTest, TimingVariantsPreserveCommitDecisions) {
  SimConfig classic_config = BaseConfig(Protocol::kS2pl, 3);
  classic_config.workload.read_prob = 1.0;
  const RunResult classic = RunSimulation(classic_config);
  EXPECT_EQ(classic.total_aborts, 0);
  for (CommitPath path : {CommitPath::kFastPath, CommitPath::kEarly}) {
    SimConfig config = classic_config;
    config.commit_path = path;
    const RunResult variant = RunSimulation(config);
    EXPECT_EQ(variant.total_aborts, 0) << ToString(path);
    ExpectSameCommitDecisions(classic, variant, ToString(path));
    if (path == CommitPath::kFastPath) {
      EXPECT_EQ(variant.fastpath_commits, variant.cross_server_commits);
    } else {
      EXPECT_GT(variant.early_prepares, 0);
    }
  }
}

}  // namespace
}  // namespace gtpl::proto
