// Unit tests for the g-2PL window manager, driven directly through its
// callback interface (no network, no clients).

#include "core/window_manager.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "db/data_store.h"

namespace gtpl::core {
namespace {

struct Dispatch {
  ItemId item;
  Version version;
  std::shared_ptr<const ForwardList> fl;
};

struct Expansion {
  ItemId item;
  TxnId txn;
  int32_t member_index;
};

class WindowManagerTest : public ::testing::Test {
 protected:
  WindowManagerTest() : store_(4) {}

  void Init(const G2plOptions& options) {
    WindowManager::Callbacks callbacks;
    callbacks.dispatch = [this](ItemId item, Version version,
                                std::shared_ptr<const ForwardList> fl) {
      dispatches_.push_back(Dispatch{item, version, std::move(fl)});
    };
    callbacks.abort = [this](TxnId txn, SiteId client) {
      (void)client;
      aborts_.push_back(txn);
    };
    callbacks.expand = [this](ItemId item, Version version,
                              std::shared_ptr<const ForwardList> fl,
                              TxnId txn, SiteId client, int32_t member_index) {
      (void)version;
      (void)fl;
      (void)client;
      expansions_.push_back(Expansion{item, txn, member_index});
    };
    wm_ = std::make_unique<WindowManager>(4, options, &store_, callbacks);
  }

  db::DataStore store_;
  std::unique_ptr<WindowManager> wm_;
  std::vector<Dispatch> dispatches_;
  std::vector<TxnId> aborts_;
  std::vector<Expansion> expansions_;
};

TEST_F(WindowManagerTest, FirstRequestDispatchesSingletonWindow) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  ASSERT_EQ(dispatches_.size(), 1u);
  EXPECT_EQ(dispatches_[0].item, 0);
  EXPECT_EQ(dispatches_[0].fl->num_members(), 1);
  EXPECT_FALSE(wm_->ItemAtServer(0));
}

TEST_F(WindowManagerTest, CollectsWhileOutAndBatchesOnReturn) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);
  EXPECT_EQ(dispatches_.size(), 1u);
  EXPECT_EQ(wm_->PendingCount(0), 2);
  // Txn 1 commits: writes version 1, item returns.
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  ASSERT_EQ(dispatches_.size(), 2u);
  EXPECT_EQ(store_.VersionOf(0), 1);
  EXPECT_EQ(dispatches_[1].fl->num_members(), 2);
  EXPECT_EQ(dispatches_[1].fl->DebugString(), "[W{T2} R{T3}]");
}

TEST_F(WindowManagerTest, ConsecutiveReadsFormOneGroup) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);
  wm_->OnRequest(4, 4, 0, LockMode::kShared, 0);
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  ASSERT_EQ(dispatches_.size(), 2u);
  EXPECT_EQ(dispatches_[1].fl->DebugString(), "[R{T2,T3,T4}]");
}

TEST_F(WindowManagerTest, FinalReadGroupNeedsAllReturns) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kShared, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 0);
  // Window [R{T1}] closed; second window [R{T2}] dispatched.
  ASSERT_EQ(dispatches_.size(), 2u);
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);
  wm_->OnRequest(4, 4, 0, LockMode::kShared, 0);
  wm_->OnTxnDrained(2);
  wm_->OnReturn(0, 0);
  // Third window is the read group [T3, T4]: requires two returns.
  ASSERT_EQ(dispatches_.size(), 3u);
  EXPECT_EQ(dispatches_[2].fl->DebugString(), "[R{T3,T4}]");
  wm_->OnTxnDrained(3);
  wm_->OnReturn(0, 0);
  EXPECT_FALSE(wm_->ItemAtServer(0));  // one return missing
  wm_->OnTxnDrained(4);
  wm_->OnReturn(0, 0);
  EXPECT_TRUE(wm_->ItemAtServer(0));
}

TEST_F(WindowManagerTest, PaperReadDeadlockExampleAbortsOne) {
  // §3.3: t1: read(x) read(y); t2: read(y) read(x), serially, opposite
  // order. Both hold one item and request the other: one must abort.
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, /*item x=*/0, LockMode::kShared, 0);  // granted
  wm_->OnRequest(2, 2, /*item y=*/1, LockMode::kShared, 0);  // granted
  EXPECT_EQ(dispatches_.size(), 2u);
  wm_->OnRequest(1, 1, 1, LockMode::kShared, 0);  // t1 waits for y
  EXPECT_TRUE(aborts_.empty());
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);  // t2 -> x closes the cycle
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(aborts_[0], 2);  // the requester whose edge closed the cycle
}

TEST_F(WindowManagerTest, AbortedRequesterPurgedFromPending) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);
  EXPECT_EQ(wm_->PendingCount(0), 1);
  wm_->OnTxnAborted(2);
  EXPECT_EQ(wm_->PendingCount(0), 0);
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  EXPECT_EQ(dispatches_.size(), 1u);  // nothing left to dispatch
  EXPECT_TRUE(wm_->ItemAtServer(0));
}

TEST_F(WindowManagerTest, ForwardListCapSplitsWindows) {
  G2plOptions options;
  options.max_forward_list_length = 2;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  for (TxnId t = 2; t <= 6; ++t) {
    wm_->OnRequest(t, static_cast<SiteId>(t), 0, LockMode::kExclusive, 0);
  }
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  ASSERT_EQ(dispatches_.size(), 2u);
  EXPECT_EQ(dispatches_[1].fl->num_members(), 2);
  EXPECT_EQ(wm_->PendingCount(0), 3);
}

TEST_F(WindowManagerTest, ExpansionJoinsPureReadWindow) {
  G2plOptions options;
  options.expand_read_groups = true;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kShared, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);  // expands, no pending
  EXPECT_EQ(wm_->PendingCount(0), 0);
  ASSERT_EQ(expansions_.size(), 1u);
  EXPECT_EQ(expansions_[0].txn, 2);
  EXPECT_EQ(expansions_[0].member_index, 1);
  // Both readers must return before the item is back at the server.
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 0);
  EXPECT_FALSE(wm_->ItemAtServer(0));
  wm_->OnTxnDrained(2);
  wm_->OnReturn(0, 0);
  EXPECT_TRUE(wm_->ItemAtServer(0));
}

TEST_F(WindowManagerTest, NoExpansionWhenWriterPending) {
  G2plOptions options;
  options.expand_read_groups = true;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kShared, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // pending write
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);     // must not jump it
  EXPECT_TRUE(expansions_.empty());
  EXPECT_EQ(wm_->PendingCount(0), 2);
}

TEST_F(WindowManagerTest, NoExpansionPastWindowWithWriter) {
  G2plOptions options;
  options.expand_read_groups = true;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // writer window out
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);
  EXPECT_TRUE(expansions_.empty());
  EXPECT_EQ(wm_->PendingCount(0), 1);
}

TEST_F(WindowManagerTest, GrantOrderStaysConsistentAcrossItems) {
  // T1 is granted item 0 before T2 (chain order); if T2 later holds item 1
  // and T1 requests it, T1 would have to follow T2 — inconsistent orders.
  Init(G2plOptions{});
  wm_->OnRequest(2, 2, 1, LockMode::kExclusive, 0);  // T2 holds item 1
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // T1 holds item 0
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // T2 after T1 on item 0
  EXPECT_TRUE(aborts_.empty());
  wm_->OnRequest(1, 1, 1, LockMode::kExclusive, 0);  // T1 after T2 on item 1
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(aborts_[0], 1);
}

TEST_F(WindowManagerTest, MeanForwardListLengthTracksBatches) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // window of 1
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(3, 3, 0, LockMode::kExclusive, 0);
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);  // window of 2
  EXPECT_EQ(wm_->windows_dispatched(), 2);
  EXPECT_DOUBLE_EQ(wm_->MeanForwardListLength(), 1.5);
}

TEST_F(WindowManagerTest, MeanForwardListLengthExcludesDispatchAbortedMembers) {
  // Regression (ISSUE 4 satellite): a request aborted at dispatch time never
  // ships in a window, so it must not count into the mean forward-list
  // length. T2 structurally precedes T3 (item 1's grant order: T2's window
  // went out before T3's), then both queue for item 0. With the cap at 1,
  // the batch is [T3] and the leftover T2 already precedes a batch member —
  // it is deadlocked and aborted by the dispatch-time pending sweep.
  G2plOptions options;
  options.max_forward_list_length = 1;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // T1 holds item 0
  wm_->OnRequest(2, 2, 1, LockMode::kExclusive, 0);  // T2 holds item 1
  wm_->OnRequest(3, 3, 1, LockMode::kExclusive, 0);  // T3 pending item 1
  wm_->OnReturn(1, 1);  // [W{T3}] at item 1: structural edge T2 -> T3
  wm_->OnRequest(3, 3, 0, LockMode::kExclusive, 0);  // T3 pending item 0
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // T2 queues second
  EXPECT_TRUE(aborts_.empty());
  wm_->OnReturn(0, 1);  // batch [T3]; leftover T2 precedes T3: doomed
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(aborts_[0], 2);
  EXPECT_EQ(wm_->aborts_at_dispatch_pending(), 1);
  EXPECT_EQ(wm_->PendingCount(0), 0);
  // Four singleton windows actually went out; the aborted request never
  // shipped and must not inflate the mean.
  ASSERT_EQ(dispatches_.size(), 4u);
  EXPECT_EQ(dispatches_[3].fl->DebugString(), "[W{T3}]");
  EXPECT_EQ(wm_->windows_dispatched(), 4);
  EXPECT_EQ(wm_->total_dispatched_requests(), 4);
  EXPECT_DOUBLE_EQ(wm_->MeanForwardListLength(), 1.0);
}

TEST_F(WindowManagerTest, AgingAbortsCrossShardMemberAndPurgesItsRequests) {
  // Regression (ISSUE 4 satellite): two shard managers behind one
  // coordinator. An aging decision on shard A aborts a member whose pending
  // request sits on shard B — the coordinator purge must clean shard B's
  // queue, exactly as it cleans the deciding shard's.
  ShardCoordinator coord;
  db::DataStore store_b(4);
  std::vector<TxnId> aborts_b;
  WindowManager::Callbacks callbacks_a;
  callbacks_a.dispatch = [](ItemId, Version,
                            std::shared_ptr<const ForwardList>) {};
  callbacks_a.abort = [this](TxnId txn, SiteId) { aborts_.push_back(txn); };
  WindowManager::Callbacks callbacks_b = callbacks_a;
  callbacks_b.abort = [&aborts_b](TxnId txn, SiteId) {
    aborts_b.push_back(txn);
  };
  G2plOptions options;
  options.aging_threshold = 1;
  WindowManager wm_a(4, options, &store_, callbacks_a, &coord);
  WindowManager wm_b(4, options, &store_b, callbacks_b, &coord);

  wm_a.OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // T2 holds A:0
  wm_b.OnRequest(3, 3, 0, LockMode::kExclusive, 0);  // T3 holds B:0
  wm_b.OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // T2 pending on B:0
  EXPECT_EQ(wm_b.PendingCount(0), 1);
  // T3's next request closes a cycle at A:0 (edge T3 -> T2 lives in the
  // shared graph); its restart count exceeds the aging threshold, so the
  // opposing member T2 is the victim, decided on shard A.
  wm_a.OnRequest(3, 3, 0, LockMode::kExclusive, /*restart_count=*/5);
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(aborts_[0], 2);
  EXPECT_TRUE(aborts_b.empty());  // abort callback fires on the deciding shard
  // The cross-shard purge removed T2's pending request from shard B.
  EXPECT_EQ(wm_b.PendingCount(0), 0);
  // The aged requester survives and queues behind the (aborted) window.
  EXPECT_EQ(wm_a.PendingCount(0), 1);
  EXPECT_TRUE(coord.IsAborted(2));
  EXPECT_FALSE(coord.IsAborted(3));
  EXPECT_TRUE(coord.graph().IsAcyclic());
}

TEST_F(WindowManagerTest, StaleRequestFromAbortedTxnIgnored) {
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  wm_->OnTxnAborted(2);
  wm_->OnRequest(2, 2, 1, LockMode::kExclusive, 0);  // in-flight stale
  EXPECT_EQ(dispatches_.size(), 1u);  // item 1 not dispatched
  EXPECT_TRUE(wm_->ItemAtServer(1));
}

TEST_F(WindowManagerTest, GraphStaysAcyclicUnderChurn) {
  Init(G2plOptions{});
  // Interleave requests, returns, aborts over 4 items and ensure the
  // precedence graph invariant holds throughout.
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  wm_->OnRequest(2, 2, 1, LockMode::kShared, 0);
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);
  wm_->OnRequest(4, 4, 1, LockMode::kExclusive, 0);
  EXPECT_TRUE(wm_->graph().IsAcyclic());
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  EXPECT_TRUE(wm_->graph().IsAcyclic());
  wm_->OnTxnAborted(3);
  EXPECT_TRUE(wm_->graph().IsAcyclic());
  wm_->OnTxnDrained(2);
  wm_->OnReturn(1, 0);
  EXPECT_TRUE(wm_->graph().IsAcyclic());
}

TEST_F(WindowManagerTest, DrainedWriterLingersAsGhostWhileReaderRuns) {
  // MR1W shape: reader T2 and writer T3 share a window; T3 commits and
  // drains while T2 still runs. T3 must keep ordering future grantees of
  // the item until T2 (its in-edge source) retires.
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // singleton out
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);     // pending
  wm_->OnRequest(3, 3, 0, LockMode::kExclusive, 0);  // pending
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  ASSERT_EQ(dispatches_.size(), 2u);
  EXPECT_EQ(dispatches_[1].fl->DebugString(), "[R{T2} W{T3}]");
  // The writer drains first (its reader is still running).
  wm_->OnTxnDrained(3);
  // Ghost: still a node, still an accessor — a new requester is ordered
  // after it.
  EXPECT_TRUE(wm_->graph().HasEdge(2, 3));
  wm_->OnRequest(4, 4, 0, LockMode::kExclusive, 0);
  EXPECT_TRUE(wm_->graph().HasEdge(3, 4));
  // When the reader finishes, the ghost cascade retires both.
  wm_->OnReturn(0, 2);  // T3's return (writer was last entry)
  wm_->OnTxnDrained(2);
  EXPECT_FALSE(wm_->graph().HasEdge(2, 3));
  EXPECT_TRUE(wm_->graph().IsAcyclic());
}

TEST_F(WindowManagerTest, GhostStillBlocksInconsistentOrder) {
  // After the writer drained as a ghost, a transaction that already
  // precedes it elsewhere must not be granted this item afterwards.
  Init(G2plOptions{});
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // T1 holds item 0
  wm_->OnRequest(2, 2, 1, LockMode::kExclusive, 0);  // T2 holds item 1
  wm_->OnRequest(3, 3, 1, LockMode::kExclusive, 0);  // T3 after T2 on item 1
  // T2 finishes item 1 and drains while T3 still runs: ghost.
  wm_->OnTxnDrained(2);
  wm_->OnReturn(1, 1);
  // T1 now follows T3 somewhere else: edge T3 -> T1.
  wm_->OnRequest(1, 1, 1, LockMode::kExclusive, 0);  // pending wait hmm
  // Actually establish T3 -> T1 via item 1's next window: T1 requests item
  // 1, whose current window holds T3.
  // (the request above already did that: T3 precedes T1)
  EXPECT_TRUE(aborts_.empty());
  // If T2 were forgotten, T2's order facts would be gone; but T2 -> T3 is
  // gone only when T2 retires, which requires... T2 had no in-edges at
  // drain, so it retired immediately: its facts are closed (nothing can
  // ever precede a retired txn). Verify retirement happened.
  EXPECT_FALSE(wm_->graph().HasEdge(2, 3));
}

}  // namespace
}  // namespace gtpl::core
