// Unit tests for the network transport and latency models.

#include "net/network.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency_model.h"
#include "sim/simulator.h"

namespace gtpl::net {
namespace {

TEST(UniformLatencyTest, SameForEveryPair) {
  UniformLatency model(250);
  EXPECT_EQ(model.Latency(0, 1), 250);
  EXPECT_EQ(model.Latency(1, 0), 250);
  EXPECT_EQ(model.Latency(3, 7), 250);
}

TEST(MatrixLatencyTest, UsesPerPairEntries) {
  MatrixLatency model({{0, 10}, {20, 0}}, /*jitter=*/0, /*seed=*/1);
  EXPECT_EQ(model.Latency(0, 1), 10);
  EXPECT_EQ(model.Latency(1, 0), 20);
  EXPECT_EQ(model.Latency(0, 0), 0);
}

TEST(MatrixLatencyTest, JitterStaysBounded) {
  MatrixLatency model({{0, 100}, {100, 0}}, /*jitter=*/10, /*seed=*/2);
  for (int i = 0; i < 200; ++i) {
    const SimTime latency = model.Latency(0, 1);
    EXPECT_GE(latency, 100);
    EXPECT_LE(latency, 110);
  }
}

TEST(PaperEnvironmentsTest, MatchTable2) {
  const auto& envs = PaperEnvironments();
  ASSERT_EQ(envs.size(), 6u);
  EXPECT_STREQ(envs[0].abbreviation, "ss-LAN");
  EXPECT_EQ(envs[0].latency, 1);
  EXPECT_STREQ(envs[3].abbreviation, "MAN");
  EXPECT_EQ(envs[3].latency, 250);
  EXPECT_STREQ(envs[5].abbreviation, "l-WAN");
  EXPECT_EQ(envs[5].latency, 750);
}

TEST(NetworkTest, DeliversAfterLatency) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(50));
  SimTime delivered_at = -1;
  net.Send(1, 0, "msg", [&] { delivered_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, 50);
}

TEST(NetworkTest, CountsMessagesByDirection) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(1));
  net.Send(kServerSite, 1, "s2c", [] {});
  net.Send(1, kServerSite, "c2s", [] {});
  net.Send(1, 2, "c2c", [] {});
  net.Send(2, 1, "c2c", [] {});
  sim.Run();
  EXPECT_EQ(net.stats().messages, 4u);
  EXPECT_EQ(net.stats().server_to_client, 1u);
  EXPECT_EQ(net.stats().client_to_server, 1u);
  EXPECT_EQ(net.stats().client_to_client, 2u);
}

TEST(NetworkTest, TracingRecordsTimeline) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(10));
  net.EnableTracing();
  net.Send(1, 2, "hop", [&] {
    net.Send(2, 0, "back", [] {});
  });
  sim.Run();
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_EQ(net.trace()[0].send_time, 0);
  EXPECT_EQ(net.trace()[0].deliver_time, 10);
  EXPECT_EQ(net.trace()[0].label, "hop");
  EXPECT_EQ(net.trace()[1].send_time, 10);
  EXPECT_EQ(net.trace()[1].deliver_time, 20);
}

TEST(NetworkTest, NoTraceWhenDisabled) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(10));
  net.Send(1, 2, "hop", [] {});
  sim.Run();
  EXPECT_TRUE(net.trace().empty());
}

TEST(NetworkTest, SameTickMessagesDeliverInSendOrder) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(5));
  std::vector<int> order;
  net.Send(1, 0, "a", [&] { order.push_back(1); });
  net.Send(2, 0, "b", [&] { order.push_back(2); });
  net.Send(3, 0, "c", [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace gtpl::net
