// Unit tests for the network transport and latency models.

#include "net/network.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency_model.h"
#include "sim/simulator.h"

namespace gtpl::net {
namespace {

TEST(UniformLatencyTest, SameForEveryPair) {
  UniformLatency model(250);
  EXPECT_EQ(model.Latency(0, 1), 250);
  EXPECT_EQ(model.Latency(1, 0), 250);
  EXPECT_EQ(model.Latency(3, 7), 250);
}

TEST(MatrixLatencyTest, UsesPerPairEntries) {
  MatrixLatency model({{0, 10}, {20, 0}}, /*jitter=*/0, /*seed=*/1);
  EXPECT_EQ(model.Latency(0, 1), 10);
  EXPECT_EQ(model.Latency(1, 0), 20);
  EXPECT_EQ(model.Latency(0, 0), 0);
}

TEST(MatrixLatencyTest, JitterStaysBounded) {
  MatrixLatency model({{0, 100}, {100, 0}}, /*jitter=*/10, /*seed=*/2);
  for (int i = 0; i < 200; ++i) {
    const SimTime latency = model.Latency(0, 1);
    EXPECT_GE(latency, 100);
    EXPECT_LE(latency, 110);
  }
}

TEST(PaperEnvironmentsTest, MatchTable2) {
  const auto& envs = PaperEnvironments();
  ASSERT_EQ(envs.size(), 6u);
  EXPECT_STREQ(envs[0].abbreviation, "ss-LAN");
  EXPECT_EQ(envs[0].latency, 1);
  EXPECT_STREQ(envs[3].abbreviation, "MAN");
  EXPECT_EQ(envs[3].latency, 250);
  EXPECT_STREQ(envs[5].abbreviation, "l-WAN");
  EXPECT_EQ(envs[5].latency, 750);
}

TEST(NetworkTest, DeliversAfterLatency) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(50));
  SimTime delivered_at = -1;
  net.Send(1, 0, "msg", [&] { delivered_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, 50);
}

TEST(NetworkTest, CountsMessagesByDirection) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(1));
  net.Send(kServerSite, 1, "s2c", [] {});
  net.Send(1, kServerSite, "c2s", [] {});
  net.Send(1, 2, "c2c", [] {});
  net.Send(2, 1, "c2c", [] {});
  sim.Run();
  EXPECT_EQ(net.stats().messages, 4u);
  EXPECT_EQ(net.stats().server_to_client, 1u);
  EXPECT_EQ(net.stats().client_to_server, 1u);
  EXPECT_EQ(net.stats().client_to_client, 2u);
}

TEST(NetworkTest, TracingRecordsTimeline) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(10));
  net.EnableTracing();
  net.Send(1, 2, "hop", [&] {
    net.Send(2, 0, "back", [] {});
  });
  sim.Run();
  ASSERT_EQ(net.trace().size(), 2u);
  EXPECT_EQ(net.trace()[0].send_time, 0);
  EXPECT_EQ(net.trace()[0].deliver_time, 10);
  EXPECT_EQ(net.trace()[0].label, "hop");
  EXPECT_EQ(net.trace()[1].send_time, 10);
  EXPECT_EQ(net.trace()[1].deliver_time, 20);
}

TEST(NetworkTest, NoTraceWhenDisabled) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(10));
  net.Send(1, 2, "hop", [] {});
  sim.Run();
  EXPECT_TRUE(net.trace().empty());
}

TEST(NetworkTest, SameTickMessagesDeliverInSendOrder) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(5));
  std::vector<int> order;
  net.Send(1, 0, "a", [&] { order.push_back(1); });
  net.Send(2, 0, "b", [&] { order.push_back(2); });
  net.Send(3, 0, "c", [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(NetworkTest, PayloadAccounting) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(1));
  net.Send(1, 0, "control", [] {});  // default: one control unit
  net.Send(0, 1, "grant+data", [] {}, kControlPayload + kDataPayload);
  net.Send(1, 2, "fl-data", [] {}, kDataPayload + 3 * kFlSlotPayload);
  sim.Run();
  EXPECT_EQ(net.stats().messages, 3u);
  EXPECT_EQ(net.stats().payload_units,
            kControlPayload + (kControlPayload + kDataPayload) +
                (kDataPayload + 3 * kFlSlotPayload));
  // Pure propagation charges no transmission and records no queue waits.
  EXPECT_EQ(net.stats().transmission_ticks, 0u);
  EXPECT_EQ(net.stats().sender_queue_delay.count(), 0);
  EXPECT_EQ(net.stats().receiver_queue_delay.count(), 0);
}

TEST(NetworkTest, SiteLayoutClassifiesShardServerTraffic) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(1));
  // Sharded layout: 2 clients (sites 1-2); shard servers at 0 and 3.
  net.SetSiteLayout(/*num_clients=*/2);
  EXPECT_TRUE(net.IsServerSite(0));
  EXPECT_FALSE(net.IsServerSite(1));
  EXPECT_FALSE(net.IsServerSite(2));
  EXPECT_TRUE(net.IsServerSite(3));
  net.Send(1, 3, "prepare", [] {});  // client -> shard server
  net.Send(3, 2, "vote", [] {});     // shard server -> client
  net.Send(0, 3, "coord", [] {});    // server -> server
  net.Send(1, 2, "data", [] {});     // client -> client migration
  sim.Run();
  EXPECT_EQ(net.stats().client_to_server, 1u);
  EXPECT_EQ(net.stats().server_to_client, 1u);
  EXPECT_EQ(net.stats().server_to_server, 1u);
  EXPECT_EQ(net.stats().client_to_client, 1u);
}

TEST(NetworkTest, TraceRecordsPayloadAndDegenerateQueueTimes) {
  sim::Simulator sim;
  Network net(&sim, std::make_unique<UniformLatency>(10));
  net.EnableTracing();
  net.Send(1, 0, "req", [] {}, kControlPayload + kDataPayload);
  sim.Run();
  ASSERT_EQ(net.trace().size(), 1u);
  const TraceRecord& record = net.trace()[0];
  EXPECT_EQ(record.payload, kControlPayload + kDataPayload);
  // Pure propagation: no sender queueing (tx starts at send time) and no
  // receiver queueing (first bit and delivery coincide).
  EXPECT_EQ(record.tx_start, record.send_time);
  EXPECT_EQ(record.rx_queue_entry, record.deliver_time);
}

TEST(NetworkTest, LinkTraceSeparatesQueueEntryFromDelivery) {
  sim::Simulator sim;
  LinkConfig link;
  link.bandwidth = 1.0;  // payload 8 -> 8 ticks of transmission
  link.nic_queue = true;
  Network net(&sim, std::make_unique<UniformLatency>(10), link);
  net.EnableTracing();
  // Two same-tick sends from one site: b waits behind a in the uplink.
  net.Send(1, 0, "a", [] {}, 8);
  net.Send(1, 0, "b", [] {}, 8);
  sim.Run();
  ASSERT_EQ(net.trace().size(), 2u);
  const TraceRecord& a = net.trace()[0];
  EXPECT_EQ(a.send_time, 0);
  EXPECT_EQ(a.tx_start, 0);
  EXPECT_EQ(a.rx_queue_entry, 10);  // first bit after propagation
  EXPECT_EQ(a.deliver_time, 18);    // + transmission at the downlink
  const TraceRecord& b = net.trace()[1];
  EXPECT_EQ(b.send_time, 0);
  EXPECT_EQ(b.tx_start, 8);         // queued behind a's transmission
  EXPECT_EQ(b.rx_queue_entry, 18);
  EXPECT_EQ(b.deliver_time, 26);
  EXPECT_EQ(net.stats().sender_queue_delay.count(), 2);
  EXPECT_EQ(net.stats().sender_queue_delay.max(), 8.0);
  EXPECT_EQ(net.stats().transmission_ticks, 16u);
}

TEST(NetworkTest, InfiniteBandwidthBypassesLinkModel) {
  sim::Simulator sim;
  LinkConfig link;
  link.bandwidth = 0.0;  // infinite: the paper's model
  link.nic_queue = true;
  Network net(&sim, std::make_unique<UniformLatency>(50), link);
  EXPECT_EQ(net.link_model(), nullptr);
  SimTime delivered_at = -1;
  net.Send(1, 0, "msg", [&] { delivered_at = sim.Now(); }, 1000);
  const uint64_t events = sim.Run();
  EXPECT_EQ(delivered_at, 50);
  EXPECT_EQ(events, 1u);  // one delivery event, exactly like pure propagation
  EXPECT_EQ(net.MaxLinkUtilization(50), 0.0);
}

}  // namespace
}  // namespace gtpl::net
