// Unit tests for the per-item adaptive forward-list cap controller: AIMD
// step behavior, clamps, hysteresis, per-item isolation, determinism — and
// its integration with the WindowManager dispatch/abort paths.

#include "core/adaptive_window.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/window_manager.h"
#include "db/data_store.h"

namespace gtpl::core {
namespace {

AdaptiveWindowOptions SmallOptions() {
  AdaptiveWindowOptions options;
  options.enabled = true;
  options.initial_cap = 4;
  options.min_cap = 1;
  options.max_cap = 8;
  options.decrease_factor = 0.5;
  options.increase_step = 1;
  options.hysteresis = 2;
  return options;
}

TEST(AdaptiveWindowControllerTest, StartsAtInitialCap) {
  AdaptiveWindowController ctl(3, SmallOptions());
  EXPECT_EQ(ctl.CapFor(0), 4);
  EXPECT_EQ(ctl.CapFor(2), 4);
  EXPECT_EQ(ctl.cap_increases(), 0);
  EXPECT_EQ(ctl.cap_decreases(), 0);
  EXPECT_EQ(ctl.windows_sampled(), 0);
  EXPECT_EQ(ctl.TouchedItems(), 0);
  EXPECT_DOUBLE_EQ(ctl.MeanEffectiveCap(), 0.0);
  EXPECT_DOUBLE_EQ(ctl.FinalEffectiveCap(), 0.0);
}

TEST(AdaptiveWindowControllerTest, AdditiveIncreaseAfterHysteresisWindows) {
  AdaptiveWindowController ctl(1, SmallOptions());
  // First window only marks the item; growth needs `hysteresis` *completed*
  // clean intervals after it.
  EXPECT_EQ(ctl.NextWindowCap(0), 4);
  EXPECT_EQ(ctl.NextWindowCap(0), 4);  // 1 clean interval
  EXPECT_EQ(ctl.NextWindowCap(0), 5);  // 2nd clean interval -> +1
  EXPECT_EQ(ctl.NextWindowCap(0), 5);
  EXPECT_EQ(ctl.NextWindowCap(0), 6);
  EXPECT_EQ(ctl.cap_increases(), 2);
  EXPECT_EQ(ctl.cap_decreases(), 0);
}

TEST(AdaptiveWindowControllerTest, MultiplicativeDecreaseOnFeedback) {
  AdaptiveWindowOptions options = SmallOptions();
  options.initial_cap = 8;
  AdaptiveWindowController ctl(1, options);
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.CapFor(0), 4);
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.CapFor(0), 2);
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.CapFor(0), 1);  // floor at min_cap
  EXPECT_EQ(ctl.cap_decreases(), 3);
  // At the floor, feedback no longer counts as an adjustment.
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.CapFor(0), 1);
  EXPECT_EQ(ctl.cap_decreases(), 3);
}

TEST(AdaptiveWindowControllerTest, FractionalCapFloorsAboveMin) {
  AdaptiveWindowOptions options = SmallOptions();
  options.initial_cap = 3;
  AdaptiveWindowController ctl(1, options);
  ctl.OnAbortFeedback(0);  // 3 * 0.5 = 1.5
  EXPECT_EQ(ctl.CapFor(0), 1);
  EXPECT_EQ(ctl.cap_decreases(), 1);
}

TEST(AdaptiveWindowControllerTest, FeedbackResetsHysteresisStreak) {
  AdaptiveWindowController ctl(1, SmallOptions());
  EXPECT_EQ(ctl.NextWindowCap(0), 4);
  EXPECT_EQ(ctl.NextWindowCap(0), 4);  // streak 1 of 2
  ctl.OnAbortFeedback(0);              // cap -> 2, streak reset
  EXPECT_EQ(ctl.NextWindowCap(0), 2);  // dirty interval: no streak credit
  EXPECT_EQ(ctl.NextWindowCap(0), 2);  // streak 1
  EXPECT_EQ(ctl.NextWindowCap(0), 3);  // streak 2 -> grow
  EXPECT_EQ(ctl.cap_increases(), 1);
  EXPECT_EQ(ctl.cap_decreases(), 1);
}

TEST(AdaptiveWindowControllerTest, ClampsAtMaxCap) {
  AdaptiveWindowOptions options = SmallOptions();
  options.initial_cap = 8;  // == max_cap
  options.hysteresis = 1;
  AdaptiveWindowController ctl(1, options);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ctl.NextWindowCap(0), 8);
  EXPECT_EQ(ctl.cap_increases(), 0);  // pinned at the ceiling, never "moved"
}

TEST(AdaptiveWindowControllerTest, ItemsAdaptIndependently) {
  AdaptiveWindowController ctl(2, SmallOptions());
  ctl.NextWindowCap(0);
  ctl.NextWindowCap(1);
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.CapFor(0), 2);
  EXPECT_EQ(ctl.CapFor(1), 4);
}

TEST(AdaptiveWindowControllerTest, TracksMeanAndFinalCapOverTouchedItems) {
  AdaptiveWindowController ctl(4, SmallOptions());
  EXPECT_EQ(ctl.NextWindowCap(0), 4);
  EXPECT_EQ(ctl.NextWindowCap(1), 4);
  ctl.OnAbortFeedback(0);
  EXPECT_EQ(ctl.NextWindowCap(0), 2);
  // Samples: 4, 4, 2 -> mean 10/3. Items 2 and 3 never dispatched: excluded
  // from the final cap (only 0 at cap 2 and 1 at cap 4 count).
  EXPECT_EQ(ctl.windows_sampled(), 3);
  EXPECT_DOUBLE_EQ(ctl.MeanEffectiveCap(), 10.0 / 3.0);
  EXPECT_EQ(ctl.TouchedItems(), 2);
  EXPECT_DOUBLE_EQ(ctl.FinalCapSum(), 6.0);
  EXPECT_DOUBLE_EQ(ctl.FinalEffectiveCap(), 3.0);
}

TEST(AdaptiveWindowControllerTest, ReplayedSignalSequenceIsBitIdentical) {
  // The controller is pure state: the same signal sequence must reproduce
  // every sample and counter exactly (the determinism contract the
  // simulator relies on).
  const auto drive = [](AdaptiveWindowController* ctl,
                        std::vector<int32_t>* samples) {
    for (int round = 0; round < 50; ++round) {
      const ItemId item = round % 3;
      samples->push_back(ctl->NextWindowCap(item));
      if (round % 7 == 0) ctl->OnAbortFeedback(item);
      if (round % 11 == 0) ctl->OnAbortFeedback((item + 1) % 3);
    }
  };
  AdaptiveWindowController a(3, SmallOptions());
  AdaptiveWindowController b(3, SmallOptions());
  std::vector<int32_t> samples_a;
  std::vector<int32_t> samples_b;
  drive(&a, &samples_a);
  drive(&b, &samples_b);
  EXPECT_EQ(samples_a, samples_b);
  EXPECT_EQ(a.cap_increases(), b.cap_increases());
  EXPECT_EQ(a.cap_decreases(), b.cap_decreases());
  EXPECT_DOUBLE_EQ(a.cap_sample_sum(), b.cap_sample_sum());
  EXPECT_DOUBLE_EQ(a.FinalCapSum(), b.FinalCapSum());
}

// ---------------------------------------------------------------------------
// WindowManager integration
// ---------------------------------------------------------------------------

class AdaptiveWindowManagerTest : public ::testing::Test {
 protected:
  AdaptiveWindowManagerTest() : store_(4) {}

  void Init(const G2plOptions& options) {
    WindowManager::Callbacks callbacks;
    callbacks.dispatch = [this](ItemId item, Version version,
                                std::shared_ptr<const ForwardList> fl) {
      (void)version;
      dispatched_sizes_.push_back(fl->num_members());
      dispatched_items_.push_back(item);
    };
    callbacks.abort = [this](TxnId txn, SiteId client) {
      (void)client;
      aborts_.push_back(txn);
    };
    callbacks.expand = [this](ItemId, Version,
                              std::shared_ptr<const ForwardList>, TxnId txn,
                              SiteId, int32_t) { expansions_.push_back(txn); };
    wm_ = std::make_unique<WindowManager>(4, options, &store_, callbacks);
  }

  db::DataStore store_;
  std::unique_ptr<WindowManager> wm_;
  std::vector<int32_t> dispatched_sizes_;
  std::vector<ItemId> dispatched_items_;
  std::vector<TxnId> aborts_;
  std::vector<TxnId> expansions_;
};

TEST_F(AdaptiveWindowManagerTest, ControllerAbsentWhenDisabled) {
  Init(G2plOptions{});
  EXPECT_EQ(wm_->adaptive_controller(), nullptr);
}

TEST_F(AdaptiveWindowManagerTest, AdaptiveCapLimitsDispatchBatch) {
  G2plOptions options;
  options.adaptive = SmallOptions();
  options.adaptive.initial_cap = 2;
  Init(options);
  ASSERT_NE(wm_->adaptive_controller(), nullptr);
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);
  for (TxnId t = 2; t <= 6; ++t) {
    wm_->OnRequest(t, static_cast<SiteId>(t), 0, LockMode::kExclusive, 0);
  }
  wm_->OnTxnDrained(1);
  wm_->OnReturn(0, 1);
  // The second window honors the adaptive cap (2), not the static cap (0 =
  // unbounded): 2 of the 5 waiters are granted, 3 stay pending.
  ASSERT_EQ(dispatched_sizes_.size(), 2u);
  EXPECT_EQ(dispatched_sizes_[1], 2);
  EXPECT_EQ(wm_->PendingCount(0), 3);
}

TEST_F(AdaptiveWindowManagerTest, DispatchAbortFeedbackShrinksItemCap) {
  // A deadlock resolved by the dispatch-time pending sweep, not at request
  // time: T4 structurally precedes T2 (item 1's grant order), then queues
  // for item 0 behind T2 and T3. With the cap at 2, the batch [T2 T3] goes
  // out and the leftover T4 already precedes a batch member — it is aborted
  // at dispatch, and the controller shrinks *item 0's* cap.
  G2plOptions options;
  options.adaptive = SmallOptions();
  options.adaptive.initial_cap = 2;
  Init(options);
  wm_->OnRequest(4, 4, 1, LockMode::kExclusive, 0);  // T4 holds item 1
  wm_->OnRequest(1, 1, 0, LockMode::kExclusive, 0);  // T1 holds item 0
  wm_->OnRequest(2, 2, 1, LockMode::kExclusive, 0);  // T2 pending item 1
  wm_->OnReturn(1, 1);  // [W{T2}] at item 1: structural edge T4 -> T2
  wm_->OnRequest(2, 2, 0, LockMode::kExclusive, 0);  // T2 pending item 0
  wm_->OnRequest(3, 3, 0, LockMode::kExclusive, 0);  // T3 pending item 0
  wm_->OnRequest(4, 4, 0, LockMode::kExclusive, 0);  // T4 queues third
  EXPECT_EQ(wm_->adaptive_controller()->CapFor(0), 2);
  EXPECT_TRUE(aborts_.empty());
  wm_->OnReturn(0, 1);  // batch [T2 T3]; leftover T4 precedes T2: doomed
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(aborts_[0], 4);
  EXPECT_EQ(wm_->aborts_at_dispatch_pending(), 1);
  EXPECT_EQ(wm_->aborts_at_dispatch_batch(), 0);
  ASSERT_FALSE(dispatched_sizes_.empty());
  EXPECT_EQ(dispatched_sizes_.back(), 2);
  EXPECT_EQ(wm_->PendingCount(0), 0);
  // One multiplicative decrease at item 0; item 1 is untouched.
  EXPECT_EQ(wm_->adaptive_controller()->CapFor(0), 1);
  EXPECT_EQ(wm_->adaptive_controller()->CapFor(1), 2);
  EXPECT_EQ(wm_->adaptive_controller()->cap_decreases(), 1);
}

TEST_F(AdaptiveWindowManagerTest, RequestAbortFeedbackChargesDecisionItem) {
  // The paper's read-deadlock shape (§3.3): the cycle closes at request
  // time on item 0, so item 0's controller takes the hit.
  G2plOptions options;
  options.adaptive = SmallOptions();
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kShared, 0);
  wm_->OnRequest(2, 2, 1, LockMode::kShared, 0);
  wm_->OnRequest(1, 1, 1, LockMode::kShared, 0);  // T1 waits for item 1
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);  // closes the cycle
  ASSERT_EQ(aborts_.size(), 1u);
  EXPECT_EQ(wm_->adaptive_controller()->cap_decreases(), 1);
  EXPECT_EQ(wm_->adaptive_controller()->CapFor(0), 2);
  EXPECT_EQ(wm_->adaptive_controller()->CapFor(1), 4);
}

TEST_F(AdaptiveWindowManagerTest, ExpansionHonorsAdaptiveCap) {
  G2plOptions options;
  options.expand_read_groups = true;
  options.adaptive = SmallOptions();
  options.adaptive.initial_cap = 2;
  options.adaptive.min_cap = 2;  // keep the cap pinned at 2
  options.adaptive.max_cap = 2;
  Init(options);
  wm_->OnRequest(1, 1, 0, LockMode::kShared, 0);
  wm_->OnRequest(2, 2, 0, LockMode::kShared, 0);  // expands to 2 members
  EXPECT_EQ(wm_->PendingCount(0), 0);
  EXPECT_EQ(wm_->expansions(), 1);
  wm_->OnRequest(3, 3, 0, LockMode::kShared, 0);  // cap reached: must queue
  EXPECT_EQ(wm_->expansions(), 1);
  EXPECT_EQ(wm_->PendingCount(0), 1);
}

}  // namespace
}  // namespace gtpl::core
