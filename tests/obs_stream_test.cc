// Streaming-trace and time-series-metrics tests (DESIGN.md §16): the
// streamed JSONL file is byte-identical to the buffered export for every
// engine; the parallel engine's merged trace is byte-identical at any
// thread count (goldened); the metrics series is deterministic and does not
// perturb the run. `ctest -L obs` runs this suite (TSan CI included).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/parsim.h"

namespace gtpl::obs {
namespace {

#ifndef GTPL_GOLDEN_DIR
#error "GTPL_GOLDEN_DIR must point at the checked-in golden files"
#endif

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "obs_stream_" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void CompareOrUpdateGolden(const std::string& name, const std::string& fresh) {
  const std::string path = std::string(GTPL_GOLDEN_DIR) + "/" + name;
  if (std::getenv("GTPL_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fresh;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with GTPL_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), fresh)
      << "trace drifted from " << path
      << "; if the change is intended, regenerate with GTPL_UPDATE_GOLDEN=1 "
         "and review the diff";
}

proto::SimConfig SmallConfig(proto::Protocol protocol, int32_t servers) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.num_servers = servers;
  config.workload.num_items = 25;
  config.latency = 500;
  config.measured_txns = 120;
  config.warmup_txns = 20;
  config.seed = 7;
  config.max_sim_time = 10'000'000'000;
  return config;
}

/// The decomposable subset the parallel engine accepts (config.cc): lock
/// protocols with requester-victim aborts, classic commit, charged notices.
proto::SimConfig ParsimConfig(proto::Protocol protocol, int32_t servers,
                              int32_t threads) {
  proto::SimConfig config = SmallConfig(protocol, servers);
  config.instant_abort_notice = false;
  config.sim_threads = threads;
  config.obs_trace = true;
  return config;
}

// ---------------------------------------------------------------------------
// Streaming vs buffered byte-identity

TEST(StreamIdentityTest, StreamedFileMatchesBufferedExportAllEngines) {
  // Every registered engine x shard counts, skipping combinations the
  // validator rejects (e.g. single-server-only protocols at servers > 1).
  int covered = 0;
  for (int p = 0; p <= static_cast<int>(proto::Protocol::kWoundWait); ++p) {
    for (int32_t servers : {1, 2, 8}) {
      const auto protocol = static_cast<proto::Protocol>(p);
      proto::SimConfig buffered = SmallConfig(protocol, servers);
      buffered.obs_trace = true;
      if (!buffered.Validate().ok()) continue;
      const proto::RunResult buffered_result = proto::RunSimulation(buffered);
      const std::string expected = ToJsonl(buffered_result.obs_trace);
      ASSERT_FALSE(expected.empty());

      proto::SimConfig streamed = buffered;
      const std::string path = TempPath(
          "engine_" + std::to_string(p) + "_" + std::to_string(servers) +
          ".jsonl");
      streamed.trace_stream_path = path;
      streamed.trace_flush_bytes = 4096;
      const proto::RunResult streamed_result = proto::RunSimulation(streamed);
      // Streamed runs keep the in-memory buffer empty and report the
      // stream's byte count and peak chunk occupancy.
      EXPECT_TRUE(streamed_result.obs_trace.empty());
      EXPECT_EQ(streamed_result.trace_stream_bytes,
                static_cast<int64_t>(expected.size()));
      EXPECT_GT(streamed_result.trace_peak_buffer, 0);
      EXPECT_LE(streamed_result.trace_peak_buffer, 4096);
      EXPECT_EQ(ReadFile(path), expected)
          << "protocol " << proto::ToString(protocol) << " servers "
          << servers;
      ++covered;
    }
  }
  // The grid must actually exercise a meaningful engine spread.
  EXPECT_GE(covered, 10);
}

TEST(StreamIdentityTest, StreamedFileMatchesBufferedExportParsim) {
  for (proto::Protocol protocol :
       {proto::Protocol::kNoWait, proto::Protocol::kWaitDie}) {
    // The threads=1 buffered trace is the identity anchor: every other
    // (threads, streamed?) combination must produce the same bytes.
    const proto::RunResult anchor =
        proto::RunParallelSimulation(ParsimConfig(protocol, 4, 1));
    const std::string expected = ToJsonl(anchor.obs_trace);
    ASSERT_FALSE(expected.empty());
    for (int32_t threads : {1, 2, 4}) {
      proto::SimConfig streamed = ParsimConfig(protocol, 4, threads);
      const std::string path = TempPath(
          "parsim_" + std::to_string(static_cast<int>(protocol)) + "_" +
          std::to_string(threads) + ".jsonl");
      streamed.trace_stream_path = path;
      streamed.trace_flush_bytes = 2048;
      const proto::RunResult result =
          proto::RunParallelSimulation(streamed);
      EXPECT_TRUE(result.obs_trace.empty());
      EXPECT_LE(result.trace_peak_buffer, 2048);
      EXPECT_EQ(ReadFile(path), expected)
          << "protocol " << proto::ToString(protocol) << " threads "
          << threads;
    }
  }
}

TEST(StreamIdentityTest, TinyWatermarkStillByteIdentical) {
  proto::SimConfig buffered = SmallConfig(proto::Protocol::kS2pl, 2);
  buffered.obs_trace = true;
  const std::string expected =
      ToJsonl(proto::RunSimulation(buffered).obs_trace);

  proto::SimConfig streamed = buffered;
  const std::string path = TempPath("tiny_watermark.jsonl");
  streamed.trace_stream_path = path;
  streamed.trace_flush_bytes = 1;  // flush every event
  const proto::RunResult result = proto::RunSimulation(streamed);
  EXPECT_EQ(ReadFile(path), expected);
  // Watermark 1 forces a flush before every append, so the peak is one
  // serialized line (the documented max(watermark, longest line) bound).
  EXPECT_GT(result.trace_peak_buffer, 1);
  EXPECT_LT(result.trace_peak_buffer, 512);
}

// ---------------------------------------------------------------------------
// Parallel-trace merge determinism

TEST(ParsimTraceTest, ByteIdenticalAtAnyThreadCount) {
  const proto::RunResult base =
      proto::RunParallelSimulation(ParsimConfig(proto::Protocol::kWaitDie, 8, 1));
  const std::string expected = ToJsonl(base.obs_trace);
  for (int32_t threads : {2, 4}) {
    const proto::RunResult result = proto::RunParallelSimulation(
        ParsimConfig(proto::Protocol::kWaitDie, 8, threads));
    EXPECT_EQ(ToJsonl(result.obs_trace), expected) << threads << " threads";
  }
}

TEST(ParsimTraceTest, MergedTraceRoundTripsThroughStrictReader) {
  const proto::RunResult result = proto::RunParallelSimulation(
      ParsimConfig(proto::Protocol::kNoWait, 4, 2));
  const std::string jsonl = ToJsonl(result.obs_trace);
  std::istringstream in(jsonl);
  std::vector<TraceEvent> parsed;
  std::string error;
  // The merger re-stamps a dense global seq, so the strict (time, seq)
  // ordering check of ReadJsonl accepts the merged stream.
  ASSERT_TRUE(ReadJsonl(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), result.obs_trace.size());
  EXPECT_EQ(parsed, result.obs_trace);
}

TEST(ParsimTraceTest, GoldenTrace) {
  proto::SimConfig config = ParsimConfig(proto::Protocol::kNoWait, 4, 2);
  config.measured_txns = 60;
  config.warmup_txns = 10;
  config.obs_trace = true;
  const proto::RunResult result = proto::RunParallelSimulation(config);
  CompareOrUpdateGolden("parsim_trace.golden", ToJsonl(result.obs_trace));
}

// ---------------------------------------------------------------------------
// TraceMerger unit behavior

TEST(TraceMergerTest, OrdersByTimeLpSeqAndRestampsGlobalSeq) {
  SimTime clock0 = 0;
  SimTime clock1 = 0;
  Tracer lp0;
  Tracer lp1;
  lp0.AttachClock([&clock0] { return clock0; });
  lp1.AttachClock([&clock1] { return clock1; });
  lp0.Enable();
  lp1.Enable();
  TraceMerger merger({&lp0, &lp1});

  auto emit = [](Tracer& tracer, TxnId txn) {
    TraceEvent event;
    event.kind = EventKind::kTxnBegin;
    event.txn = txn;
    tracer.Emit(std::move(event));
  };
  clock0 = 5;
  emit(lp0, 10);
  clock1 = 5;
  emit(lp1, 20);
  clock1 = 7;
  emit(lp1, 21);
  clock0 = 10;
  emit(lp0, 11);

  merger.Flush(8);  // drains everything below time 8
  std::vector<TraceEvent> merged = merger.Take();
  ASSERT_EQ(merged.size(), 3u);
  // Same-time events order by LP index; the global seq is dense.
  EXPECT_EQ(merged[0].txn, 10);
  EXPECT_EQ(merged[1].txn, 20);
  EXPECT_EQ(merged[2].txn, 21);
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, i);
  }

  merger.FlushAll();
  merged = merger.Take();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].txn, 11);
  EXPECT_EQ(merged[0].seq, 3u);
  EXPECT_EQ(merger.merged_count(), 4u);
}

// ---------------------------------------------------------------------------
// Time-series metrics

TEST(MetricsSeriesTest, DeterministicAcrossRunsAndThreads) {
  proto::SimConfig config = ParsimConfig(proto::Protocol::kNoWait, 4, 1);
  config.metrics_interval = 5000;
  const proto::RunResult base = proto::RunParallelSimulation(config);
  ASSERT_FALSE(base.metrics.empty());
  const std::string expected =
      MetricsToCsv(base.metric_names, base.metrics);
  for (int32_t threads : {2, 4}) {
    proto::SimConfig threaded = config;
    threaded.sim_threads = threads;
    const proto::RunResult result = proto::RunParallelSimulation(threaded);
    EXPECT_EQ(MetricsToCsv(result.metric_names, result.metrics), expected)
        << threads << " threads";
  }
}

TEST(MetricsSeriesTest, SamplingDoesNotPerturbTheRun) {
  proto::SimConfig config = SmallConfig(proto::Protocol::kS2pl, 2);
  const proto::RunResult plain = proto::RunSimulation(config);
  proto::SimConfig sampled_config = config;
  sampled_config.metrics_interval = 777;
  const proto::RunResult sampled = proto::RunSimulation(sampled_config);
  // Identical protocol outcome: the sampler schedules no messages, draws no
  // random numbers, and its own event-executions are subtracted.
  EXPECT_EQ(sampled.commits, plain.commits);
  EXPECT_EQ(sampled.aborts, plain.aborts);
  EXPECT_EQ(sampled.end_time, plain.end_time);
  EXPECT_EQ(sampled.events, plain.events);
  EXPECT_EQ(sampled.response.mean(), plain.response.mean());
  EXPECT_FALSE(sampled.metrics.empty());
  EXPECT_TRUE(plain.metrics.empty());
}

TEST(MetricsSeriesTest, SerialSeriesShapes) {
  proto::SimConfig config = SmallConfig(proto::Protocol::kS2pl, 2);
  config.metrics_interval = 5000;
  const proto::RunResult result = proto::RunSimulation(config);
  ASSERT_FALSE(result.metrics.empty());
  auto has = [&result](const std::string& name) {
    for (const std::string& n : result.metric_names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("active_txns"));
  EXPECT_TRUE(has("commits_total"));
  EXPECT_TRUE(has("aborts_total"));
  EXPECT_TRUE(has("nic_backlog"));
  EXPECT_TRUE(has("inflight_2pc"));
  EXPECT_TRUE(has("locks_held"));
  EXPECT_TRUE(has("lock_waiters"));
  // Rows are stamped at interval multiples, nondecreasing, and counters
  // never go backwards.
  SimTime prev_time = 0;
  int64_t prev_commits = 0;
  for (const MetricRow& row : result.metrics) {
    EXPECT_EQ(row.time % 5000, 0);
    EXPECT_GE(row.time, prev_time);
    prev_time = row.time;
    if (result.metric_names[static_cast<size_t>(row.series)] ==
            "commits_total" &&
        row.shard == -1) {
      EXPECT_GE(row.value, prev_commits);
      prev_commits = row.value;
    }
  }
}

TEST(MetricsSeriesTest, CsvRoundTripAndJsonlShape) {
  MetricsRegistry registry;
  int64_t value = 3;
  registry.Register("locks_held", 0, [&value] { return value; });
  registry.Register("windows", -1, [] { return int64_t{7}; });
  registry.SampleAll(1000);
  value = 5;
  registry.SampleAll(2000);
  const std::vector<std::string> names = registry.names();
  const std::vector<MetricRow> rows = registry.rows();
  const std::string csv = MetricsToCsv(names, rows);
  EXPECT_EQ(csv,
            "time,shard,metric,value\n"
            "1000,0,locks_held,3\n"
            "1000,-1,windows,7\n"
            "2000,0,locks_held,5\n"
            "2000,-1,windows,7\n");
  std::istringstream in(csv);
  std::vector<MetricSample> samples;
  std::string error;
  ASSERT_TRUE(ReadMetricsCsv(in, &samples, &error)) << error;
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "locks_held");
  EXPECT_EQ(samples[0].shard, 0);
  EXPECT_EQ(samples[0].value, 3);
  EXPECT_EQ(samples[3].time, 2000);

  std::ostringstream jsonl;
  WriteMetricsJsonl(names, rows, jsonl);
  EXPECT_EQ(jsonl.str().substr(0, 46),
            "{\"t\":1000,\"shard\":0,\"metric\":\"locks_held\",\"v\":");
}

TEST(MetricsSeriesTest, CsvReaderRejectsMalformedFiles) {
  std::vector<MetricSample> samples;
  std::string error;

  std::istringstream bad_header("when,shard,metric,value\n");
  EXPECT_FALSE(ReadMetricsCsv(bad_header, &samples, &error));
  EXPECT_NE(error.find("header"), std::string::npos);

  std::istringstream bad_row("time,shard,metric,value\n1000,0,locks_held\n");
  EXPECT_FALSE(ReadMetricsCsv(bad_row, &samples, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);

  std::istringstream bad_value(
      "time,shard,metric,value\n1000,0,locks_held,abc\n");
  EXPECT_FALSE(ReadMetricsCsv(bad_value, &samples, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace gtpl::obs
