// Unit tests for the conservative parallel simulation kernel
// (sim/parallel.h): window/horizon semantics, deterministic channel merge
// order, the lookahead safety bound, and bit-identical execution at any
// worker count (DESIGN.md §15).

#include "sim/parallel.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"

namespace gtpl::sim {
namespace {

TEST(ParallelSimTest, LocalEventsRunLikeTheSerialKernel) {
  ParallelSim sim(1, /*lookahead=*/5, /*num_threads=*/1);
  std::vector<SimTime> seen;
  sim.lp(0).Schedule(7, [&] { seen.push_back(sim.lp(0).Now()); });
  sim.lp(0).Schedule(3, [&] {
    seen.push_back(sim.lp(0).Now());
    sim.lp(0).Schedule(0, [&] { seen.push_back(sim.lp(0).Now()); });
  });
  const ParallelRunStats stats = sim.Run();
  EXPECT_EQ(seen, (std::vector<SimTime>{3, 3, 7}));
  EXPECT_EQ(sim.lp(0).events_executed(), 3u);
  EXPECT_FALSE(stats.stopped);
}

TEST(ParallelSimTest, CrossLpMessageArrivesAtSendTimePlusDelay) {
  ParallelSim sim(2, /*lookahead=*/4, /*num_threads=*/1);
  SimTime arrived = -1;
  sim.lp(0).Schedule(2, [&] {
    sim.lp(0).SendTo(1, 4, [&] { arrived = sim.lp(1).Now(); });
  });
  sim.Run();
  EXPECT_EQ(arrived, 6);
  EXPECT_EQ(sim.lp(1).events_executed(), 1u);
}

// Messages from several sources to one destination flush at the barrier in
// (deliver_time, src_lp, src_seq) order — a total order independent of how
// the window's LPs were scheduled onto threads.
TEST(ParallelSimTest, ChannelMergeOrdersByTimeSourceThenSendSeq) {
  ParallelSim sim(3, /*lookahead=*/5, /*num_threads=*/1);
  std::vector<int> order;
  // Both senders emit at t=0 toward LP 2. Same deliver time 10: LP 0's
  // messages precede LP 1's, and each sender's own messages keep send
  // order. An earlier deliver time (6 from LP 1) precedes them all.
  sim.lp(0).Schedule(0, [&] {
    sim.lp(0).SendTo(2, 10, [&] { order.push_back(1); });
    sim.lp(0).SendTo(2, 10, [&] { order.push_back(2); });
  });
  sim.lp(1).Schedule(0, [&] {
    sim.lp(1).SendTo(2, 10, [&] { order.push_back(3); });
    sim.lp(1).SendTo(2, 6, [&] { order.push_back(0); });
  });
  const ParallelRunStats stats = sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(stats.messages, 4u);
}

TEST(ParallelSimTest, SelfSendIsPlainSchedulingAtAnyDelay) {
  ParallelSim sim(2, /*lookahead=*/50, /*num_threads=*/1);
  int fired = 0;
  // Delay 0 < lookahead is legal for the own LP: no channel is involved.
  sim.lp(0).Schedule(1, [&] { sim.lp(0).SendTo(0, 0, [&] { ++fired; }); });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(ParallelSimDeathTest, CrossLpSendBelowLookaheadDies) {
  ParallelSim sim(2, /*lookahead=*/5, /*num_threads=*/1);
  EXPECT_DEATH(sim.lp(0).SendTo(1, 4, [] {}),
               "below the lookahead bound");
}

TEST(ParallelSimTest, UntilClampsEveryClockAndRunsBoundaryEvents) {
  ParallelSim sim(2, /*lookahead=*/5, /*num_threads=*/1);
  int fired = 0;
  sim.lp(0).Schedule(100, [&] { ++fired; });  // exactly at `until`: runs
  sim.lp(1).Schedule(150, [&] { ++fired; });  // beyond: stays pending
  sim.Run(100);
  EXPECT_EQ(fired, 1);
  EXPECT_GE(sim.lp(0).Now(), 100);
  EXPECT_GE(sim.lp(1).Now(), 100);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(ParallelSimTest, StopEndsTheRunAtTheNextBarrier) {
  ParallelSim sim(2, /*lookahead=*/2, /*num_threads=*/1);
  int fired = 0;
  for (SimTime t = 0; t < 100; t += 1) {
    sim.lp(0).Schedule(t, [&, t] {
      ++fired;
      if (t == 10) sim.lp(0).Stop();
    });
  }
  const ParallelRunStats stats = sim.Run();
  EXPECT_TRUE(stats.stopped);
  EXPECT_LT(fired, 100);
  EXPECT_GE(fired, 11);  // the stopping event's own window still completes
}

TEST(ParallelSimTest, StallsCountIdleLpWindows) {
  ParallelSim sim(2, /*lookahead=*/3, /*num_threads=*/1);
  // Only LP 0 ever has events: LP 1 stalls at every barrier.
  for (SimTime t = 0; t < 30; t += 10) {
    sim.lp(0).Schedule(t, [] {});
  }
  const ParallelRunStats stats = sim.Run();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.stalls, stats.windows);  // LP 1 stalled in every window
}

TEST(ParallelSimTest, BarrierHookRunsOncePerWindow) {
  ParallelSim sim(2, /*lookahead=*/3, /*num_threads=*/1);
  uint64_t hook_calls = 0;
  SimTime last_horizon = -1;
  sim.SetBarrierHook([&](SimTime horizon) {
    ++hook_calls;
    // The horizon each barrier reports must advance strictly: every window
    // executes at least one event at its floor, and the next floor is >=
    // the previous horizon.
    EXPECT_GT(horizon, last_horizon);
    last_horizon = horizon;
  });
  for (SimTime t = 0; t < 30; t += 4) {
    sim.lp(0).Schedule(t, [] {});
    sim.lp(1).Schedule(t, [] {});
  }
  const ParallelRunStats stats = sim.Run();
  EXPECT_EQ(hook_calls, stats.windows);
}

// The determinism pin: a token-passing workload over 4 LPs (cross-LP sends
// at varying legal delays, LP-local records) must execute bit-identically
// at 1, 2, and 4 worker threads.
struct TokenRing {
  static constexpr int32_t kLps = 4;
  static constexpr int kHops = 60;

  std::unique_ptr<ParallelSim> sim;
  // Written only by events of the owning LP — no cross-thread writes.
  std::vector<std::vector<SimTime>> logs;
  std::function<void(int32_t, int)> hop;

  explicit TokenRing(int threads)
      : sim(std::make_unique<ParallelSim>(kLps, /*lookahead=*/3, threads)),
        logs(kLps) {
    hop = [this](int32_t lp, int hops) {
      logs[static_cast<size_t>(lp)].push_back(sim->lp(lp).Now());
      if (hops >= kHops) return;
      const int32_t next = (lp + 1) % kLps;
      sim->lp(lp).SendTo(next, 3 + hops % 4,
                         [this, next, hops] { hop(next, hops + 1); });
    };
    for (int32_t lp = 0; lp < kLps; ++lp) {
      sim->lp(lp).Schedule(lp, [this, lp] { hop(lp, 0); });
    }
  }
};

TEST(ParallelSimTest, BitIdenticalAtAnyThreadCount) {
  TokenRing base(1);
  const ParallelRunStats base_stats = base.sim->Run();
  for (int threads : {2, 4}) {
    TokenRing ring(threads);
    const ParallelRunStats stats = ring.sim->Run();
    EXPECT_EQ(ring.logs, base.logs) << threads << " threads";
    EXPECT_EQ(stats.windows, base_stats.windows);
    EXPECT_EQ(stats.stalls, base_stats.stalls);
    EXPECT_EQ(stats.messages, base_stats.messages);
    for (int32_t lp = 0; lp < TokenRing::kLps; ++lp) {
      EXPECT_EQ(ring.sim->lp(lp).events_executed(),
                base.sim->lp(lp).events_executed());
      EXPECT_EQ(ring.sim->lp(lp).Now(), base.sim->lp(lp).Now());
    }
  }
}

}  // namespace
}  // namespace gtpl::sim
