// Unit tests for configuration validation and common utilities.

#include "protocols/config.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace gtpl::proto {
namespace {

TEST(ConfigTest, DefaultsValidate) {
  SimConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadClientCount) {
  SimConfig config;
  config.num_clients = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsNegativeLatency) {
  SimConfig config;
  config.latency = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadItemRange) {
  SimConfig config;
  config.workload.min_items_per_txn = 5;
  config.workload.max_items_per_txn = 3;
  EXPECT_FALSE(config.Validate().ok());
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 100;  // > pool size
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsBadReadProbability) {
  SimConfig config;
  config.workload.read_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.workload.read_prob = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsInvertedThinkRange) {
  SimConfig config;
  config.workload.min_think = 5;
  config.workload.max_think = 2;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, RejectsZeroMeasuredTxns) {
  SimConfig config;
  config.measured_txns = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, ProtocolNames) {
  EXPECT_STREQ(ToString(Protocol::kS2pl), "s-2PL");
  EXPECT_STREQ(ToString(Protocol::kG2pl), "g-2PL");
  EXPECT_STREQ(ToString(Protocol::kC2pl), "c-2PL");
  EXPECT_STREQ(ToString(Protocol::kCbl), "CBL");
  EXPECT_STREQ(ToString(Protocol::kO2pl), "O2PL");
}

TEST(StatusTest, OkAndErrorForms) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status err = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad flag");
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("y").code(),
            Status::Code::kFailedPrecondition);
}

}  // namespace
}  // namespace gtpl::proto
