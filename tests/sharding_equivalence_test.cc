// Standing equivalence suite for the sharded engines (ISSUE 2 acceptance):
// with num_servers == 1 the sharded g-2PL / s-2PL engines must reproduce
// the single-server engines' results *bit for bit* — every metric, the
// event counts, the network traffic, the committed history, and the
// protocol-event stream. Any drift between the copied client machinery in
// protocols/sharded.cc and the originals shows up here.

#include <gtest/gtest.h>

#include "protocols/engine.h"
#include "protocols/sharded.h"

namespace gtpl::proto {
namespace {

void ExpectSameWelford(const stats::Welford& a, const stats::Welford& b,
                       const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void ExpectSameResult(const RunResult& single, const RunResult& sharded) {
  ExpectSameWelford(single.response, sharded.response, "response");
  ExpectSameWelford(single.op_wait, sharded.op_wait, "op_wait");
  ExpectSameWelford(single.abort_age, sharded.abort_age, "abort_age");
  ExpectSameWelford(single.abort_held_items, sharded.abort_held_items,
                    "abort_held_items");
  EXPECT_EQ(single.commits, sharded.commits);
  EXPECT_EQ(single.aborts, sharded.aborts);
  EXPECT_EQ(single.total_commits, sharded.total_commits);
  EXPECT_EQ(single.total_aborts, sharded.total_aborts);
  EXPECT_EQ(single.events, sharded.events);
  EXPECT_EQ(single.end_time, sharded.end_time);
  EXPECT_EQ(single.timed_out, sharded.timed_out);
  EXPECT_EQ(single.network.messages, sharded.network.messages);
  EXPECT_EQ(single.network.server_to_client, sharded.network.server_to_client);
  EXPECT_EQ(single.network.client_to_server, sharded.network.client_to_server);
  EXPECT_EQ(single.network.client_to_client, sharded.network.client_to_client);
  EXPECT_EQ(single.network.payload_units, sharded.network.payload_units);
  EXPECT_EQ(single.windows_dispatched, sharded.windows_dispatched);
  EXPECT_EQ(single.mean_forward_list_length,
            sharded.mean_forward_list_length);
  EXPECT_EQ(single.read_group_expansions, sharded.read_group_expansions);
  EXPECT_EQ(single.mean_effective_cap, sharded.mean_effective_cap);
  EXPECT_EQ(single.final_effective_cap, sharded.final_effective_cap);
  EXPECT_EQ(single.cap_increases, sharded.cap_increases);
  EXPECT_EQ(single.cap_decreases, sharded.cap_decreases);
  EXPECT_EQ(single.cross_server_commits, sharded.cross_server_commits);
  EXPECT_EQ(single.commit_participants.count(),
            sharded.commit_participants.count());
  EXPECT_EQ(single.wal_appends, sharded.wal_appends);
  EXPECT_EQ(single.wal_forces, sharded.wal_forces);
  EXPECT_EQ(single.wal_retained, sharded.wal_retained);
  ASSERT_EQ(single.history.size(), sharded.history.size());
  for (size_t i = 0; i < single.history.size(); ++i) {
    const CommittedTxn& a = single.history[i];
    const CommittedTxn& b = sharded.history[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.start_time, b.start_time);
    EXPECT_EQ(a.commit_time, b.commit_time);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t k = 0; k < a.ops.size(); ++k) {
      EXPECT_EQ(a.ops[k].item, b.ops[k].item);
      EXPECT_EQ(a.ops[k].mode, b.ops[k].mode);
      EXPECT_EQ(a.ops[k].version_read, b.ops[k].version_read);
      EXPECT_EQ(a.ops[k].version_written, b.ops[k].version_written);
    }
  }
  ASSERT_EQ(single.protocol_events.size(), sharded.protocol_events.size());
  for (size_t i = 0; i < single.protocol_events.size(); ++i) {
    const ProtocolEvent& a = single.protocol_events[i];
    const ProtocolEvent& b = sharded.protocol_events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.time, b.time) << "event " << i;
    EXPECT_EQ(a.txn, b.txn) << "event " << i;
    EXPECT_EQ(a.item, b.item) << "event " << i;
    EXPECT_EQ(a.server, b.server) << "event " << i;
    EXPECT_EQ(a.flag, b.flag) << "event " << i;
    ASSERT_EQ(a.entries.size(), b.entries.size()) << "event " << i;
    for (size_t e = 0; e < a.entries.size(); ++e) {
      EXPECT_EQ(a.entries[e].is_read_group, b.entries[e].is_read_group);
      EXPECT_EQ(a.entries[e].txns, b.entries[e].txns);
    }
  }
}

SimConfig BaseConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.latency = 50;
  config.workload.num_items = 15;
  config.measured_txns = 400;
  config.warmup_txns = 40;
  config.seed = 11;
  config.record_history = true;
  config.record_protocol_events = true;
  config.max_sim_time = 2'000'000'000;
  return config;
}

void RunEquivalence(const SimConfig& config) {
  ASSERT_EQ(config.num_servers, 1);
  const RunResult single = RunSimulation(config);
  const RunResult sharded = MakeShardedEngine(config)->Run();
  ASSERT_FALSE(single.timed_out);
  ExpectSameResult(single, sharded);
}

TEST(ShardingEquivalenceTest, G2plDefault) {
  RunEquivalence(BaseConfig(Protocol::kG2pl));
}

TEST(ShardingEquivalenceTest, G2plMr1wOff) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.mr1w = false;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, G2plReadGroupExpansion) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.expand_read_groups = true;
  config.workload.read_prob = 0.8;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, G2plWindowCapAndAging) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.max_forward_list_length = 3;
  config.g2pl.aging_threshold = 2;
  RunEquivalence(config);
}

// The adaptive cap controller must behave identically whether the item
// space is served by the single-server engine or a 1-shard group: both
// routes feed abort signals through the (shared) coordinator purge path.
TEST(ShardingEquivalenceTest, G2plAdaptiveWindow) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.adaptive.enabled = true;
  config.g2pl.adaptive.initial_cap = 3;
  config.g2pl.adaptive.max_cap = 8;
  config.g2pl.aging_threshold = 2;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, G2plHeterogeneousLatency) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.latency_jitter = 20;
  config.latency_spread = 0.5;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, G2plDelayedAbortNoticeAndWalDelay) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.instant_abort_notice = false;
  config.wal_force_delay = 5;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, S2plRequesterVictim) {
  RunEquivalence(BaseConfig(Protocol::kS2pl));
}

TEST(ShardingEquivalenceTest, S2plYoungestVictim) {
  SimConfig config = BaseConfig(Protocol::kS2pl);
  config.s2pl.victim = S2plOptions::Victim::kYoungest;
  RunEquivalence(config);
}

TEST(ShardingEquivalenceTest, S2plDelayedAbortNotice) {
  SimConfig config = BaseConfig(Protocol::kS2pl);
  config.instant_abort_notice = false;
  RunEquivalence(config);
}

// Sharded runs themselves are deterministic: the same configuration run
// twice yields identical results (the determinism contract extends to the
// multi-server engines).
TEST(ShardingEquivalenceTest, ShardedRunsAreDeterministic) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = BaseConfig(protocol);
    config.num_servers = 4;
    const RunResult a = RunSimulation(config);
    const RunResult b = RunSimulation(config);
    ExpectSameResult(a, b);
  }
}

}  // namespace
}  // namespace gtpl::proto
