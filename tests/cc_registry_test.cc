// The cc registry (ISSUE 6) is the single mapping from engine names to
// protocol enum values and factories; these tests pin its contract: names
// are unique and round-trip through FindEngine, every Protocol value
// resolves to exactly one engine, unknown names fail strictly (listing the
// registered engines, the CLI convention), the --cc/--smoke flags parse,
// and every factory actually produces a runnable engine.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "harness/cli.h"
#include "protocols/config.h"
#include "protocols/engine.h"

namespace gtpl::cc {
namespace {

TEST(CcRegistryTest, NamesAreUniqueAndRoundTripThroughFindEngine) {
  std::set<std::string> seen;
  for (const EngineInfo& info : Engines()) {
    EXPECT_TRUE(seen.insert(info.name).second)
        << "duplicate engine name " << info.name;
    const EngineInfo* found = FindEngine(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found, &info) << info.name;
    EXPECT_NE(std::string(info.summary), "") << info.name;
  }
  EXPECT_EQ(FindEngine("bogus"), nullptr);
  EXPECT_EQ(FindEngine(""), nullptr);
}

TEST(CcRegistryTest, EveryProtocolValueHasExactlyOneEngine) {
  const std::vector<proto::Protocol> all = {
      proto::Protocol::kS2pl,    proto::Protocol::kG2pl,
      proto::Protocol::kC2pl,    proto::Protocol::kCbl,
      proto::Protocol::kO2pl,    proto::Protocol::kNoWait,
      proto::Protocol::kWaitDie, proto::Protocol::kWoundWait,
      proto::Protocol::kOcc,     proto::Protocol::kOrdered};
  EXPECT_EQ(all.size(), Engines().size());
  std::set<proto::Protocol> protocols;
  for (const EngineInfo& info : Engines()) {
    EXPECT_TRUE(protocols.insert(info.protocol).second)
        << "duplicate protocol mapping for " << info.name;
    EXPECT_EQ(EngineFor(info.protocol).name, std::string(info.name));
  }
  for (proto::Protocol protocol : all) {
    EXPECT_EQ(protocols.count(protocol), 1u)
        << "no engine registered for " << proto::ToString(protocol);
  }
}

TEST(CcRegistryTest, EngineNamesListsEveryRegisteredName) {
  const std::string names = EngineNames();
  for (const EngineInfo& info : Engines()) {
    EXPECT_NE(names.find(info.name), std::string::npos) << info.name;
  }
}

TEST(CcRegistryTest, ParseEngineNameResolvesAndFailsStrictly) {
  proto::Protocol protocol = proto::Protocol::kS2pl;
  ASSERT_TRUE(ParseEngineName("waitdie", &protocol).ok());
  EXPECT_EQ(protocol, proto::Protocol::kWaitDie);
  ASSERT_TRUE(ParseEngineName("g2pl", &protocol).ok());
  EXPECT_EQ(protocol, proto::Protocol::kG2pl);

  protocol = proto::Protocol::kS2pl;
  const Status status = ParseEngineName("bogus", &protocol);
  EXPECT_FALSE(status.ok());
  // The error message must name the offender and list the registry, so a
  // typo in a sweep script is self-explaining.
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
  for (const EngineInfo& info : Engines()) {
    EXPECT_NE(status.message().find(info.name), std::string::npos)
        << info.name;
  }
  EXPECT_EQ(protocol, proto::Protocol::kS2pl) << "failed parse must not write";
}

TEST(CcRegistryTest, CliCcFlagSetsEngineAndRejectsUnknownNames) {
  harness::CliOptions options;
  char prog[] = "bench";
  char cc[] = "--cc=occ";
  char* argv[] = {prog, cc};
  ASSERT_TRUE(harness::ParseCli(2, argv, &options).ok());
  EXPECT_EQ(options.cc, "occ");
  EXPECT_EQ(options.cc_protocol, proto::Protocol::kOcc);

  harness::CliOptions bad_options;
  char bad[] = "--cc=bogus";
  char* argv2[] = {prog, bad};
  EXPECT_FALSE(harness::ParseCli(2, argv2, &bad_options).ok());
  EXPECT_TRUE(bad_options.cc.empty());

  harness::CliOptions empty_options;
  char empty[] = "--cc=";
  char* argv3[] = {prog, empty};
  EXPECT_FALSE(harness::ParseCli(2, argv3, &empty_options).ok());
}

TEST(CcRegistryTest, CliSmokePresetUsesCiScale) {
  harness::CliOptions options;
  char prog[] = "bench";
  char smoke[] = "--smoke";
  char* argv[] = {prog, smoke};
  ASSERT_TRUE(harness::ParseCli(2, argv, &options).ok());
  EXPECT_EQ(options.scale.measured_txns, 200);
  EXPECT_EQ(options.scale.warmup_txns, 20);
  EXPECT_EQ(options.scale.runs, 1);
}

// Every factory must produce an engine that runs the standard lifecycle to
// completion on a small workload — this is what guards a registry entry
// whose `make` was never wired up.
TEST(CcRegistryTest, EveryFactoryProducesARunnableEngine) {
  for (const EngineInfo& info : Engines()) {
    proto::SimConfig config;
    config.protocol = info.protocol;
    config.num_clients = 6;
    config.latency = 5;
    config.workload.num_items = 12;
    config.measured_txns = 120;
    config.warmup_txns = 12;
    config.seed = 3;
    config.max_sim_time = 2'000'000'000;
    SCOPED_TRACE(info.name);
    const proto::RunResult result = info.make(config)->Run();
    EXPECT_FALSE(result.timed_out);
    EXPECT_GT(result.commits, 0);
  }
}

}  // namespace
}  // namespace gtpl::cc
