// Equivalence and contract tests of the conservative per-shard parallel
// engine (protocols/parsim.h, DESIGN.md §15):
//   - results are bit-identical at ANY sim_threads value (1, 2, 4, 8), at
//     1 through 8 shards, for both requester-victim protocols;
//   - RunSimulation routes sim_threads == 1 to the serial engine and
//     sim_threads > 1 to the parallel one;
//   - the parallel engine's histories are serializable and its span
//     decomposition stays exact;
//   - Validate() accepts exactly the decomposable configuration subset.

#include "protocols/parsim.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "lease/lease.h"
#include "protocols/config.h"
#include "protocols/metrics.h"
#include "stats/welford.h"

namespace gtpl::proto {
namespace {

/// Small but contended: 16 clients on a 64-item pool keeps every shard
/// busy at up to 8 servers while the whole battery stays sub-second.
SimConfig ParsimConfig(Protocol protocol, int32_t servers,
                       int32_t sim_threads) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 16;
  config.num_servers = servers;
  config.latency = 10;
  config.workload.num_items = 64;
  config.measured_txns = 250;
  config.warmup_txns = 25;
  config.seed = 7;
  config.instant_abort_notice = false;  // the subset's charged-notice rule
  config.sim_threads = sim_threads;
  return config;
}

void AppendWelford(const char* name, const stats::Welford& w,
                   std::string* out) {
  char buf[160];
  // %a prints exact hex floats: any drift in accumulation order shows.
  std::snprintf(buf, sizeof(buf), "%s:%lld,%a,%a,%a;", name,
                static_cast<long long>(w.count()), w.mean(), w.min(),
                w.max());
  *out += buf;
}

/// Every deterministic metric of a run, rendered exactly. Two runs with
/// equal fingerprints produced the same bytes everywhere it matters.
std::string Fingerprint(const RunResult& r) {
  std::string out;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "c:%lld,a:%lld,tc:%lld,ta:%lld,ev:%llu,end:%lld,to:%d,xs:%lld;",
      static_cast<long long>(r.commits), static_cast<long long>(r.aborts),
      static_cast<long long>(r.total_commits),
      static_cast<long long>(r.total_aborts),
      static_cast<unsigned long long>(r.events),
      static_cast<long long>(r.end_time), r.timed_out ? 1 : 0,
      static_cast<long long>(r.cross_server_commits));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "net:%llu,%llu,%llu,%llu,%llu,%llu;wal:%lld,%lld,%lld;",
                static_cast<unsigned long long>(r.network.messages),
                static_cast<unsigned long long>(r.network.server_to_client),
                static_cast<unsigned long long>(r.network.client_to_server),
                static_cast<unsigned long long>(r.network.client_to_client),
                static_cast<unsigned long long>(r.network.server_to_server),
                static_cast<unsigned long long>(r.network.payload_units),
                static_cast<long long>(r.wal_appends),
                static_cast<long long>(r.wal_forces),
                static_cast<long long>(r.wal_retained));
  out += buf;
  std::snprintf(buf, sizeof(buf), "sync:%llu,%llu;",
                static_cast<unsigned long long>(r.sync_windows),
                static_cast<unsigned long long>(r.sync_stalls));
  out += buf;
  out += "lp:";
  for (uint64_t events : r.shard_events) {
    std::snprintf(buf, sizeof(buf), "%llu,",
                  static_cast<unsigned long long>(events));
    out += buf;
  }
  out += ";";
  AppendWelford("resp", r.response, &out);
  AppendWelford("opw", r.op_wait, &out);
  AppendWelford("aage", r.abort_age, &out);
  AppendWelford("aheld", r.abort_held_items, &out);
  AppendWelford("lw", r.span_lock_wait, &out);
  AppendWelford("pp", r.span_propagation, &out);
  AppendWelford("qq", r.span_queueing, &out);
  AppendWelford("ex", r.span_execution, &out);
  AppendWelford("cm", r.span_commit, &out);
  AppendWelford("cp", r.span_commit_prepare, &out);
  AppendWelford("cv", r.span_commit_vote, &out);
  AppendWelford("part", r.commit_participants, &out);
  AppendWelford("fl", r.commit_flights, &out);
  std::snprintf(buf, sizeof(buf), "hist:%a,%a,%a,%a,%a,%a;",
                r.response_hist.Percentile(0.50),
                r.response_hist.Percentile(0.95),
                r.response_hist.Percentile(0.99),
                r.op_wait_hist.Percentile(0.50),
                r.op_wait_hist.Percentile(0.99),
                r.xcommit_span_hist.Percentile(0.50));
  out += buf;
  return out;
}

// The tentpole contract: for both requester-victim protocols and shard
// counts 1..8, the parallel engine produces byte-identical metrics at any
// sim_threads value — 1 (inline windows), 2, 4, and 8 — with the > 1
// values routed through RunSimulation exactly as the CLI would.
TEST(ParsimEquivalenceTest, BitIdenticalAtAnyThreadAndShardCount) {
  for (Protocol protocol : {Protocol::kNoWait, Protocol::kWaitDie}) {
    for (int32_t servers : {1, 2, 4, 8}) {
      const RunResult base =
          RunParallelSimulation(ParsimConfig(protocol, servers, 1));
      const std::string base_print = Fingerprint(base);
      EXPECT_FALSE(base.timed_out);
      EXPECT_GE(base.commits, 250);
      ASSERT_EQ(base.shard_events.size(), static_cast<size_t>(servers));
      for (int32_t threads : {2, 4, 8}) {
        const RunResult run =
            RunSimulation(ParsimConfig(protocol, servers, threads));
        EXPECT_EQ(Fingerprint(run), base_print)
            << ToString(protocol) << ", " << servers << " servers, "
            << threads << " threads";
      }
    }
  }
}

TEST(ParsimEquivalenceTest, RunSimulationRoutesThreadsOneToSerialEngine) {
  SimConfig config = ParsimConfig(Protocol::kNoWait, 4, 1);
  const RunResult via_registry = RunSimulation(config);
  const RunResult direct = cc::EngineFor(config.protocol).make(config)->Run();
  EXPECT_EQ(Fingerprint(via_registry), Fingerprint(direct));
  // The serial engine reports no parallel telemetry.
  EXPECT_TRUE(via_registry.shard_events.empty());
  EXPECT_EQ(via_registry.sync_windows, 0u);
}

// The parallel engine is a different simulation than the serial one
// (striped ids, barrier-latched gates) — but it must still be a correct
// one: every history serializable, every span decomposition exact.
TEST(ParsimEquivalenceTest, HistoriesSerializableAndSpansExact) {
  for (Protocol protocol : {Protocol::kNoWait, Protocol::kWaitDie}) {
    for (int32_t servers : {2, 8}) {
      SimConfig config = ParsimConfig(protocol, servers, 2);
      config.record_history = true;
      const RunResult result = RunSimulation(config);
      std::string explanation;
      EXPECT_TRUE(HistoryIsSerializable(result.history, &explanation))
          << ToString(protocol) << ", " << servers
          << " servers: " << explanation;
      EXPECT_GE(result.history.size(), static_cast<size_t>(result.commits));
      for (const CommittedTxn& txn : result.history) {
        EXPECT_EQ(txn.span.Total(), txn.commit_time - txn.start_time)
            << "txn " << txn.id;
        EXPECT_GE(txn.span.CommitResidual(), 0) << "txn " << txn.id;
      }
    }
  }
}

TEST(ParsimEquivalenceTest, ParallelTelemetryIsPopulated) {
  const RunResult result =
      RunSimulation(ParsimConfig(Protocol::kNoWait, 4, 2));
  EXPECT_GT(result.sync_windows, 0u);
  ASSERT_EQ(result.shard_events.size(), 4u);
  uint64_t total = 0;
  for (uint64_t events : result.shard_events) {
    EXPECT_GT(events, 0u);
    total += events;
  }
  EXPECT_EQ(total, result.events);
}

TEST(ParsimValidateTest, AcceptsTheDecomposableSubset) {
  EXPECT_TRUE(ParsimConfig(Protocol::kNoWait, 4, 2).Validate().ok());
  EXPECT_TRUE(ParsimConfig(Protocol::kWaitDie, 1, 8).Validate().ok());
  SimConfig with_history = ParsimConfig(Protocol::kNoWait, 2, 2);
  with_history.record_history = true;  // history IS allowed (tests need it)
  EXPECT_TRUE(with_history.Validate().ok());
}

TEST(ParsimValidateTest, RejectsEverythingOutsideTheSubset) {
  // sim_threads itself is range-checked (the CLI strict-parse backstop).
  SimConfig zero = ParsimConfig(Protocol::kNoWait, 2, 2);
  zero.sim_threads = 0;
  EXPECT_FALSE(zero.Validate().ok());

  // Only the requester-victim protocols decompose.
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl, Protocol::kOcc,
                            Protocol::kWoundWait}) {
    EXPECT_FALSE(ParsimConfig(protocol, 2, 2).Validate().ok())
        << ToString(protocol);
  }

  SimConfig commit = ParsimConfig(Protocol::kNoWait, 2, 2);
  commit.commit_path = CommitPath::kEarly;
  EXPECT_FALSE(commit.Validate().ok());

  SimConfig leased = ParsimConfig(Protocol::kNoWait, 2, 2);
  leased.lease.mode = lease::LeaseMode::kSticky;
  EXPECT_FALSE(leased.Validate().ok());

  // Non-uniform network models have no single lookahead.
  SimConfig jitter = ParsimConfig(Protocol::kNoWait, 2, 2);
  jitter.latency_jitter = 5;
  EXPECT_FALSE(jitter.Validate().ok());
  SimConfig spread = ParsimConfig(Protocol::kNoWait, 2, 2);
  spread.latency_spread = 0.5;
  EXPECT_FALSE(spread.Validate().ok());
  SimConfig bandwidth = ParsimConfig(Protocol::kNoWait, 2, 2);
  bandwidth.link_bandwidth = 4.0;
  EXPECT_FALSE(bandwidth.Validate().ok());
  SimConfig mesh = ParsimConfig(Protocol::kNoWait, 2, 2);
  mesh.server_latency = 5;
  EXPECT_FALSE(mesh.Validate().ok());
  SimConfig zero_latency = ParsimConfig(Protocol::kNoWait, 2, 2);
  zero_latency.latency = 0;
  EXPECT_FALSE(zero_latency.Validate().ok());

  // An instant abort notice is a zero-latency cross-shard edge.
  SimConfig instant = ParsimConfig(Protocol::kNoWait, 2, 2);
  instant.instant_abort_notice = true;
  EXPECT_FALSE(instant.Validate().ok());

  // The obs trace works at any thread count (per-LP tracers merged at
  // barriers — DESIGN.md §16); the legacy network trace and the protocol
  // event recorder remain serial-engine-only.
  SimConfig traced = ParsimConfig(Protocol::kNoWait, 2, 2);
  traced.obs_trace = true;
  EXPECT_TRUE(traced.Validate().ok());
  SimConfig net_trace = ParsimConfig(Protocol::kNoWait, 2, 2);
  net_trace.trace = true;
  EXPECT_FALSE(net_trace.Validate().ok());
  SimConfig events = ParsimConfig(Protocol::kNoWait, 2, 2);
  events.record_protocol_events = true;
  EXPECT_FALSE(events.Validate().ok());

  // Every rejection is threads-gated: the same configs pass at 1 thread.
  SimConfig serial = ParsimConfig(Protocol::kS2pl, 2, 1);
  serial.instant_abort_notice = true;
  serial.latency_jitter = 5;
  EXPECT_TRUE(serial.Validate().ok());
}

}  // namespace
}  // namespace gtpl::proto
