// Unit tests for the statistics substrate (Welford, replication CIs,
// histogram).

#include "stats/welford.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/replication.h"

namespace gtpl::stats {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  Welford w;
  EXPECT_EQ(w.count(), 0);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  Welford w;
  w.Add(5.0);
  EXPECT_EQ(w.count(), 1);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.min(), 5.0);
  EXPECT_EQ(w.max(), 5.0);
}

TEST(WelfordTest, KnownMeanAndVariance) {
  Welford w;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Add(v);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(w.min(), 2.0);
  EXPECT_EQ(w.max(), 9.0);
}

TEST(WelfordTest, MergeMatchesSequential) {
  Welford all;
  Welford left;
  Welford right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(WelfordTest, MergeWithEmpty) {
  Welford a;
  a.Add(1.0);
  a.Add(3.0);
  Welford empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(StudentTTest, KnownCriticalValues) {
  EXPECT_NEAR(StudentT95(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT95(4), 2.776, 1e-3);   // the paper's 5 runs
  EXPECT_NEAR(StudentT95(10), 2.228, 1e-3);
  EXPECT_NEAR(StudentT95(30), 2.042, 1e-3);
  EXPECT_NEAR(StudentT95(1000), 1.96, 1e-3);
}

TEST(SummarizeTest, SingleRunHasNoInterval) {
  const ReplicationSummary s = Summarize({10.0});
  EXPECT_EQ(s.runs, 1);
  EXPECT_DOUBLE_EQ(s.mean, 10.0);
  EXPECT_EQ(s.ci_half_width, 0.0);
}

TEST(SummarizeTest, FiveRunsMatchHandComputation) {
  const std::vector<double> values = {10, 12, 11, 9, 13};
  const ReplicationSummary s = Summarize(values);
  EXPECT_EQ(s.runs, 5);
  EXPECT_DOUBLE_EQ(s.mean, 11.0);
  const double stddev = std::sqrt(2.5);  // sample variance 2.5
  EXPECT_NEAR(s.stddev, stddev, 1e-12);
  EXPECT_NEAR(s.ci_half_width, 2.776 * stddev / std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(s.relative_precision, s.ci_half_width / 11.0, 1e-12);
}

TEST(SummarizeTest, IdenticalRunsHaveZeroWidth) {
  const ReplicationSummary s = Summarize({5, 5, 5, 5});
  EXPECT_EQ(s.ci_half_width, 0.0);
  EXPECT_EQ(s.relative_precision, 0.0);
}

TEST(HistogramTest, CountsAndOverflow) {
  Histogram h(100.0, 10);
  h.Add(5);     // bucket 0
  h.Add(15);    // bucket 1
  h.Add(95);    // bucket 9
  h.Add(150);   // overflow
  h.Add(-2);    // clamped to bucket 0
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.overflow(), 1);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h(1000.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(i);
  const double p50 = h.Percentile(0.5);
  const double p90 = h.Percentile(0.9);
  const double p99 = h.Percentile(0.99);
  EXPECT_NEAR(p50, 500, 20);
  EXPECT_NEAR(p90, 900, 20);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(HistogramTest, PercentileEmpty) {
  Histogram h(100.0, 10);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
  const Percentiles s = h.Summary();
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.pmax, 0.0);
}

TEST(HistogramTest, PercentileOneSample) {
  // The old integer-rank Quantile reported 0 for a lone sample at any
  // q < 1; the corrected interpolation lands inside the sample's bucket.
  Histogram h(100.0, 10);
  h.Add(55.0);  // bucket [50, 60)
  EXPECT_GE(h.Percentile(0.5), 50.0);
  EXPECT_LE(h.Percentile(0.5), 60.0);
  EXPECT_GE(h.Percentile(0.99), 50.0);
  EXPECT_LE(h.Percentile(0.99), 60.0);
  EXPECT_EQ(h.Summary().pmax, 60.0);
}

TEST(HistogramTest, PercentileOverflowBucket) {
  Histogram h(100.0, 10);
  for (int i = 0; i < 90; ++i) h.Add(static_cast<double>(i));
  for (int i = 0; i < 10; ++i) h.Add(1000.0);  // 10% overflow
  EXPECT_LT(h.Percentile(0.5), 100.0);
  // p99 ranks inside the overflow region: reported as max_value.
  EXPECT_EQ(h.Percentile(0.99), 100.0);
  EXPECT_EQ(h.Percentile(1.0), 100.0);
  EXPECT_EQ(h.Summary().pmax, 100.0);
}

TEST(HistogramTest, PercentileMonotoneAcrossBuckets) {
  Histogram h(100.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(h.Percentile(0.95), 95.0, 5.0);
}

TEST(HistogramTest, DefaultConstructedIsInert) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
  h.Add(5.0);  // lands in overflow (max_value = 1)
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.overflow(), 1);
}

TEST(HistogramTest, AsciiRenderingNonEmpty) {
  Histogram h(10.0, 5);
  for (int i = 0; i < 20; ++i) h.Add(i % 10);
  const std::string art = h.ToAscii();
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramTest, EmptyAscii) {
  Histogram h(10.0, 5);
  EXPECT_EQ(h.ToAscii(), "(empty)\n");
}

}  // namespace
}  // namespace gtpl::stats
