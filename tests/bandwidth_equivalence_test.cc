// Standing equivalence suite for the link-level transport (ISSUE 3
// acceptance): with link_bandwidth = 0 (infinite — the paper's model) the
// engines must reproduce the pure-propagation results *bit for bit* —
// every metric, the event counts, the network counters, the committed
// history, and the protocol-event stream — whatever other options are set.
// Enabling nic_queue alone must be a complete no-op; only a finite
// bandwidth may change anything. This pins the degenerate-case guarantee
// DESIGN.md §9 promises, across every protocol and the option corners that
// exercise different code paths.

#include <gtest/gtest.h>

#include "protocols/engine.h"

namespace gtpl::proto {
namespace {

void ExpectSameWelford(const stats::Welford& a, const stats::Welford& b,
                       const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void ExpectSameResult(const RunResult& base, const RunResult& linked) {
  ExpectSameWelford(base.response, linked.response, "response");
  ExpectSameWelford(base.op_wait, linked.op_wait, "op_wait");
  ExpectSameWelford(base.abort_age, linked.abort_age, "abort_age");
  ExpectSameWelford(base.abort_held_items, linked.abort_held_items,
                    "abort_held_items");
  EXPECT_EQ(base.commits, linked.commits);
  EXPECT_EQ(base.aborts, linked.aborts);
  EXPECT_EQ(base.total_commits, linked.total_commits);
  EXPECT_EQ(base.total_aborts, linked.total_aborts);
  EXPECT_EQ(base.events, linked.events);
  EXPECT_EQ(base.end_time, linked.end_time);
  EXPECT_EQ(base.timed_out, linked.timed_out);
  EXPECT_EQ(base.network.messages, linked.network.messages);
  EXPECT_EQ(base.network.server_to_client, linked.network.server_to_client);
  EXPECT_EQ(base.network.client_to_server, linked.network.client_to_server);
  EXPECT_EQ(base.network.client_to_client, linked.network.client_to_client);
  EXPECT_EQ(base.network.server_to_server, linked.network.server_to_server);
  EXPECT_EQ(base.network.payload_units, linked.network.payload_units);
  EXPECT_EQ(base.network.transmission_ticks,
            linked.network.transmission_ticks);
  ExpectSameWelford(base.network.sender_queue_delay,
                    linked.network.sender_queue_delay, "sender_queue_delay");
  ExpectSameWelford(base.network.receiver_queue_delay,
                    linked.network.receiver_queue_delay,
                    "receiver_queue_delay");
  EXPECT_EQ(base.max_link_utilization, linked.max_link_utilization);
  EXPECT_EQ(base.queue_delay_p99, linked.queue_delay_p99);
  EXPECT_EQ(base.windows_dispatched, linked.windows_dispatched);
  EXPECT_EQ(base.mean_forward_list_length, linked.mean_forward_list_length);
  EXPECT_EQ(base.read_group_expansions, linked.read_group_expansions);
  EXPECT_EQ(base.cross_server_commits, linked.cross_server_commits);
  EXPECT_EQ(base.wal_appends, linked.wal_appends);
  EXPECT_EQ(base.wal_forces, linked.wal_forces);
  EXPECT_EQ(base.wal_retained, linked.wal_retained);
  ASSERT_EQ(base.history.size(), linked.history.size());
  for (size_t i = 0; i < base.history.size(); ++i) {
    const CommittedTxn& a = base.history[i];
    const CommittedTxn& b = linked.history[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.client, b.client);
    EXPECT_EQ(a.start_time, b.start_time);
    EXPECT_EQ(a.commit_time, b.commit_time);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t k = 0; k < a.ops.size(); ++k) {
      EXPECT_EQ(a.ops[k].item, b.ops[k].item);
      EXPECT_EQ(a.ops[k].mode, b.ops[k].mode);
      EXPECT_EQ(a.ops[k].version_read, b.ops[k].version_read);
      EXPECT_EQ(a.ops[k].version_written, b.ops[k].version_written);
    }
  }
  ASSERT_EQ(base.protocol_events.size(), linked.protocol_events.size());
  for (size_t i = 0; i < base.protocol_events.size(); ++i) {
    const ProtocolEvent& a = base.protocol_events[i];
    const ProtocolEvent& b = linked.protocol_events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.time, b.time) << "event " << i;
    EXPECT_EQ(a.txn, b.txn) << "event " << i;
    EXPECT_EQ(a.item, b.item) << "event " << i;
    EXPECT_EQ(a.server, b.server) << "event " << i;
    EXPECT_EQ(a.flag, b.flag) << "event " << i;
  }
}

SimConfig BaseConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.latency = 50;
  config.workload.num_items = 15;
  config.measured_txns = 400;
  config.warmup_txns = 40;
  config.seed = 11;
  config.record_history = true;
  config.record_protocol_events = true;
  config.max_sim_time = 2'000'000'000;
  return config;
}

// Runs `config` as-is and with the link layer armed at infinite bandwidth
// (nic_queue on, bandwidth 0); the two must be indistinguishable.
void RunEquivalence(const SimConfig& config) {
  SimConfig with_link = config;
  with_link.nic_queue = true;
  const RunResult base = RunSimulation(config);
  ASSERT_FALSE(base.timed_out);
  const RunResult linked = RunSimulation(with_link);
  ExpectSameResult(base, linked);
}

TEST(BandwidthEquivalenceTest, G2plDefault) {
  RunEquivalence(BaseConfig(Protocol::kG2pl));
}

TEST(BandwidthEquivalenceTest, S2plDefault) {
  RunEquivalence(BaseConfig(Protocol::kS2pl));
}

TEST(BandwidthEquivalenceTest, C2plDefault) {
  RunEquivalence(BaseConfig(Protocol::kC2pl));
}

TEST(BandwidthEquivalenceTest, CblDefault) {
  RunEquivalence(BaseConfig(Protocol::kCbl));
}

TEST(BandwidthEquivalenceTest, O2plDefault) {
  RunEquivalence(BaseConfig(Protocol::kO2pl));
}

TEST(BandwidthEquivalenceTest, G2plMr1wOff) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.mr1w = false;
  RunEquivalence(config);
}

TEST(BandwidthEquivalenceTest, G2plReadGroupExpansion) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.expand_read_groups = true;
  config.workload.read_prob = 0.8;
  RunEquivalence(config);
}

TEST(BandwidthEquivalenceTest, G2plWindowCapAndAging) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.g2pl.max_forward_list_length = 3;
  config.g2pl.aging_threshold = 2;
  RunEquivalence(config);
}

// Jitter draws come from a dedicated RNG stream, so arming the link layer
// must not perturb them even under heterogeneous latency.
TEST(BandwidthEquivalenceTest, G2plHeterogeneousLatency) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.latency_jitter = 20;
  config.latency_spread = 0.5;
  RunEquivalence(config);
}

TEST(BandwidthEquivalenceTest, G2plDelayedAbortNoticeAndWalDelay) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.instant_abort_notice = false;
  config.wal_force_delay = 5;
  RunEquivalence(config);
}

TEST(BandwidthEquivalenceTest, S2plYoungestVictim) {
  SimConfig config = BaseConfig(Protocol::kS2pl);
  config.s2pl.victim = S2plOptions::Victim::kYoungest;
  RunEquivalence(config);
}

TEST(BandwidthEquivalenceTest, ShardedFourServers) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = BaseConfig(protocol);
    config.num_servers = 4;
    RunEquivalence(config);
  }
}

// Finite bandwidth is outside the equivalence envelope but must still be
// fully deterministic, including on the sharded 2PC paths.
TEST(BandwidthEquivalenceTest, FiniteBandwidthShardedDeterministic) {
  SimConfig config = BaseConfig(Protocol::kG2pl);
  config.num_servers = 4;
  config.link_bandwidth = 1.0;
  config.nic_queue = true;
  config.cross_traffic_load = 0.3;
  const RunResult a = RunSimulation(config);
  const RunResult b = RunSimulation(config);
  ExpectSameResult(a, b);
}

}  // namespace
}  // namespace gtpl::proto
