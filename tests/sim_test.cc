// Unit tests for the discrete-event simulation kernel.

#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace gtpl::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, 0, [&order] { order.push_back(30); });
  queue.Push(10, 1, [&order] { order.push_back(10); });
  queue.Push(20, 2, [&order] { order.push_back(20); });
  while (!queue.empty()) queue.Pop().action();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueueTest, SameTickFifoBySequence) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5, static_cast<uint64_t>(i), [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.Pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PeekTimeMatchesEarliest) {
  EventQueue queue;
  queue.Push(42, 0, [] {});
  queue.Push(7, 1, [] {});
  EXPECT_EQ(queue.PeekTime(), 7);
}

TEST(EventQueueTest, SizeAndClear) {
  EventQueue queue;
  queue.Push(1, 0, [] {});
  queue.Push(2, 1, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Clear();
  EXPECT_TRUE(queue.empty());
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.Schedule(5, [&] { seen.push_back(sim.Now()); });
  sim.Schedule(2, [&] { seen.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<SimTime>{2, 5}));
  EXPECT_EQ(sim.Now(), 5);
}

TEST(SimulatorTest, NestedSchedulingUsesEventTimeAsBase) {
  Simulator sim;
  SimTime inner_fired = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(7, [&] { inner_fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fired, 17);
}

TEST(SimulatorTest, ZeroDelayRunsAfterPendingSameTick) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1, [&] {
    order.push_back(1);
    sim.Schedule(0, [&] { order.push_back(3); });
  });
  sim.Schedule(1, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(5, [&] { ++fired; });
  sim.Schedule(15, [&] { ++fired; });
  sim.Run(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventExactlyAtHorizonRuns) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Run(10);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StopHaltsExecution) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

// Regression (PR 9 bugfix sweep): Step() used to ignore `until`, skip the
// time-monotonicity check, and clear a pending stop — diverging from Run()'s
// contract. These pin the repaired semantics.
TEST(SimulatorTest, StepRespectsUntilHorizon) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(5, [&] { ++fired; });
  EXPECT_FALSE(sim.Step(3));  // earliest event past the horizon
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Step(5));  // event stamped exactly `until` still runs
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 5);
}

TEST(SimulatorTest, StepStopSticksUntilNextRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
  // The stop persists across Step() calls: nothing runs, nothing advances.
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 1);
  // Run() resets the flag and drains the remaining event.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepAdvancesClockMonotonically) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.Schedule(4, [&] { seen.push_back(sim.Now()); });
  sim.Schedule(2, [&] { seen.push_back(sim.Now()); });
  sim.Schedule(4, [&] { seen.push_back(sim.Now()); });
  while (sim.Step()) {
  }
  EXPECT_EQ(seen, (std::vector<SimTime>{2, 4, 4}));
  EXPECT_EQ(sim.events_executed(), 3u);
  EXPECT_EQ(sim.Now(), 4);
}

#ifndef NDEBUG
// The (time, seq) pair is the determinism tiebreak; a duplicate seq makes
// same-tick order depend on heap internals. Debug builds abort on it.
TEST(EventQueueDeathTest, DuplicateSeqAbortsInDebugBuilds) {
  EventQueue queue;
  queue.Push(1, 7, [] {});
  EXPECT_DEATH(queue.Push(2, 7, [] {}), "duplicate event seq");
}
#endif

TEST(SimulatorTest, EmptyRunAdvancesToHorizon) {
  Simulator sim;
  sim.Run(100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

}  // namespace
}  // namespace gtpl::sim
