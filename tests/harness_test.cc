// Unit tests for the experiment harness: table rendering, CLI parsing, and
// replication aggregation.

#include "harness/experiment.h"

#include <set>

#include <gtest/gtest.h>

#include "harness/cli.h"
#include "harness/table.h"
#include "protocols/commit.h"

namespace gtpl::harness {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"a", "long-header"});
  table.AddRow({"wide-cell", "1"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a          long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell  1"), std::string::npos);
}

TEST(TableTest, CsvEscapesNothingButJoins) {
  Table table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(TableDeathTest, RowArityChecked) {
  Table table({"x", "y"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(FmtTest, Decimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(10.0, 0), "10");
}

TEST(CliTest, DefaultsWhenNoFlags) {
  CliOptions options;
  char prog[] = "bench";
  char* argv[] = {prog};
  ASSERT_TRUE(ParseCli(1, argv, &options).ok());
  EXPECT_EQ(options.scale.measured_txns, 4000);
  EXPECT_EQ(options.scale.runs, 3);
}

TEST(CliTest, ParsesScaleFlags) {
  CliOptions options;
  char prog[] = "bench";
  char txns[] = "--txns=123";
  char warmup[] = "--warmup=45";
  char runs[] = "--runs=7";
  char seed[] = "--seed=99";
  char csv[] = "--csv=/tmp/out.csv";
  char* argv[] = {prog, txns, warmup, runs, seed, csv};
  ASSERT_TRUE(ParseCli(6, argv, &options).ok());
  EXPECT_EQ(options.scale.measured_txns, 123);
  EXPECT_EQ(options.scale.warmup_txns, 45);
  EXPECT_EQ(options.scale.runs, 7);
  EXPECT_EQ(options.scale.base_seed, 99u);
  EXPECT_EQ(options.csv_path, "/tmp/out.csv");
}

TEST(CliTest, FullAndQuickPresets) {
  CliOptions options;
  char prog[] = "bench";
  char full[] = "--full";
  char* argv[] = {prog, full};
  ASSERT_TRUE(ParseCli(2, argv, &options).ok());
  EXPECT_EQ(options.scale.measured_txns, 50000);
  EXPECT_EQ(options.scale.runs, 5);
  CliOptions quick_options;
  char quick[] = "--quick";
  char* argv2[] = {prog, quick};
  ASSERT_TRUE(ParseCli(2, argv2, &quick_options).ok());
  EXPECT_EQ(quick_options.scale.measured_txns, 800);
}

TEST(CliTest, RejectsUnknownAndMalformed) {
  CliOptions options;
  char prog[] = "bench";
  char bogus[] = "--bogus";
  char* argv[] = {prog, bogus};
  EXPECT_FALSE(ParseCli(2, argv, &options).ok());
  char bad[] = "--txns=abc";
  char* argv2[] = {prog, bad};
  EXPECT_FALSE(ParseCli(2, argv2, &options).ok());
  char neg[] = "--txns=-5";
  char* argv3[] = {prog, neg};
  EXPECT_FALSE(ParseCli(2, argv3, &options).ok());
}

TEST(SeedTest, ReplicaSeedsNeverCollideAcrossNearbyBaseSeeds) {
  // The old scheme used seed + rep + 1, so base seeds 42 and 43 shared all
  // but one replication. The SplitMix64 derivation keeps every
  // (base, rep) combination distinct over realistic sweep ranges.
  std::set<uint64_t> seen;
  for (uint64_t base = 42; base < 142; ++base) {
    for (int32_t rep = 0; rep < 20; ++rep) {
      EXPECT_TRUE(seen.insert(ReplicaSeed(base, rep)).second)
          << "collision at base " << base << " rep " << rep;
    }
  }
}

TEST(SeedTest, PointSeedsDisjointFromReplicaSeeds) {
  std::set<uint64_t> seen;
  for (uint64_t base = 1; base < 51; ++base) {
    for (size_t point = 0; point < 40; ++point) {
      EXPECT_TRUE(seen.insert(PointSeed(base, point)).second);
    }
    for (int32_t rep = 0; rep < 40; ++rep) {
      EXPECT_TRUE(seen.insert(ReplicaSeed(base, rep)).second);
    }
  }
}

TEST(CliTest, ParsesJobsFlag) {
  CliOptions options;
  char prog[] = "bench";
  char jobs[] = "--jobs=8";
  char* argv[] = {prog, jobs};
  ASSERT_TRUE(ParseCli(2, argv, &options).ok());
  EXPECT_EQ(options.jobs, 8);
  char zero[] = "--jobs=0";
  char* argv2[] = {prog, zero};
  EXPECT_FALSE(ParseCli(2, argv2, &options).ok());
}

// Exhaustive CLI error paths: every out-of-range, malformed, or truncated
// flag must be rejected (not clamped, not ignored) so a typo in a sweep
// script can never silently run the wrong experiment.
TEST(CliTest, RejectsOutOfRangeAndMalformedFlags) {
  const std::vector<std::string> bad = {
      "--jobs=-3",   "--jobs=4097", "--jobs=abc", "--jobs=",
      "--runs=0",    "--runs=101",  "--runs=",    "--warmup=-1",
      "--warmup=no", "--seed=-1",   "--seed=1e4", "--txns=0",
      "--txns=",     "--csv",       "-x",         "--",
  };
  for (const std::string& flag : bad) {
    CliOptions options;
    std::vector<char> arg(flag.begin(), flag.end());
    arg.push_back('\0');
    char prog[] = "bench";
    char* argv[] = {prog, arg.data()};
    EXPECT_FALSE(ParseCli(2, argv, &options).ok()) << flag;
  }
}

// The shared strict value parsers: the whole token must parse, so the
// `--flag=abc` inputs the atoi family silently read as 0 are rejected.
TEST(CliTest, StrictValueParsersRejectPartialAndMalformedInput) {
  int32_t i32 = -7;
  int64_t i64 = -7;
  double d = -7.0;

  EXPECT_TRUE(ParseInt32Value("42", &i32));
  EXPECT_EQ(i32, 42);
  EXPECT_TRUE(ParseInt32Value("-3", &i32));
  EXPECT_EQ(i32, -3);
  EXPECT_TRUE(ParseInt64Value("60000000000", &i64));
  EXPECT_EQ(i64, 60'000'000'000);
  EXPECT_TRUE(ParseDoubleValue("0.5", &d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_TRUE(ParseDoubleValue("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);

  for (const char* bad : {"", "abc", "12abc", "4.5", " 5", "5 ", "0x10",
                          "++1", "2147483648" /* int32 overflow */}) {
    i32 = -7;
    EXPECT_FALSE(ParseInt32Value(bad, &i32)) << "'" << bad << "'";
    EXPECT_EQ(i32, -7) << "'" << bad << "' must leave output untouched";
  }
  for (const char* bad : {"", "1e3" /* no exponents for ints */, "9.9",
                          "123abc", "99999999999999999999" /* overflow */}) {
    i64 = -7;
    EXPECT_FALSE(ParseInt64Value(bad, &i64)) << "'" << bad << "'";
    EXPECT_EQ(i64, -7) << "'" << bad << "' must leave output untouched";
  }
  for (const char* bad : {"", "abc", "0.5x", " 0.5", "1.2.3"}) {
    d = -7.0;
    EXPECT_FALSE(ParseDoubleValue(bad, &d)) << "'" << bad << "'";
    EXPECT_DOUBLE_EQ(d, -7.0) << "'" << bad << "' must leave output untouched";
  }
}

// A bad flag rejects the whole invocation even when earlier flags parsed,
// and --help surfaces as a non-ok status so callers print usage and exit.
TEST(CliTest, StopsAtFirstBadFlagAndTreatsHelpAsExit) {
  CliOptions options;
  char prog[] = "bench";
  char good[] = "--txns=50";
  char bad[] = "--runs=0";
  char* argv[] = {prog, good, bad};
  EXPECT_FALSE(ParseCli(3, argv, &options).ok());
  CliOptions help_options;
  char help[] = "--help";
  char* argv2[] = {prog, help};
  const Status status = ParseCli(2, argv2, &help_options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "help requested");
}

// --commit resolves through the commit-path registry with the same strict
// contract as --cc: every registered name parses to its enum value, and an
// unknown name rejects the invocation with an error listing the registry.
TEST(CliTest, ParsesCommitPathFlag) {
  for (const proto::CommitPathInfo& info : proto::CommitPaths()) {
    CliOptions options;
    std::string flag = std::string("--commit=") + info.name;
    std::vector<char> arg(flag.begin(), flag.end());
    arg.push_back('\0');
    char prog[] = "bench";
    char* argv[] = {prog, arg.data()};
    ASSERT_TRUE(ParseCli(2, argv, &options).ok()) << info.name;
    EXPECT_EQ(options.commit, info.name);
    EXPECT_EQ(options.commit_path, info.path) << info.name;
  }
}

TEST(CliTest, RejectsUnknownCommitPathListingRegistry) {
  CliOptions options;
  char prog[] = "bench";
  char bad[] = "--commit=bogus";
  char* argv[] = {prog, bad};
  const Status status = ParseCli(2, argv, &options);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown commit path 'bogus'"),
            std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("classic"), std::string::npos);
  EXPECT_EQ(options.commit, "");  // nothing applied on failure
  char empty[] = "--commit=";
  char* argv2[] = {prog, empty};
  EXPECT_FALSE(ParseCli(2, argv2, &options).ok());
}

TEST(ExperimentTest, RunReplicatedAggregatesAcrossSeeds) {
  proto::SimConfig config;
  config.protocol = proto::Protocol::kS2pl;
  config.num_clients = 5;
  config.latency = 10;
  config.workload.num_items = 10;
  config.measured_txns = 200;
  config.warmup_txns = 20;
  config.seed = 100;
  config.max_sim_time = 50'000'000;
  const PointResult point = RunReplicated(config, 3);
  EXPECT_EQ(point.response.runs, 3);
  EXPECT_GT(point.response.mean, 0.0);
  EXPECT_GE(point.response.ci_half_width, 0.0);
  EXPECT_EQ(point.total_commits, 600);
  EXPECT_FALSE(point.any_timed_out);
  // Replications use distinct seeds, so some spread is expected.
  EXPECT_GT(point.response.stddev, 0.0);
}

TEST(ExperimentTest, RunReplicatedIsDeterministic) {
  proto::SimConfig config;
  config.protocol = proto::Protocol::kG2pl;
  config.num_clients = 5;
  config.latency = 10;
  config.workload.num_items = 10;
  config.measured_txns = 100;
  config.warmup_txns = 10;
  config.seed = 55;
  config.max_sim_time = 50'000'000;
  const PointResult a = RunReplicated(config, 2);
  const PointResult b = RunReplicated(config, 2);
  EXPECT_EQ(a.response.mean, b.response.mean);
  EXPECT_EQ(a.abort_pct.mean, b.abort_pct.mean);
}

TEST(ExperimentTest, ApplyScaleOverridesRunLengths) {
  ExperimentScale scale;
  scale.measured_txns = 777;
  scale.warmup_txns = 77;
  scale.base_seed = 7;
  proto::SimConfig config;
  ApplyScale(scale, &config);
  EXPECT_EQ(config.measured_txns, 777);
  EXPECT_EQ(config.warmup_txns, 77);
  EXPECT_EQ(config.seed, 7u);
}

}  // namespace
}  // namespace gtpl::harness
