// Property tests for the concurrency-control zoo (ISSUE 6): every engine in
// the cc registry — the legacy s-2PL/g-2PL/caching protocols and the new
// no-wait, wait-die, OCC, and ordered-release engines — is run over
// randomized workloads at 1-8 shards and must produce serializable,
// invariant-clean executions. On top of the generic sweep, the
// deadlock-handling claims behind each new policy are pinned directly:
// ordered acquisition makes the ordered policy abort-free, no-wait/wait-die
// turn contention into restarts instead of waits, and OCC restarts grow
// with the validation window.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "protocols/engine.h"
#include "protocols/invariants.h"
#include "rng/rng.h"

namespace gtpl::cc {
namespace {

proto::SimConfig RandomConfig(proto::Protocol protocol, uint64_t seed) {
  rng::Rng rng(seed * 7919 + 13);
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 6 + static_cast<int32_t>(rng.Next64() % 12);
  config.latency = 1 + static_cast<SimTime>(rng.Next64() % 200);
  config.workload.num_items = 10 + static_cast<int32_t>(rng.Next64() % 15);
  config.workload.read_prob = 0.2 * static_cast<double>(rng.Next64() % 5);
  config.measured_txns = 250;
  config.warmup_txns = 25;
  config.seed = seed;
  config.record_history = true;
  config.record_protocol_events = true;
  // Restart-heavy policies (no-wait under write-hot workloads) need more
  // simulated time than the blocking protocols to commit the same count.
  config.max_sim_time = 4'000'000'000;
  return config;
}

proto::RunResult CheckRun(const proto::SimConfig& config) {
  proto::RunResult result = proto::RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(proto::CheckAcyclicity(result.protocol_events, &why)) << why;
  EXPECT_TRUE(
      proto::CheckForwardListOrderConsistency(result.protocol_events, &why))
      << why;
  EXPECT_TRUE(proto::CheckMr1wDiscipline(result.protocol_events, &why)) << why;
  EXPECT_TRUE(proto::HistoryIsSerializable(result.history, &why)) << why;
  return result;
}

// The headline sweep: every registered engine, randomized workloads, every
// shard count its registry entry claims to support.
TEST(CcInvariantsTest, EveryEngineStaysSerializableAcrossShardCounts) {
  for (const EngineInfo& info : Engines()) {
    const std::vector<int32_t> shard_counts =
        info.sharded ? std::vector<int32_t>{1, 2, 3, 5, 8}
                     : std::vector<int32_t>{1};
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      for (int32_t servers : shard_counts) {
        proto::SimConfig config = RandomConfig(info.protocol, seed);
        config.num_servers = servers;
        SCOPED_TRACE(std::string(info.name) + " seed " + std::to_string(seed) +
                     " servers " + std::to_string(servers));
        const proto::RunResult result = CheckRun(config);
        EXPECT_GT(result.commits, 0);
      }
    }
  }
}

// Cross-server 2PC must actually engage for the new engines too: under 4
// shards each sharded engine commits distributed transactions, and the
// commit rounds appear in the protocol-event stream (prepare before
// decision, a full round of yes votes per decision).
TEST(CcInvariantsTest, NewEnginesRunTwoPhaseCommitRounds) {
  for (const char* name : {"nowait", "waitdie", "woundwait", "occ", "ordered",
                           "c2pl", "cbl", "o2pl"}) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = RandomConfig(info->protocol, 31);
    config.num_servers = 4;
    const proto::RunResult result = proto::RunSimulation(config);
    ASSERT_FALSE(result.timed_out) << name;
    EXPECT_GT(result.cross_server_commits, 0) << name;
    EXPECT_GE(result.commit_participants.mean(), 2.0) << name;
    int64_t prepares = 0;
    int64_t yes_votes = 0;
    int64_t decisions = 0;
    for (const proto::ProtocolEvent& event : result.protocol_events) {
      prepares += event.kind == proto::ProtocolEventKind::kPrepareArrived;
      yes_votes +=
          event.kind == proto::ProtocolEventKind::kVoteArrived && event.flag;
      decisions +=
          event.kind == proto::ProtocolEventKind::kCommitDecisionArrived;
    }
    EXPECT_GT(prepares, 0) << name;
    EXPECT_GE(prepares, decisions) << name;
    EXPECT_GE(yes_votes, decisions) << name;
    EXPECT_GT(decisions, 0) << name;
  }
}

// A write-hot workload on a tiny item set, where the blocking protocols see
// queueing and the restarting ones see aborts.
proto::SimConfig ContendedConfig(proto::Protocol protocol) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.latency = 50;
  config.workload.num_items = 8;
  config.workload.read_prob = 0.0;
  config.measured_txns = 300;
  config.warmup_txns = 30;
  config.seed = 7;
  config.record_history = true;
  config.max_sim_time = 4'000'000'000;
  return config;
}

// The ordered-release policy's deadlock-freedom argument: it aborts only
// requests arriving out of item order, so when the workload acquires in
// sorted order it never aborts at all — at any shard count, including the
// 2PC path with release-at-prepare. (No-wait under the same workload keeps
// restarting on every conflict; that contrast is the A16 ablation.)
TEST(CcInvariantsTest, OrderedPolicyIsAbortFreeUnderSortedAccess) {
  const EngineInfo* ordered = FindEngine("ordered");
  ASSERT_NE(ordered, nullptr);
  for (int32_t servers : {1, 4}) {
    proto::SimConfig config = ContendedConfig(ordered->protocol);
    config.workload.sorted_access = true;
    config.num_servers = servers;
    SCOPED_TRACE("servers " + std::to_string(servers));
    const proto::RunResult result = CheckRun(config);
    EXPECT_GT(result.commits, 0);
    EXPECT_EQ(result.total_aborts, 0);
  }
}

// No-wait and wait-die really do trade waits for restarts: under the
// contended workload (unsorted access) both abort transactions, while
// detection-based s-2PL resolves almost everything by waiting.
TEST(CcInvariantsTest, RestartPoliciesAbortUnderContention) {
  for (const char* name : {"nowait", "waitdie", "woundwait", "occ"}) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = ContendedConfig(info->protocol);
    const proto::RunResult result = CheckRun(config);
    EXPECT_GT(result.commits, 0) << name;
    EXPECT_GT(result.total_aborts, 0) << name;
  }
}

// Determinism across the zoo: the new engines inherit the simulator's
// bit-identical replay guarantee — same seed, same metrics, byte for byte.
TEST(CcInvariantsTest, NewEnginesAreDeterministic) {
  for (const char* name : {"nowait", "waitdie", "woundwait", "occ", "ordered",
                           "c2pl", "cbl", "o2pl"}) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = RandomConfig(info->protocol, 5);
    config.num_servers = 3;
    const proto::RunResult a = proto::RunSimulation(config);
    const proto::RunResult b = proto::RunSimulation(config);
    EXPECT_EQ(a.commits, b.commits) << name;
    EXPECT_EQ(a.aborts, b.aborts) << name;
    EXPECT_EQ(a.events, b.events) << name;
    EXPECT_EQ(a.end_time, b.end_time) << name;
    EXPECT_EQ(a.response.mean(), b.response.mean()) << name;
    EXPECT_EQ(a.cross_server_commits, b.cross_server_commits) << name;
  }
}

}  // namespace
}  // namespace gtpl::cc
