// Randomized battery for the sticky-lease layer (ISSUE 8): every
// lock-table engine that accepts --lease, in both lease modes, at 1-8
// shards, over contended repeat-access workloads. Each run must stay
// serializable, satisfy the lease-coherence invariant (at most one write
// lease per item, no grant while a revoke is outstanding — replayed from
// the protocol-event stream), keep its counters consistent with the
// deterministic trace, and replay bit-identically.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "lease/lease.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "protocols/engine.h"
#include "protocols/invariants.h"

namespace gtpl::cc {
namespace {

const char* const kLeaseEngines[] = {"s2pl", "nowait", "waitdie", "woundwait",
                                     "ordered"};

proto::SimConfig LeaseConfig(proto::Protocol protocol, uint64_t seed) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 6 + static_cast<int32_t>(seed % 5);
  config.latency = 80 + static_cast<SimTime>(seed * 37 % 200);
  config.workload.num_items = 14 + static_cast<int32_t>(seed % 9);
  config.workload.read_prob = 0.5;
  config.workload.zipf_theta = 0.9;
  config.workload.repeat_prob = 0.5;
  config.measured_txns = 220;
  config.warmup_txns = 20;
  config.seed = seed;
  config.record_history = true;
  config.record_protocol_events = true;
  config.obs_trace = true;
  config.max_sim_time = 4'000'000'000;
  return config;
}

int64_t CountKind(const std::vector<obs::TraceEvent>& trace,
                  obs::EventKind kind) {
  int64_t count = 0;
  for (const obs::TraceEvent& event : trace) {
    count += event.kind == kind;
  }
  return count;
}

// The headline sweep: every lease-capable engine x lease mode x shard
// count, randomized workloads, full invariant battery. The lease-coherence
// check runs inside CheckProtocolInvariants (a no-op stream under
// --lease=none, exercised for real under sticky).
TEST(LeaseProtocolTest, EveryEngineStaysSerializableUnderLeases) {
  for (const char* name : kLeaseEngines) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    for (const lease::LeaseMode mode :
         {lease::LeaseMode::kNone, lease::LeaseMode::kSticky}) {
      for (int32_t servers : {1, 2, 5, 8}) {
        for (uint64_t seed = 1; seed <= 2; ++seed) {
          proto::SimConfig config = LeaseConfig(info->protocol, seed);
          config.num_servers = servers;
          config.lease.mode = mode;
          SCOPED_TRACE(std::string(name) + " lease " +
                       (mode == lease::LeaseMode::kSticky ? "sticky" : "none") +
                       " servers " + std::to_string(servers) + " seed " +
                       std::to_string(seed));
          const proto::RunResult result = proto::RunSimulation(config);
          ASSERT_FALSE(result.timed_out);
          EXPECT_GT(result.commits, 0);
          std::string why;
          EXPECT_TRUE(proto::CheckProtocolInvariants(result.protocol_events,
                                                     &why))
              << why;
          EXPECT_TRUE(proto::HistoryIsSerializable(result.history, &why))
              << why;
        }
      }
    }
  }
}

// The run counters are the trace, summed: revokes and releases increment
// exactly where kLeaseRevoke/kLeaseRelease are emitted, and every granted
// operation is either a server grant (kLeaseGrant) or a local cache hit.
TEST(LeaseProtocolTest, CountersMatchTraceExactly) {
  for (const char* name : kLeaseEngines) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    for (int32_t servers : {1, 3}) {
      proto::SimConfig config = LeaseConfig(info->protocol, 3);
      config.num_servers = servers;
      config.lease.mode = lease::LeaseMode::kSticky;
      SCOPED_TRACE(std::string(name) + " servers " + std::to_string(servers));
      const proto::RunResult result = proto::RunSimulation(config);
      ASSERT_FALSE(result.timed_out);
      EXPECT_GT(result.commits, 0);
      EXPECT_EQ(result.lease_revokes,
                CountKind(result.obs_trace, obs::EventKind::kLeaseRevoke));
      EXPECT_EQ(result.lease_releases,
                CountKind(result.obs_trace, obs::EventKind::kLeaseRelease));
      const int64_t grants =
          CountKind(result.obs_trace, obs::EventKind::kLeaseGrant);
      const int64_t ops =
          CountKind(result.obs_trace, obs::EventKind::kLockGrant);
      // Grants whose grant+data message lands after the requester died
      // never reach OpGranted, so hits can exceed ops - grants; never less.
      EXPECT_GE(result.lease_hits, ops - grants);
      EXPECT_GT(result.lease_hits, 0);
    }
  }
}

// Bit-identical replay: the sticky layer inherits the simulator's
// determinism contract — same seed, same trace, byte for byte.
TEST(LeaseProtocolTest, StickyRunsAreDeterministic) {
  for (const char* name : kLeaseEngines) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = LeaseConfig(info->protocol, 5);
    config.num_servers = 3;
    config.lease.mode = lease::LeaseMode::kSticky;
    const proto::RunResult a = proto::RunSimulation(config);
    const proto::RunResult b = proto::RunSimulation(config);
    EXPECT_EQ(a.commits, b.commits) << name;
    EXPECT_EQ(a.aborts, b.aborts) << name;
    EXPECT_EQ(a.events, b.events) << name;
    EXPECT_EQ(a.end_time, b.end_time) << name;
    EXPECT_EQ(a.lease_hits, b.lease_hits) << name;
    EXPECT_EQ(a.lease_revokes, b.lease_revokes) << name;
    EXPECT_EQ(obs::ToJsonl(a.obs_trace), obs::ToJsonl(b.obs_trace)) << name;
  }
}

// The revoke-wait sub-span is real accounting, not an estimate: it only
// appears under sticky leases, never exceeds the lock-wait span it is
// carved out of, and the span identity (spans sum to the response mean)
// is already pinned suite-wide by span_accounting_test.
TEST(LeaseProtocolTest, RevokeWaitSpanStaysInsideLockWait) {
  const EngineInfo* info = FindEngine("s2pl");
  ASSERT_NE(info, nullptr);
  proto::SimConfig config = LeaseConfig(info->protocol, 9);
  config.lease.mode = lease::LeaseMode::kSticky;
  const proto::RunResult result = proto::RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GT(result.commits, 0);
  ASSERT_GT(result.span_lease_revoke.count(), 0);
  EXPECT_LE(result.span_lease_revoke.mean(), result.span_lock_wait.mean());
  EXPECT_GE(result.span_lease_revoke.mean(), 0.0);
}

// Config validation: sticky leases require a lock-table engine; the
// version-certifying and forward-list engines reject the flag.
TEST(LeaseProtocolTest, NonLockEnginesRejectSticky) {
  for (const char* name : {"g2pl", "occ", "c2pl", "cbl", "o2pl"}) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = LeaseConfig(info->protocol, 1);
    config.lease.mode = lease::LeaseMode::kSticky;
    EXPECT_FALSE(config.Validate().ok()) << name;
  }
}

// Strict lease-mode parsing: unknown names fail, listing nothing silently.
TEST(LeaseProtocolTest, ParseLeaseModeIsStrict) {
  lease::LeaseMode mode = lease::LeaseMode::kNone;
  EXPECT_TRUE(lease::ParseLeaseModeName("sticky", &mode).ok());
  EXPECT_EQ(mode, lease::LeaseMode::kSticky);
  EXPECT_TRUE(lease::ParseLeaseModeName("none", &mode).ok());
  EXPECT_EQ(mode, lease::LeaseMode::kNone);
  EXPECT_FALSE(lease::ParseLeaseModeName("bogus", &mode).ok());
  EXPECT_FALSE(lease::ParseLeaseModeName("", &mode).ok());
  EXPECT_FALSE(lease::ParseLeaseModeName("Sticky", &mode).ok());
}

}  // namespace
}  // namespace gtpl::cc
