// Unit tests for the database substrate: lock table, waits-for graph,
// versioned data store, and the write-ahead log.

#include "db/lock_table.h"

#include <vector>

#include <gtest/gtest.h>

#include "db/data_store.h"
#include "db/waits_for_graph.h"
#include "db/recovery.h"
#include "db/wal.h"

namespace gtpl::db {
namespace {

std::vector<TxnId> granted_log;

LockTable::GrantCallback Recorder() {
  return [](TxnId txn, ItemId item, LockMode mode) {
    (void)item;
    (void)mode;
    granted_log.push_back(txn);
  };
}

class LockTableTest : public ::testing::Test {
 protected:
  void SetUp() override { granted_log.clear(); }
  LockTable table_{4};
};

TEST_F(LockTableTest, ExclusiveGrantsImmediatelyWhenFree) {
  EXPECT_EQ(table_.Request(1, 0, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_TRUE(table_.Holds(1, 0));
  EXPECT_EQ(table_.NumHolders(0), 1);
}

TEST_F(LockTableTest, SharedLocksCoexist) {
  EXPECT_EQ(table_.Request(1, 0, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(table_.Request(2, 0, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(table_.Request(3, 0, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(table_.NumHolders(0), 3);
}

TEST_F(LockTableTest, ExclusiveConflictsWithShared) {
  table_.Request(1, 0, LockMode::kShared);
  EXPECT_EQ(table_.Request(2, 0, LockMode::kExclusive),
            LockResult::kWaiting);
  EXPECT_EQ(table_.NumWaiters(0), 1);
}

TEST_F(LockTableTest, SharedWaitsBehindQueuedExclusive) {
  // FIFO fairness: a shared request may not jump an earlier exclusive one.
  table_.Request(1, 0, LockMode::kShared);
  table_.Request(2, 0, LockMode::kExclusive);
  EXPECT_EQ(table_.Request(3, 0, LockMode::kShared), LockResult::kWaiting);
  EXPECT_EQ(table_.NumWaiters(0), 2);
}

TEST_F(LockTableTest, ReleasePromotesNextWaiter) {
  table_.Request(1, 0, LockMode::kExclusive);
  table_.Request(2, 0, LockMode::kExclusive);
  table_.ReleaseAll(1, Recorder());
  EXPECT_EQ(granted_log, (std::vector<TxnId>{2}));
  EXPECT_TRUE(table_.Holds(2, 0));
}

TEST_F(LockTableTest, ReleaseBatchGrantsSharedPrefix) {
  table_.Request(1, 0, LockMode::kExclusive);
  table_.Request(2, 0, LockMode::kShared);
  table_.Request(3, 0, LockMode::kShared);
  table_.Request(4, 0, LockMode::kExclusive);
  table_.ReleaseAll(1, Recorder());
  EXPECT_EQ(granted_log, (std::vector<TxnId>{2, 3}));
  EXPECT_EQ(table_.NumHolders(0), 2);
  EXPECT_EQ(table_.NumWaiters(0), 1);
}

TEST_F(LockTableTest, RemovingQueuedRequestUnblocksFollowers) {
  table_.Request(1, 0, LockMode::kShared);
  table_.Request(2, 0, LockMode::kExclusive);  // waits
  table_.Request(3, 0, LockMode::kShared);     // waits behind the X
  table_.ReleaseAll(2, Recorder());            // abort the X requester
  EXPECT_EQ(granted_log, (std::vector<TxnId>{3}));
  EXPECT_EQ(table_.NumHolders(0), 2);
}

TEST_F(LockTableTest, BlockersIncludeHoldersAndEarlierWaiters) {
  table_.Request(1, 0, LockMode::kShared);
  table_.Request(2, 0, LockMode::kExclusive);
  table_.Request(3, 0, LockMode::kExclusive);
  const std::vector<TxnId> blockers = table_.Blockers(3, 0);
  EXPECT_EQ(blockers, (std::vector<TxnId>{1, 2}));
}

TEST_F(LockTableTest, SharedWaiterNotBlockedByCompatibleAhead) {
  table_.Request(1, 0, LockMode::kExclusive);
  table_.Request(2, 0, LockMode::kShared);
  table_.Request(3, 0, LockMode::kShared);
  // Txn 3 waits for the holder but not for the compatible queued read.
  EXPECT_EQ(table_.Blockers(3, 0), (std::vector<TxnId>{1}));
}

TEST_F(LockTableTest, ReleaseAllCoversMultipleItems) {
  table_.Request(1, 0, LockMode::kExclusive);
  table_.Request(1, 1, LockMode::kShared);
  table_.Request(2, 0, LockMode::kExclusive);
  table_.Request(2, 1, LockMode::kExclusive);
  table_.ReleaseAll(1, Recorder());
  EXPECT_EQ(granted_log, (std::vector<TxnId>{2, 2}));
  EXPECT_EQ(table_.HeldItems(1).size(), 0u);
  EXPECT_EQ(table_.HeldItems(2).size(), 2u);
}

TEST_F(LockTableTest, HeldItemsLists) {
  table_.Request(1, 0, LockMode::kShared);
  table_.Request(1, 2, LockMode::kExclusive);
  const std::vector<ItemId> held = table_.HeldItems(1);
  EXPECT_EQ(held.size(), 2u);
}

TEST(WaitsForGraphTest, NoCycleOnChain) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {2});
  wfg.AddWaits(2, {3});
  EXPECT_FALSE(wfg.HasCycleFrom(1));
  EXPECT_TRUE(wfg.CycleThrough(1).empty());
}

TEST(WaitsForGraphTest, DetectsTwoCycle) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {2});
  wfg.AddWaits(2, {1});
  EXPECT_TRUE(wfg.HasCycleFrom(1));
  const std::vector<TxnId> cycle = wfg.CycleThrough(1);
  EXPECT_EQ(cycle.size(), 2u);
}

TEST(WaitsForGraphTest, DetectsLongCycle) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {2});
  wfg.AddWaits(2, {3});
  wfg.AddWaits(3, {4});
  wfg.AddWaits(4, {1});
  EXPECT_TRUE(wfg.HasCycleFrom(1));
  EXPECT_EQ(wfg.CycleThrough(1).size(), 4u);
}

TEST(WaitsForGraphTest, RemoveTxnBreaksCycle) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {2});
  wfg.AddWaits(2, {1});
  wfg.RemoveTxn(2);
  EXPECT_FALSE(wfg.HasCycleFrom(1));
}

TEST(WaitsForGraphTest, ClearWaitsKeepsIncomingEdges) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {2});
  wfg.AddWaits(2, {3});
  wfg.ClearWaits(2);  // txn 2 got granted; txn 1 still waits for it
  EXPECT_EQ(wfg.OutDegree(2), 0);
  EXPECT_EQ(wfg.OutDegree(1), 1);
  wfg.AddWaits(2, {1});
  EXPECT_TRUE(wfg.HasCycleFrom(1));
}

TEST(WaitsForGraphTest, SelfEdgesIgnored) {
  WaitsForGraph wfg;
  wfg.AddWaits(1, {1, 2});
  EXPECT_FALSE(wfg.HasCycleFrom(1));
  EXPECT_EQ(wfg.OutDegree(1), 1);
}

TEST(DataStoreTest, VersionsStartAtZero) {
  DataStore store(3);
  EXPECT_EQ(store.VersionOf(0), 0);
  EXPECT_EQ(store.VersionOf(2), 0);
}

TEST(DataStoreTest, InstallAndBump) {
  DataStore store(2);
  store.Install(0, 1);
  EXPECT_EQ(store.VersionOf(0), 1);
  EXPECT_EQ(store.Bump(0), 2);
  EXPECT_EQ(store.VersionOf(0), 2);
  EXPECT_EQ(store.installs(), 2);
}

TEST(DataStoreTest, ReinstallSameVersionAllowed) {
  DataStore store(1);
  store.Install(0, 3);
  store.Install(0, 3);  // read-only circulation returns unchanged
  EXPECT_EQ(store.VersionOf(0), 3);
}

TEST(DataStoreDeathTest, RejectsStaleInstall) {
  DataStore store(1);
  store.Install(0, 5);
  EXPECT_DEATH(store.Install(0, 4), "stale");
}

TEST(WalTest, AppendAssignsMonotonicLsns) {
  WriteAheadLog wal;
  EXPECT_EQ(wal.Append(LogRecordKind::kUpdate, 1, 0, 1), 1);
  EXPECT_EQ(wal.Append(LogRecordKind::kCommit, 1, kInvalidItem, 0), 2);
  EXPECT_EQ(wal.size(), 2u);
}

TEST(WalTest, ForceAdvancesDurableLsn) {
  WriteAheadLog wal(/*force_delay=*/7);
  const int64_t lsn = wal.Append(LogRecordKind::kUpdate, 1, 0, 1);
  EXPECT_EQ(wal.Force(lsn), 7);
  EXPECT_EQ(wal.durable_lsn(), lsn);
  EXPECT_EQ(wal.Force(lsn), 0);  // already durable
  EXPECT_EQ(wal.forces(), 1);
}

TEST(WalTest, TruncateGarbageCollectsPrefix) {
  WriteAheadLog wal;
  for (int i = 0; i < 5; ++i) wal.Append(LogRecordKind::kUpdate, 1, 0, i);
  wal.Force(3);
  wal.TruncateThrough(3);
  EXPECT_EQ(wal.size(), 2u);
  EXPECT_EQ(wal.records().front().lsn, 4);
  EXPECT_EQ(wal.truncated_lsn(), 3);
}

TEST(WalDeathTest, CannotTruncateUndurableRecords) {
  WriteAheadLog wal;
  wal.Append(LogRecordKind::kUpdate, 1, 0, 1);
  EXPECT_DEATH(wal.TruncateThrough(1), "durable");
}


TEST(RecoveryTest, RedoesCommittedSkipsLosers) {
  WriteAheadLog wal;
  DataStore store(3);
  wal.Append(LogRecordKind::kUpdate, /*txn=*/1, /*item=*/0, /*version=*/1);
  wal.Append(LogRecordKind::kUpdate, 1, 1, 1);
  wal.Append(LogRecordKind::kCommit, 1, kInvalidItem, 0);
  wal.Append(LogRecordKind::kUpdate, 2, 2, 1);   // loser: aborted
  wal.Append(LogRecordKind::kAbort, 2, kInvalidItem, 0);
  wal.Append(LogRecordKind::kUpdate, 3, 0, 2);   // loser: no outcome
  wal.Force(wal.next_lsn() - 1);
  const RecoveryResult result = Recover(wal, &store);
  EXPECT_EQ(result.committed_txns, 1);
  EXPECT_EQ(result.aborted_txns, 1);
  EXPECT_EQ(result.redone_updates, 2);
  EXPECT_EQ(result.skipped_updates, 2);
  EXPECT_EQ(store.VersionOf(0), 1);
  EXPECT_EQ(store.VersionOf(1), 1);
  EXPECT_EQ(store.VersionOf(2), 0);
}

TEST(RecoveryTest, RedoIsIdempotent) {
  WriteAheadLog wal;
  DataStore store(1);
  wal.Append(LogRecordKind::kUpdate, 1, 0, 1);
  wal.Append(LogRecordKind::kCommit, 1, kInvalidItem, 0);
  wal.Force(wal.next_lsn() - 1);
  Recover(wal, &store);
  const RecoveryResult again = Recover(wal, &store);
  EXPECT_EQ(again.redone_updates, 0);
  EXPECT_EQ(again.skipped_updates, 1);
  EXPECT_EQ(store.VersionOf(0), 1);
}

TEST(RecoveryTest, VolatileTailIsNeverRedone) {
  WriteAheadLog wal;
  DataStore store(1);
  const int64_t lsn = wal.Append(LogRecordKind::kUpdate, 1, 0, 1);
  wal.Append(LogRecordKind::kCommit, 1, kInvalidItem, 0);
  wal.Force(lsn);  // commit record not durable
  const RecoveryResult result = Recover(wal, &store);
  EXPECT_EQ(result.committed_txns, 0);
  EXPECT_EQ(result.redone_updates, 0);
  EXPECT_EQ(store.VersionOf(0), 0);
}

TEST(RecoveryTest, ServerInstallRecordsRedoWithoutCommit) {
  WriteAheadLog wal;
  DataStore store(2);
  wal.Append(LogRecordKind::kInstall, 5, 0, 3);
  wal.Append(LogRecordKind::kInstall, 6, 1, 2);
  wal.Force(wal.next_lsn() - 1);
  const RecoveryResult result = Recover(wal, &store);
  EXPECT_EQ(result.redone_updates, 2);
  EXPECT_EQ(store.VersionOf(0), 3);
  EXPECT_EQ(store.VersionOf(1), 2);
}

TEST(RecoveryTest, OutOfOrderVersionsConverge) {
  WriteAheadLog wal;
  DataStore store(1);
  wal.Append(LogRecordKind::kInstall, 1, 0, 1);
  wal.Append(LogRecordKind::kInstall, 2, 0, 2);
  wal.Append(LogRecordKind::kInstall, 3, 0, 3);
  wal.Force(wal.next_lsn() - 1);
  store.Install(0, 2);  // store already ahead of the first two records
  const RecoveryResult result = Recover(wal, &store);
  EXPECT_EQ(result.redone_updates, 1);
  EXPECT_EQ(store.VersionOf(0), 3);
}

}  // namespace
}  // namespace gtpl::db
