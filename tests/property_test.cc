// Property sweep: every protocol, many operating points and seeds, always
// checking the three core invariants — progress (no stall within the
// horizon), serializability of the committed history, and determinism.
// This is the test that repeatedly caught ordering bugs during development;
// keep it broad.

#include <string>

#include <gtest/gtest.h>

#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/metrics.h"

namespace gtpl::proto {
namespace {

struct SweepPoint {
  Protocol protocol;
  int32_t clients;
  SimTime latency;
  int32_t items;
  double read_prob;
  bool mr1w;
  bool expand;
  int32_t fl_cap;
  bool instant_notice;
  uint64_t seed;
  SimTime jitter = 0;
  double spread = 0.0;
  double zipf = 0.0;
};

std::string PointName(const ::testing::TestParamInfo<SweepPoint>& info) {
  const SweepPoint& p = info.param;
  std::string name = ToString(p.protocol);
  name += "_c" + std::to_string(p.clients);
  name += "_l" + std::to_string(p.latency);
  name += "_i" + std::to_string(p.items);
  name += "_r" + std::to_string(static_cast<int>(p.read_prob * 100));
  if (!p.mr1w) name += "_basic";
  if (p.expand) name += "_ro";
  if (p.fl_cap > 0) name += "_cap" + std::to_string(p.fl_cap);
  if (!p.instant_notice) name += "_lateabort";
  if (p.jitter > 0) name += "_j" + std::to_string(p.jitter);
  if (p.spread > 0) name += "_h";
  if (p.zipf > 0) name += "_z";
  name += "_s" + std::to_string(p.seed);
  std::string sanitized;
  for (char c : name) {
    sanitized += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return sanitized;
}

class InvariantSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(InvariantSweep, ProgressAndSerializability) {
  const SweepPoint& p = GetParam();
  SimConfig config;
  config.protocol = p.protocol;
  config.num_clients = p.clients;
  config.latency = p.latency;
  config.workload.num_items = p.items;
  config.workload.max_items_per_txn = std::min(5, p.items);
  config.workload.read_prob = p.read_prob;
  config.g2pl.mr1w = p.mr1w;
  config.g2pl.expand_read_groups = p.expand;
  config.g2pl.max_forward_list_length = p.fl_cap;
  config.instant_abort_notice = p.instant_notice;
  config.latency_jitter = p.jitter;
  config.latency_spread = p.spread;
  config.workload.zipf_theta = p.zipf;
  config.measured_txns = 1200;
  config.warmup_txns = 120;
  config.seed = p.seed;
  config.record_history = true;
  config.max_sim_time = 20'000'000'000;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out) << "stalled";
  EXPECT_EQ(result.commits, 1200);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

std::vector<SweepPoint> BuildSweep() {
  std::vector<SweepPoint> points;
  // Dense g-2PL coverage: the option space interacts with contention.
  for (uint64_t seed : {11u, 77u, 303u}) {
    for (double pr : {0.0, 0.3, 0.6, 0.9, 1.0}) {
      points.push_back({Protocol::kG2pl, 20, 250, 10, pr, true, false, 0,
                        true, seed});
    }
    points.push_back(
        {Protocol::kG2pl, 15, 100, 8, 0.5, false, false, 0, true, seed});
    points.push_back(
        {Protocol::kG2pl, 15, 100, 8, 0.8, true, true, 0, true, seed});
    points.push_back(
        {Protocol::kG2pl, 15, 50, 8, 0.4, true, false, 3, true, seed});
    points.push_back(
        {Protocol::kG2pl, 15, 250, 8, 0.4, true, false, 0, false, seed});
    points.push_back(
        {Protocol::kG2pl, 30, 500, 12, 0.25, true, false, 0, true, seed});
  }
  // Heterogeneous latency and skew variants (jitter can reorder messages,
  // which exercises the ride-along-data merge paths).
  for (uint64_t seed : {404u, 808u}) {
    points.push_back({Protocol::kG2pl, 15, 200, 10, 0.5, true, false, 0,
                      true, seed, /*jitter=*/80, /*spread=*/0.0});
    points.push_back({Protocol::kG2pl, 15, 200, 10, 0.5, true, false, 0,
                      true, seed, /*jitter=*/0, /*spread=*/0.8});
    points.push_back({Protocol::kG2pl, 15, 200, 10, 0.5, true, false, 0,
                      true, seed, /*jitter=*/60, /*spread=*/0.5});
    points.push_back({Protocol::kG2pl, 20, 300, 25, 0.4, true, false, 0,
                      true, seed, 0, 0.0, /*zipf=*/1.1});
    points.push_back({Protocol::kS2pl, 15, 200, 10, 0.5, true, false, 0,
                      true, seed, /*jitter=*/80, /*spread=*/0.5});
  }
  // The other protocols at two contention levels each.
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kC2pl, Protocol::kCbl,
                            Protocol::kO2pl}) {
    points.push_back(
        {protocol, 12, 100, 10, 0.5, true, false, 0, true, 5});
    points.push_back(
        {protocol, 25, 400, 10, 0.2, true, false, 0, true, 6});
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvariantSweep,
                         ::testing::ValuesIn(BuildSweep()), PointName);

}  // namespace
}  // namespace gtpl::proto
