// Unit tests for the deterministic PRNG and the workload distributions.

#include "rng/rng.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/distributions.h"

namespace gtpl::rng {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(3);
  std::unordered_set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, StreamSeedsAreStableAndDisjoint) {
  // StreamSeed keys the named per-subsystem streams (net jitter, net queue)
  // off one base seed: deterministic, and never equal to the base seed or
  // to each other, so a subsystem drawing from its stream cannot perturb
  // another subsystem's draws.
  const uint64_t base = 42;
  EXPECT_EQ(StreamSeed(base, SeedStream::kNetJitter),
            StreamSeed(base, SeedStream::kNetJitter));
  EXPECT_NE(StreamSeed(base, SeedStream::kNetJitter),
            StreamSeed(base, SeedStream::kNetQueue));
  EXPECT_NE(StreamSeed(base, SeedStream::kNetJitter), base);
  EXPECT_NE(StreamSeed(base, SeedStream::kNetQueue), base);
  // Nearby base seeds land on unrelated stream seeds.
  EXPECT_NE(StreamSeed(base, SeedStream::kNetJitter),
            StreamSeed(base + 1, SeedStream::kNetJitter));
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(DistributionsTest, UniformIntDistributionMean) {
  UniformInt dist(2, 10);
  EXPECT_DOUBLE_EQ(dist.Mean(), 6.0);
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = dist.Sample(rng);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 10);
  }
}

TEST(DistributionsTest, SampleDistinctReturnsDistinctValues) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int32_t> sample = SampleDistinct(rng, 25, 5);
    std::unordered_set<int32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (int32_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 25);
    }
  }
}

TEST(DistributionsTest, SampleDistinctFullPoolIsPermutation) {
  Rng rng(37);
  std::vector<int32_t> sample = SampleDistinct(rng, 8, 8);
  std::sort(sample.begin(), sample.end());
  for (int32_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(DistributionsTest, SampleDistinctZero) {
  Rng rng(41);
  EXPECT_TRUE(SampleDistinct(rng, 5, 0).empty());
}

TEST(DistributionsTest, ZipfThetaZeroIsUniform) {
  Rng rng(43);
  Zipf zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(DistributionsTest, ZipfSkewsTowardLowRanks) {
  Rng rng(47);
  Zipf zipf(25, 0.99);
  std::vector<int> counts(25, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[12]);
  EXPECT_GT(counts[0], counts[24]);
  EXPECT_GT(counts[0], 100000 / 25 * 3);
}

class ZipfRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfRangeTest, SamplesStayInRange) {
  Rng rng(53);
  Zipf zipf(7, GetParam());
  for (int i = 0; i < 5000; ++i) {
    const int32_t v = zipf.Sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfRangeTest,
                         ::testing::Values(0.0, 0.5, 0.99, 1.5));

}  // namespace
}  // namespace gtpl::rng
