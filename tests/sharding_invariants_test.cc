// Property tests for the protocol-invariant layer (ISSUE 2): over
// randomized workloads and 1-8 shards, the global precedence graph stays
// acyclic, every pair of transactions appears in the same order in every
// forward list they share, and a writer never releases its update before
// all reader releases of the preceding read group arrived (MR1W
// discipline) — in single-server and sharded runs alike. The checkers
// themselves are also exercised on synthetic violating streams, so a
// regression in the checkers cannot silently hollow out the suite.

#include <gtest/gtest.h>

#include "protocols/engine.h"
#include "protocols/invariants.h"
#include "protocols/sharded.h"
#include "rng/rng.h"

namespace gtpl::proto {
namespace {

SimConfig RandomConfig(Protocol protocol, uint64_t seed) {
  rng::Rng rng(seed * 7919 + 13);
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 6 + static_cast<int32_t>(rng.Next64() % 12);
  config.latency = 1 + static_cast<SimTime>(rng.Next64() % 200);
  config.workload.num_items = 10 + static_cast<int32_t>(rng.Next64() % 15);
  config.workload.read_prob = 0.2 * static_cast<double>(rng.Next64() % 5);
  config.measured_txns = 250;
  config.warmup_txns = 25;
  config.seed = seed;
  config.record_history = true;
  config.record_protocol_events = true;
  config.max_sim_time = 2'000'000'000;
  return config;
}

void CheckRun(const SimConfig& config) {
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(CheckAcyclicity(result.protocol_events, &why)) << why;
  EXPECT_TRUE(CheckForwardListOrderConsistency(result.protocol_events, &why))
      << why;
  EXPECT_TRUE(CheckMr1wDiscipline(result.protocol_events, &why)) << why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(ShardingInvariantsTest, G2plRandomizedWorkloadsAcrossShardCounts) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int32_t servers : {1, 2, 3, 5, 8}) {
      SimConfig config = RandomConfig(Protocol::kG2pl, seed);
      config.num_servers = servers;
      SCOPED_TRACE("seed " + std::to_string(seed) + " servers " +
                   std::to_string(servers));
      CheckRun(config);
    }
  }
}

TEST(ShardingInvariantsTest, G2plRangeRoutingAndExpansion) {
  for (int32_t servers : {2, 4, 8}) {
    SimConfig config = RandomConfig(Protocol::kG2pl, 17);
    config.num_servers = servers;
    config.shard_routing = ShardRouting::kRange;
    config.workload.read_prob = 0.8;
    config.g2pl.expand_read_groups = true;
    SCOPED_TRACE("servers " + std::to_string(servers));
    CheckRun(config);
  }
}

TEST(ShardingInvariantsTest, S2plShardedHistoriesStaySerializable) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (int32_t servers : {1, 4, 8}) {
      SimConfig config = RandomConfig(Protocol::kS2pl, seed);
      config.num_servers = servers;
      SCOPED_TRACE("seed " + std::to_string(seed) + " servers " +
                   std::to_string(servers));
      CheckRun(config);
    }
  }
}

// The MR1W discipline check must not pass vacuously: under a write-heavy
// mixed workload the event stream has to contain real read-group/writer
// interactions, i.e. reader releases arriving at writers and writers
// releasing updates.
TEST(ShardingInvariantsTest, Mr1wDisciplineIsExercised) {
  for (int32_t servers : {1, 4}) {
    SimConfig config = RandomConfig(Protocol::kG2pl, 23);
    config.num_servers = servers;
    config.workload.read_prob = 0.6;
    const RunResult result = RunSimulation(config);
    ASSERT_FALSE(result.timed_out);
    int64_t reader_releases = 0;
    int64_t writer_releases = 0;
    for (const ProtocolEvent& event : result.protocol_events) {
      reader_releases +=
          event.kind == ProtocolEventKind::kReaderReleaseArrived;
      writer_releases +=
          event.kind == ProtocolEventKind::kWriterUpdateReleased;
    }
    EXPECT_GT(reader_releases, 0) << "servers " << servers;
    EXPECT_GT(writer_releases, 0) << "servers " << servers;
    std::string why;
    EXPECT_TRUE(CheckMr1wDiscipline(result.protocol_events, &why)) << why;
  }
}

// Cross-server commits must actually happen under sharding and be visible
// in the 2PC event stream: every commit decision is preceded by a full
// round of yes votes for that transaction.
TEST(ShardingInvariantsTest, TwoPhaseCommitRoundsAreRecorded) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = RandomConfig(protocol, 31);
    config.num_servers = 4;
    const RunResult result = RunSimulation(config);
    ASSERT_FALSE(result.timed_out);
    EXPECT_GT(result.cross_server_commits, 0);
    EXPECT_GE(result.commit_participants.mean(), 2.0);
    int64_t prepares = 0;
    int64_t yes_votes = 0;
    int64_t decisions = 0;
    for (const ProtocolEvent& event : result.protocol_events) {
      prepares += event.kind == ProtocolEventKind::kPrepareArrived;
      yes_votes +=
          event.kind == ProtocolEventKind::kVoteArrived && event.flag;
      decisions += event.kind == ProtocolEventKind::kCommitDecisionArrived;
    }
    EXPECT_GT(prepares, 0);
    EXPECT_GE(prepares, decisions);
    EXPECT_GE(yes_votes, decisions);
    EXPECT_GT(decisions, 0);
  }
}

// ---------------------------------------------------------------------------
// Checker self-tests on synthetic streams
// ---------------------------------------------------------------------------

ProtocolEvent Window(ItemId item, std::vector<FlEntryRecord> entries) {
  ProtocolEvent event;
  event.kind = ProtocolEventKind::kWindowDispatched;
  event.item = item;
  event.entries = std::move(entries);
  return event;
}

TEST(InvariantCheckersTest, DetectsCyclicGraphAudit) {
  ProtocolEvent good;
  good.kind = ProtocolEventKind::kGraphCheck;
  good.flag = true;
  ProtocolEvent bad = good;
  bad.flag = false;
  std::string why;
  EXPECT_TRUE(CheckAcyclicity({good}, &why));
  EXPECT_FALSE(CheckAcyclicity({good, bad}, &why));
  EXPECT_NE(why.find("cyclic"), std::string::npos);
}

TEST(InvariantCheckersTest, DetectsOppositeForwardListOrders) {
  const std::vector<ProtocolEvent> consistent = {
      Window(1, {{false, {1}}, {false, {2}}}),
      Window(2, {{false, {1}}, {false, {2}}}),
  };
  const std::vector<ProtocolEvent> flipped = {
      Window(1, {{false, {1}}, {false, {2}}}),
      Window(2, {{false, {2}}, {false, {1}}}),
  };
  std::string why;
  EXPECT_TRUE(CheckForwardListOrderConsistency(consistent, &why));
  EXPECT_FALSE(CheckForwardListOrderConsistency(flipped, &why));
}

TEST(InvariantCheckersTest, ReadGroupCoMembershipOrdersNeitherWay) {
  // {1,2} share a read group on item 1 but are strictly ordered on item 2:
  // compatible. A strict order on item 3 opposing item 2's order is not.
  const std::vector<ProtocolEvent> compatible = {
      Window(1, {{true, {1, 2}}, {false, {3}}}),
      Window(2, {{false, {1}}, {false, {2}}}),
  };
  std::string why;
  EXPECT_TRUE(CheckForwardListOrderConsistency(compatible, &why));
  const std::vector<ProtocolEvent> contradictory = {
      Window(2, {{false, {1}}, {false, {2}}}),
      Window(3, {{false, {2}}, {false, {1}}}),
  };
  EXPECT_FALSE(CheckForwardListOrderConsistency(contradictory, &why));
}

TEST(InvariantCheckersTest, DetectsEarlyWriterRelease) {
  std::vector<ProtocolEvent> events = {
      Window(5, {{true, {1, 2}}, {false, {9}}}),
  };
  ProtocolEvent release;
  release.kind = ProtocolEventKind::kReaderReleaseArrived;
  release.txn = 9;
  release.item = 5;
  ProtocolEvent writer_release;
  writer_release.kind = ProtocolEventKind::kWriterUpdateReleased;
  writer_release.txn = 9;
  writer_release.item = 5;
  // Only one of two reader releases arrived: violation.
  std::vector<ProtocolEvent> early = events;
  early.push_back(release);
  early.push_back(writer_release);
  std::string why;
  EXPECT_FALSE(CheckMr1wDiscipline(early, &why));
  EXPECT_NE(why.find("1/2"), std::string::npos);
  // Both arrived first: fine.
  std::vector<ProtocolEvent> ok = events;
  ok.push_back(release);
  ok.push_back(release);
  ok.push_back(writer_release);
  EXPECT_TRUE(CheckMr1wDiscipline(ok, &why)) << why;
}

}  // namespace
}  // namespace gtpl::proto
