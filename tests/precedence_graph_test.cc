// Unit tests for the transaction precedence graph (paper §3.3).

#include "core/precedence_graph.h"

#include <gtest/gtest.h>

namespace gtpl::core {
namespace {

TEST(PrecedenceGraphTest, ReachabilityAlongPath) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);
  graph.AddEdge(2, 3, kStructuralEdge);
  EXPECT_TRUE(graph.CanReach(1, 3));
  EXPECT_FALSE(graph.CanReach(3, 1));
  EXPECT_TRUE(graph.CanReach(1, 1));
}

TEST(PrecedenceGraphTest, WouldCloseCycleDetectsBackEdge) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kRequestEdge);
  graph.AddEdge(2, 3, kRequestEdge);
  EXPECT_TRUE(graph.WouldCloseCycle(3, 1));
  EXPECT_FALSE(graph.WouldCloseCycle(1, 3));
}

TEST(PrecedenceGraphTest, ReachableAmongFiltersCandidates) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);
  graph.AddEdge(2, 3, kStructuralEdge);
  graph.AddEdge(1, 4, kStructuralEdge);
  const auto hits = graph.ReachableAmong(1, {3, 5});
  EXPECT_EQ(hits, (std::vector<TxnId>{3}));
}

TEST(PrecedenceGraphTest, RequestEdgesDissolveIndependently) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kRequestEdge);
  graph.AddEdge(1, 2, kStructuralEdge);  // same edge, both kinds
  graph.RemoveRequestEdgesInto(2);
  EXPECT_TRUE(graph.HasEdge(1, 2));  // structural kind survives
  graph.AddEdge(3, 2, kRequestEdge);
  graph.RemoveRequestEdgesInto(2);
  EXPECT_FALSE(graph.HasEdge(3, 2));
}

TEST(PrecedenceGraphTest, RemoveTxnDropsAllEdges) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);
  graph.AddEdge(2, 3, kStructuralEdge);
  graph.RemoveTxn(2);
  EXPECT_FALSE(graph.CanReach(1, 3));
  EXPECT_EQ(graph.num_edges(), 0);
}

TEST(PrecedenceGraphTest, ContractPreservesThroughPaths) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);  // 1 before aborted 2
  graph.AddEdge(2, 3, kStructuralEdge);  // 2 before 3
  graph.AddEdge(2, 4, kRequestEdge);     // pending requester behind 2
  graph.Contract(2);
  EXPECT_FALSE(graph.CanReach(1, 2));
  EXPECT_TRUE(graph.CanReach(1, 3));  // bridged structurally
  EXPECT_TRUE(graph.CanReach(1, 4));  // bridged as a request edge
  graph.RemoveRequestEdgesInto(4);
  EXPECT_FALSE(graph.CanReach(1, 4));
  EXPECT_TRUE(graph.CanReach(1, 3));
}

TEST(PrecedenceGraphTest, ContractDropsOwnWaits) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kRequestEdge);  // 2's own (pending) wait: not bridged
  graph.AddEdge(2, 3, kStructuralEdge);
  graph.Contract(2);
  EXPECT_FALSE(graph.CanReach(1, 3));
}

TEST(PrecedenceGraphTest, ContractionCannotCreateCycles) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);
  graph.AddEdge(2, 3, kStructuralEdge);
  graph.AddEdge(3, 4, kStructuralEdge);
  graph.Contract(2);
  graph.Contract(3);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_TRUE(graph.CanReach(1, 4));
}

TEST(PrecedenceGraphTest, ConsistentOrderRespectsPaths) {
  PrecedenceGraph graph;
  graph.AddEdge(3, 1, kStructuralEdge);  // 3 must precede 1
  const std::vector<TxnId> order = graph.ConsistentOrder({1, 2, 3});
  // 3 before 1; 2 keeps its FIFO position where possible.
  auto pos = [&order](TxnId t) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == t) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_EQ(order.size(), 3u);
}

TEST(PrecedenceGraphTest, ConsistentOrderUsesTransitivePaths) {
  PrecedenceGraph graph;
  // 4 -> 9 -> 2 where 9 is outside the batch: 4 must still precede 2.
  graph.AddEdge(4, 9, kStructuralEdge);
  graph.AddEdge(9, 2, kStructuralEdge);
  const std::vector<TxnId> order = graph.ConsistentOrder({2, 4});
  EXPECT_EQ(order, (std::vector<TxnId>{4, 2}));
}

TEST(PrecedenceGraphTest, ConsistentOrderFifoWhenUnconstrained) {
  PrecedenceGraph graph;
  const std::vector<TxnId> order = graph.ConsistentOrder({7, 3, 9, 1});
  EXPECT_EQ(order, (std::vector<TxnId>{7, 3, 9, 1}));
}

TEST(PrecedenceGraphTest, IsAcyclicOnDagAndAfterMutations) {
  PrecedenceGraph graph;
  for (TxnId i = 0; i < 20; ++i) {
    graph.AddEdge(i, i + 1, i % 2 == 0 ? kStructuralEdge : kRequestEdge);
  }
  EXPECT_TRUE(graph.IsAcyclic());
  graph.RemoveTxn(10);
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(PrecedenceGraphTest, DuplicateEdgeCountsOnce) {
  PrecedenceGraph graph;
  graph.AddEdge(1, 2, kStructuralEdge);
  graph.AddEdge(1, 2, kStructuralEdge);
  EXPECT_EQ(graph.num_edges(), 1);
}

}  // namespace
}  // namespace gtpl::core
