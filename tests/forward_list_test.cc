// Unit tests for forward lists (paper §3.2) and their builder.

#include "core/forward_list.h"

#include <gtest/gtest.h>

namespace gtpl::core {
namespace {

TEST(ForwardListBuilderTest, CoalescesAdjacentReads) {
  ForwardListBuilder builder;
  builder.Add(1, 1, LockMode::kShared);
  builder.Add(2, 2, LockMode::kShared);
  builder.Add(3, 3, LockMode::kExclusive);
  builder.Add(4, 4, LockMode::kShared);
  const auto fl = builder.Build();
  ASSERT_EQ(fl->num_entries(), 3);
  EXPECT_TRUE(fl->entry(0).is_read_group);
  EXPECT_EQ(fl->entry(0).size(), 2);
  EXPECT_FALSE(fl->entry(1).is_read_group);
  EXPECT_EQ(fl->entry(1).members[0].txn, 3);
  EXPECT_TRUE(fl->entry(2).is_read_group);
  EXPECT_EQ(fl->entry(2).size(), 1);
}

TEST(ForwardListBuilderTest, ConsecutiveWritersStaySeparate) {
  ForwardListBuilder builder;
  builder.Add(1, 1, LockMode::kExclusive);
  builder.Add(2, 2, LockMode::kExclusive);
  const auto fl = builder.Build();
  ASSERT_EQ(fl->num_entries(), 2);
  EXPECT_FALSE(fl->entry(0).is_read_group);
  EXPECT_FALSE(fl->entry(1).is_read_group);
}

TEST(ForwardListTest, MemberTxnsInEntryOrder) {
  ForwardListBuilder builder;
  builder.Add(5, 1, LockMode::kShared);
  builder.Add(6, 2, LockMode::kShared);
  builder.Add(7, 3, LockMode::kExclusive);
  const auto fl = builder.Build();
  EXPECT_EQ(fl->MemberTxns(), (std::vector<TxnId>{5, 6, 7}));
  EXPECT_EQ(fl->num_members(), 3);
}

TEST(ForwardListTest, IsLastEntry) {
  ForwardListBuilder builder;
  builder.Add(1, 1, LockMode::kExclusive);
  builder.Add(2, 2, LockMode::kExclusive);
  const auto fl = builder.Build();
  EXPECT_FALSE(fl->IsLastEntry(0));
  EXPECT_TRUE(fl->IsLastEntry(1));
}

TEST(ForwardListTest, DebugStringShowsGroupsAndWriters) {
  ForwardListBuilder builder;
  builder.Add(3, 1, LockMode::kShared);
  builder.Add(7, 2, LockMode::kShared);
  builder.Add(9, 3, LockMode::kExclusive);
  const auto fl = builder.Build();
  EXPECT_EQ(fl->DebugString(), "[R{T3,T7} W{T9}]");
}

TEST(ForwardListTest, SingletonWriter) {
  ForwardListBuilder builder;
  builder.Add(42, 5, LockMode::kExclusive);
  const auto fl = builder.Build();
  ASSERT_EQ(fl->num_entries(), 1);
  EXPECT_EQ(fl->entry(0).members[0].client, 5);
  EXPECT_TRUE(fl->IsLastEntry(0));
}

TEST(ForwardListDeathTest, RejectsAdjacentReadGroups) {
  std::vector<FlEntry> entries(2);
  entries[0].is_read_group = true;
  entries[0].members = {{1, 1}};
  entries[1].is_read_group = true;
  entries[1].members = {{2, 2}};
  EXPECT_DEATH(ForwardList{std::move(entries)}, "coalesced");
}

TEST(ForwardListDeathTest, RejectsMultiMemberWriterEntry) {
  std::vector<FlEntry> entries(1);
  entries[0].is_read_group = false;
  entries[0].members = {{1, 1}, {2, 2}};
  EXPECT_DEATH(ForwardList{std::move(entries)}, "");
}

}  // namespace
}  // namespace gtpl::core
