// Unit tests for the workload generator (paper Table 1 profile).

#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/txn_spec.h"

namespace gtpl::workload {
namespace {

WorkloadProfile PaperProfile() { return WorkloadProfile{}; }

TEST(GeneratorTest, ItemCountWithinRange) {
  WorkloadGenerator gen(PaperProfile(), 1);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    EXPECT_GE(spec.ops.size(), 1u);
    EXPECT_LE(spec.ops.size(), 5u);
  }
}

TEST(GeneratorTest, ItemsAreDistinctAndInPool) {
  WorkloadGenerator gen(PaperProfile(), 2);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    std::unordered_set<ItemId> seen;
    for (const Operation& op : spec.ops) {
      EXPECT_GE(op.item, 0);
      EXPECT_LT(op.item, 25);
      EXPECT_TRUE(seen.insert(op.item).second) << "duplicate item";
    }
  }
}

TEST(GeneratorTest, ReadProbabilityZeroMakesAllWrites) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 0.0;
  WorkloadGenerator gen(profile, 3);
  for (int i = 0; i < 200; ++i) {
    const TxnSpec spec = gen.NextTxn();
    EXPECT_EQ(spec.NumWrites(), static_cast<int32_t>(spec.ops.size()));
    EXPECT_FALSE(spec.IsReadOnly());
  }
}

TEST(GeneratorTest, ReadProbabilityOneMakesAllReads) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 1.0;
  WorkloadGenerator gen(profile, 4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(gen.NextTxn().IsReadOnly());
  }
}

TEST(GeneratorTest, ReadFractionMatchesProbability) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 0.6;
  WorkloadGenerator gen(profile, 5);
  int64_t reads = 0;
  int64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    for (const Operation& op : spec.ops) {
      reads += op.mode == LockMode::kShared ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / total, 0.6, 0.02);
}

TEST(GeneratorTest, ThinkAndIdleWithinPaperRanges) {
  WorkloadGenerator gen(PaperProfile(), 6);
  for (int i = 0; i < 1000; ++i) {
    const SimTime think = gen.SampleThink();
    EXPECT_GE(think, 1);
    EXPECT_LE(think, 3);
    const SimTime idle = gen.SampleIdle();
    EXPECT_GE(idle, 2);
    EXPECT_LE(idle, 10);
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  WorkloadGenerator a(PaperProfile(), 9);
  WorkloadGenerator b(PaperProfile(), 9);
  for (int i = 0; i < 50; ++i) {
    const TxnSpec sa = a.NextTxn();
    const TxnSpec sb = b.NextTxn();
    ASSERT_EQ(sa.ops.size(), sb.ops.size());
    for (size_t j = 0; j < sa.ops.size(); ++j) {
      EXPECT_EQ(sa.ops[j].item, sb.ops[j].item);
      EXPECT_EQ(sa.ops[j].mode, sb.ops[j].mode);
    }
  }
}

TEST(GeneratorTest, SortedAccessOrdersItems) {
  WorkloadProfile profile = PaperProfile();
  profile.sorted_access = true;
  WorkloadGenerator gen(profile, 10);
  for (int i = 0; i < 500; ++i) {
    const TxnSpec spec = gen.NextTxn();
    for (size_t j = 1; j < spec.ops.size(); ++j) {
      EXPECT_LT(spec.ops[j - 1].item, spec.ops[j].item);
    }
  }
}

TEST(GeneratorTest, ZipfSkewsAccesses) {
  WorkloadProfile profile = PaperProfile();
  profile.zipf_theta = 0.99;
  WorkloadGenerator gen(profile, 11);
  std::vector<int> counts(25, 0);
  for (int i = 0; i < 5000; ++i) {
    for (const Operation& op : gen.NextTxn().ops) ++counts[op.item];
  }
  EXPECT_GT(counts[0], counts[24] * 2);
}

TEST(GeneratorTest, ZipfStillDistinct) {
  WorkloadProfile profile = PaperProfile();
  profile.zipf_theta = 1.2;
  WorkloadGenerator gen(profile, 12);
  for (int i = 0; i < 500; ++i) {
    const TxnSpec spec = gen.NextTxn();
    std::unordered_set<ItemId> seen;
    for (const Operation& op : spec.ops) {
      EXPECT_TRUE(seen.insert(op.item).second);
    }
  }
}

TEST(TxnSpecTest, DebugStringFormat) {
  TxnSpec spec;
  spec.id = 7;
  spec.ops = {{3, LockMode::kShared}, {5, LockMode::kExclusive}};
  EXPECT_EQ(spec.DebugString(), "T7: r(3) w(5)");
}

TEST(GeneratorTest, SingleItemPoolProfile) {
  WorkloadProfile profile = PaperProfile();
  profile.num_items = 1;
  profile.min_items_per_txn = 1;
  profile.max_items_per_txn = 1;
  WorkloadGenerator gen(profile, 13);
  for (int i = 0; i < 100; ++i) {
    const TxnSpec spec = gen.NextTxn();
    ASSERT_EQ(spec.ops.size(), 1u);
    EXPECT_EQ(spec.ops[0].item, 0);
  }
}

}  // namespace
}  // namespace gtpl::workload
