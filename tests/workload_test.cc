// Unit tests for the workload generator (paper Table 1 profile).

#include "workload/generator.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/txn_spec.h"

namespace gtpl::workload {
namespace {

WorkloadProfile PaperProfile() { return WorkloadProfile{}; }

TEST(GeneratorTest, ItemCountWithinRange) {
  WorkloadGenerator gen(PaperProfile(), 1);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    EXPECT_GE(spec.ops.size(), 1u);
    EXPECT_LE(spec.ops.size(), 5u);
  }
}

TEST(GeneratorTest, ItemsAreDistinctAndInPool) {
  WorkloadGenerator gen(PaperProfile(), 2);
  for (int i = 0; i < 1000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    std::unordered_set<ItemId> seen;
    for (const Operation& op : spec.ops) {
      EXPECT_GE(op.item, 0);
      EXPECT_LT(op.item, 25);
      EXPECT_TRUE(seen.insert(op.item).second) << "duplicate item";
    }
  }
}

TEST(GeneratorTest, ReadProbabilityZeroMakesAllWrites) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 0.0;
  WorkloadGenerator gen(profile, 3);
  for (int i = 0; i < 200; ++i) {
    const TxnSpec spec = gen.NextTxn();
    EXPECT_EQ(spec.NumWrites(), static_cast<int32_t>(spec.ops.size()));
    EXPECT_FALSE(spec.IsReadOnly());
  }
}

TEST(GeneratorTest, ReadProbabilityOneMakesAllReads) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 1.0;
  WorkloadGenerator gen(profile, 4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(gen.NextTxn().IsReadOnly());
  }
}

TEST(GeneratorTest, ReadFractionMatchesProbability) {
  WorkloadProfile profile = PaperProfile();
  profile.read_prob = 0.6;
  WorkloadGenerator gen(profile, 5);
  int64_t reads = 0;
  int64_t total = 0;
  for (int i = 0; i < 5000; ++i) {
    const TxnSpec spec = gen.NextTxn();
    for (const Operation& op : spec.ops) {
      reads += op.mode == LockMode::kShared ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / total, 0.6, 0.02);
}

TEST(GeneratorTest, ThinkAndIdleWithinPaperRanges) {
  WorkloadGenerator gen(PaperProfile(), 6);
  for (int i = 0; i < 1000; ++i) {
    const SimTime think = gen.SampleThink();
    EXPECT_GE(think, 1);
    EXPECT_LE(think, 3);
    const SimTime idle = gen.SampleIdle();
    EXPECT_GE(idle, 2);
    EXPECT_LE(idle, 10);
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  WorkloadGenerator a(PaperProfile(), 9);
  WorkloadGenerator b(PaperProfile(), 9);
  for (int i = 0; i < 50; ++i) {
    const TxnSpec sa = a.NextTxn();
    const TxnSpec sb = b.NextTxn();
    ASSERT_EQ(sa.ops.size(), sb.ops.size());
    for (size_t j = 0; j < sa.ops.size(); ++j) {
      EXPECT_EQ(sa.ops[j].item, sb.ops[j].item);
      EXPECT_EQ(sa.ops[j].mode, sb.ops[j].mode);
    }
  }
}

TEST(GeneratorTest, SortedAccessOrdersItems) {
  WorkloadProfile profile = PaperProfile();
  profile.sorted_access = true;
  WorkloadGenerator gen(profile, 10);
  for (int i = 0; i < 500; ++i) {
    const TxnSpec spec = gen.NextTxn();
    for (size_t j = 1; j < spec.ops.size(); ++j) {
      EXPECT_LT(spec.ops[j - 1].item, spec.ops[j].item);
    }
  }
}

TEST(GeneratorTest, ZipfSkewsAccesses) {
  WorkloadProfile profile = PaperProfile();
  profile.zipf_theta = 0.99;
  WorkloadGenerator gen(profile, 11);
  std::vector<int> counts(25, 0);
  for (int i = 0; i < 5000; ++i) {
    for (const Operation& op : gen.NextTxn().ops) ++counts[op.item];
  }
  EXPECT_GT(counts[0], counts[24] * 2);
}

TEST(GeneratorTest, ZipfStillDistinct) {
  WorkloadProfile profile = PaperProfile();
  profile.zipf_theta = 1.2;
  WorkloadGenerator gen(profile, 12);
  for (int i = 0; i < 500; ++i) {
    const TxnSpec spec = gen.NextTxn();
    std::unordered_set<ItemId> seen;
    for (const Operation& op : spec.ops) {
      EXPECT_TRUE(seen.insert(op.item).second);
    }
  }
}

// At the paper defaults (zipf 0, repeat 0) every draw must stay on the
// single legacy stream, in the legacy order: item count, item selection,
// per-op modes, then whatever think/idle samples the engine interleaves.
// This replays that order on a raw Rng and demands bit-identical output —
// the "defaults unchanged" half of the PR 9 stream-split contract.
TEST(GeneratorTest, DefaultsReplayTheSingleLegacyStream) {
  const uint64_t seed = 77;
  WorkloadGenerator gen(PaperProfile(), seed);
  rng::Rng ref(seed);
  for (int i = 0; i < 200; ++i) {
    const TxnSpec spec = gen.NextTxn();
    const auto count = static_cast<int32_t>(ref.UniformInt(1, 5));
    const std::vector<int32_t> items = rng::SampleDistinct(ref, 25, count);
    ASSERT_EQ(spec.ops.size(), items.size());
    for (size_t j = 0; j < items.size(); ++j) {
      EXPECT_EQ(spec.ops[j].item, items[j]);
      const LockMode mode =
          ref.Bernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
      EXPECT_EQ(spec.ops[j].mode, mode);
    }
    EXPECT_EQ(gen.SampleThink(), ref.UniformInt(1, 3));
    EXPECT_EQ(gen.SampleIdle(), ref.UniformInt(2, 10));
  }
}

// With an access-pattern knob active the item/mode draws move to dedicated
// streams, so toggling ANOTHER access-pattern knob must leave the timing
// (think/idle) sequence untouched — the other half of the contract.
TEST(GeneratorTest, AccessKnobsDoNotPerturbTimingDraws) {
  WorkloadProfile with_zipf = PaperProfile();
  with_zipf.zipf_theta = 0.8;
  WorkloadProfile with_repeat = with_zipf;
  with_repeat.repeat_prob = 0.5;
  WorkloadGenerator a(with_zipf, 21);
  WorkloadGenerator b(with_repeat, 21);
  for (int i = 0; i < 300; ++i) {
    a.NextTxn();  // draws from the items/mix streams only
    b.NextTxn();
    EXPECT_EQ(a.SampleThink(), b.SampleThink());
    EXPECT_EQ(a.SampleIdle(), b.SampleIdle());
  }
}

TEST(GeneratorTest, RepeatProbReusesPreviousItemSet) {
  WorkloadProfile profile = PaperProfile();
  profile.repeat_prob = 1.0;
  WorkloadGenerator gen(profile, 22);
  TxnSpec prev = gen.NextTxn();
  for (int i = 0; i < 100; ++i) {
    const TxnSpec next = gen.NextTxn();
    ASSERT_EQ(next.ops.size(), prev.ops.size());
    for (size_t j = 0; j < next.ops.size(); ++j) {
      EXPECT_EQ(next.ops[j].item, prev.ops[j].item);  // modes are redrawn
    }
    prev = next;
  }
}

TEST(TxnSpecTest, DebugStringFormat) {
  TxnSpec spec;
  spec.id = 7;
  spec.ops = {{3, LockMode::kShared}, {5, LockMode::kExclusive}};
  EXPECT_EQ(spec.DebugString(), "T7: r(3) w(5)");
}

TEST(GeneratorTest, SingleItemPoolProfile) {
  WorkloadProfile profile = PaperProfile();
  profile.num_items = 1;
  profile.min_items_per_txn = 1;
  profile.max_items_per_txn = 1;
  WorkloadGenerator gen(profile, 13);
  for (int i = 0; i < 100; ++i) {
    const TxnSpec spec = gen.NextTxn();
    ASSERT_EQ(spec.ops.size(), 1u);
    EXPECT_EQ(spec.ops[0].item, 0);
  }
}

}  // namespace
}  // namespace gtpl::workload
