// Protocol-level tests of the caching extensions (c-2PL, CBL, O2PL).

#include "protocols/caching.h"

#include <gtest/gtest.h>

#include "protocols/engine.h"

namespace gtpl::proto {
namespace {

SimConfig BaseConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 10;
  config.latency = 100;
  config.workload.num_items = 10;
  config.workload.read_prob = 0.8;
  config.measured_txns = 600;
  config.warmup_txns = 60;
  config.seed = 33;
  config.max_sim_time = 1'000'000'000;
  return config;
}

double MessagesPerCommit(const RunResult& result) {
  return static_cast<double>(result.network.messages) /
         static_cast<double>(result.commits);
}

TEST(CachingTest, C2plMatchesS2plRounds) {
  // Caching 2PL saves payload bytes, not rounds: in the latency-dominated
  // model its response time tracks s-2PL closely.
  SimConfig config = BaseConfig(Protocol::kS2pl);
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kC2pl;
  const RunResult c2pl = RunSimulation(config);
  ASSERT_FALSE(c2pl.timed_out);
  EXPECT_NEAR(c2pl.response.mean() / s2pl.response.mean(), 1.0, 0.1);
}

TEST(CachingTest, CblSavesMessagesOnReadMostlyWorkload) {
  SimConfig config = BaseConfig(Protocol::kS2pl);
  config.workload.read_prob = 0.95;
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kCbl;
  const RunResult cbl = RunSimulation(config);
  ASSERT_FALSE(cbl.timed_out);
  // Cached read permissions avoid request/grant rounds entirely.
  EXPECT_LT(MessagesPerCommit(cbl), MessagesPerCommit(s2pl));
  EXPECT_LT(cbl.response.mean(), s2pl.response.mean());
}

TEST(CachingTest, CblCallbackStormsOnWriteContendedHotSet) {
  // The flip side of callback locking: frequent writes to a small hot set
  // trigger callbacks to every caching client, so CBL sends *more* messages
  // than s-2PL there (the classic CB-read trade-off).
  SimConfig config = BaseConfig(Protocol::kS2pl);
  config.workload.read_prob = 0.8;
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kCbl;
  const RunResult cbl = RunSimulation(config);
  ASSERT_FALSE(cbl.timed_out);
  EXPECT_GT(MessagesPerCommit(cbl), MessagesPerCommit(s2pl));
}

TEST(CachingTest, CblWriteHeavyStillLive) {
  SimConfig config = BaseConfig(Protocol::kCbl);
  config.workload.read_prob = 0.2;
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(CachingTest, O2plReadOnlyNeverAborts) {
  SimConfig config = BaseConfig(Protocol::kO2pl);
  config.workload.read_prob = 1.0;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.aborts, 0);
}

TEST(CachingTest, O2plAbortsOnCertificationConflicts) {
  SimConfig config = BaseConfig(Protocol::kO2pl);
  config.workload.read_prob = 0.2;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GT(result.aborts, 0);
}

TEST(CachingTest, O2plResponseIncludesCertificationRound) {
  // A read-only cache-miss transaction costs fetch (2L) per op plus the
  // certification round (2L): response >= 4L for single-op transactions.
  SimConfig config = BaseConfig(Protocol::kO2pl);
  config.num_clients = 1;
  config.workload.read_prob = 0.0;
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 1;
  config.workload.num_items = 100000;  // cache misses essentially always
  config.workload.max_items_per_txn = 1;
  config.measured_txns = 20;
  config.warmup_txns = 0;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GE(result.response.mean(), 4 * 100.0);
}

TEST(CachingTest, CblSingleClientReadsBecomeLocal) {
  SimConfig config = BaseConfig(Protocol::kCbl);
  config.num_clients = 1;
  config.workload.read_prob = 1.0;
  config.measured_txns = 300;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  // After the cache warms, every read hits locally: far fewer messages
  // than two per operation.
  EXPECT_LT(MessagesPerCommit(result), 1.0);
}

TEST(CachingTest, AllCachingProtocolsDeterministic) {
  for (Protocol protocol :
       {Protocol::kC2pl, Protocol::kCbl, Protocol::kO2pl}) {
    SimConfig config = BaseConfig(protocol);
    config.measured_txns = 200;
    const RunResult a = RunSimulation(config);
    const RunResult b = RunSimulation(config);
    EXPECT_EQ(a.events, b.events) << ToString(protocol);
    EXPECT_EQ(a.response.mean(), b.response.mean()) << ToString(protocol);
  }
}

}  // namespace
}  // namespace gtpl::proto
