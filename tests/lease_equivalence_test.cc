// Lease-mode equivalence pins (ISSUE 8): --lease=none must be completely
// inert — bit-identical runs, no lease events, dead knobs — and sticky
// leases with an infinite TTL must behave like O2PL-style retained locks
// on conflict-free traffic: each item crosses the wire once, every repeat
// acquisition is a local hit, and no revoke or release ever fires.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "lease/lease.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "protocols/engine.h"

namespace gtpl::cc {
namespace {

const char* const kLeaseEngines[] = {"s2pl", "nowait", "waitdie", "woundwait",
                                     "ordered"};

proto::SimConfig BaseConfig(proto::Protocol protocol, uint64_t seed) {
  proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 6;
  config.latency = 120;
  config.workload.num_items = 24;
  config.workload.read_prob = 0.5;
  config.workload.repeat_prob = 0.4;
  config.measured_txns = 250;
  config.warmup_txns = 25;
  config.seed = seed;
  config.obs_trace = true;
  config.max_sim_time = 4'000'000'000;
  return config;
}

int64_t CountKind(const std::vector<obs::TraceEvent>& trace,
                  obs::EventKind kind) {
  int64_t count = 0;
  for (const obs::TraceEvent& event : trace) {
    count += event.kind == kind;
  }
  return count;
}

void ExpectSameRun(const proto::RunResult& a, const proto::RunResult& b,
                   const std::string& label) {
  EXPECT_EQ(a.commits, b.commits) << label;
  EXPECT_EQ(a.aborts, b.aborts) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.end_time, b.end_time) << label;
  EXPECT_EQ(a.response.mean(), b.response.mean()) << label;
  EXPECT_EQ(obs::ToJsonl(a.obs_trace), obs::ToJsonl(b.obs_trace)) << label;
}

// --lease=none emits no lease machinery at all: zero counters, zero trace
// events, for every lock engine that accepts the lease layer.
TEST(LeaseEquivalenceTest, NoneModeEmitsNothing) {
  for (const char* name : kLeaseEngines) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = BaseConfig(info->protocol, 11);
    config.lease.mode = lease::LeaseMode::kNone;
    const proto::RunResult result = proto::RunSimulation(config);
    EXPECT_GT(result.commits, 0) << name;
    EXPECT_EQ(result.lease_hits, 0) << name;
    EXPECT_EQ(result.lease_revokes, 0) << name;
    EXPECT_EQ(result.lease_releases, 0) << name;
    EXPECT_EQ(CountKind(result.obs_trace, obs::EventKind::kLeaseGrant), 0)
        << name;
    EXPECT_EQ(CountKind(result.obs_trace, obs::EventKind::kLeaseRevoke), 0)
        << name;
    EXPECT_EQ(CountKind(result.obs_trace, obs::EventKind::kLeaseRelease), 0)
        << name;
    // The span accumulator folds a zero sample per commit in every mode;
    // inertness means the mass is exactly zero.
    EXPECT_EQ(result.span_lease_revoke.mean(), 0.0) << name;
  }
}

// Under --lease=none the ttl/max_held knobs are dead: cranking them must
// leave the run event-for-event identical.
TEST(LeaseEquivalenceTest, NoneModeKnobsAreInert) {
  for (const char* name : kLeaseEngines) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = BaseConfig(info->protocol, 23);
    config.lease.mode = lease::LeaseMode::kNone;
    const proto::RunResult plain = proto::RunSimulation(config);
    config.lease.ttl = 5000;
    config.lease.max_held = 3;
    const proto::RunResult knobbed = proto::RunSimulation(config);
    ExpectSameRun(plain, knobbed, name);
  }
}

// The repeat-access workload knob at 0.0 must also be inert — it guards
// the extra Bernoulli draw, so pre-lease seeds replay bit-identically.
TEST(LeaseEquivalenceTest, ZeroRepeatProbIsInert) {
  for (const char* name : {"s2pl", "g2pl", "occ"}) {
    const EngineInfo* info = FindEngine(name);
    ASSERT_NE(info, nullptr) << name;
    proto::SimConfig config = BaseConfig(info->protocol, 31);
    config.workload.repeat_prob = 0.0;
    const proto::RunResult a = proto::RunSimulation(config);
    const proto::RunResult b = proto::RunSimulation(config);
    ExpectSameRun(a, b, name);
  }
}

// A single client never conflicts with anyone, so sticky leases with an
// infinite TTL behave exactly like O2PL's retained client locks: each item
// is granted over the wire at most once, every later acquisition is a
// cache hit, and not one revoke or release is ever sent.
TEST(LeaseEquivalenceTest, InfiniteTtlRetainsLeasesForever) {
  const EngineInfo* info = FindEngine("s2pl");
  ASSERT_NE(info, nullptr);
  proto::SimConfig config = BaseConfig(info->protocol, 7);
  config.num_clients = 1;
  config.workload.num_items = 12;
  config.workload.repeat_prob = 0.5;
  config.lease.mode = lease::LeaseMode::kSticky;
  config.lease.ttl = 0;       // infinite
  config.lease.max_held = 0;  // unlimited
  const proto::RunResult result = proto::RunSimulation(config);
  EXPECT_GT(result.commits, 0);
  EXPECT_EQ(result.aborts, 0);
  EXPECT_EQ(result.lease_revokes, 0);
  EXPECT_EQ(result.lease_releases, 0);
  const int64_t grants =
      CountKind(result.obs_trace, obs::EventKind::kLeaseGrant);
  // At most one server grant per item (upgrades shared->exclusive may add
  // a second round for an item first read then written).
  EXPECT_LE(grants, 2 * config.workload.num_items);
  const int64_t ops =
      CountKind(result.obs_trace, obs::EventKind::kLockGrant);
  EXPECT_EQ(result.lease_hits, ops - grants);
  EXPECT_GT(result.lease_hits, 0);
}

// A tiny TTL expires every lease before its next use, so the same workload
// degenerates to a server round per acquisition: zero hits.
TEST(LeaseEquivalenceTest, TinyTtlDisablesHits) {
  const EngineInfo* info = FindEngine("s2pl");
  ASSERT_NE(info, nullptr);
  proto::SimConfig config = BaseConfig(info->protocol, 7);
  config.num_clients = 1;
  config.workload.num_items = 12;
  config.workload.repeat_prob = 0.5;
  config.lease.mode = lease::LeaseMode::kSticky;
  config.lease.ttl = 1;
  const proto::RunResult result = proto::RunSimulation(config);
  EXPECT_GT(result.commits, 0);
  EXPECT_EQ(result.lease_hits, 0);
}

// max_held bounds the cache: with a one-entry cache the client voluntarily
// releases on nearly every grant even though nobody ever revokes.
TEST(LeaseEquivalenceTest, MaxHeldEvictsVoluntarily) {
  const EngineInfo* info = FindEngine("s2pl");
  ASSERT_NE(info, nullptr);
  proto::SimConfig config = BaseConfig(info->protocol, 7);
  config.num_clients = 1;
  config.workload.num_items = 12;
  config.lease.mode = lease::LeaseMode::kSticky;
  config.lease.max_held = 1;
  const proto::RunResult result = proto::RunSimulation(config);
  EXPECT_GT(result.commits, 0);
  EXPECT_EQ(result.lease_revokes, 0);
  EXPECT_GT(result.lease_releases, 0);
}

}  // namespace
}  // namespace gtpl::cc
