// Unit tests of the observability substrate: the Tracer sink, event-kind
// wire names, and the JSONL / Chrome exporters (round-trip through the
// strict JSONL reader).

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace gtpl::obs {
namespace {

TEST(TracerTest, DisabledIsNoOp) {
  Tracer tracer;
  TraceEvent event;
  event.kind = EventKind::kTxnBegin;
  tracer.Emit(event);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, StampsSeqAndSimTime) {
  sim::Simulator sim;
  Tracer tracer;
  tracer.Attach(&sim);
  tracer.Enable();
  sim.Schedule(7, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kLockRequest;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Schedule(7, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kLockGrant;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Schedule(12, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kTxnCommit;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Run();
  ASSERT_EQ(tracer.events().size(), 3u);
  // Same-tick events keep schedule order via the seq tiebreak.
  EXPECT_EQ(tracer.events()[0].seq, 0u);
  EXPECT_EQ(tracer.events()[0].time, 7);
  EXPECT_EQ(tracer.events()[0].kind, EventKind::kLockRequest);
  EXPECT_EQ(tracer.events()[1].seq, 1u);
  EXPECT_EQ(tracer.events()[1].time, 7);
  EXPECT_EQ(tracer.events()[2].seq, 2u);
  EXPECT_EQ(tracer.events()[2].time, 12);

  const std::vector<TraceEvent> taken = tracer.Take();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(EventKindTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventKind::kMsgDeliver); ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind parsed;
    ASSERT_TRUE(ParseEventKind(ToString(kind), &parsed)) << ToString(kind);
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed;
  EXPECT_FALSE(ParseEventKind("not_a_kind", &parsed));
  EXPECT_FALSE(ParseEventKind("", &parsed));
}

std::vector<TraceEvent> SampleEvents() {
  std::vector<TraceEvent> events;
  TraceEvent begin;
  begin.seq = 0;
  begin.time = 5;
  begin.kind = EventKind::kTxnBegin;
  begin.txn = 1;
  begin.site = 2;
  begin.payload = 4;
  events.push_back(begin);

  TraceEvent window;
  window.seq = 1;
  window.time = 505;
  window.kind = EventKind::kWindowDispatch;
  window.item = 9;
  window.shard = 1;
  window.payload = 3;
  window.label = "dispatch";
  FlEntrySnapshot writer;
  writer.is_read_group = false;
  writer.txns = {1};
  FlEntrySnapshot readers;
  readers.is_read_group = true;
  readers.txns = {2, 5, 7};
  window.entries = {writer, readers};
  events.push_back(window);

  TraceEvent commit;
  commit.seq = 2;
  commit.time = 2005;
  commit.kind = EventKind::kTxnCommit;
  commit.txn = 1;
  commit.site = 2;
  commit.mode = 1;
  commit.flag = true;
  commit.payload = 2000;
  commit.d0 = 900;
  commit.d1 = 1000;
  commit.d2 = 50;
  commit.d3 = 40;
  commit.d4 = 10;
  commit.label = "with \"quotes\" and \\slashes\\";
  events.push_back(commit);
  return events;
}

TEST(ExportTest, JsonlRoundTrip) {
  const std::vector<TraceEvent> events = SampleEvents();
  const std::string jsonl = ToJsonl(events);
  std::istringstream in(jsonl);
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(ReadJsonl(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed, events);
}

TEST(ExportTest, JsonlRejectsGarbage) {
  std::istringstream in("{\"seq\":0,\"t\":1,\"kind\":\"no_such_kind\"}\n");
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream truncated("{\"seq\":0,\"t\":1");
  parsed.clear();
  EXPECT_FALSE(ReadJsonl(truncated, &parsed, &error));
}

TEST(ExportTest, JsonlIsOneObjectPerLine) {
  const std::string jsonl = ToJsonl(SampleEvents());
  size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(jsonl.back(), '\n');
}

TEST(ExportTest, ChromeTraceSmoke) {
  std::ostringstream out;
  WriteChromeTrace(SampleEvents(), out);
  const std::string json = out.str();
  // A JSON array with a complete slice ("ph":"X") for the committed txn and
  // instant events for the rest.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("txn 1"), std::string::npos);
}

}  // namespace
}  // namespace gtpl::obs
