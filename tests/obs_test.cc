// Unit tests of the observability substrate: the Tracer sink, event-kind
// wire names, and the JSONL / Chrome exporters (round-trip through the
// strict JSONL reader).

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace gtpl::obs {
namespace {

TEST(TracerTest, DisabledIsNoOp) {
  Tracer tracer;
  TraceEvent event;
  event.kind = EventKind::kTxnBegin;
  tracer.Emit(event);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, StampsSeqAndSimTime) {
  sim::Simulator sim;
  Tracer tracer;
  tracer.Attach(&sim);
  tracer.Enable();
  sim.Schedule(7, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kLockRequest;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Schedule(7, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kLockGrant;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Schedule(12, [&tracer] {
    TraceEvent event;
    event.kind = EventKind::kTxnCommit;
    event.txn = 3;
    tracer.Emit(std::move(event));
  });
  sim.Run();
  ASSERT_EQ(tracer.events().size(), 3u);
  // Same-tick events keep schedule order via the seq tiebreak.
  EXPECT_EQ(tracer.events()[0].seq, 0u);
  EXPECT_EQ(tracer.events()[0].time, 7);
  EXPECT_EQ(tracer.events()[0].kind, EventKind::kLockRequest);
  EXPECT_EQ(tracer.events()[1].seq, 1u);
  EXPECT_EQ(tracer.events()[1].time, 7);
  EXPECT_EQ(tracer.events()[2].seq, 2u);
  EXPECT_EQ(tracer.events()[2].time, 12);

  const std::vector<TraceEvent> taken = tracer.Take();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(EventKindTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventKind::kLeaseRelease); ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind parsed;
    ASSERT_TRUE(ParseEventKind(ToString(kind), &parsed)) << ToString(kind);
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed;
  EXPECT_FALSE(ParseEventKind("not_a_kind", &parsed));
  EXPECT_FALSE(ParseEventKind("", &parsed));
}

std::vector<TraceEvent> SampleEvents() {
  std::vector<TraceEvent> events;
  TraceEvent begin;
  begin.seq = 0;
  begin.time = 5;
  begin.kind = EventKind::kTxnBegin;
  begin.txn = 1;
  begin.site = 2;
  begin.payload = 4;
  events.push_back(begin);

  TraceEvent window;
  window.seq = 1;
  window.time = 505;
  window.kind = EventKind::kWindowDispatch;
  window.item = 9;
  window.shard = 1;
  window.payload = 3;
  window.label = "dispatch";
  FlEntrySnapshot writer;
  writer.is_read_group = false;
  writer.txns = {1};
  FlEntrySnapshot readers;
  readers.is_read_group = true;
  readers.txns = {2, 5, 7};
  window.entries = {writer, readers};
  events.push_back(window);

  TraceEvent commit;
  commit.seq = 2;
  commit.time = 2005;
  commit.kind = EventKind::kTxnCommit;
  commit.txn = 1;
  commit.site = 2;
  commit.mode = 1;
  commit.flag = true;
  commit.payload = 2000;
  commit.d0 = 900;
  commit.d1 = 1000;
  commit.d2 = 50;
  commit.d3 = 40;
  commit.d4 = 10;
  commit.label = "with \"quotes\" and \\slashes\\";
  events.push_back(commit);
  return events;
}

TEST(ExportTest, JsonlRoundTrip) {
  const std::vector<TraceEvent> events = SampleEvents();
  const std::string jsonl = ToJsonl(events);
  std::istringstream in(jsonl);
  std::vector<TraceEvent> parsed;
  std::string error;
  ASSERT_TRUE(ReadJsonl(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed, events);
}

TEST(ExportTest, JsonlRejectsGarbage) {
  std::istringstream in("{\"seq\":0,\"t\":1,\"kind\":\"no_such_kind\"}\n");
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream truncated("{\"seq\":0,\"t\":1");
  parsed.clear();
  EXPECT_FALSE(ReadJsonl(truncated, &parsed, &error));
}

// One serialized line for a minimal event stamped (time, seq).
std::string Line(SimTime time, uint64_t seq) {
  TraceEvent event;
  event.seq = seq;
  event.time = time;
  event.kind = EventKind::kTxnBegin;
  event.txn = 1;
  return ToJsonl({event});
}

TEST(ExportTest, JsonlRejectsOutOfOrderTime) {
  std::istringstream in(Line(10, 0) + Line(5, 1));
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("out-of-order or duplicate"), std::string::npos)
      << error;
}

TEST(ExportTest, JsonlRejectsDuplicateTimeSeq) {
  std::istringstream in(Line(10, 3) + Line(10, 3));
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_NE(error.find("out-of-order or duplicate"), std::string::npos)
      << error;
}

TEST(ExportTest, JsonlAcceptsSameTickSeqTiebreak) {
  std::istringstream in(Line(10, 0) + Line(10, 1) + Line(11, 2));
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_TRUE(ReadJsonl(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), 3u);
}

TEST(ExportTest, JsonlErrorsNameTheLine) {
  // A valid first line, then a truncated second line: the diagnostic must
  // point at line 2.
  std::istringstream in(Line(5, 0) + "{\"seq\":1,\"t\":30");
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ExportTest, JsonlRejectsBadEscape) {
  // A \u escape cut short inside the label string.
  std::string line = Line(5, 0);
  const std::string needle = "\"label\":\"\"";
  const size_t at = line.find(needle);
  if (at != std::string::npos) {
    line.replace(at, needle.size(), "\"label\":\"\\u12\"");
  } else {
    line = "{\"seq\":0,\"t\":5,\"kind\":\"txn_begin\",\"label\":\"\\u12\"}\n";
  }
  std::istringstream in(line);
  std::vector<TraceEvent> parsed;
  std::string error;
  EXPECT_FALSE(ReadJsonl(in, &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(ExportTest, JsonlIsOneObjectPerLine) {
  const std::string jsonl = ToJsonl(SampleEvents());
  size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(jsonl.back(), '\n');
}

TEST(ExportTest, ChromeTraceSmoke) {
  std::ostringstream out;
  WriteChromeTrace(SampleEvents(), out);
  const std::string json = out.str();
  // A JSON array with a complete slice ("ph":"X") for the committed txn and
  // instant events for the rest.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("txn 1"), std::string::npos);
}

TEST(ExportTest, ChromeTraceCountsDroppedTransportEvents) {
  std::vector<TraceEvent> events = SampleEvents();
  TraceEvent send;
  send.seq = 3;
  send.time = 2100;
  send.kind = EventKind::kMsgSend;
  send.site = 0;
  events.push_back(send);
  TraceEvent deliver = send;
  deliver.seq = 4;
  deliver.time = 2600;
  deliver.kind = EventKind::kMsgDeliver;
  deliver.site = 1;
  events.push_back(deliver);

  std::ostringstream out;
  WriteChromeTrace(events, out);
  const std::string json = out.str();
  // Transport events are omitted from the viewer, but never silently: a
  // metadata event carries the dropped count.
  EXPECT_EQ(json.find("msg_send"), std::string::npos);
  EXPECT_EQ(json.find("msg_deliver"), std::string::npos);
  EXPECT_NE(json.find("transport events omitted"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_msg_events\":2"), std::string::npos);
}

TEST(ExportTest, ChromeTraceNoMetadataWhenNothingDropped) {
  std::ostringstream out;
  WriteChromeTrace(SampleEvents(), out);
  EXPECT_EQ(out.str().find("transport events omitted"), std::string::npos);
}

}  // namespace
}  // namespace gtpl::obs
