// Unit tests for the link-level transport extension (DESIGN.md §9): the
// LinkModel's transmission and FIFO queueing math, deterministic background
// cross traffic, arrival-order downlink service, and the engine-level
// queueing metrics the harness reports.

#include "net/link_model.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/latency_model.h"
#include "net/network.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "sim/simulator.h"

namespace gtpl::net {
namespace {

TEST(LinkModelTest, TransmissionDelayRoundsToNearestTick) {
  LinkConfig config;
  config.bandwidth = 2.0;
  LinkModel link(config);
  EXPECT_TRUE(link.enabled());
  EXPECT_EQ(link.TransmissionDelay(8), 4);
  EXPECT_EQ(link.TransmissionDelay(1), 1);  // 0.5 rounds away from zero
  EXPECT_EQ(link.TransmissionDelay(0), 0);

  LinkConfig fast;
  fast.bandwidth = 8.0;
  EXPECT_EQ(LinkModel(fast).TransmissionDelay(1), 0);  // sub-tick: free

  LinkConfig slow;
  slow.bandwidth = 0.5;
  EXPECT_EQ(LinkModel(slow).TransmissionDelay(8), 16);
}

TEST(LinkModelTest, WithoutNicQueueChargesTransmissionOnly) {
  LinkConfig config;
  config.bandwidth = 1.0;  // service = payload ticks
  LinkModel link(config);
  // Concurrent sends do not serialize when NIC queues are off.
  EXPECT_EQ(link.AdmitUplink(1, 8, 100), 108);
  EXPECT_EQ(link.AdmitUplink(1, 8, 100), 108);
  EXPECT_EQ(link.AdmitDownlink(2, 4, 100), 104);
  EXPECT_EQ(link.AdmitDownlink(2, 4, 100), 104);
}

TEST(LinkModelTest, UplinkSerializesPerSiteFifo) {
  LinkConfig config;
  config.bandwidth = 1.0;
  config.nic_queue = true;
  LinkModel link(config);
  EXPECT_EQ(link.AdmitUplink(1, 8, 0), 8);      // idle NIC: starts at once
  EXPECT_EQ(link.AdmitUplink(1, 8, 0), 16);     // queued behind the first
  EXPECT_EQ(link.AdmitUplink(1, 4, 10), 20);    // backlog still draining
  EXPECT_EQ(link.AdmitUplink(2, 8, 0), 8);      // other sites independent
  EXPECT_EQ(link.AdmitUplink(1, 8, 100), 108);  // idle again much later
  EXPECT_EQ(link.MaxNicBusyTicks(), 28);        // site 1: 8 + 8 + 4 + 8
}

TEST(LinkModelTest, UplinkAndDownlinkAreSeparateNics) {
  LinkConfig config;
  config.bandwidth = 1.0;
  config.nic_queue = true;
  LinkModel link(config);
  // Full duplex: site 1 can transmit and receive at the same time.
  EXPECT_EQ(link.AdmitUplink(1, 8, 0), 8);
  EXPECT_EQ(link.AdmitDownlink(1, 8, 0), 8);
}

// The receiver downlink serves messages in *arrival* order: under
// heterogeneous propagation a message sent later can arrive earlier and is
// then clocked in first, delaying the earlier-sent message behind it.
TEST(NetworkLinkTest, DownlinkServesInArrivalOrder) {
  sim::Simulator sim;
  LinkConfig link;
  link.bandwidth = 1.0;
  link.nic_queue = true;
  // 1 -> 0 is far (100 ticks), 2 -> 0 is near (10 ticks).
  auto latency = std::make_unique<MatrixLatency>(
      std::vector<std::vector<SimTime>>{
          {0, 100, 10}, {100, 0, 0}, {10, 0, 0}},
      /*jitter=*/0, /*seed=*/1);
  Network net(&sim, std::move(latency), link);
  std::vector<std::pair<int, SimTime>> deliveries;
  net.Send(1, 0, "slow", [&] { deliveries.emplace_back(1, sim.Now()); }, 8);
  sim.Schedule(85, [&] {
    net.Send(2, 0, "fast", [&] { deliveries.emplace_back(2, sim.Now()); }, 8);
  });
  sim.Run();
  // slow: first bit on the wire at 0, at the downlink at 100. fast: sent 85
  // ticks later but its first bit arrives at 95 and grabs the downlink
  // first (95-103); slow waits and clocks in 103-111.
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], (std::pair<int, SimTime>{2, 103}));
  EXPECT_EQ(deliveries[1], (std::pair<int, SimTime>{1, 111}));
  EXPECT_EQ(net.stats().receiver_queue_delay.max(), 3.0);  // 103 - 100
}

TEST(LinkModelTest, CrossTrafficIsDeterministic) {
  LinkConfig config;
  config.bandwidth = 1.0;
  config.nic_queue = true;
  config.cross_traffic_load = 0.5;
  config.seed = 7;
  LinkModel a(config);
  LinkModel b(config);
  for (SimTime now : {0, 5, 40, 41, 1000, 100000}) {
    EXPECT_EQ(a.AdmitUplink(1, 8, now), b.AdmitUplink(1, 8, now)) << now;
    EXPECT_EQ(a.AdmitDownlink(3, 8, now), b.AdmitDownlink(3, 8, now)) << now;
  }
  EXPECT_EQ(a.MaxNicBusyTicks(), b.MaxNicBusyTicks());
}

TEST(LinkModelTest, CrossTrafficConsumesConfiguredLoad) {
  LinkConfig config;
  config.bandwidth = 1.0;  // frame service 8, period 16 at load 0.5
  config.nic_queue = true;
  config.cross_traffic_load = 0.5;
  config.seed = 3;
  LinkModel link(config);
  const SimTime horizon = 160000;
  // A zero-payload probe just drains background frames up to the horizon.
  link.AdmitUplink(1, 0, horizon);
  EXPECT_NEAR(link.MaxUtilization(horizon), 0.5, 0.01);
}

TEST(LinkModelTest, CrossTrafficDelaysForegroundFrames) {
  LinkConfig loaded_config;
  loaded_config.bandwidth = 1.0;
  loaded_config.nic_queue = true;
  loaded_config.cross_traffic_load = 0.9;
  loaded_config.seed = 11;
  LinkModel loaded(loaded_config);
  LinkConfig quiet_config = loaded_config;
  quiet_config.cross_traffic_load = 0.0;
  LinkModel quiet(quiet_config);
  SimTime loaded_total = 0;
  SimTime quiet_total = 0;
  for (SimTime now = 0; now < 50000; now += 1000) {
    const SimTime with_bg = loaded.AdmitUplink(1, 8, now);
    const SimTime without = quiet.AdmitUplink(1, 8, now);
    EXPECT_GE(with_bg, without);
    loaded_total += with_bg - now;
    quiet_total += without - now;
  }
  EXPECT_GT(loaded_total, quiet_total);
}

// Engine-level contract: a finite-bandwidth run is deterministic, charges
// transmission and queueing on every message, reports utilization, and is
// strictly slower than the paper's infinite-bandwidth model.
TEST(LinkEngineTest, FiniteBandwidthDeterministicAndCharged) {
  proto::SimConfig config;
  config.protocol = proto::Protocol::kS2pl;
  config.num_clients = 8;
  config.latency = 20;
  config.workload.num_items = 15;
  config.measured_txns = 300;
  config.warmup_txns = 30;
  config.seed = 5;
  config.link_bandwidth = 1.0;
  config.nic_queue = true;
  config.max_sim_time = 2'000'000'000;
  const proto::RunResult a = proto::RunSimulation(config);
  const proto::RunResult b = proto::RunSimulation(config);
  ASSERT_FALSE(a.timed_out);
  EXPECT_EQ(a.response.mean(), b.response.mean());
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.network.transmission_ticks, b.network.transmission_ticks);
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization);
  EXPECT_EQ(a.queue_delay_p99, b.queue_delay_p99);

  // Every sent message enters the sender queue accounting; deliveries that
  // complete before the simulation stops enter the receiver accounting.
  EXPECT_EQ(a.network.sender_queue_delay.count(),
            static_cast<int64_t>(a.network.messages));
  EXPECT_GT(a.network.receiver_queue_delay.count(), 0);
  EXPECT_LE(a.network.receiver_queue_delay.count(),
            static_cast<int64_t>(a.network.messages));
  EXPECT_GT(a.network.transmission_ticks, 0u);
  EXPECT_GT(a.max_link_utilization, 0.0);

  proto::SimConfig infinite = config;
  infinite.link_bandwidth = 0.0;
  infinite.nic_queue = false;
  const proto::RunResult base = proto::RunSimulation(infinite);
  ASSERT_FALSE(base.timed_out);
  EXPECT_GT(a.response.mean(), base.response.mean());
  EXPECT_EQ(base.network.transmission_ticks, 0u);
  EXPECT_EQ(base.max_link_utilization, 0.0);
}

TEST(LinkEngineTest, CrossTrafficRaisesUtilizationAndResponse) {
  proto::SimConfig config;
  config.protocol = proto::Protocol::kS2pl;
  config.num_clients = 8;
  config.latency = 20;
  config.workload.num_items = 15;
  config.measured_txns = 300;
  config.warmup_txns = 30;
  config.seed = 5;
  config.link_bandwidth = 1.0;
  config.nic_queue = true;
  config.max_sim_time = 2'000'000'000;
  const proto::RunResult quiet = proto::RunSimulation(config);
  config.cross_traffic_load = 0.8;
  const proto::RunResult loaded = proto::RunSimulation(config);
  ASSERT_FALSE(quiet.timed_out);
  ASSERT_FALSE(loaded.timed_out);
  EXPECT_GT(loaded.max_link_utilization, quiet.max_link_utilization);
  EXPECT_GT(loaded.response.mean(), quiet.response.mean());
}

}  // namespace
}  // namespace gtpl::net
