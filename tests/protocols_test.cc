// Integration tests: whole-system simulations for every protocol, checking
// progress, sane metrics, and serializability of the committed history.

#include "protocols/engine.h"

#include <gtest/gtest.h>

#include "protocols/config.h"
#include "protocols/metrics.h"

namespace gtpl::proto {
namespace {

SimConfig SmallConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 10;
  config.latency = 50;
  config.workload.num_items = 10;
  config.workload.read_prob = 0.5;
  config.measured_txns = 500;
  config.warmup_txns = 50;
  config.record_history = true;
  config.seed = 11;
  config.max_sim_time = 20'000'000;
  return config;
}

class EveryProtocolTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(EveryProtocolTest, MakesProgressUnderContention) {
  SimConfig config = SmallConfig(GetParam());
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.commits, 500);
  EXPECT_GT(result.response.mean(), 0.0);
  EXPECT_GT(result.network.messages, 0u);
}

TEST_P(EveryProtocolTest, HistoryIsSerializable) {
  SimConfig config = SmallConfig(GetParam());
  const RunResult result = RunSimulation(config);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST_P(EveryProtocolTest, ReadOnlyWorkloadCommitsEverything) {
  SimConfig config = SmallConfig(GetParam());
  config.workload.read_prob = 1.0;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  // Read-only s-2PL/c-2PL/CBL/O2PL never conflict; g-2PL can abort on
  // read-only deadlocks only at tiny latencies (tested elsewhere).
  if (GetParam() != Protocol::kG2pl) {
    EXPECT_EQ(result.aborts, 0);
  }
}

TEST_P(EveryProtocolTest, WriteOnlyWorkloadSerializable) {
  SimConfig config = SmallConfig(GetParam());
  config.workload.read_prob = 0.0;
  config.measured_txns = 300;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST_P(EveryProtocolTest, DeterministicAcrossIdenticalSeeds) {
  SimConfig config = SmallConfig(GetParam());
  config.measured_txns = 200;
  const RunResult a = RunSimulation(config);
  const RunResult b = RunSimulation(config);
  EXPECT_EQ(a.response.mean(), b.response.mean());
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.events, b.events);
}

TEST_P(EveryProtocolTest, DifferentSeedsDiffer) {
  SimConfig config = SmallConfig(GetParam());
  config.measured_txns = 200;
  const RunResult a = RunSimulation(config);
  config.seed += 1;
  const RunResult b = RunSimulation(config);
  EXPECT_NE(a.events, b.events);
}

TEST_P(EveryProtocolTest, SingleClientNeverAborts) {
  SimConfig config = SmallConfig(GetParam());
  config.num_clients = 1;
  config.measured_txns = 200;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.aborts, 0);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST_P(EveryProtocolTest, HighContentionOneItem) {
  SimConfig config = SmallConfig(GetParam());
  config.workload.num_items = 1;
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 1;
  config.workload.read_prob = 0.2;
  config.measured_txns = 300;
  const RunResult result = RunSimulation(config);
  EXPECT_FALSE(result.timed_out);
  // Single-item transactions cannot deadlock under the locking protocols;
  // O2PL still aborts on certification conflicts.
  if (GetParam() != Protocol::kO2pl) {
    EXPECT_EQ(result.aborts, 0);
  }
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, EveryProtocolTest,
                         ::testing::Values(Protocol::kS2pl, Protocol::kG2pl,
                                           Protocol::kC2pl, Protocol::kCbl,
                                           Protocol::kO2pl),
                         [](const ::testing::TestParamInfo<Protocol>& param_info) {
                           switch (param_info.param) {
                             case Protocol::kS2pl:
                               return "s2pl";
                             case Protocol::kG2pl:
                               return "g2pl";
                             case Protocol::kC2pl:
                               return "c2pl";
                             case Protocol::kCbl:
                               return "cbl";
                             case Protocol::kO2pl:
                               return "o2pl";
                           }
                           return "unknown";
                         });

TEST_P(EveryProtocolTest, ClientLogsAreGarbageCollected) {
  // The paper's recovery assumption: each site garbage collects its WAL
  // once the data are made permanent at the server. Retained records must
  // stay far below the total appended.
  SimConfig config = SmallConfig(GetParam());
  config.workload.read_prob = 0.3;  // plenty of updates to log
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GT(result.wal_appends, 0);
  EXPECT_LT(result.wal_retained, result.wal_appends / 4)
      << "client WALs are not being truncated";
}

TEST(PaperShapeTest, G2plBeatsS2plOnUpdateWorkloadInWan) {
  SimConfig config;
  config.num_clients = 20;
  config.latency = 500;
  config.workload.read_prob = 0.25;
  config.measured_txns = 1500;
  config.warmup_txns = 150;
  config.seed = 3;
  config.max_sim_time = 500'000'000;
  config.protocol = Protocol::kS2pl;
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kG2pl;
  const RunResult g2pl = RunSimulation(config);
  ASSERT_FALSE(s2pl.timed_out);
  ASSERT_FALSE(g2pl.timed_out);
  EXPECT_LT(g2pl.response.mean(), s2pl.response.mean());
}

TEST(PaperShapeTest, S2plBeatsG2plOnReadOnlyWorkload) {
  SimConfig config;
  config.num_clients = 20;
  config.latency = 250;
  config.workload.read_prob = 1.0;
  config.measured_txns = 1500;
  config.warmup_txns = 150;
  config.seed = 3;
  config.max_sim_time = 500'000'000;
  config.protocol = Protocol::kS2pl;
  const RunResult s2pl = RunSimulation(config);
  config.protocol = Protocol::kG2pl;
  const RunResult g2pl = RunSimulation(config);
  ASSERT_FALSE(s2pl.timed_out);
  ASSERT_FALSE(g2pl.timed_out);
  EXPECT_GT(g2pl.response.mean(), s2pl.response.mean());
}

}  // namespace
}  // namespace gtpl::proto
