// 2PC correctness battery for the geo-aware commit paths (ISSUE 7): every
// (cc engine x commit variant) pair runs randomized workloads at 1-8 shards
// and must stay serializable and invariant-clean, pay *exactly* the WAN
// flight count its registry entry promises (classic 2, early 0, fastpath 0
// for single-write-shard commits, coord 4 when the coordinator moved), and
// decompose its commit span into per-round sub-spans that sum back into the
// exact response-time identity. The registry itself (names, parse errors,
// the flight table) is pinned first; the fast-path latency claim — at least
// one WAN round off the p50 cross-server commit span at every latency —
// closes the file.

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cc/registry.h"
#include "protocols/commit.h"
#include "protocols/engine.h"
#include "protocols/invariants.h"

namespace gtpl::proto {
namespace {

// --- Registry -------------------------------------------------------------

TEST(CommitRegistryTest, RegistersAllFourVariants) {
  const std::vector<CommitPathInfo>& paths = CommitPaths();
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_STREQ(paths[0].name, "classic");
  EXPECT_STREQ(paths[1].name, "early");
  EXPECT_STREQ(paths[2].name, "fastpath");
  EXPECT_STREQ(paths[3].name, "coord");
  for (const CommitPathInfo& info : paths) {
    EXPECT_STREQ(ToString(info.path), info.name);
    const CommitPathInfo* found = FindCommitPath(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found->path, info.path);
    EXPECT_EQ(&CommitPathFor(info.path), found);
    EXPECT_GT(std::string(info.summary).size(), 0u);
  }
  EXPECT_EQ(FindCommitPath("nope"), nullptr);
  EXPECT_EQ(CommitPathNames(), "classic, early, fastpath, coord");
}

TEST(CommitRegistryTest, ParseAcceptsEveryRegisteredName) {
  for (const CommitPathInfo& info : CommitPaths()) {
    CommitPath path = CommitPath::kClassic;
    EXPECT_TRUE(ParseCommitPathName(info.name, &path).ok()) << info.name;
    EXPECT_EQ(path, info.path) << info.name;
  }
}

TEST(CommitRegistryTest, ParseRejectsUnknownNameAndListsRegistry) {
  CommitPath path = CommitPath::kEarly;
  const Status status = ParseCommitPathName("bogus", &path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown commit path 'bogus'"),
            std::string::npos)
      << status.message();
  // The error names every registered variant so the CLI is discoverable.
  for (const CommitPathInfo& info : CommitPaths()) {
    EXPECT_NE(status.message().find(info.name), std::string::npos)
        << status.message();
  }
  EXPECT_EQ(path, CommitPath::kEarly);  // untouched on failure
}

TEST(CommitRegistryTest, ExpectedFlightTable) {
  for (bool single : {false, true}) {
    for (bool remote : {false, true}) {
      EXPECT_EQ(ExpectedCommitFlights(CommitPath::kClassic, single, remote), 2);
      EXPECT_EQ(ExpectedCommitFlights(CommitPath::kEarly, single, remote), 0);
      EXPECT_EQ(ExpectedCommitFlights(CommitPath::kCoord, single, remote),
                remote ? 4 : 2);
    }
    EXPECT_EQ(ExpectedCommitFlights(CommitPath::kFastPath, single, false),
              single ? 0 : 2);
  }
}

// --- Property battery: engine x variant x shard count ---------------------

SimConfig BatteryConfig(Protocol protocol, CommitPath path, uint64_t seed) {
  SimConfig config;
  config.protocol = protocol;
  config.commit_path = path;
  config.num_clients = 8;
  config.latency = 40 + static_cast<SimTime>(seed * 37 % 160);
  config.workload.num_items = 16 + static_cast<int32_t>(seed * 13 % 12);
  config.workload.read_prob = 0.25 * static_cast<double>(seed % 4);
  config.measured_txns = 150;
  config.warmup_txns = 15;
  config.seed = seed;
  config.record_history = true;
  config.record_protocol_events = true;
  config.max_sim_time = 4'000'000'000;
  return config;
}

// The test's own copy of hash routing (the battery configs keep the default
// ShardRouting::kHash) — recomputed from the committed ops so the flight
// assertion does not trust the engine's own bookkeeping.
int32_t TestShardOf(ItemId item, int32_t servers) { return item % servers; }

struct TxnShape {
  int32_t participants = 0;
  int32_t write_shards = 0;
};

TxnShape ShapeOf(const CommittedTxn& txn, int32_t servers) {
  std::set<int32_t> all;
  std::set<int32_t> writes;
  for (const OpRecord& op : txn.ops) {
    all.insert(TestShardOf(op.item, servers));
    if (op.mode == LockMode::kExclusive) {
      writes.insert(TestShardOf(op.item, servers));
    }
  }
  TxnShape shape;
  shape.participants = static_cast<int32_t>(all.size());
  shape.write_shards = static_cast<int32_t>(writes.size());
  return shape;
}

void CheckCommittedTxns(const RunResult& result, const SimConfig& config,
                        bool occ_engine) {
  for (const CommittedTxn& txn : result.history) {
    const TxnShape shape = ShapeOf(txn, config.num_servers);
    // Exact response-time identity, now including the commit sub-spans.
    EXPECT_EQ(txn.span.Total(), txn.commit_time - txn.start_time)
        << "txn " << txn.id;
    EXPECT_GE(txn.span.commit_prepare, 0) << "txn " << txn.id;
    EXPECT_GE(txn.span.commit_vote, 0) << "txn " << txn.id;
    EXPECT_GE(txn.span.CommitResidual(), 0)
        << "txn " << txn.id << " prepare " << txn.span.commit_prepare
        << " vote " << txn.span.commit_vote << " commit " << txn.span.commit;
    if (shape.participants <= 1) {
      // Single-shard commit: no 2PC, no flights, no sub-spans.
      EXPECT_EQ(txn.commit_flights, -1) << "txn " << txn.id;
      EXPECT_EQ(txn.span.commit_prepare, 0) << "txn " << txn.id;
      EXPECT_EQ(txn.span.commit_vote, 0) << "txn " << txn.id;
      continue;
    }
    // Exact per-transaction WAN-flight counts. OCC runs its own
    // certification commit and falls back to the classic two flights under
    // every variant; the lock engines must hit the variant's promise (under
    // uniform latency kCoord never moves the coordinator, so remote=false).
    const int32_t expected =
        occ_engine ? 2
                   : ExpectedCommitFlights(config.commit_path,
                                           shape.write_shards <= 1,
                                           /*remote_coordinator=*/false);
    EXPECT_EQ(txn.commit_flights, expected)
        << "txn " << txn.id << " path "
        << ToString(config.commit_path) << " participants "
        << shape.participants << " write_shards " << shape.write_shards;
  }
}

TEST(CommitPathBatteryTest, EveryEngineTimesEveryVariantStaysSerializable) {
  for (const cc::EngineInfo& info : cc::Engines()) {
    if (!info.sharded) continue;
    const bool occ_engine = info.protocol == Protocol::kOcc;
    const bool caching = info.protocol == Protocol::kC2pl ||
                         info.protocol == Protocol::kCbl ||
                         info.protocol == Protocol::kO2pl;
    for (const CommitPathInfo& path : CommitPaths()) {
      // The caching engines support only the classic commit path under
      // sharding (Validate() enforces it); the other variants assume the
      // lock-engine commit promise.
      if (caching && path.path != CommitPath::kClassic) continue;
      for (int32_t servers : {1, 2, 4, 8}) {
        SimConfig config = BatteryConfig(info.protocol, path.path,
                                         /*seed=*/servers);
        config.num_servers = servers;
        SCOPED_TRACE(std::string(info.name) + " x " + path.name +
                     " servers " + std::to_string(servers));
        const RunResult result = RunSimulation(config);
        ASSERT_FALSE(result.timed_out);
        EXPECT_GT(result.commits, 0);
        std::string why;
        EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
        EXPECT_TRUE(CheckAcyclicity(result.protocol_events, &why)) << why;
        EXPECT_TRUE(CheckMr1wDiscipline(result.protocol_events, &why)) << why;
        CheckCommittedTxns(result, config, occ_engine);
        if (servers > 1) {
          EXPECT_GT(result.cross_server_commits, 0);
          if (occ_engine) {
            // OCC's fallback is counted, not silent.
            EXPECT_EQ(result.commit_path_fallbacks,
                      path.path == CommitPath::kClassic
                          ? 0
                          : result.cross_server_commits);
          } else {
            EXPECT_EQ(result.commit_path_fallbacks, 0);
            if (path.path == CommitPath::kEarly) {
              EXPECT_GT(result.early_prepares, 0);
            }
            if (path.path == CommitPath::kFastPath) {
              EXPECT_EQ(result.fastpath_commits > 0,
                        result.commit_flights.count() > 0 &&
                            result.commit_flights.min() == 0.0);
            }
          }
          if (path.path != CommitPath::kCoord) {
            EXPECT_EQ(result.coord_remote_commits, 0);
          }
        } else {
          // One server: every variant is inert (no cross-server commits).
          EXPECT_EQ(result.cross_server_commits, 0);
          EXPECT_EQ(result.early_prepares, 0);
          EXPECT_EQ(result.fastpath_commits, 0);
          EXPECT_EQ(result.commit_path_fallbacks, 0);
        }
      }
    }
  }
}

// Determinism: each variant inherits the bit-identical replay guarantee.
TEST(CommitPathBatteryTest, EveryVariantIsDeterministic) {
  for (const CommitPathInfo& path : CommitPaths()) {
    SimConfig config = BatteryConfig(Protocol::kS2pl, path.path, /*seed=*/3);
    config.num_servers = 4;
    const RunResult a = RunSimulation(config);
    const RunResult b = RunSimulation(config);
    EXPECT_EQ(a.commits, b.commits) << path.name;
    EXPECT_EQ(a.events, b.events) << path.name;
    EXPECT_EQ(a.end_time, b.end_time) << path.name;
    EXPECT_EQ(a.response.mean(), b.response.mean()) << path.name;
    EXPECT_EQ(a.commit_flights.mean(), b.commit_flights.mean()) << path.name;
  }
}

// --- Coordinator placement ------------------------------------------------

// A fast server mesh under a slow WAN: ChooseCoordinator's score always
// favors the write-heaviest participant (extra response 2*mesh, lock-hold
// saving > WAN), so every cross-server commit with a write runs the 4-flight
// remote-coordinated round and every read-only one stays with the client at
// the classic 2.
TEST(CommitCoordTest, RemoteCoordinatorPaysFourFlightsOnFastMesh) {
  SimConfig config = BatteryConfig(Protocol::kS2pl, CommitPath::kCoord,
                                   /*seed=*/11);
  config.num_servers = 4;
  config.latency = 200;
  config.server_latency = 25;
  config.workload.read_prob = 0.5;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GT(result.coord_remote_commits, 0);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
  int64_t remote_seen = 0;
  for (const CommittedTxn& txn : result.history) {
    const TxnShape shape = ShapeOf(txn, config.num_servers);
    if (shape.participants <= 1) {
      EXPECT_EQ(txn.commit_flights, -1);
      continue;
    }
    const bool remote = shape.write_shards > 0;
    remote_seen += remote;
    EXPECT_EQ(txn.commit_flights,
              ExpectedCommitFlights(CommitPath::kCoord,
                                    shape.write_shards <= 1, remote))
        << "txn " << txn.id << " write_shards " << shape.write_shards;
    EXPECT_EQ(txn.span.Total(), txn.commit_time - txn.start_time);
    EXPECT_GE(txn.span.CommitResidual(), 0);
  }
  // history covers warmup commits too; the telemetry counter only the
  // measured phase.
  EXPECT_GE(remote_seen, result.coord_remote_commits);
}

// --- The fast-path latency claim ------------------------------------------

// Exact p50 of the cross-server commit spans, straight from the recorded
// history (the bench's xcommit_span_hist is the same distribution, bucketed
// at latency/4 — too coarse to assert an exact round count against).
SimTime ExactCrossCommitP50(const RunResult& result) {
  std::vector<SimTime> spans;
  for (const CommittedTxn& txn : result.history) {
    if (txn.commit_flights >= 0) spans.push_back(txn.span.commit);
  }
  EXPECT_GT(spans.size(), 0u);
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end());
  return spans[spans.size() / 2];
}

// Acceptance criterion: at every latency point, skipping the prepare/vote
// round for single-write-shard transactions cuts at least one full WAN round
// (2 one-way flights) off the p50 cross-server commit span — attributed by
// the per-round sub-spans, which drop to 0 for the fast-path commits.
TEST(CommitFastPathTest, CutsAtLeastOneRoundOffP50AtEveryLatency) {
  for (SimTime latency : {100, 500, 750}) {
    SimConfig classic;
    classic.protocol = Protocol::kS2pl;
    classic.num_clients = 10;
    classic.num_servers = 4;
    classic.latency = latency;
    classic.workload.read_prob = 0.8;
    classic.measured_txns = 400;
    classic.warmup_txns = 40;
    classic.seed = 7;
    classic.record_history = true;
    classic.max_sim_time = 60'000'000'000;
    SimConfig fast = classic;
    fast.commit_path = CommitPath::kFastPath;
    const RunResult base = RunSimulation(classic);
    const RunResult cut = RunSimulation(fast);
    ASSERT_FALSE(base.timed_out);
    ASSERT_FALSE(cut.timed_out);
    ASSERT_GT(base.commit_flights.count(), 0);
    ASSERT_GT(cut.commit_flights.count(), 0);
    EXPECT_GT(cut.fastpath_commits, 0) << "latency " << latency;
    const SimTime p50_base = ExactCrossCommitP50(base);
    const SimTime p50_cut = ExactCrossCommitP50(cut);
    EXPECT_GE(p50_base - p50_cut, 2 * latency)
        << "latency " << latency << " classic p50 " << p50_base
        << " fastpath p50 " << p50_cut;
    // The removed round shows up in the attribution: classic's mean
    // prepare+vote spans cover a full round, the fast path's shrink by the
    // fast-path fraction.
    EXPECT_LT(cut.span_commit_prepare.mean() + cut.span_commit_vote.mean(),
              base.span_commit_prepare.mean() + base.span_commit_vote.mean())
        << "latency " << latency;
  }
}

}  // namespace
}  // namespace gtpl::proto
