// Determinism contract of the observability trace (DESIGN.md §11):
//
//  1. Same seed => byte-identical JSONL, run to run.
//  2. The trace is buffered per replication and written post-hoc, so the
//     worker-thread count cannot reorder it: --jobs=1 and --jobs=4 produce
//     identical per-replication traces.
//  3. Tracing is observation only: enabling obs_trace changes no metric —
//     every engine output is bit-identical with tracing on or off.
//
// All five protocols plus 4-way-sharded g-2PL / s-2PL are covered.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "obs/export.h"
#include "protocols/config.h"
#include "protocols/engine.h"

namespace gtpl::proto {
namespace {

SimConfig SmallConfig(Protocol protocol, int32_t servers = 1) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.num_servers = servers;
  config.workload.num_items = 25;
  config.latency = 250;
  config.measured_txns = 150;
  config.warmup_txns = 20;
  config.seed = 1234;
  config.max_sim_time = 10'000'000'000;
  return config;
}

std::vector<SimConfig> AllEngines() {
  return {SmallConfig(Protocol::kS2pl),      SmallConfig(Protocol::kG2pl),
          SmallConfig(Protocol::kC2pl),      SmallConfig(Protocol::kCbl),
          SmallConfig(Protocol::kO2pl),      SmallConfig(Protocol::kS2pl, 4),
          SmallConfig(Protocol::kG2pl, 4)};
}

TEST(TraceDeterminismTest, SameSeedSameBytes) {
  for (SimConfig config : AllEngines()) {
    config.obs_trace = true;
    const RunResult first = RunSimulation(config);
    const RunResult second = RunSimulation(config);
    ASSERT_FALSE(first.obs_trace.empty())
        << "protocol " << ToString(config.protocol);
    EXPECT_EQ(obs::ToJsonl(first.obs_trace), obs::ToJsonl(second.obs_trace))
        << "protocol " << ToString(config.protocol) << " servers "
        << config.num_servers;
  }
}

TEST(TraceDeterminismTest, WorkerCountInvariant) {
  // RunReplicated fans replications across worker threads; traces are
  // buffered per replication, so the per-replication JSONL must not depend
  // on the job count.
  for (SimConfig config :
       {SmallConfig(Protocol::kG2pl), SmallConfig(Protocol::kS2pl, 4)}) {
    config.obs_trace = true;
    const harness::PointResult serial =
        harness::RunReplicated(config, /*runs=*/4, /*jobs=*/1);
    const harness::PointResult parallel =
        harness::RunReplicated(config, /*runs=*/4, /*jobs=*/4);
    ASSERT_EQ(serial.traces.size(), 4u);
    ASSERT_EQ(parallel.traces.size(), 4u);
    for (size_t rep = 0; rep < serial.traces.size(); ++rep) {
      EXPECT_EQ(obs::ToJsonl(serial.traces[rep]),
                obs::ToJsonl(parallel.traces[rep]))
          << "protocol " << ToString(config.protocol) << " replication "
          << rep;
    }
  }
}

TEST(TraceDeterminismTest, TracingPerturbsNothing) {
  for (const SimConfig& config : AllEngines()) {
    SimConfig off = config;
    off.obs_trace = false;
    SimConfig on = config;
    on.obs_trace = true;
    const RunResult without = RunSimulation(off);
    const RunResult with = RunSimulation(on);
    const std::string what = std::string(ToString(config.protocol)) +
                             " servers " +
                             std::to_string(config.num_servers);
    EXPECT_TRUE(without.obs_trace.empty()) << what;
    EXPECT_FALSE(with.obs_trace.empty()) << what;
    EXPECT_EQ(without.response.mean(), with.response.mean()) << what;
    EXPECT_EQ(without.response.count(), with.response.count()) << what;
    EXPECT_EQ(without.op_wait.mean(), with.op_wait.mean()) << what;
    EXPECT_EQ(without.commits, with.commits) << what;
    EXPECT_EQ(without.aborts, with.aborts) << what;
    EXPECT_EQ(without.total_commits, with.total_commits) << what;
    EXPECT_EQ(without.total_aborts, with.total_aborts) << what;
    EXPECT_EQ(without.events, with.events) << what;
    EXPECT_EQ(without.end_time, with.end_time) << what;
    EXPECT_EQ(without.network.messages, with.network.messages) << what;
    EXPECT_EQ(without.network.payload_units, with.network.payload_units)
        << what;
    EXPECT_EQ(without.span_lock_wait.mean(), with.span_lock_wait.mean())
        << what;
    EXPECT_EQ(without.span_commit.mean(), with.span_commit.mean()) << what;
  }
}

TEST(TraceDeterminismTest, SeqIsDenseAndTimeMonotone) {
  SimConfig config = SmallConfig(Protocol::kG2pl, 4);
  config.obs_trace = true;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.obs_trace.empty());
  for (size_t i = 0; i < result.obs_trace.size(); ++i) {
    EXPECT_EQ(result.obs_trace[i].seq, i);
    if (i > 0) {
      EXPECT_GE(result.obs_trace[i].time, result.obs_trace[i - 1].time);
    }
  }
}

}  // namespace
}  // namespace gtpl::proto
