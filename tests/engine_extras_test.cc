// Tests for engine-level extensions: victim policies, heterogeneous
// latency, access skew, and the WAL force-delay path, plus a randomized
// reachability property check for the precedence graph.

#include <algorithm>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/precedence_graph.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/metrics.h"
#include "rng/rng.h"

namespace gtpl::proto {
namespace {

SimConfig MidConfig(Protocol protocol) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.latency = 150;
  config.workload.num_items = 10;
  config.workload.read_prob = 0.4;
  config.measured_txns = 800;
  config.warmup_txns = 80;
  config.seed = 7;
  config.record_history = true;
  config.max_sim_time = 20'000'000'000;
  return config;
}

TEST(VictimPolicyTest, YoungestVictimStaysCorrect) {
  SimConfig config = MidConfig(Protocol::kS2pl);
  config.s2pl.victim = S2plOptions::Victim::kYoungest;
  const RunResult result = RunSimulation(config);
  ASSERT_FALSE(result.timed_out);
  EXPECT_GT(result.aborts, 0);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(result.history, &why)) << why;
}

TEST(VictimPolicyTest, PoliciesChangeOutcomes) {
  SimConfig config = MidConfig(Protocol::kS2pl);
  const RunResult requester = RunSimulation(config);
  config.s2pl.victim = S2plOptions::Victim::kYoungest;
  const RunResult youngest = RunSimulation(config);
  EXPECT_NE(requester.events, youngest.events);
}

TEST(HeterogeneityTest, JitterKeepsInvariants) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = MidConfig(protocol);
    config.latency_jitter = 60;
    const RunResult result = RunSimulation(config);
    ASSERT_FALSE(result.timed_out) << ToString(protocol);
    std::string why;
    EXPECT_TRUE(HistoryIsSerializable(result.history, &why))
        << ToString(protocol) << ": " << why;
  }
}

TEST(HeterogeneityTest, SpreadKeepsInvariants) {
  for (Protocol protocol : {Protocol::kG2pl, Protocol::kCbl}) {
    SimConfig config = MidConfig(protocol);
    config.latency_spread = 0.8;
    const RunResult result = RunSimulation(config);
    ASSERT_FALSE(result.timed_out) << ToString(protocol);
    std::string why;
    EXPECT_TRUE(HistoryIsSerializable(result.history, &why))
        << ToString(protocol) << ": " << why;
  }
}

TEST(HeterogeneityTest, JitterIncreasesMeanResponse) {
  SimConfig config = MidConfig(Protocol::kS2pl);
  const RunResult flat = RunSimulation(config);
  config.latency_jitter = 150;  // mean latency grows by ~75
  const RunResult jittered = RunSimulation(config);
  EXPECT_GT(jittered.response.mean(), flat.response.mean());
}

TEST(HeterogeneityTest, DeterministicUnderJitter) {
  SimConfig config = MidConfig(Protocol::kG2pl);
  config.latency_jitter = 40;
  config.latency_spread = 0.5;
  const RunResult a = RunSimulation(config);
  const RunResult b = RunSimulation(config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.response.mean(), b.response.mean());
}

TEST(SkewTest, ZipfWorkloadKeepsInvariantsAndLengthensForwardLists) {
  SimConfig uniform = MidConfig(Protocol::kG2pl);
  uniform.workload.num_items = 25;
  const RunResult flat = RunSimulation(uniform);
  SimConfig skewed = uniform;
  skewed.workload.zipf_theta = 1.3;
  const RunResult hot = RunSimulation(skewed);
  ASSERT_FALSE(hot.timed_out);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(hot.history, &why)) << why;
  // Hotter access concentrates requests: longer forward lists (the paper's
  // grouping-effect hypothesis).
  EXPECT_GT(hot.mean_forward_list_length, flat.mean_forward_list_length);
}

TEST(WalDelayTest, ForceDelayAppliesToEveryPessimisticProtocol) {
  for (Protocol protocol :
       {Protocol::kS2pl, Protocol::kG2pl, Protocol::kC2pl, Protocol::kCbl}) {
    SimConfig config = MidConfig(protocol);
    config.measured_txns = 300;
    const RunResult fast = RunSimulation(config);
    config.wal_force_delay = 40;
    const RunResult slow = RunSimulation(config);
    ASSERT_FALSE(slow.timed_out) << ToString(protocol);
    EXPECT_GT(slow.response.mean(), fast.response.mean())
        << ToString(protocol);
  }
}

// Randomized differential test: PrecedenceGraph reachability against a
// brute-force Floyd-Warshall closure over random DAG mutations.
// Regression (ISSUE 4 satellite): the aging mechanism under sharding. The
// restart streak lives in the shared client lifecycle (client_base.cc):
// it grows on every abort notice — including aborts decided mid-2PC on a
// remote shard — and resets only at commit, so the g2pl.cc and sharded.cc
// SendRequest paths read the same value. This pins that an aged client's
// streak actually changes victim selection on a 4-shard group, and that the
// outcome stays serializable and deterministic.
TEST(ShardedAgingTest, AgingChangesVictimsAndStaysCorrectAcrossShards) {
  SimConfig config = MidConfig(Protocol::kG2pl);
  config.num_servers = 4;
  config.workload.read_prob = 0.2;  // write-heavy: deep restart streaks
  SimConfig no_aging = config;
  config.g2pl.aging_threshold = 1;
  const RunResult aged = RunSimulation(config);
  ASSERT_FALSE(aged.timed_out);
  EXPECT_GT(aged.commits, 0);
  std::string why;
  EXPECT_TRUE(HistoryIsSerializable(aged.history, &why)) << why;
  // Aging genuinely engaged: victim selection (and thus the run) differs
  // from the no-aging run of the identical configuration.
  const RunResult baseline = RunSimulation(no_aging);
  ASSERT_FALSE(baseline.timed_out);
  EXPECT_NE(aged.end_time, baseline.end_time);
  // And the aged run is reproducible bit for bit.
  const RunResult again = RunSimulation(config);
  EXPECT_EQ(aged.commits, again.commits);
  EXPECT_EQ(aged.aborts, again.aborts);
  EXPECT_EQ(aged.end_time, again.end_time);
  EXPECT_EQ(aged.events, again.events);
}

TEST(PrecedenceGraphPropertyTest, ReachabilityMatchesBruteForce) {
  rng::Rng rng(123);
  constexpr int kNodes = 24;
  for (int trial = 0; trial < 30; ++trial) {
    core::PrecedenceGraph graph;
    bool adj[kNodes][kNodes] = {};
    // Random forward edges (i < j keeps it acyclic), random kinds.
    for (int i = 0; i < kNodes; ++i) {
      for (int j = i + 1; j < kNodes; ++j) {
        if (rng.Bernoulli(0.12)) {
          graph.AddEdge(i, j,
                        rng.Bernoulli(0.5) ? core::kStructuralEdge
                                           : core::kRequestEdge);
          adj[i][j] = true;
        }
      }
    }
    // Random node removals (plain removal drops the node's paths).
    for (int r = 0; r < 4; ++r) {
      const int victim = static_cast<int>(rng.UniformInt(0, kNodes - 1));
      graph.RemoveTxn(victim);
      for (int k = 0; k < kNodes; ++k) {
        adj[victim][k] = false;
        adj[k][victim] = false;
      }
    }
    // Brute-force closure.
    bool reach[kNodes][kNodes];
    std::copy(&adj[0][0], &adj[0][0] + kNodes * kNodes, &reach[0][0]);
    for (int k = 0; k < kNodes; ++k) {
      for (int i = 0; i < kNodes; ++i) {
        for (int j = 0; j < kNodes; ++j) {
          reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
        }
      }
    }
    for (int i = 0; i < kNodes; ++i) {
      for (int j = 0; j < kNodes; ++j) {
        if (i == j) continue;
        EXPECT_EQ(graph.CanReach(i, j), reach[i][j])
            << "trial " << trial << " " << i << "->" << j;
      }
    }
    EXPECT_TRUE(graph.IsAcyclic());
  }
}

// Contraction preserves reachability among the surviving nodes.
TEST(PrecedenceGraphPropertyTest, ContractionPreservesReachability) {
  rng::Rng rng(321);
  constexpr int kNodes = 18;
  for (int trial = 0; trial < 30; ++trial) {
    core::PrecedenceGraph graph;
    bool adj[kNodes][kNodes] = {};
    for (int i = 0; i < kNodes; ++i) {
      for (int j = i + 1; j < kNodes; ++j) {
        if (rng.Bernoulli(0.15)) {
          graph.AddEdge(i, j, core::kStructuralEdge);
          adj[i][j] = true;
        }
      }
    }
    bool reach[kNodes][kNodes];
    std::copy(&adj[0][0], &adj[0][0] + kNodes * kNodes, &reach[0][0]);
    for (int k = 0; k < kNodes; ++k) {
      for (int i = 0; i < kNodes; ++i) {
        for (int j = 0; j < kNodes; ++j) {
          reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
        }
      }
    }
    std::unordered_set<int> contracted;
    for (int r = 0; r < 5; ++r) {
      const int victim = static_cast<int>(rng.UniformInt(0, kNodes - 1));
      if (!contracted.insert(victim).second) continue;
      graph.Contract(victim);
    }
    for (int i = 0; i < kNodes; ++i) {
      if (contracted.count(i) > 0) continue;
      for (int j = 0; j < kNodes; ++j) {
        if (i == j || contracted.count(j) > 0) continue;
        EXPECT_EQ(graph.CanReach(i, j), reach[i][j])
            << "trial " << trial << " " << i << "->" << j;
      }
    }
    EXPECT_TRUE(graph.IsAcyclic());
  }
}

}  // namespace
}  // namespace gtpl::proto
