// Span accounting (DESIGN.md §11): the five lifecycle phases of every
// committed transaction — lock wait, propagation, transmission+queueing,
// execution, commit — are exhaustive and disjoint, so they must sum to the
// transaction's measured response time *exactly*, for every protocol,
// sharded and unsharded, under pure propagation, jitter, and the finite-
// bandwidth link model.
//
// Also pinned here:
//  * the trace->protocol-event replay converter reproduces the recorded
//    protocol_events stream field for field (and the replayed stream passes
//    the protocol invariant checkers), and
//  * satellite: sharded runs share ONE network/link model, so the link
//    metrics (queue_delay_p99) reported by a sharded run equal the ones
//    reconstructed from the merged per-message trace across all shards.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/invariants.h"
#include "stats/histogram.h"

namespace gtpl::proto {
namespace {

SimConfig SmallConfig(Protocol protocol, int32_t servers = 1) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.num_servers = servers;
  config.workload.num_items = 25;
  config.latency = 250;
  config.measured_txns = 150;
  config.warmup_txns = 20;
  config.seed = 99;
  config.max_sim_time = 10'000'000'000;
  return config;
}

void ExpectSpansSumToResponse(SimConfig config, const std::string& what) {
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_GT(result.history.size(), 0u) << what;
  for (const CommittedTxn& txn : result.history) {
    EXPECT_EQ(txn.span.Total(), txn.commit_time - txn.start_time)
        << what << " txn " << txn.id << " lock_wait " << txn.span.lock_wait
        << " propagation " << txn.span.propagation << " queueing "
        << txn.span.queueing << " execution " << txn.span.execution
        << " commit " << txn.span.commit;
    EXPECT_GE(txn.span.lock_wait, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.propagation, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.queueing, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.execution, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.commit, 0) << what << " txn " << txn.id;
  }
}

TEST(SpanAccountingTest, AllProtocolsPurePropagation) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl, Protocol::kC2pl,
                            Protocol::kCbl, Protocol::kO2pl}) {
    ExpectSpansSumToResponse(SmallConfig(protocol), ToString(protocol));
  }
}

TEST(SpanAccountingTest, ShardedEngines) {
  ExpectSpansSumToResponse(SmallConfig(Protocol::kG2pl, 4), "g2pl x4");
  ExpectSpansSumToResponse(SmallConfig(Protocol::kS2pl, 4), "s2pl x4");
}

TEST(SpanAccountingTest, WithJitter) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = SmallConfig(protocol);
    config.latency_jitter = 100;
    ExpectSpansSumToResponse(config,
                             std::string(ToString(protocol)) + " jitter");
  }
}

TEST(SpanAccountingTest, WithLinkModel) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    for (int32_t servers : {1, 2}) {
      SimConfig config = SmallConfig(protocol, servers);
      config.link_bandwidth = 1.0;
      config.nic_queue = true;
      ExpectSpansSumToResponse(config, std::string(ToString(protocol)) +
                                           " bw x" + std::to_string(servers));
    }
  }
}

TEST(SpanAccountingTest, ReplayConverterMatchesRecordedStream) {
  for (SimConfig config :
       {SmallConfig(Protocol::kG2pl), SmallConfig(Protocol::kG2pl, 4),
        SmallConfig(Protocol::kS2pl, 2)}) {
    config.record_protocol_events = true;
    config.obs_trace = true;
    const RunResult result = RunSimulation(config);
    const std::vector<ProtocolEvent> replayed =
        ProtocolEventsFromTrace(result.obs_trace);
    const std::string what = std::string(ToString(config.protocol)) + " x" +
                             std::to_string(config.num_servers);
    ASSERT_EQ(replayed.size(), result.protocol_events.size()) << what;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_TRUE(replayed[i] == result.protocol_events[i])
          << what << " event " << i;
    }
    std::string explanation;
    EXPECT_TRUE(CheckProtocolInvariants(replayed, &explanation))
        << what << ": " << explanation;
  }
}

TEST(SpanAccountingTest, ShardedLinkMetricsMatchMergedTrace) {
  // Sharded engines route every message through one shared Network /
  // LinkModel, so the link metrics a sharded run reports are already the
  // cross-shard merge. Reconstruct the queueing-delay distribution from the
  // per-message trace (kMsgDeliver: d0 = sender queueing, d2 = receiver
  // queueing) and compare its p99 against the engine's queue_delay_p99.
  SimConfig config = SmallConfig(Protocol::kG2pl, 4);
  config.link_bandwidth = 1.0;
  config.nic_queue = true;
  config.obs_trace = true;
  const RunResult result = RunSimulation(config);
  ASSERT_GT(result.queue_delay_p99, 0.0);

  // Same shape as net::Network's internal histogram.
  stats::Histogram rebuilt(/*max_value=*/16384.0, /*num_buckets=*/1024);
  for (const obs::TraceEvent& event : result.obs_trace) {
    if (event.kind == obs::EventKind::kMsgDeliver) {
      rebuilt.Add(static_cast<double>(event.d0 + event.d2));
    }
  }
  ASSERT_GT(rebuilt.count(), 0);
  const int64_t engine_count = result.network.receiver_queue_delay.count();
  if (rebuilt.count() == engine_count) {
    EXPECT_EQ(rebuilt.Percentile(0.99), result.queue_delay_p99);
  } else {
    // The run can end with a handful of messages between downlink admission
    // (histogram update) and delivery (trace event); the tail may then
    // differ by those messages, but the distributions must still agree.
    EXPECT_NEAR(rebuilt.Percentile(0.99), result.queue_delay_p99,
                0.05 * result.queue_delay_p99);
  }
}

}  // namespace
}  // namespace gtpl::proto
