// Span accounting (DESIGN.md §11): the five lifecycle phases of every
// committed transaction — lock wait, propagation, transmission+queueing,
// execution, commit — are exhaustive and disjoint, so they must sum to the
// transaction's measured response time *exactly*, for every protocol,
// sharded and unsharded, under pure propagation, jitter, and the finite-
// bandwidth link model.
//
// Also pinned here:
//  * the trace->protocol-event replay converter reproduces the recorded
//    protocol_events stream field for field (and the replayed stream passes
//    the protocol invariant checkers), and
//  * satellite: sharded runs share ONE network/link model, so the link
//    metrics (queue_delay_p99) reported by a sharded run equal the ones
//    reconstructed from the merged per-message trace across all shards.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "protocols/config.h"
#include "protocols/engine.h"
#include "protocols/invariants.h"
#include "stats/histogram.h"

namespace gtpl::proto {
namespace {

SimConfig SmallConfig(Protocol protocol, int32_t servers = 1) {
  SimConfig config;
  config.protocol = protocol;
  config.num_clients = 12;
  config.num_servers = servers;
  config.workload.num_items = 25;
  config.latency = 250;
  config.measured_txns = 150;
  config.warmup_txns = 20;
  config.seed = 99;
  config.max_sim_time = 10'000'000'000;
  return config;
}

void ExpectSpansSumToResponse(SimConfig config, const std::string& what) {
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  ASSERT_GT(result.history.size(), 0u) << what;
  for (const CommittedTxn& txn : result.history) {
    EXPECT_EQ(txn.span.Total(), txn.commit_time - txn.start_time)
        << what << " txn " << txn.id << " lock_wait " << txn.span.lock_wait
        << " propagation " << txn.span.propagation << " queueing "
        << txn.span.queueing << " execution " << txn.span.execution
        << " commit " << txn.span.commit;
    EXPECT_GE(txn.span.lock_wait, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.propagation, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.queueing, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.execution, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.commit, 0) << what << " txn " << txn.id;
    // The per-round commit sub-spans partition `commit`: both non-negative,
    // their sum never exceeds it (the residual covers WAL forces and the
    // coord ack leg), and both are 0 for commits that never ran 2PC.
    EXPECT_GE(txn.span.commit_prepare, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.commit_vote, 0) << what << " txn " << txn.id;
    EXPECT_GE(txn.span.CommitResidual(), 0)
        << what << " txn " << txn.id << " prepare " << txn.span.commit_prepare
        << " vote " << txn.span.commit_vote << " commit " << txn.span.commit;
    if (txn.commit_flights == -1) {
      EXPECT_EQ(txn.span.commit_prepare, 0) << what << " txn " << txn.id;
      EXPECT_EQ(txn.span.commit_vote, 0) << what << " txn " << txn.id;
    }
  }
}

TEST(SpanAccountingTest, AllProtocolsPurePropagation) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl, Protocol::kC2pl,
                            Protocol::kCbl, Protocol::kO2pl}) {
    ExpectSpansSumToResponse(SmallConfig(protocol), ToString(protocol));
  }
}

TEST(SpanAccountingTest, ShardedEngines) {
  ExpectSpansSumToResponse(SmallConfig(Protocol::kG2pl, 4), "g2pl x4");
  ExpectSpansSumToResponse(SmallConfig(Protocol::kS2pl, 4), "s2pl x4");
}

// The regression this file originally missed: the commit-phase span was one
// opaque number, so a variant could drop a WAN round without the table
// showing *which* round. The split must (a) hold the partition identity for
// every commit-path variant and (b) actually attribute both 2PC rounds on
// the classic path — a sharded run has committed transactions whose prepare
// and vote sub-spans are each at least one one-way latency.
TEST(SpanAccountingTest, CommitSubSpansForEveryCommitPath) {
  for (const CommitPathInfo& info : CommitPaths()) {
    for (Protocol protocol : {Protocol::kS2pl, Protocol::kOcc}) {
      SimConfig config = SmallConfig(protocol, 4);
      config.commit_path = info.path;
      ExpectSpansSumToResponse(config, std::string(ToString(protocol)) +
                                           " x4 commit=" + info.name);
    }
  }
  SimConfig coord = SmallConfig(Protocol::kS2pl, 4);
  coord.commit_path = CommitPath::kCoord;
  coord.server_latency = 10;  // remote coordination actually engages
  ExpectSpansSumToResponse(coord, "s2pl x4 coord remote");
}

TEST(SpanAccountingTest, ClassicShardedAttributesBothRounds) {
  SimConfig config = SmallConfig(Protocol::kS2pl, 4);
  config.record_history = true;
  const RunResult result = RunSimulation(config);
  int64_t both_rounds = 0;
  for (const CommittedTxn& txn : result.history) {
    if (txn.commit_flights < 0) continue;
    EXPECT_GE(txn.span.commit_prepare, config.latency) << "txn " << txn.id;
    EXPECT_GE(txn.span.commit_vote, config.latency) << "txn " << txn.id;
    ++both_rounds;
  }
  EXPECT_GT(both_rounds, 0);
}

TEST(SpanAccountingTest, WithJitter) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    SimConfig config = SmallConfig(protocol);
    config.latency_jitter = 100;
    ExpectSpansSumToResponse(config,
                             std::string(ToString(protocol)) + " jitter");
  }
}

TEST(SpanAccountingTest, WithLinkModel) {
  for (Protocol protocol : {Protocol::kS2pl, Protocol::kG2pl}) {
    for (int32_t servers : {1, 2}) {
      SimConfig config = SmallConfig(protocol, servers);
      config.link_bandwidth = 1.0;
      config.nic_queue = true;
      ExpectSpansSumToResponse(config, std::string(ToString(protocol)) +
                                           " bw x" + std::to_string(servers));
    }
  }
}

TEST(SpanAccountingTest, ReplayConverterMatchesRecordedStream) {
  for (SimConfig config :
       {SmallConfig(Protocol::kG2pl), SmallConfig(Protocol::kG2pl, 4),
        SmallConfig(Protocol::kS2pl, 2)}) {
    config.record_protocol_events = true;
    config.obs_trace = true;
    const RunResult result = RunSimulation(config);
    const std::vector<ProtocolEvent> replayed =
        ProtocolEventsFromTrace(result.obs_trace);
    const std::string what = std::string(ToString(config.protocol)) + " x" +
                             std::to_string(config.num_servers);
    ASSERT_EQ(replayed.size(), result.protocol_events.size()) << what;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_TRUE(replayed[i] == result.protocol_events[i])
          << what << " event " << i;
    }
    std::string explanation;
    EXPECT_TRUE(CheckProtocolInvariants(replayed, &explanation))
        << what << ": " << explanation;
  }
}

TEST(SpanAccountingTest, ShardedLinkMetricsMatchMergedTrace) {
  // Sharded engines route every message through one shared Network /
  // LinkModel, so the link metrics a sharded run reports are already the
  // cross-shard merge. Reconstruct the queueing-delay distribution from the
  // per-message trace (kMsgDeliver: d0 = sender queueing, d2 = receiver
  // queueing) and compare its p99 against the engine's queue_delay_p99.
  SimConfig config = SmallConfig(Protocol::kG2pl, 4);
  config.link_bandwidth = 1.0;
  config.nic_queue = true;
  config.obs_trace = true;
  const RunResult result = RunSimulation(config);
  ASSERT_GT(result.queue_delay_p99, 0.0);

  // Same shape as net::Network's internal histogram.
  stats::Histogram rebuilt(/*max_value=*/16384.0, /*num_buckets=*/1024);
  for (const obs::TraceEvent& event : result.obs_trace) {
    if (event.kind == obs::EventKind::kMsgDeliver) {
      rebuilt.Add(static_cast<double>(event.d0 + event.d2));
    }
  }
  ASSERT_GT(rebuilt.count(), 0);
  const int64_t engine_count = result.network.receiver_queue_delay.count();
  if (rebuilt.count() == engine_count) {
    EXPECT_EQ(rebuilt.Percentile(0.99), result.queue_delay_p99);
  } else {
    // The run can end with a handful of messages between downlink admission
    // (histogram update) and delivery (trace event); the tail may then
    // differ by those messages, but the distributions must still agree.
    EXPECT_NEAR(rebuilt.Percentile(0.99), result.queue_delay_p99,
                0.05 * result.queue_delay_p99);
  }
}

}  // namespace
}  // namespace gtpl::proto
