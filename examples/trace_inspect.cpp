// trace_inspect: post-hoc analysis of a structured observability trace
// (JSONL, written by `simulate --trace=FILE`). Prints the event census, the
// committed-transaction latency breakdown, the slowest transactions, and
// the most contended items; --check-invariants replays the protocol events
// through the invariant checkers with no live run.
//
//   ./build/examples/simulate --protocol=g2pl --txns=500 --trace=/tmp/t.jsonl
//   ./build/examples/trace_inspect /tmp/t.jsonl --top=10 --check-invariants

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/table.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocols/invariants.h"

namespace {

using gtpl::obs::EventKind;
using gtpl::obs::TraceEvent;

struct SlowTxn {
  gtpl::TxnId txn = gtpl::kInvalidTxn;
  gtpl::SiteId site = -1;
  int64_t response = 0;
  int64_t lock_wait = 0;
  int64_t propagation = 0;
  int64_t queueing = 0;
  int64_t execution = 0;
  int64_t commit = 0;
};

struct ItemStats {
  int64_t grants = 0;
  int64_t lock_wait = 0;
};

std::string Pct(int64_t part, int64_t total) {
  if (total <= 0) return "-";
  return gtpl::harness::Fmt(100.0 * static_cast<double>(part) /
                                static_cast<double>(total),
                            1) +
         "%";
}

/// Replays a metrics CSV (simulate --metrics-out): per-series sample count,
/// min/max/last value, over the full sampled time range. Returns false on a
/// malformed file.
bool InspectMetrics(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<gtpl::obs::MetricSample> samples;
  std::string error;
  if (!gtpl::obs::ReadMetricsCsv(in, &samples, &error)) {
    std::fprintf(stderr, "malformed metrics %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  std::printf("%s: %zu samples", path.c_str(), samples.size());
  if (!samples.empty()) {
    std::printf(", sim time [%lld, %lld]",
                static_cast<long long>(samples.front().time),
                static_cast<long long>(samples.back().time));
  }
  std::printf("\n\n");
  struct SeriesStats {
    int64_t count = 0;
    int64_t min = 0;
    int64_t max = 0;
    int64_t last = 0;
  };
  // Keyed by (name, shard); std::map iteration gives a stable print order.
  std::map<std::pair<std::string, int32_t>, SeriesStats> series;
  for (const gtpl::obs::MetricSample& sample : samples) {
    SeriesStats& stats = series[{sample.name, sample.shard}];
    if (stats.count == 0) {
      stats.min = sample.value;
      stats.max = sample.value;
    } else {
      stats.min = std::min(stats.min, sample.value);
      stats.max = std::max(stats.max, sample.value);
    }
    stats.last = sample.value;
    ++stats.count;
  }
  gtpl::harness::Table table(
      {"metric", "shard", "samples", "min", "max", "last"});
  for (const auto& [key, stats] : series) {
    table.AddRow({key.first,
                  key.second < 0 ? std::string("-")
                                 : std::to_string(key.second),
                  std::to_string(stats.count), std::to_string(stats.min),
                  std::to_string(stats.max), std::to_string(stats.last)});
  }
  table.Print();
  std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string metrics_path;
  int32_t top = 10;
  bool check_invariants = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [TRACE.jsonl] [--top=N] [--check-invariants] "
                   "[--metrics=FILE.csv]\n",
                   argv[0]);
      return 0;
    } else if (arg.rfind("--top=", 0) == 0) {
      if (!gtpl::harness::ParseInt32Value(arg.c_str() + 6, &top) || top < 1) {
        std::fprintf(stderr, "invalid --top value: %s\n", arg.c_str() + 6);
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
      if (metrics_path.empty()) {
        std::fprintf(stderr, "invalid --metrics value (empty path)\n");
        return 2;
      }
    } else if (arg == "--check-invariants") {
      check_invariants = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty() && metrics_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s [TRACE.jsonl] [--top=N] [--check-invariants] "
                 "[--metrics=FILE.csv]\n",
                 argv[0]);
    return 2;
  }
  if (path.empty()) {
    // Metrics-only invocation.
    return InspectMetrics(metrics_path) ? 0 : 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::vector<TraceEvent> events;
  std::string error;
  if (!gtpl::obs::ReadJsonl(in, &events, &error)) {
    std::fprintf(stderr, "malformed trace %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  std::printf("%s: %zu events", path.c_str(), events.size());
  if (!events.empty()) {
    std::printf(", sim time [%lld, %lld]",
                static_cast<long long>(events.front().time),
                static_cast<long long>(events.back().time));
  }
  std::printf("\n\n");

  // Event census.
  std::map<std::string, int64_t> census;
  for (const TraceEvent& event : events) {
    ++census[gtpl::obs::ToString(event.kind)];
  }
  gtpl::harness::Table census_table({"event", "count"});
  for (const auto& [name, count] : census) {
    census_table.AddRow({name, std::to_string(count)});
  }
  census_table.Print();
  std::printf("\n");

  // Latency breakdown over committed transactions + slowest list + per-item
  // contention (total lock wait accumulated by grants of that item).
  std::vector<SlowTxn> commits;
  std::map<gtpl::ItemId, ItemStats> items;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kTxnCommit) {
      SlowTxn txn;
      txn.txn = event.txn;
      txn.site = event.site;
      txn.response = event.payload;
      txn.lock_wait = event.d0;
      txn.propagation = event.d1;
      txn.queueing = event.d2;
      txn.execution = event.d3;
      txn.commit = event.d4;
      commits.push_back(txn);
    } else if (event.kind == EventKind::kLockGrant &&
               event.item != gtpl::kInvalidItem) {
      ItemStats& stats = items[event.item];
      ++stats.grants;
      stats.lock_wait += event.d0;
    }
  }
  if (!commits.empty()) {
    SlowTxn total;
    for (const SlowTxn& txn : commits) {
      total.response += txn.response;
      total.lock_wait += txn.lock_wait;
      total.propagation += txn.propagation;
      total.queueing += txn.queueing;
      total.execution += txn.execution;
      total.commit += txn.commit;
    }
    const auto n = static_cast<double>(commits.size());
    gtpl::harness::Table phases({"phase", "mean", "share"});
    phases.AddRow({"lock wait",
                   gtpl::harness::Fmt(static_cast<double>(total.lock_wait) / n, 1),
                   Pct(total.lock_wait, total.response)});
    phases.AddRow({"propagation",
                   gtpl::harness::Fmt(static_cast<double>(total.propagation) / n, 1),
                   Pct(total.propagation, total.response)});
    phases.AddRow({"transmission+queueing",
                   gtpl::harness::Fmt(static_cast<double>(total.queueing) / n, 1),
                   Pct(total.queueing, total.response)});
    phases.AddRow({"execution (think)",
                   gtpl::harness::Fmt(static_cast<double>(total.execution) / n, 1),
                   Pct(total.execution, total.response)});
    phases.AddRow({"commit phase",
                   gtpl::harness::Fmt(static_cast<double>(total.commit) / n, 1),
                   Pct(total.commit, total.response)});
    phases.AddRow({"response",
                   gtpl::harness::Fmt(static_cast<double>(total.response) / n, 1),
                   "100.0%"});
    std::printf("latency breakdown over %zu committed transactions:\n",
                commits.size());
    phases.Print();
    std::printf("\n");

    std::sort(commits.begin(), commits.end(),
              [](const SlowTxn& a, const SlowTxn& b) {
                if (a.response != b.response) return a.response > b.response;
                return a.txn < b.txn;
              });
    const size_t show = std::min(commits.size(), static_cast<size_t>(top));
    gtpl::harness::Table slow(
        {"txn", "site", "response", "lock wait", "network", "think", "commit"});
    for (size_t i = 0; i < show; ++i) {
      const SlowTxn& txn = commits[i];
      slow.AddRow({std::to_string(txn.txn), std::to_string(txn.site),
                   std::to_string(txn.response), std::to_string(txn.lock_wait),
                   std::to_string(txn.propagation + txn.queueing),
                   std::to_string(txn.execution), std::to_string(txn.commit)});
    }
    std::printf("top %zu slowest committed transactions:\n", show);
    slow.Print();
    std::printf("\n");
  }
  if (!items.empty()) {
    std::vector<std::pair<gtpl::ItemId, ItemStats>> ranked(items.begin(),
                                                           items.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second.lock_wait != b.second.lock_wait) {
                  return a.second.lock_wait > b.second.lock_wait;
                }
                return a.first < b.first;
              });
    const size_t show = std::min(ranked.size(), static_cast<size_t>(top));
    gtpl::harness::Table contention(
        {"item", "grants", "total lock wait", "mean lock wait"});
    for (size_t i = 0; i < show; ++i) {
      const auto& [item, stats] = ranked[i];
      contention.AddRow(
          {std::to_string(item), std::to_string(stats.grants),
           std::to_string(stats.lock_wait),
           gtpl::harness::Fmt(static_cast<double>(stats.lock_wait) /
                                  static_cast<double>(stats.grants),
                              1)});
    }
    std::printf("top %zu contended items (by total lock wait):\n", show);
    contention.Print();
    std::printf("\n");
  }

  if (!metrics_path.empty() && !InspectMetrics(metrics_path)) return 2;

  if (check_invariants) {
    const std::vector<gtpl::proto::ProtocolEvent> protocol_events =
        gtpl::proto::ProtocolEventsFromTrace(events);
    std::string explanation;
    if (gtpl::proto::CheckProtocolInvariants(protocol_events, &explanation)) {
      std::printf("invariants: OK (%zu protocol events replayed)\n",
                  protocol_events.size());
    } else {
      std::printf("invariants: VIOLATED — %s\n", explanation.c_str());
      return 1;
    }
  }
  return 0;
}
