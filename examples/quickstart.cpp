// Quickstart: reproduce the paper's §3.2 worked example — three clients,
// one hot item, exclusive access, all requests landing in one collection
// window — and show how g-2PL's client-to-client migration removes one
// network hop per lock hand-off compared to s-2PL.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "net/network.h"
#include "protocols/config.h"
#include "protocols/engine.h"

namespace {

gtpl::proto::SimConfig ExampleConfig(gtpl::proto::Protocol protocol) {
  gtpl::proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 3;
  config.latency = 2;  // the example's "2 units of network latency"
  config.workload.num_items = 1;
  config.workload.min_items_per_txn = 1;
  config.workload.max_items_per_txn = 1;
  config.workload.read_prob = 0.0;  // exclusive access
  config.workload.min_think = 1;    // "1 unit of processing time"
  config.workload.max_think = 1;
  config.workload.min_idle = 1000;  // one transaction per client, no refill
  config.workload.max_idle = 1000;
  config.measured_txns = 3;
  config.warmup_txns = 0;
  config.seed = 7;
  config.trace = true;
  config.max_sim_time = 20000;
  return config;
}

std::string SiteName(gtpl::SiteId site) {
  if (site == gtpl::kServerSite) return "server";
  return "client" + std::to_string(site);
}

void RunAndReport(gtpl::proto::Protocol protocol) {
  const gtpl::proto::SimConfig config = ExampleConfig(protocol);
  const gtpl::proto::RunResult result = gtpl::proto::RunSimulation(config);
  std::printf("--- %s ---\n", gtpl::proto::ToString(protocol));
  const long long base =
      result.trace.empty() ? 0
                           : static_cast<long long>(result.trace[0].send_time);
  for (const gtpl::net::TraceRecord& record : result.trace) {
    std::printf("  t=%3lld -> t=%3lld  %-8s -> %-8s  %s\n",
                static_cast<long long>(record.send_time) - base,
                static_cast<long long>(record.deliver_time) - base,
                SiteName(record.from).c_str(), SiteName(record.to).c_str(),
                record.label.c_str());
  }
  std::printf(
      "%llu messages; mean transaction response %.1f units "
      "(min %.0f, max %.0f)\n\n",
      static_cast<unsigned long long>(result.network.messages),
      result.response.mean(), result.response.min(), result.response.max());
}

}  // namespace

int main() {
  std::printf(
      "Paper §3.2 example: 3 clients, 1 hot item, exclusive access,\n"
      "latency = 2 units, processing = 1 unit per transaction.\n"
      "s-2PL pays release->server + grant->client (2 hops) between\n"
      "consecutive holders; g-2PL migrates the item client-to-client\n"
      "(1 hop), cutting total execution time by ~20%%.\n\n");
  RunAndReport(gtpl::proto::Protocol::kS2pl);
  RunAndReport(gtpl::proto::Protocol::kG2pl);
  return 0;
}
