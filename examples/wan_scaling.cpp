// WAN scaling demo: the paper's headline claim on one page. Sweeps the six
// Table-2 network environments at the Table-1 workload and prints how the
// two protocols scale from a single-segment LAN to a large WAN, including
// the response-time histogram of the s-WAN point. The whole 12-point grid
// fans out across worker threads (GTPL_JOBS or all cores) via
// harness::RunSweep; results are bit-identical at any thread count.
//
//   ./build/examples/wan_scaling [read_prob] [jobs]   (default 0.6, auto)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "net/latency_model.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "stats/histogram.h"

namespace {

gtpl::proto::SimConfig PointConfig(gtpl::proto::Protocol protocol,
                                   gtpl::SimTime latency, double read_prob) {
  gtpl::proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 50;
  config.latency = latency;
  config.workload.read_prob = read_prob;
  config.measured_txns = 3000;
  config.warmup_txns = 300;
  config.seed = 2026;
  config.max_sim_time = 60'000'000'000;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const double read_prob = argc > 1 ? std::atof(argv[1]) : 0.6;
  if (read_prob < 0.0 || read_prob > 1.0) {
    std::fprintf(stderr, "read_prob must be in [0,1]\n");
    return 2;
  }
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 0;
  std::printf(
      "g-2PL vs s-2PL across the paper's network environments\n"
      "(50 clients, 25 hot items, 1-5 items/txn, read probability %.2f)\n\n",
      read_prob);

  // Two sweep points per environment: s-2PL then g-2PL.
  const std::vector<gtpl::net::NetworkEnvironment> environments =
      gtpl::net::PaperEnvironments();
  std::vector<gtpl::proto::SimConfig> points;
  for (const gtpl::net::NetworkEnvironment& env : environments) {
    points.push_back(
        PointConfig(gtpl::proto::Protocol::kS2pl, env.latency, read_prob));
    points.push_back(
        PointConfig(gtpl::proto::Protocol::kG2pl, env.latency, read_prob));
  }
  const gtpl::harness::SweepResult sweep =
      gtpl::harness::RunSweep(points, /*runs=*/1, jobs);

  gtpl::harness::Table table({"environment", "latency", "s-2PL resp",
                              "g-2PL resp", "improvement", "g-2PL FL len"});
  for (size_t i = 0; i < environments.size(); ++i) {
    const gtpl::net::NetworkEnvironment& env = environments[i];
    const gtpl::harness::PointResult& s2pl = sweep.points[2 * i];
    const gtpl::harness::PointResult& g2pl = sweep.points[2 * i + 1];
    table.AddRow(
        {env.abbreviation, std::to_string(env.latency),
         gtpl::harness::Fmt(s2pl.response.mean, 0),
         gtpl::harness::Fmt(g2pl.response.mean, 0),
         gtpl::harness::Fmt(100.0 * (s2pl.response.mean - g2pl.response.mean) /
                                s2pl.response.mean,
                            1) +
             "%",
         gtpl::harness::Fmt(g2pl.fl_length.mean, 2)});
  }
  table.Print();
  std::printf(
      "\ngrid: %zu points completed in %.2f s on %d thread(s) "
      "(serial-equivalent %.2f s, speedup %.2fx)\n",
      sweep.points.size(), sweep.wall_seconds, sweep.jobs,
      sweep.serial_seconds,
      sweep.wall_seconds > 0.0 ? sweep.serial_seconds / sweep.wall_seconds
                               : 0.0);

  std::printf("\ns-WAN g-2PL response-time distribution:\n");
  // Re-run the s-WAN point with history recording (RunResult keeps only
  // moments; the sweep drops per-transaction data).
  gtpl::proto::SimConfig config =
      PointConfig(gtpl::proto::Protocol::kG2pl, 500, read_prob);
  config.record_history = true;
  const gtpl::proto::RunResult detailed = gtpl::proto::RunSimulation(config);
  gtpl::stats::Histogram histogram(3.0 * detailed.response.max() / 2, 24);
  for (const gtpl::proto::CommittedTxn& txn : detailed.history) {
    histogram.Add(static_cast<double>(txn.commit_time - txn.start_time));
  }
  std::printf("%s", histogram.ToAscii().c_str());
  std::printf("p50 = %.0f   p90 = %.0f   p99 = %.0f time units\n",
              histogram.Percentile(0.5), histogram.Percentile(0.9),
              histogram.Percentile(0.99));
  return 0;
}
