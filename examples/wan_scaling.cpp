// WAN scaling demo: the paper's headline claim on one page. Sweeps the six
// Table-2 network environments at the Table-1 workload and prints how the
// two protocols scale from a single-segment LAN to a large WAN, including
// the response-time histogram of the s-WAN point.
//
//   ./build/examples/wan_scaling [read_prob]   (default 0.6)

#include <cstdio>
#include <cstdlib>

#include "harness/table.h"
#include "net/latency_model.h"
#include "protocols/config.h"
#include "protocols/engine.h"
#include "stats/histogram.h"

namespace {

gtpl::proto::RunResult RunOne(gtpl::proto::Protocol protocol,
                              gtpl::SimTime latency, double read_prob) {
  gtpl::proto::SimConfig config;
  config.protocol = protocol;
  config.num_clients = 50;
  config.latency = latency;
  config.workload.read_prob = read_prob;
  config.measured_txns = 3000;
  config.warmup_txns = 300;
  config.seed = 2026;
  config.max_sim_time = 60'000'000'000;
  return gtpl::proto::RunSimulation(config);
}

}  // namespace

int main(int argc, char** argv) {
  const double read_prob = argc > 1 ? std::atof(argv[1]) : 0.6;
  if (read_prob < 0.0 || read_prob > 1.0) {
    std::fprintf(stderr, "read_prob must be in [0,1]\n");
    return 2;
  }
  std::printf(
      "g-2PL vs s-2PL across the paper's network environments\n"
      "(50 clients, 25 hot items, 1-5 items/txn, read probability %.2f)\n\n",
      read_prob);
  gtpl::harness::Table table({"environment", "latency", "s-2PL resp",
                              "g-2PL resp", "improvement", "g-2PL FL len"});
  gtpl::proto::RunResult swan_g2pl;
  for (const gtpl::net::NetworkEnvironment& env :
       gtpl::net::PaperEnvironments()) {
    const gtpl::proto::RunResult s2pl =
        RunOne(gtpl::proto::Protocol::kS2pl, env.latency, read_prob);
    gtpl::proto::RunResult g2pl =
        RunOne(gtpl::proto::Protocol::kG2pl, env.latency, read_prob);
    table.AddRow(
        {env.abbreviation, std::to_string(env.latency),
         gtpl::harness::Fmt(s2pl.response.mean(), 0),
         gtpl::harness::Fmt(g2pl.response.mean(), 0),
         gtpl::harness::Fmt(100.0 *
                                (s2pl.response.mean() - g2pl.response.mean()) /
                                s2pl.response.mean(),
                            1) +
             "%",
         gtpl::harness::Fmt(g2pl.mean_forward_list_length, 2)});
    if (env.latency == 500) swan_g2pl = std::move(g2pl);
  }
  table.Print();

  std::printf("\ns-WAN g-2PL response-time distribution:\n");
  gtpl::stats::Histogram histogram(3.0 * swan_g2pl.response.max() / 2, 24);
  // Re-run to collect the distribution (RunResult keeps only moments).
  gtpl::proto::SimConfig config;
  config.protocol = gtpl::proto::Protocol::kG2pl;
  config.num_clients = 50;
  config.latency = 500;
  config.workload.read_prob = read_prob;
  config.measured_txns = 3000;
  config.warmup_txns = 300;
  config.seed = 2026;
  config.record_history = true;
  config.max_sim_time = 60'000'000'000;
  const gtpl::proto::RunResult detailed = gtpl::proto::RunSimulation(config);
  for (const gtpl::proto::CommittedTxn& txn : detailed.history) {
    histogram.Add(static_cast<double>(txn.commit_time - txn.start_time));
  }
  std::printf("%s", histogram.ToAscii().c_str());
  std::printf("p50 = %.0f   p90 = %.0f   p99 = %.0f time units\n",
              histogram.Quantile(0.5), histogram.Quantile(0.9),
              histogram.Quantile(0.99));
  return 0;
}
